//! "When did the N-th most recent alert fire?" — the Section 5
//! `NthRecentWave` extension, plus window queries of every size from a
//! single deterministic wave.
//!
//! ```text
//! cargo run --release -p waves --example recent_events
//! ```

use std::collections::VecDeque;
use waves::streamgen::{BitSource, Bursty};
use waves::{DetWave, NthRecentWave};

fn main() {
    let max_age = 1u64 << 16;
    let eps = 0.1;

    println!("== n-th most recent alert, eps = {eps}, history {max_age} ==\n");

    let mut wave = NthRecentWave::new(max_age, eps).expect("valid parameters");
    let mut window_wave = DetWave::new(max_age, eps).expect("valid parameters");
    let mut truth: VecDeque<u64> = VecDeque::new(); // positions of alerts

    let mut alerts = Bursty::new(50.0, 17);
    let mut pos = 0u64;
    for _ in 0..200_000u64 {
        pos += 1;
        let b = alerts.next_bit();
        wave.push_bit(b);
        window_wave.push_bit(b);
        if b {
            truth.push_back(pos);
        }
        while truth.front().is_some_and(|&p| p + max_age <= pos) {
            truth.pop_front();
        }
    }

    println!("total alerts observed: {}", wave.rank());
    println!(
        "\n{:>8} {:>12} {:>16} {:>10}",
        "n", "actual age", "estimated age", "rel err"
    );
    for n in [1u64, 10, 100, 1_000, 5_000] {
        if (truth.len() as u64) < n {
            println!("{n:>8} {:>12}", "—");
            continue;
        }
        let actual = pos - truth[truth.len() - n as usize];
        match wave.query_age(n) {
            Ok(Some(est)) => {
                let err = if actual > 0 {
                    est.relative_error(actual)
                } else {
                    0.0
                };
                println!(
                    "{:>8} {:>12} {:>7} in [{}, {}] {:>9.3}%",
                    n,
                    actual,
                    est.value,
                    est.lo,
                    est.hi,
                    100.0 * err
                );
                assert!(est.brackets(actual));
                if actual > 0 {
                    assert!(err <= eps + 1e-9);
                }
            }
            other => println!("{n:>8} -> {other:?}"),
        }
    }

    // The dual query: how many alerts in the last n positions?
    println!("\n{:>10} {:>10} {:>12}", "window", "actual", "wave est");
    for n in [256u64, 4_096, 65_536] {
        let s = pos - n + 1;
        let actual = truth.iter().filter(|&&p| p >= s).count() as u64;
        let est = window_wave.query(n).expect("n <= N");
        println!("{:>10} {:>10} {:>12.1}", n, actual, est.value);
        assert!(est.relative_error(actual) <= eps + 1e-9);
    }
    println!("\nok: ages and counts within eps");
}
