//! Distinct values over distributed streams: how many distinct client
//! IPs hit *any* of our edge servers in the last N requests?
//!
//! ```text
//! cargo run --release -p waves --example distinct_ips
//! ```
//!
//! Demonstrates Theorem 6 (distinct-values counting in a sliding window
//! over the union of distributed streams) and the predicate extension
//! ("how many of those were from the 10.x.x.x block?") — the predicate
//! is supplied at query time, after the streams were observed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use waves::streamgen::{ValueSource, ZipfValues};
use waves::{DistinctParty, DistinctReferee, RandConfig};

fn main() {
    let servers = 4usize;
    let window = 8_192u64;
    let ip_space = 1u64 << 20; // 2^20 possible client ids
    let (eps, delta) = (0.15, 0.05);

    println!(
        "== {servers} edge servers, distinct clients in last {window} requests, (eps, delta) = ({eps}, {delta}) =="
    );

    let mut rng = StdRng::seed_from_u64(7);
    let cfg = RandConfig::for_values(window, ip_space - 1, eps, delta, &mut rng)
        .expect("valid parameters");
    println!(
        "config: {} instances x {} levels x {} elements",
        cfg.instances(),
        cfg.degree() + 1,
        cfg.queue_capacity()
    );

    let mut parties: Vec<DistinctParty> = (0..servers).map(|_| DistinctParty::new(&cfg)).collect();

    // Zipf-distributed clients (heavy hitters shared across servers),
    // plus a per-server long tail.
    let mut gens: Vec<ZipfValues> = (0..servers)
        .map(|j| ZipfValues::new(ip_space as usize, 1.1, 1000 + j as u64))
        .collect();

    // Exact truth: last occurrence per value on the shared axis.
    let mut last: HashMap<u64, u64> = HashMap::new();
    let steps = 50_000u64;
    for pos in 1..=steps {
        for (j, p) in parties.iter_mut().enumerate() {
            let ip = gens[j].next_value();
            p.push_value(ip);
            last.insert(ip, pos);
        }
    }

    let referee = DistinctReferee::new(cfg);
    let s = steps - window + 1;
    let messages: Vec<_> = parties
        .iter()
        .map(|p| p.message(window).expect("window within bound"))
        .collect();

    let actual = last.values().filter(|&&p| p >= s).count() as f64;
    let est = referee.estimate(&messages, s);
    println!(
        "\ndistinct clients : actual {:>8}  est {:>10.1}  (err {:.3}%)",
        actual,
        est,
        100.0 * (est - actual).abs() / actual
    );
    assert!((est - actual).abs() / actual <= eps);

    // Predicate supplied at query time: clients in the low half of the
    // address space (selectivity ~1/2 of distinct values by Zipf mass).
    let low_block = |ip: u64| ip < ip_space / 2;
    let actual_p = last
        .iter()
        .filter(|&(&ip, &p)| p >= s && low_block(ip))
        .count() as f64;
    let est_p = referee.estimate_predicate(&messages, s, Some(&low_block));
    println!(
        "low-block clients: actual {:>8}  est {:>10.1}  (err {:.3}%)",
        actual_p,
        est_p,
        100.0 * (est_p - actual_p).abs() / actual_p
    );
    // Guarantee degrades with predicate selectivity (Section 5).
    assert!((est_p - actual_p).abs() / actual_p <= 2.0 * eps);

    let stored: usize = parties.iter().map(|p| p.stored()).sum();
    println!(
        "\nper-party state: ~{} sampled (ip, position) pairs",
        stored / servers
    );
    println!("ok: distinct counts within the guarantee");
}
