//! Telecom call records (the paper's sliding-window motivation:
//! "most processing is done only on recent call records").
//!
//! ```text
//! cargo run --release -p waves --example call_records
//! ```
//!
//! A switch emits call records (timestamp, duration). We maintain, in
//! polylogarithmic space:
//!   * total billed seconds over the last hour   (sum wave),
//!   * number of calls over the last hour        (timestamp wave),
//!   * average call duration over the last hour  (sum/count composition).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use waves::streamgen::{CallDurations, ValueSource};
use waves::{SlidingAverage, SumWave, TimestampWave};

fn main() {
    let window_secs = 3_600u64; // one hour of timestamps
    let max_duration = 7_200u64; // calls capped at two hours
    let max_calls_per_second = 8u64;
    let eps = 0.1;

    println!("== call records: one-hour sliding window, eps = {eps} ==\n");

    // Billed seconds per *second slot*, summed over the hour. Each slot
    // aggregates at most max_calls_per_second * max_duration seconds.
    let mut billed = SumWave::new(window_secs, max_calls_per_second * max_duration, eps)
        .expect("valid parameters");

    // Calls in the last hour (timestamped counting, Corollary 1).
    let mut calls = TimestampWave::new(window_secs, window_secs * max_calls_per_second, eps)
        .expect("valid parameters");

    // Average duration via the eps/(2+eps) composition of Section 5.
    let mut avg = SlidingAverage::with_eps(
        window_secs,
        window_secs * max_calls_per_second,
        max_duration,
        0.2,
    )
    .expect("valid parameters");

    // Ground truth kept exactly for the demo.
    let mut truth: Vec<(u64, u64)> = Vec::new();

    let mut durations = CallDurations::new(max_duration, 11);
    let mut rng = StdRng::seed_from_u64(5);
    let total_seconds = 6 * 3_600u64; // six hours of traffic

    for sec in 1..=total_seconds {
        let now = sec;
        let mut slot_total = 0u64;
        let n_calls = rng.gen_range(0..=3);
        for _ in 0..n_calls {
            let d = durations.next_value();
            slot_total += d;
            calls.push(now, true).expect("nondecreasing timestamps");
            avg.push(now, d).expect("valid record");
            truth.push((now, d));
        }
        billed.push_value(slot_total).expect("slot within bound");

        if sec % 3_600 == 0 {
            let hour = sec / 3_600;
            let s = sec.saturating_sub(window_secs - 1);
            let in_window: Vec<u64> = truth
                .iter()
                .filter(|&&(t, _)| t >= s)
                .map(|&(_, d)| d)
                .collect();
            let actual_billed: u64 = in_window.iter().sum();
            let actual_calls = in_window.len() as u64;
            let actual_avg = if actual_calls > 0 {
                actual_billed as f64 / actual_calls as f64
            } else {
                0.0
            };

            let est_billed = billed.query_max();
            let est_calls = calls.query(window_secs).expect("window within bound");
            let est_avg = avg.query().expect("valid query");

            println!("hour {hour}:");
            println!(
                "  billed seconds : actual {:>9}  est {:>11.1}  (err {:.3}%)",
                actual_billed,
                est_billed.value,
                100.0 * est_billed.relative_error(actual_billed)
            );
            println!(
                "  calls          : actual {:>9}  est {:>11.1}  (err {:.3}%)",
                actual_calls,
                est_calls.value,
                100.0 * est_calls.relative_error(actual_calls)
            );
            if let Some(a) = est_avg {
                println!(
                    "  avg duration   : actual {:>9.1}  est {:>11.1}  (err {:.3}%)",
                    actual_avg,
                    a.value,
                    100.0 * a.relative_error(actual_avg)
                );
                assert!(a.relative_error(actual_avg) <= 0.2 + 1e-9);
            }
            assert!(est_billed.relative_error(actual_billed) <= eps + 1e-9);
            assert!(est_calls.relative_error(actual_calls) <= eps + 1e-9);
        }
    }

    let space = billed.space_report();
    println!(
        "\nsum-wave footprint: {} entries / {} synopsis bits for a {}-second window",
        space.entries, space.synopsis_bits, window_secs
    );
    println!("ok: all hourly reports within their error bounds");
}
