//! Quickstart: the three workhorse synopses on one synthetic stream.
//!
//! ```text
//! cargo run --release -p waves --example quickstart
//! ```
//!
//! Walks through (1) Basic Counting with the deterministic wave,
//! (2) sums of bounded integers with the sum wave, and (3) a comparison
//! against the exponential-histogram baseline, printing estimates next
//! to exact answers at several checkpoints.

use waves::streamgen::{Bernoulli, BitSource, UniformValues, ValueSource};
use waves::{DetWave, EhCount, ExactCount, ExactSum, SumWave};

fn main() {
    let window = 4_096u64;
    let eps = 0.05;

    // ---------------------------------------------------------------
    // 1. Basic Counting: how many 1's in the last `window` bits?
    // ---------------------------------------------------------------
    println!("== Basic Counting: deterministic wave (N = {window}, eps = {eps}) ==");
    let mut wave = DetWave::new(window, eps).expect("valid parameters");
    let mut eh = EhCount::new(window, eps).expect("valid parameters");
    let mut exact = ExactCount::new(window);

    let mut bits = Bernoulli::new(0.3, 42);
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "pos", "actual", "wave est", "eh est", "wave err", "eh err"
    );
    for step in 1..=100_000u64 {
        let b = bits.next_bit();
        wave.push_bit(b);
        eh.push_bit(b);
        exact.push_bit(b);
        if step % 20_000 == 0 {
            let actual = exact.query(window);
            let w = wave.query_max();
            let e = eh.query(window).expect("window within bound");
            println!(
                "{:>10} {:>10} {:>12.1} {:>12.1} {:>9.4}% {:>9.4}%",
                step,
                actual,
                w.value,
                e.value,
                100.0 * w.relative_error(actual),
                100.0 * e.relative_error(actual)
            );
            assert!(w.relative_error(actual) <= eps);
            assert!(e.relative_error(actual) <= eps);
        }
    }
    let space = wave.space_report();
    println!(
        "wave space: {} entries, {} synopsis bits ({} bytes resident) vs {} bits exact\n",
        space.entries, space.synopsis_bits, space.resident_bytes, window
    );

    // ---------------------------------------------------------------
    // 2. Sums: total of the last `window` values in [0..R].
    // ---------------------------------------------------------------
    let r = 1_000u64;
    println!("== Sliding sum: sum wave (N = {window}, R = {r}, eps = {eps}) ==");
    let mut sum_wave = SumWave::new(window, r, eps).expect("valid parameters");
    let mut exact_sum = ExactSum::new(window);
    let mut vals = UniformValues::new(r, 7);
    for step in 1..=100_000u64 {
        let v = vals.next_value();
        sum_wave.push_value(v).expect("v <= R");
        exact_sum.push_value(v);
        if step % 25_000 == 0 {
            let actual = exact_sum.query(window);
            let est = sum_wave.query_max();
            println!(
                "pos {:>7}: actual {:>9}  est {:>11.1}  rel err {:.4}%",
                step,
                actual,
                est.value,
                100.0 * est.relative_error(actual)
            );
            assert!(est.relative_error(actual) <= eps);
        }
    }
    let space = sum_wave.space_report();
    println!(
        "sum wave space: {} entries, {} synopsis bits\n",
        space.entries, space.synopsis_bits
    );

    // ---------------------------------------------------------------
    // 3. Any window size n <= N from the same synopsis.
    // ---------------------------------------------------------------
    println!("== One wave, many window sizes ==");
    for n in [64u64, 256, 1024, 4096] {
        let actual = exact.query(n);
        let est = wave.query(n).expect("n <= N");
        println!(
            "last {:>5} bits: actual {:>5}, wave [{:>5}, {:>5}] -> {:>8.1}",
            n, actual, est.lo, est.hi, est.value
        );
        assert!(est.brackets(actual));
    }
    println!("\nok: every estimate within eps of the truth");
}
