//! Service latency percentiles over a sliding window — the Section 5
//! "histogramming" extension in a shape every operations team knows:
//! p50/p95/p99 of the last N requests, in polylog-per-bucket space,
//! with *certified* value ranges rather than point guesses.
//!
//! ```text
//! cargo run --release -p waves --example latency_percentiles
//! ```

use std::collections::VecDeque;
use waves::streamgen::{CallDurations, ValueSource};
use waves::WindowedHistogram;

fn main() {
    let window = 50_000u64; // last 50k requests
    let max_latency_us = (1u64 << 20) - 1; // ~1.05 s cap
    let eps = 0.01; // tight per-bucket counts make quantile ranges tight

    // Log-spaced edges: sub-ms buckets tight, tail buckets coarse.
    let mut edges: Vec<u64> = Vec::new();
    let mut e = 128u64;
    while e <= max_latency_us {
        edges.push(e);
        e *= 2;
    }
    edges.push(max_latency_us + 1);
    let mut hist =
        WindowedHistogram::with_edges(window, edges, eps).expect("valid histogram parameters");
    println!(
        "== latency histogram: {} log-spaced buckets over [0, {}] us, window {window}, eps {eps} ==",
        hist.buckets(),
        max_latency_us
    );

    // Workload: log-uniform "normal" latencies plus a slow-query mode.
    let mut gen = CallDurations::new(1 << 14, 7);
    let mut slow = CallDurations::new(max_latency_us, 8);
    let mut truth: VecDeque<u64> = VecDeque::new();
    let mut x = 1u64;
    for step in 1..=200_000u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = if (x >> 58) == 0 {
            slow.next_value() // ~1.5% slow outliers
        } else {
            gen.next_value()
        };
        hist.push_value(v).expect("value within domain");
        truth.push_back(v);
        if truth.len() as u64 > window {
            truth.pop_front();
        }
        let _ = step;
    }

    let mut sorted: Vec<u64> = truth.iter().copied().collect();
    sorted.sort_unstable();
    println!(
        "\n{:>6} {:>12} {:>24}",
        "q", "exact (us)", "certified range (us)"
    );
    for q in [0.50f64, 0.90, 0.95, 0.99, 0.999] {
        let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        let exact = sorted[idx];
        let (lo, hi) = hist
            .query_quantile(window, q)
            .expect("valid window")
            .expect("window nonempty");
        println!("{:>6} {:>12} {:>11} ..{:>10}", q, exact, lo, hi);
        assert!(lo <= exact && exact <= hi, "quantile range must certify");
    }

    let space = hist.space_report();
    println!(
        "\nhistogram space: {} wave entries, {} synopsis bits total (vs {} x 64-bit samples exact)",
        space.entries, space.synopsis_bits, window
    );
    println!("ok: every certified range contains the exact percentile");
}
