//! Network monitoring over distributed streams (the paper's motivating
//! scenario): several vantage points each see a stream of per-interval
//! alarm bits; the analysis front-end (Referee) estimates how many of
//! the last N intervals had an alarm *somewhere* — the positionwise
//! union — without ever centralizing the raw streams.
//!
//! ```text
//! cargo run --release -p waves --example network_monitor
//! ```
//!
//! Runs one OS thread per monitor, queries at checkpoints, and reports
//! estimate vs. truth, the communication spent (total and per monitor),
//! referee combine latency, and a metrics snapshot from the
//! observability layer.

use rand::rngs::StdRng;
use rand::SeedableRng;
use waves::obs::MetricsRegistry;
use waves::streamgen::{correlated_streams, positionwise_union};
use waves::{run_union_threaded_recorded, RandConfig};

fn main() {
    let monitors = 8usize;
    let intervals = 200_000usize;
    let window = 10_000u64;
    let (eps, delta) = (0.1, 0.01);

    println!("== {monitors} monitors, window of last {window} intervals, (eps, delta) = ({eps}, {delta}) ==");

    // Stored coins: sampled once, shipped to every monitor.
    let mut rng = StdRng::seed_from_u64(2026);
    let cfg = RandConfig::for_positions(window, eps, delta, &mut rng).expect("valid parameters");
    println!(
        "shared config: {} instances, {} levels, {} positions/queue, {} coin bits",
        cfg.instances(),
        cfg.degree() + 1,
        cfg.queue_capacity(),
        cfg.stored_coin_bits()
    );

    // Correlated alarms: regional incidents are visible from several
    // vantage points at once, so the union is far below the sum.
    let streams = correlated_streams(monitors, intervals, 0.02, 0.01, 99);
    let union = positionwise_union(&streams);

    let checkpoints: Vec<u64> = (1..=4).map(|i| (intervals as u64 / 4) * i).collect();
    let registry = MetricsRegistry::new();
    let run = run_union_threaded_recorded(&cfg, &streams, &checkpoints, window, &registry);

    println!(
        "\n{:>10} {:>10} {:>12} {:>10} {:>12}",
        "interval", "actual", "estimate", "rel err", "naive sum"
    );
    for &(pos, est) in &run.estimates {
        let w = window.min(pos) as usize;
        let s = pos as usize - w;
        let actual = union[s..pos as usize].iter().filter(|&&b| b).count();
        let naive: usize = streams
            .iter()
            .map(|st| st[s..pos as usize].iter().filter(|&&b| b).count())
            .sum();
        let rel = (est - actual as f64).abs() / actual.max(1) as f64;
        println!(
            "{:>10} {:>10} {:>12.1} {:>9.3}% {:>12}",
            pos,
            actual,
            est,
            100.0 * rel,
            naive
        );
        assert!(rel <= eps, "estimate outside the (eps, delta) guarantee");
    }

    println!(
        "\ncommunication: {} messages, {} bytes total ({} bytes/query/monitor)",
        run.comm.messages,
        run.comm.bytes,
        run.comm.bytes / run.comm.messages
    );
    for (j, pc) in run.comm.per_party.iter().enumerate() {
        println!(
            "  monitor {j}: {} messages, {} bytes",
            pc.messages, pc.bytes
        );
    }
    if let Some((j, pc)) = run.comm.worst_party() {
        println!(
            "  worst monitor: #{j} at {} bytes (the paper's per-party bound)",
            pc.bytes
        );
    }
    println!(
        "referee combine: {} calls, p50 = {:.0} ns, max = {} ns",
        run.combine_ns.count,
        run.combine_ns.p50(),
        run.combine_ns.max
    );
    println!(
        "\n== metrics snapshot ==\n{}",
        registry.snapshot().to_text()
    );
    println!("ok: union tracked within eps at every checkpoint");
}
