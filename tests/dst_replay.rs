//! Replay identity and shrinker soundness for the deterministic
//! simulation harness (`waves-dst`).
//!
//! The harness's whole value rests on two properties: a seed is a
//! complete description of a run (same seed ⇒ bit-identical trace), and
//! a minimized failing schedule is still a failing schedule. Both are
//! pinned here; `waves dst --seed <n>` relies on the first, the
//! `DST FAILURE` shrink output on the second.

use proptest::prelude::*;
use waves::dst::{run, run_or_minimize, run_seed, Schedule, Step};

/// Same seed, run twice: identical trace, line for line, hash for hash.
/// This is the property that makes `waves dst --seed <n>` a *replay*
/// rather than a rerun — faults, restarts, and WAL cuts included.
#[test]
fn trace_is_a_pure_function_of_the_seed() {
    for seed in 0..10u64 {
        let a = run_seed(seed).unwrap_or_else(|v| panic!("{v}"));
        let b = run_seed(seed).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "seed {seed}: trace hash diverged"
        );
        assert_eq!(a.trace, b.trace, "seed {seed}: trace lines diverged");
        assert!(a.checks > 0, "seed {seed}: ran no oracle checks");
    }
}

/// Schedule generation never consults ambient state: equal seeds give
/// equal schedules, different seeds (overwhelmingly) different ones.
#[test]
fn schedule_generation_is_pure() {
    for seed in 0..50u64 {
        assert_eq!(Schedule::from_seed(seed), Schedule::from_seed(seed));
    }
    let distinct: std::collections::HashSet<u64> = (0..50)
        .map(|s| {
            let sched = Schedule::from_seed(s);
            sched.steps.len() as u64 ^ (sched.cfg.max_window << 8)
        })
        .collect();
    assert!(
        distinct.len() > 10,
        "seeds produce near-identical schedules"
    );
}

/// On a passing schedule, the minimizing front-end is an identity
/// wrapper around `run`.
#[test]
fn run_or_minimize_agrees_with_run_on_passing_seeds() {
    for seed in [0u64, 1, 2] {
        let sched = Schedule::from_seed(seed);
        let direct = run(&sched).unwrap_or_else(|v| panic!("{v}"));
        let wrapped = run_or_minimize(&sched).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(direct.trace_hash, wrapped.trace_hash);
    }
}

/// Trace hashes pinned against the current harness: any change to the
/// schedule generator, the ingest encoding, or the trace format shows
/// up here as a hash mismatch and must be a deliberate re-pin.
#[test]
fn pinned_trace_hashes_for_known_seeds() {
    const PINNED: &[(u64, u64)] = &[
        (0, 0x1bf0_865f_d758_f686),
        (1, 0x85e3_4ded_b992_64c4),
        (2, 0xc3d4_913f_0b70_4153),
        (3, 0x060a_a049_5b0e_f1ed),
        (4, 0x63e1_cee9_0824_0306),
    ];
    for &(seed, want) in PINNED {
        let report = run_seed(seed).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(
            report.trace_hash, want,
            "seed {seed}: trace hash {:#018x} != pinned {want:#018x}",
            report.trace_hash
        );
    }
}

/// The generator's packed-vs-bool coin flip actually lands on both
/// sides, so both ingest currencies stay under the oracle check.
#[test]
fn generated_schedules_cover_both_ingest_currencies() {
    let (mut saw_packed, mut saw_bool) = (false, false);
    for seed in 0..50u64 {
        for step in &Schedule::from_seed(seed).steps {
            if let Step::Ingest { packed, .. } = step {
                if *packed {
                    saw_packed = true;
                } else {
                    saw_bool = true;
                }
            }
        }
    }
    assert!(saw_packed, "no seed produced a packed ingest");
    assert!(saw_bool, "no seed produced a bool ingest");
}

/// Seed-derived schedules actually reach the cluster backend and all
/// three node-fault kinds, so the soak genuinely exercises routing,
/// replication, failover, and post-rejoin anti-entropy.
#[test]
fn generated_schedules_cover_cluster_faults() {
    let (mut clusters, mut kills, mut partitions, mut rejoins) = (0u32, 0u32, 0u32, 0u32);
    for seed in 0..200u64 {
        let s = Schedule::from_seed(seed);
        if s.cfg.cluster_nodes > 0 {
            clusters += 1;
        }
        for step in &s.steps {
            match step {
                Step::NodeKill { .. } => kills += 1,
                Step::Partition { .. } => partitions += 1,
                Step::Rejoin { .. } => rejoins += 1,
                _ => {}
            }
        }
    }
    assert!(
        clusters >= 20,
        "only {clusters}/200 seeds run the cluster backend"
    );
    assert!(kills > 0, "no seed killed a node");
    assert!(partitions > 0, "no seed partitioned a node");
    assert!(rejoins > 0, "no seed rejoined a node");
}

/// Seed-derived schedules actually attach the continuous-monitoring
/// overlay and exercise both its step kinds, so the soak genuinely
/// checks push-mode answers against the pull referee and the slack
/// contract.
#[test]
fn generated_schedules_cover_monitor_arms() {
    let (mut monitors, mut pushes, mut queries) = (0u32, 0u32, 0u32);
    for seed in 0..200u64 {
        let s = Schedule::from_seed(seed);
        if s.cfg.monitor_parties > 0 {
            monitors += 1;
        }
        for step in &s.steps {
            match step {
                Step::MonitorPush { .. } => pushes += 1,
                Step::MonitorQuery => queries += 1,
                _ => {}
            }
        }
    }
    assert!(
        monitors >= 20,
        "only {monitors}/200 seeds attach the monitor overlay"
    );
    assert!(pushes > 0, "no seed pushed monitor bits");
    assert!(queries > 0, "no seed checked the continuous answer");
}

#[test]
fn replay_hint_names_the_seed() {
    let sched = Schedule::from_seed(77);
    assert!(sched.replay_hint().contains("--seed 77"));
}

fn count_ingests(steps: &[Step]) -> usize {
    steps
        .iter()
        .filter(|s| matches!(s, Step::Ingest { .. }))
        .count()
}

fn has_query_after_ingest(steps: &[Step]) -> bool {
    let mut seen_ingest = false;
    for s in steps {
        match s {
            Step::Ingest { .. } => seen_ingest = true,
            Step::Query { .. } if seen_ingest => return true,
            _ => {}
        }
    }
    false
}

/// `shrunk` must be an order-preserving subsequence of `orig` — the
/// shrinker may only delete steps, never reorder or invent them.
fn is_subsequence(shrunk: &[Step], orig: &[Step]) -> bool {
    let mut it = orig.iter();
    shrunk.iter().all(|s| it.any(|o| o == s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shrinker soundness on real generated schedules: for any failure
    /// predicate over the step vector, the shrunk schedule still fails,
    /// is a subsequence of the original, and is 1-minimal (removing any
    /// single remaining step makes it pass).
    #[test]
    fn shrunk_failing_schedule_still_fails(seed in 0u64..5000, k in 1usize..4) {
        let sched = Schedule::from_seed(seed);
        let fails = |steps: &[Step]| count_ingests(steps) >= k;
        if fails(&sched.steps) {
            let shrunk = shrink_elements(&sched.steps, fails);
            prop_assert!(fails(&shrunk), "shrunk schedule no longer fails");
            prop_assert!(is_subsequence(&shrunk, &sched.steps));
            for i in 0..shrunk.len() {
                let mut fewer = shrunk.clone();
                fewer.remove(i);
                prop_assert!(!fails(&fewer), "not 1-minimal: step {i} removable");
            }
        }
    }

    /// Same, for an order-sensitive predicate — deletion must preserve
    /// relative order or this cannot stay failing.
    #[test]
    fn shrinking_preserves_step_order(seed in 0u64..5000) {
        let sched = Schedule::from_seed(seed);
        if has_query_after_ingest(&sched.steps) {
            let shrunk = shrink_elements(&sched.steps, has_query_after_ingest);
            prop_assert!(has_query_after_ingest(&shrunk));
            prop_assert!(is_subsequence(&shrunk, &sched.steps));
            prop_assert_eq!(shrunk.len(), 2, "minimal witness is one ingest + one query");
        }
    }
}
