//! End-to-end cluster failover: kill a primary mid-stream and prove no
//! acknowledged data is lost and no answer degrades beyond the synopsis
//! guarantee.
//!
//! The harness runs N loopback `waves-net` servers behind a
//! [`ClusterClient`] with replication ≥ 2, streams a deterministic
//! keyed workload while maintaining an [`ExactCount`] ground truth per
//! key, kills one node mid-stream, keeps streaming, and then checks
//! every key three ways:
//!
//! 1. the cluster's answer equals the client's shadow synopsis **bit
//!    for bit** (the shadow saw every bit exactly once, in order);
//! 2. the answer brackets the exact oracle's truth;
//! 3. the answer is within ε relative error of the truth — i.e. inside
//!    the 2ε agreement bracket any two conforming synopses share.

use waves::cluster::{ClusterClient, ClusterConfig};
use waves::net::{ClientConfig, RetryPolicy, Server, ServerConfig};
use waves::obs::{MetricId, MetricsRegistry};
use waves::{EngineConfig, ExactCount};

const MAX_WINDOW: u64 = 256;
const EPS: f64 = 0.2;
const KEYS: u64 = 12;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

fn start_servers(n: usize) -> Vec<Server> {
    let ecfg = EngineConfig::builder()
        .num_shards(2)
        .max_window(MAX_WINDOW)
        .eps(EPS)
        .build();
    (0..n)
        .map(|_| {
            Server::start(
                "127.0.0.1:0",
                ServerConfig {
                    engine: ecfg.clone(),
                    read_timeout: None,
                    ..Default::default()
                },
            )
            .expect("server start")
        })
        .collect()
}

/// Stream `items` workload items through the client, one bit per item,
/// mirroring every bit into the exact oracles.
fn stream(
    client: &mut ClusterClient<MetricsRegistry>,
    oracles: &mut [ExactCount],
    rng: &mut u64,
    items: usize,
) {
    for _ in 0..items {
        let key = lcg(rng) % KEYS;
        let bit = !lcg(rng).is_multiple_of(3);
        client
            .ingest(key, &[bit][..])
            .expect("ingest with a live replica");
        oracles[key as usize].push_bit(bit);
    }
    client.flush().expect("flush");
    client.replicate_all();
}

/// Every key, several windows: cluster answer == shadow, brackets
/// truth, within ε of truth.
fn check_all(client: &mut ClusterClient<MetricsRegistry>, oracles: &[ExactCount], ctx: &str) {
    for key in 0..KEYS {
        for window in [MAX_WINDOW, MAX_WINDOW / 2, MAX_WINDOW / 7, 1] {
            let got = client
                .query(key, window)
                .unwrap_or_else(|e| panic!("{ctx}: query key={key} w={window}: {e}"));
            let shadow = client
                .shadow_query(key, window)
                .unwrap_or_else(|e| panic!("{ctx}: shadow key={key} w={window}: {e}"));
            assert_eq!(
                got, shadow,
                "{ctx}: key={key} w={window}: cluster answer diverged from shadow"
            );
            let truth = oracles[key as usize].query(window);
            assert!(
                got.brackets(truth),
                "{ctx}: key={key} w={window}: truth {truth} outside [{}, {}]",
                got.lo,
                got.hi
            );
            assert!(
                got.relative_error(truth) <= EPS + 1e-9,
                "{ctx}: key={key} w={window}: error {} beyond eps {EPS} (truth {truth})",
                got.relative_error(truth)
            );
        }
    }
}

#[test]
fn kill_primary_mid_stream_keeps_every_answer_in_bracket() {
    let mut servers = start_servers(3);
    let addrs = servers.iter().map(|s| s.local_addr()).collect();
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let mut client = ClusterClient::new_recorded(
        addrs,
        ClusterConfig {
            replication: 2,
            ring_seed: 42,
            max_window: MAX_WINDOW,
            eps: EPS,
            // No same-node retries: a dead primary should cost one
            // refused dial per touch, not a backoff ladder — failover
            // is the recovery mechanism under test.
            client: ClientConfig {
                retry: RetryPolicy::none(),
                ..Default::default()
            },
            ..Default::default()
        },
        std::sync::Arc::clone(&registry),
    )
    .expect("cluster client");
    let mut oracles: Vec<ExactCount> = (0..KEYS).map(|_| ExactCount::new(MAX_WINDOW)).collect();
    let mut rng = 0x5EED_CAFE;

    // First half of the stream with all nodes healthy.
    stream(&mut client, &mut oracles, &mut rng, 900);
    check_all(&mut client, &oracles, "pre-kill");

    // Kill one node mid-stream. It is the primary for roughly a third
    // of the keys; their ingests repair onto the surviving replica and
    // their queries fail over.
    let victim = client
        .replicas_of(0)
        .first()
        .copied()
        .expect("key 0 has a primary");
    servers.remove(victim).shutdown();

    // Second half of the stream against the degraded cluster.
    stream(&mut client, &mut oracles, &mut rng, 900);
    check_all(&mut client, &oracles, "post-kill");

    // The kill was actually exercised: key 0's reads and writes had to
    // walk past its dead primary.
    assert!(
        registry.counter(MetricId::ClusterFailovers) > 0,
        "killing a primary must trigger failovers"
    );
    assert!(
        registry.counter(MetricId::ClusterReplicationsShipped) > 0,
        "replication rounds must have shipped installs"
    );

    for s in servers {
        s.shutdown();
    }
}

#[test]
fn replication_keeps_followers_current_between_rounds() {
    let mut servers = start_servers(2);
    let addrs = servers.iter().map(|s| s.local_addr()).collect();
    let mut client = ClusterClient::new(
        addrs,
        ClusterConfig {
            replication: 2,
            ring_seed: 7,
            max_window: MAX_WINDOW,
            eps: EPS,
            ..Default::default()
        },
    )
    .expect("cluster client");

    // With 2 nodes and R=2 every key lives on both; after a replication
    // round, killing *either* node must leave every answer identical to
    // the shadow.
    let mut rng = 0xD15C;
    for _ in 0..500 {
        let key = lcg(&mut rng) % 4;
        let bit = lcg(&mut rng) % 2 == 1;
        client.ingest(key, &[bit][..]).expect("ingest");
    }
    client.flush().expect("flush");
    let shipped = client.replicate_all();
    assert!(shipped > 0, "two-node R=2 cluster must ship installs");

    servers.remove(0).shutdown();
    for key in 0..4 {
        let got = client.query(key, MAX_WINDOW).expect("failover query");
        let want = client.shadow_query(key, MAX_WINDOW).expect("shadow");
        assert_eq!(got, want, "key={key}: survivor diverged from shadow");
    }
    for s in servers {
        s.shutdown();
    }
}
