//! End-to-end telemetry over the full networked stack: one traced
//! request must leave a complete span tree in the ring — client request
//! root, wire exchange, server dispatch, shard-queue wait, shard
//! execution, and (for ingest with persistence) WAL append + fsync —
//! and the remote STATS frame must return a snapshot whose per-shard
//! dimensions reconcile with the global counters.
//!
//! Server and client share one recorder here (same process), so the
//! whole distributed trace lands in a single `SpanRecorder` ring.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use waves::net::{Client, ClientConfig, Server, ServerConfig};
use waves::obs::trace::ROOT_SPAN_ID;
use waves::obs::{
    BufferSink, Fanout, MetricsRegistry, Recorder, Span, SpanRecorder, Stage, TraceId,
};
use waves::store::{scratch_dir, PersistConfig, SyncPolicy};
use waves::{Bits, EngineConfig, IngestRequest};

/// Metrics + span ring + event sink, fanned out as one recorder.
type Telemetry = Fanout<Fanout<MetricsRegistry, SpanRecorder>, BufferSink>;

fn telemetry() -> Arc<Telemetry> {
    Arc::new(Fanout(
        Fanout(MetricsRegistry::new(), SpanRecorder::new()),
        BufferSink::new(),
    ))
}

fn ring(tel: &Telemetry) -> &SpanRecorder {
    &tel.0 .1
}

fn stages(spans: &[Span]) -> HashSet<Stage> {
    spans.iter().map(|s| s.stage).collect()
}

/// The one-big-test shape is deliberate: the traced ingest, the traced
/// query, the remote stats reconciliation, and the slow-request event
/// all observe the same two requests, so splitting them would just
/// re-run the server four times.
#[test]
fn traced_request_produces_full_span_tree_and_stats_reconcile() {
    let root = scratch_dir("telemetry-e2e");
    let tel = telemetry();
    let server = Server::start_recorded(
        "127.0.0.1:0",
        ServerConfig {
            engine: EngineConfig::builder()
                .num_shards(2)
                .max_window(256)
                .eps(0.2)
                .persist_config(PersistConfig::new(&root).sync_policy(SyncPolicy::EveryBatch))
                .build(),
            read_timeout: None,
            // Zero threshold: every request is "slow", so the log-event
            // path (which names the trace id) fires deterministically.
            slow_request: Some(Duration::ZERO),
            ..Default::default()
        },
        Arc::clone(&tel),
    )
    .unwrap();
    let mut client = Client::connect_recorded(
        server.local_addr(),
        ClientConfig::default(),
        Arc::clone(&tel),
    )
    .unwrap();

    // One batch across both shards: keys 0..8, 5 bits each = 40 items.
    let batch: Vec<(u64, Bits)> = (0..8u64)
        .map(|k| (k, Bits::from([true, false, true, true, false])))
        .collect();
    client.ingest(IngestRequest::batch(batch)).unwrap();
    let ingest_trace = client.last_trace().expect("ingest was traced");
    // Barrier: the batch is applied and (EveryBatch) WAL-synced, so the
    // shard/wal spans of the ingest trace are in the ring.
    client.flush().unwrap();

    let est = client.query(3, 256).unwrap();
    assert_eq!(est.value, 3.0);
    let query_trace = client.last_trace().expect("query was traced");
    assert_ne!(ingest_trace, query_trace, "each request gets a fresh id");

    // The ingest trace reaches the bottom of the stack: with EveryBatch
    // persistence its tree carries WAL append and fsync spans alongside
    // the transport and engine stages.
    let ingest_spans = ring(&tel).trace(ingest_trace);
    let got = stages(&ingest_spans);
    for want in [
        Stage::Request,
        Stage::Wire,
        Stage::Dispatch,
        Stage::Queue,
        Stage::Shard,
        Stage::Wal,
        Stage::Fsync,
    ] {
        assert!(
            got.contains(&want),
            "ingest trace is missing {want:?}; tree:\n{}",
            ring(&tel).render_trace(ingest_trace)
        );
    }

    // The query trace: client root + wire + dispatch + queue + shard,
    // i.e. >= 4 distinct stages below the root. The query is answered
    // synchronously, so every child's duration fits inside the root's.
    let query_spans = ring(&tel).trace(query_trace);
    let got = stages(&query_spans);
    for want in [
        Stage::Request,
        Stage::Wire,
        Stage::Dispatch,
        Stage::Queue,
        Stage::Shard,
    ] {
        assert!(
            got.contains(&want),
            "query trace is missing {want:?}; tree:\n{}",
            ring(&tel).render_trace(query_trace)
        );
    }
    let query_root = query_spans
        .iter()
        .find(|s| s.id == ROOT_SPAN_ID)
        .expect("client root span");
    assert_eq!(query_root.stage, Stage::Request);
    assert_eq!(query_root.parent, 0, "the root parents to nothing");
    for child in query_spans.iter().filter(|s| s.id != ROOT_SPAN_ID) {
        assert!(
            child.dur_ns <= query_root.dur_ns,
            "{:?} span ({} ns) outlasted the request root ({} ns)",
            child.stage,
            child.dur_ns,
            query_root.dur_ns
        );
    }
    // Cross-process parent convention: both sides' top spans hang off
    // ROOT_SPAN_ID even though the server never saw the client's spans.
    let wire = query_spans.iter().find(|s| s.stage == Stage::Wire).unwrap();
    let dispatch = query_spans
        .iter()
        .find(|s| s.stage == Stage::Dispatch)
        .unwrap();
    assert_eq!(wire.parent, ROOT_SPAN_ID);
    assert_eq!(dispatch.parent, ROOT_SPAN_ID);
    // Queue and shard descend from the dispatch span.
    for stage in [Stage::Queue, Stage::Shard] {
        let s = query_spans.iter().find(|s| s.stage == stage).unwrap();
        assert_eq!(s.parent, dispatch.id, "{stage:?} parents to dispatch");
    }
    // The rendered tree nests: the root line unindented, children under.
    let rendered = ring(&tel).render_trace(query_trace);
    assert!(rendered.starts_with("request "), "{rendered}");
    assert!(rendered.contains("\n  wire "), "{rendered}");

    // Remote stats: the snapshot fetched over the wire reconciles with
    // itself — per-shard items sum to the global ingest counter, and
    // both equal what this test actually sent (40 items).
    let snap = client.stats().unwrap();
    let global = snap.counter("engine_items_ingested_total").unwrap();
    assert_eq!(global, 40);
    let per_shard: u64 = snap.shards.iter().map(|s| s.items).sum();
    assert_eq!(per_shard, global, "shard dimension must sum to the total");
    assert!(
        snap.shards.iter().filter(|s| s.items > 0).count() >= 2,
        "keys 0..8 must spread across both shards: {:?}",
        snap.shards
    );
    let per_family: u64 = snap.families.iter().sum();
    assert_eq!(per_family, global, "family dimension must sum to the total");
    assert!(snap.counter("net_slow_requests_total").unwrap() >= 2);

    // The slow-request log names the trace id, so an operator can go
    // from the log line straight to the span tree.
    let events = tel.1.drain();
    let slow: Vec<_> = events
        .iter()
        .filter(|e| e.name == "net.slow_request")
        .collect();
    assert!(
        slow.iter().any(|e| e
            .fields
            .iter()
            .any(|&(k, v)| k == "trace" && v == query_trace.0)),
        "no slow-request event names the query trace: {slow:?}"
    );

    client.shutdown_server().unwrap();
    server.wait();
    let _ = std::fs::remove_dir_all(&root);
}

/// Untraced operation stays untraced: a default client against a
/// recorded server allocates no trace ids (the wire header carries 0),
/// and the server records no spans for it.
#[test]
fn untraced_clients_leave_no_spans() {
    let tel = telemetry();
    let server = Server::start_recorded(
        "127.0.0.1:0",
        ServerConfig {
            engine: EngineConfig::builder()
                .num_shards(1)
                .max_window(64)
                .eps(0.25)
                .build(),
            read_timeout: None,
            slow_request: None,
            ..Default::default()
        },
        Arc::clone(&tel),
    )
    .unwrap();
    // Plain connect: NoopRecorder, trace_enabled() = false.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ingest(IngestRequest::of(1, [true, true])).unwrap();
    client.flush().unwrap();
    assert_eq!(client.query(1, 64).unwrap().value, 2.0);
    assert_eq!(client.last_trace(), None);
    assert_eq!(ring(&tel).total_recorded(), 0, "{:?}", ring(&tel).spans());
    // Metrics still flow — tracing and metrics gate independently.
    assert!(
        tel.metrics_snapshot()
            .unwrap()
            .counter("engine_items_ingested_total")
            == Some(2)
    );
}

/// Trace ids are allocated per attempt, so two consecutive traced
/// requests never share a trace (retries would otherwise merge two
/// wire exchanges under one tree).
#[test]
fn consecutive_requests_get_distinct_traces() {
    let tel = telemetry();
    let server = Server::start_recorded(
        "127.0.0.1:0",
        ServerConfig {
            engine: EngineConfig::builder()
                .num_shards(1)
                .max_window(64)
                .eps(0.25)
                .build(),
            read_timeout: None,
            slow_request: None,
            ..Default::default()
        },
        Arc::clone(&tel),
    )
    .unwrap();
    let mut client = Client::connect_recorded(
        server.local_addr(),
        ClientConfig::default(),
        Arc::clone(&tel),
    )
    .unwrap();
    let mut seen = HashSet::new();
    for _ in 0..5 {
        client.ping().unwrap();
        let id = client.last_trace().expect("ping was traced");
        assert_ne!(id, TraceId::NONE);
        assert!(seen.insert(id), "trace id reused: {id:?}");
    }
    // Every trace made it to the ring with its own request root.
    for id in &seen {
        let spans = ring(&tel).trace(*id);
        assert!(
            spans.iter().any(|s| s.id == ROOT_SPAN_ID),
            "trace {id:?} has no root span"
        );
    }
}
