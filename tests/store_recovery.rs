//! Crash-recovery proof for `waves-store`: kill the process at an
//! arbitrary byte offset in the WAL and the recovered engine must
//! answer every query exactly like an engine that never crashed and
//! ingested only the acknowledged prefix.
//!
//! "Kill at byte offset `k`" is simulated by copying a pristine,
//! fully-synced store directory and truncating the shard's WAL segment
//! to `k` bytes (a crash preserves an arbitrary prefix of the file);
//! the corruption sweep instead flips one bit at offset `k` (a torn
//! sector write). In both cases the acknowledged prefix is the set of
//! records that fully survive, and recovery must restore exactly those
//! — nothing more (no garbage decodes), nothing less (no acknowledged
//! batch lost).
//!
//! The workload comes from the shared `waves::dst` schedule builder
//! under one fixed seed — the seed is the only source of randomness,
//! so every assertion message names it and a failure reproduces from
//! this file alone.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use waves::dst::{run, Schedule, Step};
use waves::net::{Client, Server, ServerConfig};
use waves::obs::NoopRecorder;
use waves::store::{scratch_dir, ShardStore, Store};
use waves::{
    Bits, DetWave, Engine, EngineConfig, IngestRequest, PersistConfig, SyncPolicy, WaveError,
};

const WINDOW: u64 = 64;
const EPS: f64 = 0.25;
const KEYS: u64 = 5;
const SEED: u64 = 0xC0FFEE;

fn engine_cfg(root: &Path) -> EngineConfig {
    EngineConfig::builder()
        .num_shards(1)
        .max_window(WINDOW)
        .eps(EPS)
        .persist_config(PersistConfig::new(root).sync_policy(SyncPolicy::EveryBatch))
        .build()
}

/// The acknowledged batch sequence, extracted from a fixed-seed
/// schedule's ingest steps.
fn batches(n: usize) -> Vec<Vec<(u64, Vec<bool>)>> {
    let mut b = Schedule::builder(SEED)
        .num_keys(KEYS)
        .max_window(WINDOW)
        .eps(EPS);
    for _ in 0..n {
        b = b.ingest_random(3);
    }
    let out: Vec<_> = b
        .build()
        .steps
        .into_iter()
        .filter_map(|s| match s {
            Step::Ingest { batch, .. } => Some(batch),
            _ => None,
        })
        .collect();
    assert_eq!(out.len(), n);
    out
}

/// The single-threaded oracle over the first `acked` batches.
fn oracle(all: &[Vec<(u64, Vec<bool>)>], acked: usize) -> HashMap<u64, DetWave> {
    let mut keys: HashMap<u64, DetWave> = HashMap::new();
    for batch in &all[..acked] {
        for (key, bits) in batch {
            keys.entry(*key)
                .or_insert_with(|| DetWave::new(WINDOW, EPS).unwrap())
                .push_bits(bits);
        }
    }
    keys
}

/// Every query on the recovered engine equals the oracle, including
/// `UnknownKey` for keys whose only batches were lost to the crash.
fn assert_matches_oracle(
    engine: &Engine<DetWave>,
    all: &[Vec<(u64, Vec<bool>)>],
    acked: usize,
    ctx: &str,
) {
    let oracle = oracle(all, acked);
    for key in 0..KEYS {
        for window in [1u64, WINDOW / 3, WINDOW] {
            let got = engine.query(key, window);
            let want = match oracle.get(&key) {
                Some(wave) => wave.query(window),
                None => Err(WaveError::UnknownKey { key }),
            };
            assert_eq!(got, want, "{ctx}: key={key} window={window} seed={SEED}");
        }
    }
}

/// Build the pristine store: META + one shard whose WAL holds the
/// batches, every record fsynced. Returns the segment path and each
/// record's end offset (so a cut can be classified).
fn build_pristine(root: &Path, all: &[Vec<(u64, Vec<bool>)>]) -> (PathBuf, Vec<u64>) {
    let store = Store::open(root, 1).unwrap();
    let shard_dir = store.shard_dir(0);
    let mut shard = ShardStore::recover(&shard_dir, SyncPolicy::EveryBatch, 1 << 20, &NoopRecorder)
        .unwrap()
        .store;
    let mut ends = Vec::new();
    for batch in all {
        let packed: Vec<(u64, Bits)> = batch
            .iter()
            .map(|(k, bits)| (*k, Bits::from_bools(bits)))
            .collect();
        ends.push(shard.append_batch(&packed, &NoopRecorder).unwrap().offset);
    }
    let seg = shard_dir.join(format!("wal-{:016x}.log", shard.wal_seq()));
    assert_eq!(shard.wal_seq(), 0, "test assumes a single segment");
    (seg, ends)
}

/// Copy the two-level store tree (root/META + root/shard-0/*).
fn copy_store(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_store(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

#[test]
fn truncation_at_every_byte_offset_recovers_acknowledged_prefix() {
    let all = batches(20);
    let pristine = scratch_dir("recovery-trunc-pristine");
    let (seg, ends) = build_pristine(&pristine, &all);
    let rel_seg = seg.strip_prefix(&pristine).unwrap().to_path_buf();
    let total = fs::metadata(&seg).unwrap().len();
    assert_eq!(total, *ends.last().unwrap());

    let work = scratch_dir("recovery-trunc-work");
    for cut in 0..=total {
        copy_store(&pristine, &work);
        let f = fs::OpenOptions::new()
            .write(true)
            .open(work.join(&rel_seg))
            .unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let acked = ends.iter().filter(|&&e| e <= cut).count();
        let engine = Engine::new(engine_cfg(&work)).unwrap();
        assert_matches_oracle(&engine, &all, acked, &format!("cut={cut}"));
        drop(engine);
        fs::remove_dir_all(&work).unwrap();
    }
    fs::remove_dir_all(&pristine).unwrap();
}

#[test]
fn bit_flip_at_any_offset_never_decodes_garbage() {
    let all = batches(20);
    let pristine = scratch_dir("recovery-flip-pristine");
    let (seg, ends) = build_pristine(&pristine, &all);
    let rel_seg = seg.strip_prefix(&pristine).unwrap().to_path_buf();
    let total = fs::metadata(&seg).unwrap().len();
    // Record i spans (ends[i-1] | header)..ends[i]; a flip inside record
    // i invalidates it and everything after under prefix semantics. A
    // flip in the 16-byte segment header invalidates the whole segment.
    let record_start = |i: usize| -> u64 {
        if i == 0 {
            16
        } else {
            ends[i - 1]
        }
    };

    let work = scratch_dir("recovery-flip-work");
    for pos in (0..total).step_by(3) {
        copy_store(&pristine, &work);
        let path = work.join(&rel_seg);
        let mut bytes = fs::read(&path).unwrap();
        bytes[pos as usize] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let acked = if pos < 16 {
            0
        } else {
            (0..ends.len())
                .find(|&i| record_start(i) <= pos && pos < ends[i])
                .expect("record spans tile the segment body")
        };
        let engine = Engine::new(engine_cfg(&work)).unwrap();
        assert_matches_oracle(&engine, &all, acked, &format!("flip at {pos}"));
        drop(engine);
        fs::remove_dir_all(&work).unwrap();
    }
    fs::remove_dir_all(&pristine).unwrap();
}

/// Clean shutdown writes a final checkpoint; a reopened engine reports
/// the same per-shard population and answers identically.
#[test]
fn clean_shutdown_and_reopen_preserves_snapshot_counts() {
    let all = batches(40);
    let root = scratch_dir("recovery-clean");
    let cfg = EngineConfig::builder()
        .num_shards(2)
        .max_window(WINDOW)
        .eps(EPS)
        .persist_config(PersistConfig::new(&root).sync_policy(SyncPolicy::OnCheckpoint))
        .build();
    let before;
    {
        let engine = Engine::new(cfg.clone()).unwrap();
        for batch in &all {
            let packed: Vec<(u64, Bits)> = batch
                .iter()
                .map(|(k, bits)| (*k, Bits::from_bools(bits)))
                .collect();
            engine
                .ingest(IngestRequest::batch(packed).blocking(true))
                .unwrap();
        }
        engine.flush();
        before = engine.snapshot();
    }
    let engine = Engine::new(cfg).unwrap();
    let after = engine.snapshot();
    assert_eq!(after.keys(), before.keys());
    assert_eq!(after.entries(), before.entries());
    assert_eq!(after.resident_bytes(), before.resident_bytes());
    // The two-shard engine routes per key, but the per-key bit order is
    // the batch order, so the one-wave-per-key oracle still applies.
    let oracle = oracle(&all, all.len());
    for (key, wave) in &oracle {
        assert_eq!(
            engine.query(*key, WINDOW),
            wave.query(WINDOW),
            "clean reopen: key={key} seed={SEED}"
        );
    }
    fs::remove_dir_all(&root).unwrap();
}

/// The same crash/recovery contract, driven end-to-end through the
/// simulation harness: ingest, checkpoint, more ingest, a WAL kill at
/// half the segment, recovery, and full-window interrogation — the sim
/// computes the acknowledged prefix itself and checks every answer.
#[test]
fn dst_schedule_crash_recovery_matches_oracle() {
    let mut b = Schedule::builder(SEED ^ 1)
        .persist()
        .num_keys(KEYS)
        .max_window(WINDOW)
        .eps(EPS);
    for _ in 0..6 {
        b = b.ingest_random(4);
    }
    b = b.checkpoint();
    for _ in 0..4 {
        b = b.ingest_random(4);
    }
    let sched = b
        .crash(500)
        .query_all()
        .ingest_random(4)
        .flush()
        .query_all()
        .restart()
        .query_all()
        .build();
    let report = run(&sched).unwrap_or_else(|v| {
        panic!(
            "{v}\nreplay: rebuild with Schedule::builder({}) exactly as this test does",
            sched.seed
        )
    });
    assert!(report.checks >= 3 * KEYS, "too few oracle checks ran");
}

/// A restarted TCP server with the same `--persist-dir` serves the
/// state the previous incarnation acknowledged.
#[test]
fn server_restart_keeps_state() {
    let root = scratch_dir("recovery-server");
    let server_cfg = || ServerConfig {
        engine: EngineConfig::builder()
            .num_shards(2)
            .max_window(WINDOW)
            .eps(EPS)
            .persist_config(PersistConfig::new(&root).sync_policy(SyncPolicy::EveryBatch))
            .build(),
        read_timeout: None,
        ..Default::default()
    };
    let mut expected: HashMap<u64, f64> = HashMap::new();
    {
        let server = Server::start("127.0.0.1:0", server_cfg()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for key in 0..6u64 {
            let bits: Vec<bool> = (0..=key).map(|j| j % 2 == 0).collect();
            client.ingest(IngestRequest::of(key, &bits)).unwrap();
            expected.insert(key, bits.iter().filter(|&&b| b).count() as f64);
        }
        client.flush().unwrap();
        client.shutdown_server().unwrap();
        server.wait();
    }
    let server = Server::start("127.0.0.1:0", server_cfg()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for (key, want) in expected {
        let est = client.query(key, WINDOW).unwrap();
        assert_eq!(est.value, want, "key={key}");
        assert!(est.exact, "tiny windows stay exact");
    }
    client.shutdown_server().unwrap();
    server.wait();
    fs::remove_dir_all(&root).unwrap();
}
