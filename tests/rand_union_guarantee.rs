// Lockstep iteration over multiple parallel streams reads clearest indexed.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

//! Statistical validation of Theorem 5 / Lemma 3: per-instance success
//! probability > 2/3 and the (eps, delta) guarantee of the median
//! estimator, across party counts.

use rand::rngs::StdRng;
use rand::SeedableRng;
use waves::streamgen::{correlated_streams, disjoint_streams, positionwise_union};
use waves::{combine_instance, estimate_union, RandConfig, Referee, UnionParty};

fn exact_window_union(streams: &[Vec<bool>], n: u64) -> u64 {
    let u = positionwise_union(streams);
    u[u.len() - n as usize..].iter().filter(|&&b| b).count() as u64
}

#[test]
fn per_instance_success_rate_above_two_thirds() {
    // Lemma 3: a single instance is within eps with probability > 2/3.
    // Empirically at the paper's c = 36 the rate is much higher; assert
    // a conservative > 0.75 over 60 instances.
    let (n, eps, len, t) = (512u64, 0.3, 4_000usize, 3usize);
    let streams = correlated_streams(t, len, 0.4, 0.2, 5);
    let actual = exact_window_union(&streams, n) as f64;
    let mut ok = 0;
    let trials = 60;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let cfg = RandConfig::for_positions(n, eps, 0.3, &mut rng)
            .unwrap()
            .with_instances(1, &mut rng);
        let mut parties: Vec<UnionParty> = (0..t).map(|_| UnionParty::new(&cfg)).collect();
        for i in 0..len {
            for (j, p) in parties.iter_mut().enumerate() {
                p.push_bit(streams[j][i]);
            }
        }
        let s = (len as u64 + 1) - n;
        let reports: Vec<_> = parties
            .iter()
            .map(|p| {
                let mut msg = p.message(n).unwrap();
                msg.reports.remove(0)
            })
            .collect();
        let refs: Vec<&_> = reports.iter().collect();
        let est = combine_instance(&cfg, 0, &refs, s);
        if (est - actual).abs() / actual <= eps {
            ok += 1;
        }
    }
    assert!(
        ok as f64 / trials as f64 > 0.75,
        "only {ok}/{trials} instances within eps"
    );
}

#[test]
fn median_estimator_beats_delta() {
    // With delta = 0.05 every one of 20 independent runs should succeed
    // (expected failures = 1, P[>=3 fail] tiny; assert <= 2).
    let (n, eps, delta, len, t) = (256u64, 0.25, 0.05, 3_000usize, 4usize);
    let mut failures = 0;
    for seed in 0..20u64 {
        let streams = correlated_streams(t, len, 0.35, 0.25, 900 + seed);
        let actual = exact_window_union(&streams, n) as f64;
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandConfig::for_positions(n, eps, delta, &mut rng).unwrap();
        let mut parties: Vec<UnionParty> = (0..t).map(|_| UnionParty::new(&cfg)).collect();
        for i in 0..len {
            for (j, p) in parties.iter_mut().enumerate() {
                p.push_bit(streams[j][i]);
            }
        }
        let referee = Referee::new(cfg);
        let est = estimate_union(&referee, &parties, n).unwrap();
        if (est - actual).abs() / actual > eps {
            failures += 1;
        }
    }
    assert!(failures <= 2, "{failures}/20 runs outside eps");
}

#[test]
fn guarantee_independent_of_party_count() {
    let (n, eps, len) = (256u64, 0.3, 3_000usize);
    for &t in &[2usize, 4, 8, 16] {
        let streams = disjoint_streams(t, len, 0.4, 31 + t as u64);
        let actual = exact_window_union(&streams, n) as f64;
        let mut rng = StdRng::seed_from_u64(7 + t as u64);
        let cfg = RandConfig::for_positions(n, eps, 0.05, &mut rng).unwrap();
        let mut parties: Vec<UnionParty> = (0..t).map(|_| UnionParty::new(&cfg)).collect();
        for i in 0..len {
            for (j, p) in parties.iter_mut().enumerate() {
                p.push_bit(streams[j][i]);
            }
        }
        let referee = Referee::new(cfg);
        let est = estimate_union(&referee, &parties, n).unwrap();
        assert!(
            (est - actual).abs() / actual.max(1.0) <= eps,
            "t={t}: est {est} actual {actual}"
        );
    }
}

#[test]
fn window_sizes_smaller_than_max() {
    let (n_max, eps, len, t) = (1_024u64, 0.25, 8_000usize, 3usize);
    let streams = correlated_streams(t, len, 0.3, 0.3, 44);
    let mut rng = StdRng::seed_from_u64(9);
    let cfg = RandConfig::for_positions(n_max, eps, 0.05, &mut rng).unwrap();
    let mut parties: Vec<UnionParty> = (0..t).map(|_| UnionParty::new(&cfg)).collect();
    for i in 0..len {
        for (j, p) in parties.iter_mut().enumerate() {
            p.push_bit(streams[j][i]);
        }
    }
    let referee = Referee::new(cfg);
    for n in [64u64, 333, 1_024] {
        let actual = exact_window_union(&streams, n) as f64;
        let est = estimate_union(&referee, &parties, n).unwrap();
        assert!(
            (est - actual).abs() / actual.max(1.0) <= eps,
            "n={n}: est {est} actual {actual}"
        );
    }
    // Windows beyond N are rejected.
    assert!(estimate_union(&referee, &parties, 1_025).is_err());
}
