// Lockstep iteration over multiple parallel streams reads clearest indexed.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

//! Integration: deterministic wave and EH baseline against the exact
//! oracle, across workload families (Theorem 1 end-to-end).

use waves::streamgen::{AlternatingRuns, Bernoulli, BitSource, Bursty, Periodic};
use waves::{BitSynopsis, DetWave, EhCount, ExactCount, XuCount};

fn check_synopsis<S: BitSynopsis>(
    synopsis: &mut S,
    source: &mut dyn FnMut() -> bool,
    eps: f64,
    n_max: u64,
    steps: u64,
    windows: &[u64],
) {
    let mut oracle = ExactCount::new(n_max);
    for step in 1..=steps {
        let b = source();
        synopsis.push_bit(b);
        oracle.push_bit(b);
        if step % 101 == 0 || step == steps {
            for &n in windows {
                let actual = oracle.query(n);
                let est = synopsis.query_window(n).expect("valid window");
                assert!(
                    est.brackets(actual),
                    "{} step {step} n {n}: [{}, {}] vs {actual}",
                    synopsis.name(),
                    est.lo,
                    est.hi
                );
                assert!(
                    est.relative_error(actual) <= eps + 1e-9,
                    "{} step {step} n {n}: actual {actual} est {}",
                    synopsis.name(),
                    est.value
                );
            }
        }
    }
}

fn workloads(seed: u64) -> Vec<(&'static str, Box<dyn FnMut() -> bool>)> {
    let mut bern = Bernoulli::new(0.35, seed);
    let mut bursty = Bursty::new(200.0, seed + 1);
    let mut periodic = Periodic::new(7, 13);
    let mut runs = AlternatingRuns::new(60.0, seed + 2);
    vec![
        ("bernoulli", Box::new(move || bern.next_bit())),
        ("bursty", Box::new(move || bursty.next_bit())),
        ("periodic", Box::new(move || periodic.next_bit())),
        ("runs", Box::new(move || runs.next_bit())),
    ]
}

#[test]
fn det_wave_all_workloads() {
    let (eps, n_max) = (0.1, 2_048u64);
    for (name, mut source) in workloads(11) {
        let mut wave = DetWave::new(n_max, eps).unwrap();
        check_synopsis(
            &mut wave,
            &mut source,
            eps,
            n_max,
            30_000,
            &[1, 64, 777, 2_048],
        );
        println!("det-wave ok on {name}");
    }
}

#[test]
fn eh_all_workloads() {
    let (eps, n_max) = (0.1, 2_048u64);
    for (name, mut source) in workloads(13) {
        let mut eh = EhCount::new(n_max, eps).unwrap();
        check_synopsis(
            &mut eh,
            &mut source,
            eps,
            n_max,
            30_000,
            &[1, 64, 777, 2_048],
        );
        println!("eh ok on {name}");
    }
}

/// Xu's boosted basic counting (arXiv:1312.0042), the second baseline,
/// under the same cross-agreement oracle as the wave and the EH: every
/// estimate brackets the exact count and stays within ε across all
/// four workload families.
#[test]
fn xu_all_workloads() {
    let (eps, n_max) = (0.1, 2_048u64);
    for (name, mut source) in workloads(17) {
        let mut xu = XuCount::new(n_max, eps).unwrap();
        check_synopsis(
            &mut xu,
            &mut source,
            eps,
            n_max,
            30_000,
            &[1, 64, 777, 2_048],
        );
        println!("xu ok on {name}");
    }
}

#[test]
fn wave_beats_eh_on_worst_case_structural_cost() {
    // Theorem 1's structural claim: the wave touches exactly one level
    // per arrival while the EH cascades through O(log eps N) classes.
    let (eps, n_max) = (0.01, 1u64 << 20);
    let mut eh = EhCount::new(n_max, eps).unwrap();
    for _ in 0..(1 << 18) {
        eh.push_bit(true);
    }
    assert!(
        eh.max_cascade() >= 8,
        "expected deep cascades, got {}",
        eh.max_cascade()
    );
    // The wave's analogous figure is identically 1 by construction (one
    // queue touched per arrival): nothing to measure, but the query
    // interfaces agree.
    let mut w = DetWave::new(n_max, eps).unwrap();
    for _ in 0..(1 << 18) {
        w.push_bit(true);
    }
    let e = w.query_max();
    assert!(e.relative_error(n_max.min(1 << 18)) <= eps);
}

#[test]
fn space_well_below_exact_window() {
    let (eps, n_max) = (0.05, 1u64 << 16);
    let mut wave = DetWave::new(n_max, eps).unwrap();
    let mut bern = Bernoulli::new(0.5, 3);
    for _ in 0..(1 << 17) {
        wave.push_bit(bern.next_bit());
    }
    let bits = wave.space_report().synopsis_bits;
    assert!(
        bits < n_max / 4,
        "synopsis {bits} bits vs window {n_max} bits"
    );
}
