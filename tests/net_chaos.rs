//! Fault-injection: a client facing a sick network must degrade to
//! typed errors — `WaveError::Io` for closed/corrupt streams,
//! `WaveError::Timeout` for stalls — inside its configured budget.
//! Never a hang, never a panic, never a silently wrong answer.

use std::time::{Duration, Instant};
use waves::net::{ChaosProxy, Client, ClientConfig, Fault, Server, ServerConfig};
use waves::{EngineConfig, WaveError};

/// Tight budgets so the whole suite stays fast; the assertions give
/// each op ~10x headroom before declaring a hang.
fn fast_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        retries: 1,
        backoff: Duration::from_millis(10),
    }
}

fn start_server() -> Server {
    Server::start(
        "127.0.0.1:0",
        ServerConfig {
            engine: EngineConfig::builder()
                .num_shards(1)
                .max_window(64)
                .eps(0.25)
                .build(),
            read_timeout: None,
        },
    )
    .unwrap()
}

/// Hard wall-clock ceiling for every faulty exchange: generous against
/// scheduler noise, far below anything a human would call a hang.
const HANG_BUDGET: Duration = Duration::from_secs(5);

#[test]
fn control_passthrough_proxy_is_transparent() {
    let server = start_server();
    let proxy = ChaosProxy::start(server.local_addr(), Fault::None).unwrap();
    let mut client = Client::connect_with(proxy.local_addr(), fast_cfg()).unwrap();
    client.ingest(1, &[true, true, false]).unwrap();
    client.flush().unwrap();
    assert_eq!(client.query(1, 64).unwrap().value, 2.0);
    assert!(proxy.bytes_forwarded() > 0);
}

#[test]
fn dropped_connections_surface_typed_io_errors() {
    let server = start_server();
    let proxy = ChaosProxy::start(server.local_addr(), Fault::DropConnection).unwrap();
    let t0 = Instant::now();
    // Either connect itself fails, or the first request does — both
    // must be a typed error, quickly.
    let outcome =
        Client::connect_with(proxy.local_addr(), fast_cfg()).and_then(|mut client| client.ping());
    let err = outcome.unwrap_err();
    assert!(
        matches!(err, WaveError::Io(_) | WaveError::Timeout { .. }),
        "{err:?}"
    );
    assert!(t0.elapsed() < HANG_BUDGET, "took {:?}", t0.elapsed());
    drop(server);
}

#[test]
fn stalled_replies_surface_timeout_within_budget() {
    let server = start_server();
    // Delay longer than the client's read timeout: the reply exists but
    // arrives too late.
    let proxy =
        ChaosProxy::start(server.local_addr(), Fault::Delay(Duration::from_secs(2))).unwrap();
    let cfg = ClientConfig {
        retries: 0,
        ..fast_cfg()
    };
    let mut client = Client::connect_with(proxy.local_addr(), cfg).unwrap();
    let t0 = Instant::now();
    let err = client.ping().unwrap_err();
    match err {
        WaveError::Timeout { op, millis } => {
            assert_eq!(op, "read");
            assert_eq!(millis, 300);
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(t0.elapsed() < HANG_BUDGET, "took {:?}", t0.elapsed());
}

#[test]
fn truncated_replies_surface_io_not_hang() {
    let server = start_server();
    // Let the reply's first few bytes through, then cut the stream: the
    // client sees EOF mid-frame.
    let proxy = ChaosProxy::start(server.local_addr(), Fault::TruncateAfter(3)).unwrap();
    let mut client = Client::connect_with(
        proxy.local_addr(),
        ClientConfig {
            retries: 0,
            ..fast_cfg()
        },
    )
    .unwrap();
    let t0 = Instant::now();
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, WaveError::Io(_) | WaveError::Timeout { .. }),
        "{err:?}"
    );
    assert!(t0.elapsed() < HANG_BUDGET, "took {:?}", t0.elapsed());
}

#[test]
fn corrupted_header_surfaces_invalid_data() {
    let server = start_server();
    // Flip the magic byte of the server's reply: framing is broken and
    // the client must call it out as data corruption.
    let proxy = ChaosProxy::start(server.local_addr(), Fault::CorruptByteAt(0)).unwrap();
    let mut client = Client::connect_with(
        proxy.local_addr(),
        ClientConfig {
            retries: 0,
            ..fast_cfg()
        },
    )
    .unwrap();
    let t0 = Instant::now();
    let err = client.ping().unwrap_err();
    match &err {
        WaveError::Io(io) => {
            assert_eq!(io.kind(), std::io::ErrorKind::InvalidData, "{io}");
        }
        other => panic!("expected Io(InvalidData), got {other:?}"),
    }
    // The source chain reaches the underlying io::Error.
    assert!(std::error::Error::source(&err).is_some());
    assert!(t0.elapsed() < HANG_BUDGET, "took {:?}", t0.elapsed());
}

#[test]
fn corrupted_payload_surfaces_invalid_data() {
    let server = start_server();
    // Corrupt stream offset 12: the ingest's 8-byte Ok reply passes
    // clean (offsets 0..8), and the corruption lands inside the query
    // reply's frame — breaking its header length field or its payload.
    let proxy = ChaosProxy::start(server.local_addr(), Fault::CorruptByteAt(12)).unwrap();
    let mut client = Client::connect_with(
        proxy.local_addr(),
        ClientConfig {
            retries: 0,
            ..fast_cfg()
        },
    )
    .unwrap();
    client.ingest(5, &[true, true, true]).unwrap();
    // Same-key query rides the same shard FIFO, so no flush needed (and
    // a flush reply would shift the corrupted offset).
    // The exchange must not hang, and no wrong estimate may pass
    // silently: 3 bits were pushed, so a successful decode must say 3
    // (corrupting payload byte 12 flips the estimate's value bits,
    // which the typed-error path catches as InvalidData at the header,
    // or — for payload corruption — would change `value`; the codec's
    // trailing-bytes and flag checks bound what slips through).
    let t0 = Instant::now();
    match client.query(5, 64) {
        Ok(est) => assert_eq!(est.value, 3.0, "corruption produced a wrong answer"),
        Err(err) => assert!(
            matches!(err, WaveError::Io(_) | WaveError::Timeout { .. }),
            "{err:?}"
        ),
    }
    assert!(t0.elapsed() < HANG_BUDGET, "took {:?}", t0.elapsed());
}

/// The retry machinery must actually recover when the network heals:
/// kill the first connection mid-session, and the idempotent query
/// reconnects (straight to the server this time) and succeeds.
#[test]
fn idempotent_requests_retry_after_reset() {
    let server = start_server();
    let mut client = Client::connect_with(server.local_addr(), fast_cfg()).unwrap();
    client.ingest(2, &[true, false, true, true]).unwrap();
    client.flush().unwrap();
    // Shut the server-side sockets down under the client: its next read
    // hits EOF, a retryable condition, and the client reconnects.
    server.shutdown();
    // The server is gone entirely, so the retry fails too — but as a
    // typed error within budget, proving retries are bounded.
    let t0 = Instant::now();
    let err = client.query(2, 64).unwrap_err();
    assert!(
        matches!(err, WaveError::Io(_) | WaveError::Timeout { .. }),
        "{err:?}"
    );
    assert!(t0.elapsed() < HANG_BUDGET, "took {:?}", t0.elapsed());
}

/// A client with a generous budget pointed at a fresh server after a
/// failed session: reconnect-and-retry succeeds end to end.
#[test]
fn fresh_connection_after_failure_works() {
    let server = start_server();
    let addr = server.local_addr();
    {
        let proxy = ChaosProxy::start(addr, Fault::DropConnection).unwrap();
        let _ = Client::connect_with(proxy.local_addr(), fast_cfg()).and_then(|mut c| c.ping());
        // Proxy drops here; the server itself was never touched.
    }
    let mut client = Client::connect_with(addr, fast_cfg()).unwrap();
    client.ping().unwrap();
    client.ingest(3, &[true]).unwrap();
    client.flush().unwrap();
    assert_eq!(client.query(3, 64).unwrap().value, 1.0);
}
