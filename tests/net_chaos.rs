//! Fault-injection: a client facing a sick network must degrade to
//! typed errors — `WaveError::Io` for closed/corrupt streams,
//! `WaveError::Timeout` for stalls — inside its configured budget.
//! Never a hang, never a panic, never a silently wrong answer.
//!
//! The fault scenarios are driven through the shared `waves::dst`
//! schedule builder: the simulator runs a real server behind a real
//! `ChaosProxy`, asserts the chaos contract against its oracles (a
//! correct answer or a typed error within the hang budget), and a
//! violation panics with the schedule seed. The remaining hand-written
//! tests pin RNG-free specifics the sim deliberately leaves loose:
//! exact timeout metadata and the retry machinery.

use std::time::{Duration, Instant};
use waves::dst::{run, FaultSpec, Schedule};
use waves::net::{
    ChaosProxy, Client, ClientConfig, Fault, RetryPolicy, Server, ServerConfig, SynopsisKind,
};
use waves::{DetWave, EngineConfig, IngestRequest, WaveError};

/// Tight budgets so the whole suite stays fast; the assertions give
/// each op ~10x headroom before declaring a hang.
fn fast_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        retry: RetryPolicy {
            retries: 1,
            backoff: Duration::from_millis(10),
        },
    }
}

fn start_server() -> Server {
    Server::start(
        "127.0.0.1:0",
        ServerConfig {
            engine: EngineConfig::builder()
                .num_shards(1)
                .max_window(64)
                .eps(0.25)
                .build(),
            read_timeout: None,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Hard wall-clock ceiling for every faulty exchange: generous against
/// scheduler noise, far below anything a human would call a hang.
const HANG_BUDGET: Duration = Duration::from_secs(5);

/// Run a schedule, panicking with the replay seed on any violation.
fn check(sched: &Schedule) {
    run(sched).unwrap_or_else(|v| {
        panic!(
            "{v}\nreplay: rebuild with Schedule::builder({}) exactly as this test does",
            sched.seed
        )
    });
}

#[test]
fn control_passthrough_proxy_is_transparent() {
    let server = start_server();
    let proxy = ChaosProxy::start(server.local_addr(), Fault::None).unwrap();
    let mut client = Client::connect_with(proxy.local_addr(), fast_cfg()).unwrap();
    client
        .ingest(IngestRequest::of(1, [true, true, false]))
        .unwrap();
    client.flush().unwrap();
    assert_eq!(client.query(1, 64).unwrap().value, 2.0);
    assert!(proxy.bytes_forwarded() > 0);
}

/// Dropped, stalled, truncated, and corrupted replies, each as one
/// schedule: the sim's chaos step demands a correct answer or a typed
/// error within its hang budget — and because the answer is checked
/// against the oracle, "wrong answer decoded from a corrupt frame"
/// fails loudly (the bug class that forced the wire-v2 CRC trailer).
#[test]
fn chaos_faults_surface_typed_errors_never_wrong_answers() {
    let faults = [
        FaultSpec::DropConnection,
        FaultSpec::DelayMs(120),
        FaultSpec::TruncateAfter(3),
        FaultSpec::CorruptByteAt(0),  // reply frame magic
        FaultSpec::CorruptByteAt(12), // inside the query reply's frame
    ];
    for (i, fault) in faults.into_iter().enumerate() {
        let sched = Schedule::builder(7000 + i as u64)
            .num_keys(3)
            .ingest_random(5)
            .flush()
            .chaos(fault, 1, 64)
            .query_all()
            .build();
        check(&sched);
    }
}

/// Sweep the corrupted byte across the whole reply stream — headers,
/// payloads, CRC trailers, and offsets beyond the reply (which leave
/// the exchange intact). No offset may produce a wrong answer.
#[test]
fn corruption_at_any_reply_offset_is_never_a_wrong_answer() {
    for off in 0..48usize {
        let sched = Schedule::builder(8000 + off as u64)
            .num_keys(2)
            .ingest_random(4)
            .chaos(FaultSpec::CorruptByteAt(off), 0, 32)
            .query_all()
            .build();
        check(&sched);
    }
}

#[test]
fn stalled_replies_surface_timeout_within_budget() {
    let server = start_server();
    // Delay longer than the client's read timeout: the reply exists but
    // arrives too late. Kept hand-written for the exact metadata — the
    // sim only demands "some typed error".
    let proxy =
        ChaosProxy::start(server.local_addr(), Fault::Delay(Duration::from_secs(2))).unwrap();
    let cfg = ClientConfig {
        retry: RetryPolicy::none(),
        ..fast_cfg()
    };
    let mut client = Client::connect_with(proxy.local_addr(), cfg).unwrap();
    let t0 = Instant::now();
    let err = client.ping().unwrap_err();
    match err {
        WaveError::Timeout { op, millis } => {
            assert_eq!(op, "read");
            assert_eq!(millis, 300);
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(t0.elapsed() < HANG_BUDGET, "took {:?}", t0.elapsed());
}

/// A corrupt reply must be called out as data corruption, with the
/// source chain reaching the underlying `io::Error`.
#[test]
fn corrupted_reply_surfaces_invalid_data() {
    let server = start_server();
    let proxy = ChaosProxy::start(server.local_addr(), Fault::CorruptByteAt(28)).unwrap();
    let mut client = Client::connect_with(
        proxy.local_addr(),
        ClientConfig {
            retry: RetryPolicy::none(),
            ..fast_cfg()
        },
    )
    .unwrap();
    // The ingest's Ok reply occupies stream offsets 0..28 (24-byte
    // header + 4-byte CRC trailer); offset 28 is the first byte of the
    // query reply's frame, so the flip breaks its magic.
    client
        .ingest(IngestRequest::of(5, [true, true, true]))
        .unwrap();
    let t0 = Instant::now();
    let err = client.query(5, 64).unwrap_err();
    match &err {
        WaveError::Io(io) => {
            assert_eq!(io.kind(), std::io::ErrorKind::InvalidData, "{io}");
        }
        other => panic!("expected Io(InvalidData), got {other:?}"),
    }
    // The source chain reaches the underlying io::Error.
    assert!(std::error::Error::source(&err).is_some());
    assert!(t0.elapsed() < HANG_BUDGET, "took {:?}", t0.elapsed());
}

/// The retry machinery must actually recover when the network heals:
/// kill the first connection mid-session, and the idempotent query
/// reconnects (straight to the server this time) and succeeds.
#[test]
fn idempotent_requests_retry_after_reset() {
    let server = start_server();
    let mut client = Client::connect_with(server.local_addr(), fast_cfg()).unwrap();
    client
        .ingest(IngestRequest::of(2, [true, false, true, true]))
        .unwrap();
    client.flush().unwrap();
    // Shut the server-side sockets down under the client: its next read
    // hits EOF, a retryable condition, and the client reconnects.
    server.shutdown();
    // The server is gone entirely, so the retry fails too — but as a
    // typed error within budget, proving retries are bounded.
    let t0 = Instant::now();
    let err = client.query(2, 64).unwrap_err();
    assert!(
        matches!(err, WaveError::Io(_) | WaveError::Timeout { .. }),
        "{err:?}"
    );
    assert!(t0.elapsed() < HANG_BUDGET, "took {:?}", t0.elapsed());
}

/// A `DetWave` holding `ones` distinct 1-bits, for hand-rolled
/// `PUSH_DELTA` payloads with a known combine answer.
fn wave_with(ones: u64) -> DetWave {
    let mut w = DetWave::new(64, 0.25).unwrap();
    for _ in 0..ones {
        w.push_bit(true);
    }
    w
}

/// Wire v7 dedup under reordering: once the referee holds seq 2 for a
/// party, a late seq-1 delta and a replayed seq-2 delta (even with
/// different bytes) are answered `Ok` without touching state — the
/// continuous answer never rolls backwards. A genuinely newer seq still
/// advances it, proving the party isn't wedged.
#[test]
fn reordered_and_duplicate_push_deltas_never_roll_the_referee_back() {
    let server = start_server();
    let mut client = Client::connect_with(server.local_addr(), fast_cfg()).unwrap();
    let newer = wave_with(5);
    let older = wave_with(1);
    client
        .push_delta(0, 2, 0.0, SynopsisKind::DetWave, newer.encode())
        .unwrap();
    let installed = client.combine(64).unwrap();
    assert_eq!(installed.value, newer.query_max().value);
    // Late reordered delta: lower seq, different bytes — acked, ignored.
    client
        .push_delta(0, 1, 0.0, SynopsisKind::DetWave, older.encode())
        .unwrap();
    assert_eq!(
        client.combine(64).unwrap(),
        installed,
        "seq 1 rolled back seq 2"
    );
    // Replay of the current seq with different bytes: also a no-op.
    client
        .push_delta(0, 2, 0.0, SynopsisKind::DetWave, older.encode())
        .unwrap();
    assert_eq!(
        client.combine(64).unwrap(),
        installed,
        "replayed seq mutated state"
    );
    // A genuinely newer delta still advances the answer.
    client
        .push_delta(0, 3, 0.0, SynopsisKind::DetWave, older.encode())
        .unwrap();
    assert_eq!(client.combine(64).unwrap().value, older.query_max().value);
}

/// A stalled `PUSH_DELTA` ack is bounded staleness, never a wrong
/// answer: the delta's forward leg reaches the server (the Delay fault
/// stalls only server→client bytes), the pusher times out and retries
/// through the same sick proxy, and seq dedup collapses both attempts
/// into at most one install. The referee's answer is the old value or
/// the new one — nothing else — and an idempotent direct re-send of the
/// same seq repairs the monitor to exactly the new answer.
#[test]
fn delayed_push_delta_ack_is_bounded_staleness_never_a_wrong_answer() {
    let server = start_server();
    let old = wave_with(2);
    let new = wave_with(7);
    let mut direct = Client::connect_with(server.local_addr(), fast_cfg()).unwrap();
    direct
        .push_delta(0, 1, 0.0, SynopsisKind::DetWave, old.encode())
        .unwrap();
    assert_eq!(direct.combine(64).unwrap().value, old.query_max().value);
    // Ship seq 2 through a proxy that delays every reply past the read
    // timeout: both the first attempt and the retry fail with a typed
    // error, inside the hang budget.
    let proxy =
        ChaosProxy::start(server.local_addr(), Fault::Delay(Duration::from_secs(2))).unwrap();
    let mut pusher = Client::connect_with(proxy.local_addr(), fast_cfg()).unwrap();
    let t0 = Instant::now();
    let err = pusher
        .push_delta(0, 2, 0.0, SynopsisKind::DetWave, new.encode())
        .unwrap_err();
    assert!(
        matches!(err, WaveError::Timeout { .. } | WaveError::Io(_)),
        "{err:?}"
    );
    assert!(t0.elapsed() < HANG_BUDGET, "took {:?}", t0.elapsed());
    // The referee is stale or current — never corrupt, never rolled back.
    let answer = direct.combine(64).unwrap().value;
    assert!(
        answer == old.query_max().value || answer == new.query_max().value,
        "combine {answer} is neither the old nor the new answer"
    );
    // Repair: the same seq over a healthy path. If a timed-out attempt
    // already installed it this is a dedup no-op; either way the answer
    // is now exactly the new one.
    direct
        .push_delta(0, 2, 0.0, SynopsisKind::DetWave, new.encode())
        .unwrap();
    assert_eq!(direct.combine(64).unwrap().value, new.query_max().value);
}

/// A client with a generous budget pointed at a fresh server after a
/// failed session: reconnect-and-retry succeeds end to end.
#[test]
fn fresh_connection_after_failure_works() {
    let server = start_server();
    let addr = server.local_addr();
    {
        let proxy = ChaosProxy::start(addr, Fault::DropConnection).unwrap();
        let _ = Client::connect_with(proxy.local_addr(), fast_cfg()).and_then(|mut c| c.ping());
        // Proxy drops here; the server itself was never touched.
    }
    let mut client = Client::connect_with(addr, fast_cfg()).unwrap();
    client.ping().unwrap();
    client.ingest(IngestRequest::of(3, [true])).unwrap();
    client.flush().unwrap();
    assert_eq!(client.query(3, 64).unwrap().value, 1.0);
}
