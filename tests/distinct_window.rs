// Lockstep iteration over multiple parallel streams reads clearest indexed.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

//! Integration: distinct-values counting in sliding windows, single and
//! distributed, with predicates (Theorem 6 and Section 5 extensions).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use waves::streamgen::{overlapping_value_streams, ValueSource, ZipfValues};
use waves::{estimate_distinct, DistinctParty, DistinctReferee, RandConfig};

/// Exact distinct count on the shared axis: a value is in the window if
/// its most recent occurrence (across parties) is.
fn exact_distinct(streams: &[Vec<u64>], n: u64) -> u64 {
    let len = streams[0].len();
    let mut last: HashMap<u64, usize> = HashMap::new();
    for i in 0..len {
        for s in streams {
            last.insert(s[i], i);
        }
    }
    let s_start = len.saturating_sub(n as usize);
    last.values().filter(|&&i| i >= s_start).count() as u64
}

#[test]
fn single_stream_zipf_within_eps() {
    let (n, eps, delta) = (1_024u64, 0.2, 0.05);
    let domain = 1u64 << 16;
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = RandConfig::for_values(n, domain - 1, eps, delta, &mut rng).unwrap();
    let mut p = DistinctParty::new(&cfg);
    let mut gen = ZipfValues::new(domain as usize, 1.0, 17);
    let stream: Vec<u64> = (0..10_000).map(|_| gen.next_value()).collect();
    for &v in &stream {
        p.push_value(v);
    }
    let actual = exact_distinct(&[stream], n) as f64;
    let referee = DistinctReferee::new(cfg);
    let est = estimate_distinct(&referee, &[p], n).unwrap();
    assert!(
        (est - actual).abs() / actual <= eps,
        "est {est} actual {actual}"
    );
}

#[test]
fn distributed_union_of_values_within_eps() {
    let (n, eps, delta, t) = (512u64, 0.2, 0.05, 4usize);
    let domain = 1u64 << 14;
    let streams = overlapping_value_streams(t, 6_000, domain, 0.25, 41);
    let mut rng = StdRng::seed_from_u64(6);
    let cfg = RandConfig::for_values(n, domain - 1, eps, delta, &mut rng).unwrap();
    let mut parties: Vec<DistinctParty> = (0..t).map(|_| DistinctParty::new(&cfg)).collect();
    for i in 0..6_000 {
        for (j, p) in parties.iter_mut().enumerate() {
            p.push_value(streams[j][i]);
        }
    }
    let actual = exact_distinct(&streams, n) as f64;
    let referee = DistinctReferee::new(cfg);
    let est = estimate_distinct(&referee, &parties, n).unwrap();
    assert!(
        (est - actual).abs() / actual <= eps,
        "est {est} actual {actual}"
    );
}

#[test]
fn predicates_at_query_time() {
    let (n, eps, delta) = (2_048u64, 0.2, 0.05);
    let domain = 1u64 << 16;
    let mut rng = StdRng::seed_from_u64(12);
    let cfg = RandConfig::for_values(n, domain - 1, eps, delta, &mut rng).unwrap();
    let mut p = DistinctParty::new(&cfg);
    let mut gen = ZipfValues::new(domain as usize, 0.8, 19);
    let stream: Vec<u64> = (0..15_000).map(|_| gen.next_value()).collect();
    for &v in &stream {
        p.push_value(v);
    }
    let referee = DistinctReferee::new(cfg);
    let msg = vec![p.message(n).unwrap()];
    let s = (p.pos() + 1) - n;

    // Truth per predicate.
    let mut last: HashMap<u64, u64> = HashMap::new();
    for (i, &v) in stream.iter().enumerate() {
        last.insert(v, i as u64 + 1);
    }
    let preds: Vec<(&str, Box<dyn Fn(u64) -> bool>)> = vec![
        ("even", Box::new(|v| v % 2 == 0)),
        ("low-quarter", Box::new(move |v| v < domain / 4)),
        ("mod-3", Box::new(|v| v % 3 == 0)),
    ];
    for (name, pred) in &preds {
        let actual = last.iter().filter(|&(&v, &p)| p >= s && pred(v)).count() as f64;
        let est = referee.estimate_predicate(&msg, s, Some(pred.as_ref()));
        let rel = (est - actual).abs() / actual.max(1.0);
        // Selectivity >= 1/4 here; allow the 1/alpha-degraded bound.
        assert!(rel <= 4.0 * eps, "{name}: est {est} actual {actual}");
    }
}

#[test]
fn window_tracks_value_recency_not_first_seen() {
    let (n, eps, delta) = (16u64, 0.3, 0.2);
    let mut rng = StdRng::seed_from_u64(15);
    let cfg = RandConfig::for_values(n, 255, eps, delta, &mut rng).unwrap();
    let mut p = DistinctParty::new(&cfg);
    // Values 0..8 early, then only value 9 for 32 steps, then 0 again.
    for v in 0..8u64 {
        p.push_value(v);
    }
    for _ in 0..32 {
        p.push_value(9);
    }
    p.push_value(0);
    let referee = DistinctReferee::new(cfg);
    let est = estimate_distinct(&referee, &[p], n).unwrap();
    // In the last 16 positions: 9 and the refreshed 0.
    assert_eq!(est, 2.0);
}
