//! Integration: continuous-monitoring push mode over a real TCP
//! server, differentially against an in-process pull referee on the
//! identical seeded stream.
//!
//! The push referee (the server's synopsis map, fed by `PUSH_DELTA`
//! frames only on drift-threshold crossings) must agree with the pull
//! reference (a fresh combine over every party's live wave) within the
//! ε-slack pool at *every* step — not just at the end — and the push
//! design must ship fewer bytes than pull fan-out would on a bursty
//! workload.

use std::sync::Arc;
use waves::net::{Client, Frame, Server, ServerConfig, SynopsisKind, WireCodec};
use waves::obs::{MetricId, MetricsRegistry};
use waves::streamgen::KeyedWorkload;
use waves::{combine_estimates, EngineConfig, ExactCount, MonitorConfig, PushParty};

const WINDOW: u64 = 128;
const EPS: f64 = 0.2;
const SPLIT: f64 = 0.5;
const PARTIES: u64 = 3;
const EVENTS: usize = 1_200;

fn start_referee(registry: &Arc<MetricsRegistry>) -> Server<MetricsRegistry> {
    Server::start_recorded(
        "127.0.0.1:0",
        ServerConfig {
            engine: EngineConfig::builder()
                .num_shards(1)
                .max_window(WINDOW)
                .eps(EPS)
                .build(),
            read_timeout: None,
            ..Default::default()
        },
        Arc::clone(registry),
    )
    .expect("server start")
}

/// Bursty keyed stream, one workload key per party.
fn events() -> Vec<(u64, Vec<bool>)> {
    let mut w = KeyedWorkload::new(PARTIES, 4, 0.5, 41)
        .with_burst_range(1, 16)
        .with_hot_set(0.7, 1);
    w.next_batch(EVENTS)
}

#[test]
fn push_over_tcp_tracks_the_pull_referee_within_slack() {
    let mcfg = MonitorConfig {
        max_window: WINDOW,
        eps: EPS,
        eps_split: SPLIT,
        parties: PARTIES,
    };
    let registry = Arc::new(MetricsRegistry::new());
    let server = start_referee(&registry);
    let mut client = Client::connect(server.local_addr()).expect("client connect");
    let mut parties: Vec<PushParty> = (0..PARTIES)
        .map(|p| PushParty::new(&mcfg, p).expect("validated config"))
        .collect();
    let mut exact: Vec<ExactCount> = (0..PARTIES).map(|_| ExactCount::new(WINDOW)).collect();
    let slack = mcfg.slack_total();
    // What per-step pull fan-out would have cost on the same stream:
    // every party's full synopsis as a PUSH_SYNOPSIS frame, each step.
    let mut pull_fanout_bytes = 0u64;
    for (party, bits) in events() {
        let idx = party as usize;
        for &b in &bits {
            exact[idx].push_bit(b);
        }
        if let Some(delta) = parties[idx].push_bits(&bits) {
            client
                .push_delta(
                    delta.party,
                    delta.seq,
                    delta.slack,
                    SynopsisKind::DetWave,
                    delta.bytes,
                )
                .expect("push delta");
        }
        for p in &parties {
            let frame = Frame::PushSynopsis {
                party: p.party(),
                kind: SynopsisKind::DetWave,
                bytes: p.local().encode(),
            };
            pull_fanout_bytes += WireCodec::encode(&frame).len() as u64;
        }
        // Every step: the networked push answer vs the in-process pull
        // reference and the exact truth.
        let push = client.combine(WINDOW).expect("combine");
        let pull = combine_estimates(parties.iter().map(|p| p.local().query_max()));
        assert!(
            (push.value - pull.value).abs() <= slack + 1e-6,
            "push {} and pull {} disagree beyond slack {slack}",
            push.value,
            pull.value
        );
        let truth: u64 = exact.iter().map(|e| e.query(WINDOW)).sum();
        let contract = mcfg.eps_synopsis() * truth as f64 + slack;
        assert!(
            (push.value - truth as f64).abs() <= contract + 1e-6,
            "push {} off truth {truth} beyond contract {contract}",
            push.value
        );
    }
    // The server counted the actual delta traffic; it must undercut
    // what pull fan-out would have shipped on this bursty stream.
    let pushes = registry.counter(MetricId::MonitorPushes);
    let push_bytes = registry.counter(MetricId::MonitorPushBytes);
    assert!(pushes > 0, "drift never crossed the threshold");
    assert!(
        push_bytes < pull_fanout_bytes,
        "push shipped {push_bytes} payload bytes, pull fan-out would be {pull_fanout_bytes}"
    );
    server.shutdown();
}

/// A forced flush from every party resynchronizes the networked
/// referee byte-for-byte with the local state: after it, the combine
/// answer is exactly the pull answer (no slack needed).
#[test]
fn forced_flush_restores_exact_agreement_over_tcp() {
    let mcfg = MonitorConfig {
        max_window: WINDOW,
        eps: EPS,
        eps_split: SPLIT,
        parties: PARTIES,
    };
    let registry = Arc::new(MetricsRegistry::new());
    let server = start_referee(&registry);
    let mut client = Client::connect(server.local_addr()).expect("client connect");
    let mut parties: Vec<PushParty> = (0..PARTIES)
        .map(|p| PushParty::new(&mcfg, p).expect("validated config"))
        .collect();
    for (party, bits) in events().into_iter().take(300) {
        if let Some(delta) = parties[party as usize].push_bits(&bits) {
            client
                .push_delta(
                    delta.party,
                    delta.seq,
                    delta.slack,
                    SynopsisKind::DetWave,
                    delta.bytes,
                )
                .expect("push delta");
        }
    }
    for p in parties.iter_mut() {
        let delta = p.force_flush();
        client
            .push_delta(
                delta.party,
                delta.seq,
                delta.slack,
                SynopsisKind::DetWave,
                delta.bytes,
            )
            .expect("forced flush delta");
        assert_eq!(p.unshipped_drift(), 0.0, "flush left drift behind");
    }
    let push = client.combine(WINDOW).expect("combine");
    let pull = combine_estimates(parties.iter().map(|p| p.local().query_max()));
    assert_eq!(push, pull, "flushed referee still disagrees with pull");
    server.shutdown();
}
