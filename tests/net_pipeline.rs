//! Wire v6 pipelining against the event-loop server: correlation ids
//! pair out-of-order responses with their requests, the in-flight
//! window and write-queue caps bound both directions, and a slow
//! reader is evicted instead of buffered without bound.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use waves::net::{
    ChaosProxy, Client, ClientConfig, Fault, Frame, FrameTag, RetryPolicy, Server, ServerConfig,
    WireCodec,
};
use waves::obs::{MetricsRegistry, Recorder};
use waves::{EngineConfig, IngestRequest, WaveError};

fn server_cfg() -> ServerConfig {
    ServerConfig {
        engine: EngineConfig::builder()
            .num_shards(2)
            .max_window(256)
            .eps(0.2)
            .build(),
        read_timeout: None,
        // Several workers so pipelined requests genuinely can complete
        // out of request order.
        dispatch_threads: 3,
        ..Default::default()
    }
}

fn fast_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(1000),
        write_timeout: Duration::from_millis(1000),
        retry: RetryPolicy::none(),
    }
}

/// Protocol-level out-of-order pairing: write query frames whose
/// correlation ids are deliberately shuffled and non-contiguous, then
/// match every reply back by its echoed id. Whatever order the server's
/// workers finish in, each correlation id must come back exactly once,
/// carrying the estimate for *its* key.
#[test]
fn shuffled_correlation_ids_pair_replies_to_requests() {
    let server = Server::start("127.0.0.1:0", server_cfg()).unwrap();
    // Key k holds k+1 ones, so an estimate's value names the key that
    // produced it.
    let mut seed = Client::connect(server.local_addr()).unwrap();
    for k in 0..10u64 {
        let bits: Vec<bool> = (0..=k).map(|_| true).collect();
        seed.ingest(IngestRequest::of(k, bits)).unwrap();
    }
    seed.flush().unwrap();

    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    sock.set_nodelay(true).unwrap();
    // Shuffled, gappy, large: nothing about the id sequence may matter
    // beyond echo-back.
    let corrs: [u64; 10] = [907, 3, 512, 44, u64::MAX, 7, 100, 2, 651, 13];
    for (k, &corr) in corrs.iter().enumerate() {
        let frame = Frame::Query {
            key: k as u64,
            window: 256,
        };
        let bytes = WireCodec::encode_tagged(&frame, FrameTag { trace: 0, corr });
        sock.write_all(&bytes).unwrap();
    }
    sock.flush().unwrap();

    let mut seen: Vec<(u64, f64)> = Vec::new();
    for _ in 0..corrs.len() {
        let (reply, _, tag) = WireCodec::read_frame_tagged(&mut sock).unwrap();
        match reply {
            Frame::EstimateResp(est) => seen.push((tag.corr, est.value)),
            other => panic!("expected an estimate, got {other:?}"),
        }
    }
    assert_eq!(seen.len(), corrs.len());
    for (k, &corr) in corrs.iter().enumerate() {
        let matches: Vec<_> = seen.iter().filter(|(c, _)| *c == corr).collect();
        assert_eq!(matches.len(), 1, "correlation id {corr} seen {matches:?}");
        assert_eq!(
            matches[0].1,
            (k + 1) as f64,
            "corr {corr} carried the wrong key's estimate"
        );
    }
}

/// The client's pipelined surface: `send_many` returns replies in
/// request order (whatever order they completed), and `ingest_many`
/// acks a windowed batch sequence end to end.
#[test]
fn send_many_returns_request_order_and_ingest_many_acks() {
    let server = Server::start("127.0.0.1:0", server_cfg()).unwrap();
    let mut client = Client::connect_with(server.local_addr(), fast_cfg()).unwrap();

    let batches: Vec<IngestRequest> = (0..20u64)
        .map(|k| IngestRequest::of(k, (0..=k).map(|_| true).collect::<Vec<bool>>()))
        .collect();
    assert_eq!(client.ingest_many(batches, 8).unwrap(), 20);
    client.flush().unwrap();

    let queries: Vec<Frame> = (0..20u64)
        .map(|key| Frame::Query { key, window: 256 })
        .collect();
    let replies = client.send_many(&queries, 7).unwrap();
    assert_eq!(replies.len(), 20);
    for (k, reply) in replies.iter().enumerate() {
        match reply {
            Frame::EstimateResp(est) => assert_eq!(
                est.value,
                (k + 1) as f64,
                "slot {k} holds another request's reply"
            ),
            other => panic!("slot {k}: expected an estimate, got {other:?}"),
        }
    }

    // Per-request failures stay in their slot instead of failing the
    // batch: a query for a key nobody ingested errors, its neighbors
    // don't.
    let mixed = [
        Frame::Query { key: 1, window: 64 },
        Frame::Query {
            key: 9_999,
            window: 64,
        },
        Frame::Ping,
    ];
    let replies = client.send_many(&mixed, 3).unwrap();
    assert!(matches!(replies[0], Frame::EstimateResp(_)), "{replies:?}");
    assert!(matches!(replies[1], Frame::ErrorResp(_)), "{replies:?}");
    assert!(matches!(replies[2], Frame::Pong), "{replies:?}");
}

/// A peer that triggers replies but never reads them must be evicted
/// once its write queue passes the cap — typed counter, closed socket,
/// bounded memory — and the event loop must keep accepting and serving
/// other connections afterwards.
#[test]
fn slow_reader_is_evicted_not_buffered() {
    let rec = Arc::new(MetricsRegistry::new());
    let cfg = ServerConfig {
        // Smaller than any reply frame (the minimum is 28 bytes on the
        // wire), so the first undeliverable reply trips the cap
        // deterministically instead of racing kernel socket buffers.
        max_write_queue: 16,
        ..server_cfg()
    };
    let server = Server::start_recorded("127.0.0.1:0", cfg, Arc::clone(&rec)).unwrap();

    let mut client = Client::connect_with(server.local_addr(), fast_cfg()).unwrap();
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, WaveError::Io(_) | WaveError::Timeout { .. }),
        "eviction must surface as a typed transport error, got {err:?}"
    );
    // The loop survived the eviction: a second connection is accepted
    // and dispatched (and evicted in turn — every reply exceeds the
    // cap), rather than the server wedging.
    let mut again = Client::connect_with(server.local_addr(), fast_cfg()).unwrap();
    let _ = again.ping();
    let snap = rec.metrics_snapshot().unwrap();
    assert!(
        snap.counter("net_connections_evicted_total").unwrap() >= 2,
        "{snap:?}"
    );
    assert!(
        snap.counter("net_connections_accepted_total").unwrap() >= 2,
        "{snap:?}"
    );
}

/// Chaos faults replayed against the event-loop server's pipelined
/// path: corrupting any byte of the reply stream may fail the batch
/// with a typed error, but may never deliver a wrong answer into any
/// slot.
#[test]
fn pipelined_corruption_is_never_a_wrong_answer() {
    let server = Server::start("127.0.0.1:0", server_cfg()).unwrap();
    let mut seed = Client::connect(server.local_addr()).unwrap();
    for k in 0..8u64 {
        let bits: Vec<bool> = (0..=k).map(|_| true).collect();
        seed.ingest(IngestRequest::of(k, bits)).unwrap();
    }
    seed.flush().unwrap();

    let queries: Vec<Frame> = (0..8u64)
        .map(|key| Frame::Query { key, window: 256 })
        .collect();
    // Offsets spanning the first reply's header, trace/corr words,
    // payload, and CRC, plus later frames in the stream.
    for offset in [0usize, 2, 5, 9, 17, 21, 27, 28, 40, 77, 150] {
        let proxy = ChaosProxy::start(server.local_addr(), Fault::CorruptByteAt(offset)).unwrap();
        let mut client = Client::connect_with(proxy.local_addr(), fast_cfg()).unwrap();
        let t0 = Instant::now();
        match client.send_many(&queries, 4) {
            Ok(replies) => {
                for (k, reply) in replies.iter().enumerate() {
                    match reply {
                        Frame::EstimateResp(est) => assert_eq!(
                            est.value,
                            (k + 1) as f64,
                            "offset {offset}: corrupted reply decoded into a wrong answer"
                        ),
                        other => panic!("offset {offset}, slot {k}: {other:?}"),
                    }
                }
            }
            Err(WaveError::Io(_)) | Err(WaveError::Timeout { .. }) => {}
            Err(other) => panic!("offset {offset}: untyped failure {other:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "offset {offset}: pipeline hung {:?}",
            t0.elapsed()
        );
    }
}

/// Past the in-flight window cap the server pauses reading instead of
/// dispatching unboundedly — and resumes losslessly: a burst far wider
/// than `max_inflight` still gets every reply.
#[test]
fn burst_wider_than_inflight_cap_is_lossless() {
    let cfg = ServerConfig {
        max_inflight: 4,
        ..server_cfg()
    };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect_with(server.local_addr(), fast_cfg()).unwrap();
    let pings: Vec<Frame> = (0..64).map(|_| Frame::Ping).collect();
    // Window 64 on the client side: all 64 requests go out before any
    // reply is read, so the server's cap (4) is what throttles.
    let replies = client.send_many(&pings, 64).unwrap();
    assert_eq!(replies.len(), 64);
    assert!(replies.iter().all(|r| matches!(r, Frame::Pong)));
}
