//! Property tests for the hand-rolled JSON layer — the writer's
//! escaping must survive a round trip through the strict parser for
//! *any* string, including control characters, quotes, backslashes,
//! and astral-plane unicode — plus concurrency smoke tests for the
//! shared telemetry sinks the networked stack hangs off one `Arc`.

use std::sync::Arc;

use proptest::prelude::*;
use waves::obs::trace::{Span, Stage, TraceId};
use waves::obs::{BufferSink, Event, JsonValue, JsonWriter, Recorder, SpanRecorder};

/// Strings weighted toward the characters that exercise every escaping
/// path: ASCII, raw control bytes, the two mandatory escapes, multibyte
/// BMP characters, an astral emoji, and fully random codepoints.
fn json_strings() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            6 => (0x20u32..0x7f).prop_map(|c| char::from_u32(c).unwrap()),
            2 => (0u32..0x20).prop_map(|c| char::from_u32(c).unwrap()),
            1 => Just('"'),
            1 => Just('\\'),
            1 => Just('\u{e9}'),
            1 => Just('\u{4e2d}'),
            1 => Just('\u{1F600}'),
            1 => (0u32..=0x0010_FFFF).prop_map(|c| char::from_u32(c).unwrap_or('\u{FFFD}')),
        ],
        0..48,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Whatever goes in as a value or a field name comes back out
    /// byte-identical after parse — and the parser never accepts a
    /// document the writer mis-escaped (it is strict about raw control
    /// bytes and lone surrogates, so a round-trip success certifies the
    /// escaping).
    #[test]
    fn string_escaping_round_trips(strings in prop::collection::vec(json_strings(), 0..6)) {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_array("values");
        for s in &strings {
            w.value_str(s);
        }
        w.end_array();
        w.field_object("keyed");
        for (i, s) in strings.iter().enumerate() {
            w.field_u64(s, i as u64);
        }
        w.end_object();
        w.end_object();
        let doc = w.finish();
        let v = JsonValue::parse(&doc).unwrap_or_else(|e| panic!("{e}\nin {doc}"));

        let values = v.get("values").and_then(JsonValue::as_array).unwrap();
        prop_assert_eq!(values.len(), strings.len());
        for (got, want) in values.iter().zip(&strings) {
            prop_assert_eq!(got.as_str(), Some(want.as_str()));
        }
        // Field-name escaping round-trips too. Duplicate keys resolve
        // to the first occurrence (documented `get` behavior), so only
        // a string's first index is observable.
        for (i, s) in strings.iter().enumerate() {
            let first = strings.iter().position(|t| t == s).unwrap();
            let _ = i;
            prop_assert_eq!(
                v.get("keyed").and_then(|k| k.get(s)).and_then(JsonValue::as_u64),
                Some(first as u64)
            );
        }
    }

    /// Numeric round-trip: u64 counters keep full precision (never
    /// squeezed through f64), finite floats come back as themselves.
    #[test]
    fn numbers_round_trip(n in any::<u64>(), x in -1.0e12f64..1.0e12) {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("n", n);
        w.field_f64("x", x);
        w.end_object();
        let v = JsonValue::parse(&w.finish()).unwrap();
        prop_assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(n));
        prop_assert_eq!(v.get("x").and_then(JsonValue::as_f64), Some(x));
    }
}

/// The sinks the telemetry plane shares across server worker threads
/// must take concurrent traffic without loss (BufferSink) or panic, and
/// the span ring's retention accounting must stay exact under races.
#[test]
fn sinks_survive_concurrent_traffic() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 1000;

    let sink = Arc::new(BufferSink::new());
    let ring = Arc::new(SpanRecorder::with_capacity(512));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let sink = Arc::clone(&sink);
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    sink.event(Event {
                        name: "test.event",
                        fields: &[("thread", t), ("i", i)],
                    });
                    ring.span(Span {
                        trace: TraceId(t + 1),
                        id: t * PER_THREAD + i + 2,
                        parent: 0,
                        stage: Stage::Shard,
                        start_ns: i,
                        dur_ns: 1,
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let events = sink.drain();
    assert_eq!(events.len(), (THREADS * PER_THREAD) as usize);
    assert!(events.iter().all(|e| e.name == "test.event"));

    assert_eq!(ring.total_recorded(), THREADS * PER_THREAD);
    let retained = ring.spans();
    assert_eq!(retained.len(), 512, "ring keeps exactly its capacity");
    // Every retained span is one that some thread actually pushed.
    assert!(retained
        .iter()
        .all(|s| s.trace.0 >= 1 && s.trace.0 <= THREADS && s.dur_ns == 1));
}
