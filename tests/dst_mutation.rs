//! Mutation smoke test: proves the DST harness has teeth.
//!
//! Built only under `RUSTFLAGS="--cfg dst_mutation"`, which arms a
//! planted off-by-one in `DetWave` expiry (entries expire one stream
//! position early — see `crates/core/src/det_wave.rs`). The harness
//! must catch the mutant against the exact oracle within 200 seeds and
//! shrink the failing schedule to at most a quarter of its length:
//!
//! ```text
//! RUSTFLAGS="--cfg dst_mutation" cargo test -p waves --test dst_mutation
//! ```
//!
//! In a normal build this file compiles to an empty test target.
#![cfg(dst_mutation)]

use waves::dst::{run, run_or_minimize, Schedule};

#[test]
fn planted_expiry_mutation_is_caught_within_200_seeds() {
    for seed in 0..200u64 {
        let sched = Schedule::from_seed(seed);
        let fail = match run_or_minimize(&sched) {
            Ok(_) => continue,
            Err(fail) => fail,
        };
        println!("mutant caught: {fail}");
        assert!(
            !fail.minimized.steps.is_empty(),
            "minimized schedule shrunk to nothing yet claims to fail"
        );
        assert!(
            fail.minimized.steps.len() * 4 <= sched.steps.len(),
            "shrinker too weak: {} of {} steps survive minimization",
            fail.minimized.steps.len(),
            sched.steps.len()
        );
        // The minimized schedule is itself a failing repro, not just a
        // souvenir of one.
        assert!(run(&fail.minimized).is_err(), "minimized schedule passes");
        return;
    }
    panic!("planted det_wave expiry mutation survived 200 seeds");
}
