//! Mutation smoke test: proves the DST harness has teeth.
//!
//! Built only under `RUSTFLAGS="--cfg dst_mutation"`, which arms two
//! planted bugs at once: an off-by-one in `DetWave` expiry (entries
//! expire one stream position early — see
//! `crates/core/src/det_wave.rs`) and an off-by-one in the monitor's
//! slack accounting (`PushParty::settle` ships one unit of drift too
//! late — see `crates/distributed/src/monitor.rs`). The harness must
//! catch a mutant — the expiry one against the exact oracle, the slack
//! one against the per-party drift budget — within 200 seeds and
//! shrink the failing schedule to at most a quarter of its length:
//!
//! ```text
//! RUSTFLAGS="--cfg dst_mutation" cargo test -p waves --test dst_mutation
//! ```
//!
//! In a normal build this file compiles to an empty test target.
#![cfg(dst_mutation)]

use waves::dst::{run, run_or_minimize, Schedule};

#[test]
fn planted_mutations_are_caught_within_200_seeds() {
    for seed in 0..200u64 {
        let sched = Schedule::from_seed(seed);
        let fail = match run_or_minimize(&sched) {
            Ok(_) => continue,
            Err(fail) => fail,
        };
        println!("mutant caught: {fail}");
        assert!(
            !fail.minimized.steps.is_empty(),
            "minimized schedule shrunk to nothing yet claims to fail"
        );
        assert!(
            fail.minimized.steps.len() * 4 <= sched.steps.len(),
            "shrinker too weak: {} of {} steps survive minimization",
            fail.minimized.steps.len(),
            sched.steps.len()
        );
        // The minimized schedule is itself a failing repro, not just a
        // souvenir of one.
        assert!(run(&fail.minimized).is_err(), "minimized schedule passes");
        return;
    }
    panic!("planted mutations survived 200 seeds");
}

/// Isolates the slack mutant from the expiry one: a short monitor-only
/// schedule in which nothing ever comes close to expiring (one bit into
/// a 64-wide window), so the expiry mutant cannot contribute. The party
/// budget is 0.8 < 1, so the very first 1-bit drives drift to 1 and
/// must ship; the armed `settle` compares against budget+1 and keeps
/// it, which the per-party drift oracle flags immediately.
#[test]
fn planted_slack_mutation_is_caught_by_the_drift_oracle() {
    let sched = Schedule::builder(1)
        .max_window(64)
        .eps(0.1)
        .monitor(4, 0.5)
        .monitor_push(0, vec![true])
        .monitor_query()
        .build();
    assert!(
        run(&sched).is_err(),
        "slack mutant survived the drift oracle"
    );
}
