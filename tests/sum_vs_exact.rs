//! Integration: sum wave and EH-sum against the exact oracle
//! (Theorem 3 end-to-end), including the value-range extremes.

use waves::streamgen::{CallDurations, SpikeValues, UniformValues, ValueSource};
use waves::{EhSum, ExactSum, SumSynopsis, SumWave};

fn check_sum<S: SumSynopsis>(
    synopsis: &mut S,
    source: &mut dyn FnMut() -> u64,
    eps: f64,
    n_max: u64,
    steps: u64,
) {
    let mut oracle = ExactSum::new(n_max);
    for step in 1..=steps {
        let v = source();
        synopsis.push_value(v).expect("value within bound");
        oracle.push_value(v);
        if step % 97 == 0 || step == steps {
            let actual = oracle.query(n_max);
            let est = synopsis.query_window(n_max).expect("valid window");
            assert!(
                est.brackets(actual),
                "{} step {step}: [{}, {}] vs {actual}",
                synopsis.name(),
                est.lo,
                est.hi
            );
            assert!(
                est.relative_error(actual) <= eps + 1e-9,
                "{} step {step}: actual {actual} est {}",
                synopsis.name(),
                est.value
            );
        }
    }
}

#[test]
fn sum_wave_uniform_values() {
    let (eps, n_max, r) = (0.1, 1_024u64, 1u64 << 10);
    let mut g = UniformValues::new(r, 5);
    let mut w = SumWave::new(n_max, r, eps).unwrap();
    check_sum(&mut w, &mut || g.next_value(), eps, n_max, 20_000);
}

#[test]
fn sum_wave_spiky_values() {
    let (eps, n_max, r) = (0.1, 512u64, 1u64 << 18);
    let mut g = SpikeValues::new(r, 0.01, 6);
    let mut w = SumWave::new(n_max, r, eps).unwrap();
    check_sum(&mut w, &mut || g.next_value(), eps, n_max, 20_000);
}

#[test]
fn sum_wave_call_durations() {
    let (eps, n_max, r) = (0.05, 2_048u64, 7_200u64);
    let mut g = CallDurations::new(r, 7);
    let mut w = SumWave::new(n_max, r, eps).unwrap();
    check_sum(&mut w, &mut || g.next_value(), eps, n_max, 20_000);
}

#[test]
fn eh_sum_same_workloads() {
    let (eps, n_max, r) = (0.1, 512u64, 1u64 << 10);
    let mut g = UniformValues::new(r, 8);
    let mut eh = EhSum::new(n_max, r, eps).unwrap();
    check_sum(&mut eh, &mut || g.next_value(), eps, n_max, 15_000);
}

#[test]
fn wave_and_eh_agree_on_truth_interval_validity() {
    let (eps, n_max, r) = (0.2, 256u64, 100u64);
    let mut w = SumWave::new(n_max, r, eps).unwrap();
    let mut eh = EhSum::new(n_max, r, eps).unwrap();
    let mut oracle = ExactSum::new(n_max);
    let mut g = UniformValues::new(r, 9);
    for _ in 0..10_000 {
        let v = g.next_value();
        w.push_value(v).unwrap();
        EhSum::push_value(&mut eh, v).unwrap();
        oracle.push_value(v);
        let actual = oracle.query(n_max);
        assert!(w.query_max().brackets(actual));
        assert!(eh.query(n_max).unwrap().brackets(actual));
    }
}

#[test]
fn single_item_cost_structural_comparison() {
    // The paper's Section 3.3 point: one large item lands in exactly one
    // wave level but up to O(log N + log R) EH classes.
    let (n_max, r) = (1u64 << 12, 1u64 << 12);
    let mut w = SumWave::new(n_max, r, 0.1).unwrap();
    let mut eh = EhSum::new(n_max, r, 0.1).unwrap();
    for _ in 0..100 {
        w.push_value(r).unwrap();
        EhSum::push_value(&mut eh, r).unwrap();
    }
    assert!(w.entries() <= 100, "one entry per item at most");
    assert!(
        eh.buckets() > w.entries() as u64,
        "EH fragments items: {} buckets vs {} wave entries",
        eh.buckets(),
        w.entries()
    );
}
