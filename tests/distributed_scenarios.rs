// Lockstep iteration over multiple parallel streams reads clearest indexed.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

//! Integration: the three distributed sliding-window scenarios of
//! Section 3.4, end-to-end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use waves::streamgen::{correlated_streams, positionwise_union, split_logical_stream};
use waves::{run_union_threaded, RandConfig, Scenario1Count, Scenario1Sum, Scenario2Count};

#[test]
fn scenario1_counts_within_eps() {
    let (t, n, eps) = (5usize, 512u64, 0.1);
    let streams = correlated_streams(t, 10_000, 0.3, 0.3, 21);
    let mut sc = Scenario1Count::new(t, n, eps).unwrap();
    for i in 0..10_000 {
        for j in 0..t {
            sc.push_bit(j, streams[j][i]);
        }
    }
    let actual: u64 = streams
        .iter()
        .map(|s| s[10_000 - n as usize..].iter().filter(|&&b| b).count() as u64)
        .sum();
    let est = sc.query(n).unwrap();
    assert!(est.brackets(actual));
    assert!(est.relative_error(actual) <= eps + 1e-9);
    // Communication: exactly t constant-size messages per query.
    assert_eq!(sc.comm().messages, t as u64);
    assert_eq!(sc.comm().bytes, (t * 24) as u64);
}

#[test]
fn scenario1_sums_within_eps() {
    let (t, n, r, eps) = (3usize, 256u64, 1_000u64, 0.1);
    let mut sc = Scenario1Sum::new(t, n, r, eps).unwrap();
    let mut truth = vec![Vec::new(); t];
    let mut x = 42u64;
    for _ in 0..5_000 {
        for j in 0..t {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % (r + 1);
            sc.push_value(j, v).unwrap();
            truth[j].push(v);
        }
    }
    let actual: u64 = truth
        .iter()
        .map(|vs| vs[vs.len() - n as usize..].iter().sum::<u64>())
        .sum();
    let est = sc.query(n).unwrap();
    assert!(est.relative_error(actual) <= eps + 1e-9);
}

#[test]
fn scenario2_arbitrary_splits() {
    let (n, eps) = (1_024u64, 0.1);
    let len = 20_000usize;
    let stream: Vec<bool> = (0..len).map(|i| (i * 2654435761) % 11 < 4).collect();
    let actual = stream[len - n as usize..].iter().filter(|&&b| b).count() as u64;
    for t in [1usize, 2, 7] {
        let parts = split_logical_stream(&stream, t, t as u64 * 31);
        let mut sc = Scenario2Count::new(t, n, eps).unwrap();
        for (j, part) in parts.iter().enumerate() {
            for &(seq, b) in part {
                sc.push_item(j, seq, b).unwrap();
            }
        }
        let est = sc.query(len as u64, n).unwrap();
        assert!(
            est.relative_error(actual) <= eps + 1e-9,
            "t={t}: est {} actual {actual}",
            est.value
        );
    }
}

#[test]
fn scenario3_threaded_union_within_eps() {
    let (t, len, window) = (6usize, 30_000usize, 4_096u64);
    let (eps, delta) = (0.15, 0.05);
    let mut rng = StdRng::seed_from_u64(77);
    let cfg = RandConfig::for_positions(window, eps, delta, &mut rng).unwrap();
    let streams = correlated_streams(t, len, 0.1, 0.05, 3);
    let checkpoints = vec![10_000u64, 20_000, 30_000];
    let run = run_union_threaded(&cfg, &streams, &checkpoints, window);
    let union = positionwise_union(&streams);
    for &(pos, est) in &run.estimates {
        let w = window.min(pos) as usize;
        let actual = union[pos as usize - w..pos as usize]
            .iter()
            .filter(|&&b| b)
            .count() as f64;
        assert!(
            (est - actual).abs() / actual.max(1.0) <= eps,
            "pos {pos}: est {est} actual {actual}"
        );
    }
    // Communication grows with t and instances but not with the stream.
    assert_eq!(run.comm.messages, (t * checkpoints.len()) as u64);
}

#[test]
fn scenario2_queries_between_arrivals() {
    // The referee may query at a position where a party saw nothing
    // recently; alignment via broadcast pos must still work.
    let (t, n, eps) = (3usize, 64u64, 0.25);
    let mut sc = Scenario2Count::new(t, n, eps).unwrap();
    // Party 0 sees everything early; parties 1, 2 see nothing yet.
    for seq in 1..=100u64 {
        sc.push_item(0, seq, true).unwrap();
    }
    let est = sc.query(100, n).unwrap();
    assert!(est.brackets(64));
    // Later items to another party with a large gap.
    sc.push_item(1, 500, true).unwrap();
    let est = sc.query(500, n).unwrap();
    assert!(est.brackets(1), "[{}, {}]", est.lo, est.hi);
}
