//! The serving engine must be a transparent container: for every key,
//! querying the engine equals querying a single-threaded synopsis fed
//! the same bits in the same order — sharding, batching, and channels
//! must not change a single answer.
//!
//! Scenarios are driven through the shared `waves::dst` schedule
//! builder: the simulator checks every answer against the exact
//! ring-buffer oracle, a shadow `DetWave`, and the EH baseline, and a
//! violation panics with the schedule seed so the failure replays
//! exactly — no bespoke RNG plumbing in this file.

use std::collections::HashMap;
use waves::dst::{run, RunReport, Schedule, Step};

/// Run a schedule, panicking with the replay seed on any violation.
fn check(sched: &Schedule) -> RunReport {
    run(sched).unwrap_or_else(|v| {
        panic!(
            "{v}\nreplay: rebuild with Schedule::builder({}) exactly as this test does",
            sched.seed
        )
    })
}

#[test]
fn engine_matches_per_key_oracles_under_skewed_multishard_workload() {
    // Skewed workload over 4 shards: hot keys see many interleaved
    // batches, cold keys few — both paths must agree with the oracle
    // at every queried window, and untouched keys must stay UnknownKey
    // (query_all stretches past the ingested key space inside the sim).
    let mut b = Schedule::builder(99)
        .num_keys(300)
        .num_shards(4)
        .max_window(256)
        .eps(0.2);
    for _ in 0..40 {
        b = b.ingest_random(128);
    }
    b = b.flush().snapshot().query_all();
    for key in 0..300u64 {
        b = b.query(key, 1).query(key, 256 / 3);
    }
    let sched = b.build();
    let report = check(&sched);
    assert!(
        report.checks >= 900,
        "only {} oracle checks ran",
        report.checks
    );
}

#[test]
fn engine_survives_interleaved_operations_from_seed_derived_steps() {
    // Seed-derived step soup (ingests, queries, flushes, snapshots,
    // restarts) over 3 shards: the generator's weights exercise the
    // paths a scripted scenario misses.
    let sched = Schedule::builder(4242)
        .num_keys(24)
        .num_shards(3)
        .max_window(128)
        .eps(0.25)
        .random_steps(80)
        .flush()
        .query_all()
        .build();
    let report = check(&sched);
    assert!(report.checks > 0, "schedule ran no oracle checks");
}

/// An engine hosting `EhCount` synopses (instead of the default
/// `DetWave`) must equal a single-threaded EH fed the same bits. The
/// workload is extracted from a schedule so the seed is the only
/// source of randomness.
#[test]
fn eh_engine_matches_eh_oracle_on_schedule_workload() {
    let (window, eps) = (128u64, 0.25f64);
    let mut b = Schedule::builder(7)
        .num_keys(64)
        .max_window(window)
        .eps(eps);
    for _ in 0..30 {
        b = b.ingest_random(64);
    }
    let sched = b.build();

    let cfg = waves::EngineConfig::builder()
        .num_shards(3)
        .max_window(window)
        .eps(eps)
        .build();
    let engine =
        waves::Engine::with_factory(cfg, move || waves::EhCount::new(window, eps)).unwrap();
    let mut oracles: HashMap<u64, waves::EhCount> = HashMap::new();
    for step in &sched.steps {
        let Step::Ingest { batch, .. } = step else {
            continue;
        };
        for (key, bits) in batch {
            let oracle = oracles
                .entry(*key)
                .or_insert_with(|| waves::EhCount::new(window, eps).unwrap());
            for &bit in bits {
                oracle.push_bit(bit);
            }
        }
        let packed: Vec<_> = batch
            .iter()
            .map(|(k, bits)| (*k, waves::Bits::from_bools(bits)))
            .collect();
        engine
            .ingest(waves::IngestRequest::batch(packed).blocking(true))
            .unwrap();
    }
    engine.flush();

    assert!(!oracles.is_empty(), "schedule ingested nothing");
    for (key, oracle) in &oracles {
        assert_eq!(
            engine.query(*key, window).unwrap(),
            oracle.query(window).unwrap(),
            "key={key} (schedule seed {})",
            sched.seed
        );
    }
}
