//! The serving engine must be a transparent container: for every key,
//! querying the engine equals querying a single-threaded synopsis fed
//! the same bits in the same order — sharding, batching, and channels
//! must not change a single answer.

use std::collections::HashMap;
use waves::streamgen::KeyedWorkload;
use waves::{DetWave, Engine, EngineConfig, WaveError};

#[test]
fn engine_matches_per_key_det_wave_oracle() {
    let (num_keys, window, eps) = (300u64, 256u64, 0.2f64);
    let cfg = EngineConfig::builder()
        .num_shards(4)
        .max_window(window)
        .eps(eps)
        .build();
    let engine = Engine::new(cfg).unwrap();
    let mut oracles: HashMap<u64, DetWave> = HashMap::new();

    // Skewed workload: hot keys see many interleaved batches, cold keys
    // few — both paths must agree with the oracle.
    let mut workload = KeyedWorkload::new(num_keys, 16, 0.4, 99).with_hot_set(0.5, 8);
    for _ in 0..40 {
        let batch = workload.next_batch(128);
        for (key, bits) in &batch {
            oracles
                .entry(*key)
                .or_insert_with(|| {
                    DetWave::builder()
                        .max_window(window)
                        .eps(eps)
                        .build()
                        .unwrap()
                })
                .push_bits(bits);
        }
        engine.ingest_batch_blocking(&batch);
    }
    engine.flush();

    let mut touched = 0usize;
    for key in 0..num_keys {
        match oracles.get(&key) {
            Some(oracle) => {
                touched += 1;
                for w in [1, window / 3, window] {
                    assert_eq!(
                        engine.query(key, w).unwrap(),
                        oracle.query(w).unwrap(),
                        "key={key} window={w}"
                    );
                }
            }
            None => assert_eq!(
                engine.query(key, window).err(),
                Some(WaveError::UnknownKey { key })
            ),
        }
    }
    // The workload is big enough that most keys were hit.
    assert!(
        touched > (num_keys as usize) / 2,
        "only {touched} keys touched"
    );
    assert_eq!(engine.snapshot().keys(), touched);
}

#[test]
fn engine_matches_eh_oracle() {
    let (window, eps) = (128u64, 0.25f64);
    let cfg = EngineConfig::builder()
        .num_shards(3)
        .max_window(window)
        .eps(eps)
        .build();
    let engine = Engine::with_factory(cfg, move || waves::EhCount::new(window, eps)).unwrap();
    let mut oracles: HashMap<u64, waves::EhCount> = HashMap::new();

    let mut workload = KeyedWorkload::new(64, 9, 0.6, 7);
    for _ in 0..30 {
        let batch = workload.next_batch(64);
        for (key, bits) in &batch {
            let oracle = oracles
                .entry(*key)
                .or_insert_with(|| waves::EhCount::new(window, eps).unwrap());
            for &b in bits {
                oracle.push_bit(b);
            }
        }
        engine.ingest_batch_blocking(&batch);
    }
    engine.flush();

    for (key, oracle) in &oracles {
        assert_eq!(
            engine.query(*key, window).unwrap(),
            oracle.query(window).unwrap(),
            "key={key}"
        );
    }
}
