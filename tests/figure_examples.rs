//! The paper's worked examples, reproduced exactly (Figures 1–3 and the
//! Section 3.1 query walk-through).

use waves::streamgen::figure1_stream;
use waves::{BasicWave, DetWave};

/// Section 3.1 / Figure 2: the basic wave over the Figure 1 stream,
/// eps = 1/3, N = 48, queried with n = 39 at pos = 99.
#[test]
fn figure2_query_example() {
    let stream = figure1_stream();
    let mut wave = BasicWave::new(48, 1.0 / 3.0).unwrap();
    for &b in &stream {
        wave.push_bit(b);
    }
    assert_eq!(wave.pos(), 99);
    assert_eq!(wave.rank(), 50);
    assert_eq!(wave.num_levels(), 5, "five levels, as in Figure 2");

    let est = wave.query(39).unwrap();
    // The paper: p1 = 44, p2 = 67, r1 = 24, r2 = 32, x-hat = 23; the
    // actual count is 20, within eps = 1/3.
    assert_eq!(est.value, 23.0, "the paper's worked estimate");
    assert!(est.brackets(20));
    assert!(est.relative_error(20) <= 1.0 / 3.0);
    // The bracketing interval from the paper: [50-32+1, 50-24] = [19, 26].
    assert_eq!((est.lo, est.hi), (19, 26));
}

/// Figure 2's level contents: level i holds the 1/eps + 1 = 4 most
/// recent 1-ranks that are multiples of 2^i (with a dummy at level 4).
#[test]
fn figure2_level_structure() {
    let stream = figure1_stream();
    let mut wave = BasicWave::new(48, 1.0 / 3.0).unwrap();
    for &b in &stream {
        wave.push_bit(b);
    }
    let levels = wave.level_contents();
    let ranks: Vec<Vec<u64>> = levels
        .iter()
        .map(|lv| lv.iter().map(|&(_, r)| r).collect())
        .collect();
    assert_eq!(ranks[0], vec![47, 48, 49, 50]);
    assert_eq!(ranks[1], vec![44, 46, 48, 50]);
    assert_eq!(ranks[2], vec![36, 40, 44, 48]);
    assert_eq!(ranks[3], vec![24, 32, 40, 48]);
    // Level 4: fewer than four multiples of 16, so the dummy 0 remains.
    assert_eq!(ranks[4], vec![0, 16, 32, 48]);
}

/// Figure 3: the optimal wave stores each 1-rank only at its maximum
/// level (capped at the top), with halved queues below the top level.
#[test]
fn figure3_store_at_max_level() {
    let stream = figure1_stream();
    let mut wave = DetWave::new(48, 1.0 / 3.0).unwrap();
    for &b in &stream {
        wave.push_bit(b);
    }
    assert_eq!(wave.num_levels(), 5);
    let levels = wave.level_contents();
    for (i, lv) in levels.iter().enumerate() {
        for &(_, r) in lv {
            // Every stored rank is a multiple of 2^i...
            assert_eq!(r % (1 << i), 0, "rank {r} at level {i}");
            // ...and, below the top level, of no higher power.
            if i + 1 < levels.len() {
                assert!(r % (1 << (i + 1)) != 0, "rank {r} belongs above {i}");
            }
        }
        // Queue capacities: ceil((k+1)/2) = 2 below the top, k+1 = 4 top.
        let cap = if i + 1 == levels.len() { 4 } else { 2 };
        assert!(lv.len() <= cap, "level {i} holds {}", lv.len());
    }
    // The same query still meets the guarantee.
    let est = wave.query(39).unwrap();
    assert!(est.relative_error(20) <= 1.0 / 3.0);
}

/// Figure 1's annotations: positions of the printed 1-ranks.
#[test]
fn figure1_rank_annotations() {
    let stream = figure1_stream();
    let mut rank = 0u64;
    let mut rank_pos = std::collections::HashMap::new();
    for (i, &b) in stream.iter().enumerate() {
        if b {
            rank += 1;
            rank_pos.insert(rank, i as u64 + 1);
        }
    }
    // Every (position, 1-rank) pair printed in Figure 1.
    for (r, p) in [
        (1, 2),
        (31, 62),
        (32, 67),
        (33, 68),
        (34, 70),
        (35, 71),
        (36, 72),
        (41, 77),
        (42, 79),
        (43, 80),
        (44, 84),
        (45, 85),
        (46, 86),
        (47, 89),
        (48, 91),
        (49, 94),
        (50, 99),
    ] {
        assert_eq!(rank_pos[&r], p, "rank {r}");
    }
}
