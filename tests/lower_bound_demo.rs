//! The Theorem 4 lower bound, demonstrated empirically.
//!
//! Theorem 4: any deterministic algorithm with constant relative error
//! <= 1/64 for Union Counting needs Omega(n) space, even for two
//! parties. Two demonstrations:
//!
//! 1. *Synopsis collision*: with a small deterministic synopsis, two
//!    inputs X1 != X2 exist with identical synopses; feeding (X1, X1)
//!    and (X1, X2) to the referee forces identical answers while the
//!    true union counts differ by H(X1, X2)/2 — exactly the pigeonhole
//!    step of the proof.
//! 2. *Combine-rule failure*: every natural deterministic combine of
//!    per-party counts errs by far more than 1/64 on the Hamming-pair
//!    family, while the randomized wave stays within eps.

use rand::rngs::StdRng;
use rand::SeedableRng;
use waves::streamgen::hamming_pair;
use waves::{det_combine, estimate_union, DetCombine, DetWave, RandConfig, Referee, UnionParty};

/// Feed a bit vector to a fresh deterministic wave and return a compact
/// fingerprint of its full state (levels + counters) — everything a
/// party could send the referee.
fn wave_synopsis(bits: &[bool], n: u64, eps: f64) -> Vec<(u64, u64)> {
    let mut w = DetWave::new(n, eps).unwrap();
    for &b in bits {
        w.push_bit(b);
    }
    let mut state: Vec<(u64, u64)> = w.level_contents().into_iter().flatten().collect();
    state.push((w.pos(), w.rank()));
    state
}

#[test]
fn synopsis_collision_constructed() {
    // Constructive version of the pigeonhole step: two distinct inputs
    // with *identical* deterministic-wave synopses. A 1 whose 1-rank is
    // no longer stored anywhere in the wave can be moved to an adjacent
    // position without changing the final state — the wave's contents
    // depend only on the stored ranks' positions.
    let n = 256u64;
    let len = n as usize;
    let eps = 0.5;

    // X1: ones at the even positions 2, 4, ..., 256 (exactly n/2 ones).
    let mut x1 = vec![false; len];
    for r in 1..=len / 2 {
        x1[2 * r - 1] = true;
    }
    // Which ranks does the final wave store?
    let mut w = DetWave::new(n, eps).unwrap();
    for &b in &x1 {
        w.push_bit(b);
    }
    let stored: std::collections::HashSet<u64> = w
        .level_contents()
        .into_iter()
        .flatten()
        .map(|(_, r)| r)
        .collect();

    // X2: every *unstored* rank's 1 moves one position earlier
    // (2r -> 2r - 1); arrival order of ranks is unchanged.
    let mut x2 = vec![false; len];
    let mut moved = 0usize;
    for r in 1..=(len / 2) as u64 {
        if stored.contains(&r) {
            x2[(2 * r - 1) as usize] = true;
        } else {
            x2[(2 * r - 2) as usize] = true;
            moved += 1;
        }
    }
    assert!(moved > len / 4, "most ranks must be unstored ({moved})");
    assert_ne!(x1, x2);

    // Identical synopses...
    assert_eq!(wave_synopsis(&x1, n, eps), wave_synopsis(&x2, n, eps));

    // ...but very different union counts: union(X1, X1) = n/2 while
    // union(X1, X2) = n/2 + moved. A referee receiving the same pair of
    // messages must answer both identically, forcing absolute error at
    // least moved/2 on one of them — relative error far above 1/64.
    let h = x1.iter().zip(&x2).filter(|(a, b)| a != b).count();
    assert_eq!(h, 2 * moved);
    let forced_rel = (moved as f64 / 2.0) / (len as f64 / 2.0 + moved as f64);
    assert!(
        forced_rel > 1.0 / 64.0,
        "forced relative error {forced_rel} too small"
    );
    println!("constructed collision: moved {moved} ones, forced relative error {forced_rel:.3}");
}

#[test]
fn deterministic_combines_fail_where_randomized_waves_succeed() {
    let n = 4_096usize;
    let eps_target = 1.0 / 64.0;

    // Two extremes of the Hamming family: identical streams (union =
    // n/2) and disjoint-as-possible streams (union = n/2 + dist/2).
    let mut worst = vec![0.0f64; 3];
    let rules = [DetCombine::Sum, DetCombine::Max, DetCombine::Independent];
    for &dist in &[0usize, n / 2, n] {
        let (x, y) = hamming_pair(n, dist, 9);
        let actual = (n / 2 + dist / 2) as f64;
        // Per-party deterministic counts are (essentially) exact here.
        let counts = [n as f64 / 2.0, n as f64 / 2.0];
        for (i, &rule) in rules.iter().enumerate() {
            let est = det_combine(rule, &counts, n as u64);
            let rel = (est - actual).abs() / actual;
            worst[i] = worst[i].max(rel);
        }
        // The randomized wave handles every distance within eps.
        let eps = 0.2;
        let mut rng = StdRng::seed_from_u64(dist as u64);
        let cfg = RandConfig::for_positions(n as u64, eps, 0.05, &mut rng).unwrap();
        let mut pa = UnionParty::new(&cfg);
        let mut pb = UnionParty::new(&cfg);
        for i in 0..n {
            pa.push_bit(x[i]);
            pb.push_bit(y[i]);
        }
        let referee = Referee::new(cfg);
        let est = estimate_union(&referee, &[pa, pb], n as u64).unwrap();
        assert!(
            (est - actual).abs() / actual <= eps,
            "dist={dist}: randomized est {est} vs {actual}"
        );
    }
    // Every deterministic rule busts 1/64 somewhere on the family.
    for (i, &w) in worst.iter().enumerate() {
        assert!(
            w > eps_target,
            "rule {i} unexpectedly accurate: worst rel err {w}"
        );
    }
    println!("worst-case deterministic combine errors: {worst:?}");
}

#[test]
fn randomized_wave_distinguishes_what_synopses_cannot() {
    // Complementary view: two pairs with very different union counts but
    // identical per-party counts; the randomized wave separates them.
    let n = 2_048usize;
    let eps = 0.2;
    let (x_near, y_near) = hamming_pair(n, 0, 1); // union = n/2
    let (x_far, y_far) = hamming_pair(n, n, 2); // union = n
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = RandConfig::for_positions(n as u64, eps, 0.05, &mut rng).unwrap();

    let run = |x: &[bool], y: &[bool], cfg: &RandConfig| {
        let mut pa = UnionParty::new(cfg);
        let mut pb = UnionParty::new(cfg);
        for i in 0..x.len() {
            pa.push_bit(x[i]);
            pb.push_bit(y[i]);
        }
        let referee = Referee::new(cfg.clone());
        estimate_union(&referee, &[pa, pb], x.len() as u64).unwrap()
    };
    let near = run(&x_near, &y_near, &cfg);
    let far = run(&x_far, &y_far, &cfg);
    assert!(
        far > near * 1.5,
        "union estimates must separate: near {near} far {far}"
    );
}
