// Lockstep iteration over multiple parallel streams reads clearest indexed.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

//! Differential op-fuzzing: drive every synopsis through long random
//! sequences of interleaved operations — pushes, queries of random
//! window sizes, clock gaps, and encode/decode round-trips — checking
//! each observable against the exact oracle at every step. This is the
//! harness that catches state-machine bugs that fixed scenarios miss.

use proptest::prelude::*;
use waves::streamgen::{Bernoulli, BitSource};
use waves::{
    DetWave, EhCount, EhSum, ExactCount, ExactSum, SumWave, TimestampSumWave, TimestampWave,
};

/// One scripted operation for the bit-stream machines.
#[derive(Debug, Clone)]
enum BitOp {
    Push(bool),
    /// Query a window of the given fraction of N (scaled at run time).
    Query(u8),
    /// Encode + decode the wave and continue with the reconstruction.
    Roundtrip,
    /// Skip a run of zeros (deterministic wave only; mirrored to the
    /// oracle as individual zero pushes).
    SkipZeros(u8),
}

fn bit_ops() -> impl Strategy<Value = Vec<BitOp>> {
    prop::collection::vec(
        prop_oneof![
            6 => prop::bool::ANY.prop_map(BitOp::Push),
            2 => (0u8..=255).prop_map(BitOp::Query),
            1 => Just(BitOp::Roundtrip),
            1 => (1u8..=40).prop_map(BitOp::SkipZeros),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DetWave under arbitrary op interleavings, with codec round-trips
    /// spliced into the middle of the stream.
    #[test]
    fn det_wave_differential(ops in bit_ops(), inv_eps in 2u64..=10, n_max in 8u64..=128) {
        let eps = 1.0 / inv_eps as f64;
        let mut wave = DetWave::new(n_max, eps).unwrap();
        let mut oracle = ExactCount::new(n_max);
        for op in &ops {
            match op {
                BitOp::Push(b) => {
                    wave.push_bit(*b);
                    oracle.push_bit(*b);
                }
                BitOp::Query(frac) => {
                    let n = 1 + (*frac as u64 * (n_max - 1)) / 255;
                    let actual = oracle.query(n);
                    let est = wave.query(n).unwrap();
                    prop_assert!(est.brackets(actual), "n={n} actual={actual} est={est:?}");
                    prop_assert!(est.relative_error(actual) <= eps + 1e-9);
                }
                BitOp::Roundtrip => {
                    wave = DetWave::decode(&wave.encode()).unwrap();
                }
                BitOp::SkipZeros(k) => {
                    wave.skip_zeros(*k as u64);
                    for _ in 0..*k {
                        oracle.push_bit(false);
                    }
                }
            }
        }
    }

    /// EhCount under the same interleavings (no codec / skip).
    #[test]
    fn eh_count_differential(ops in bit_ops(), inv_eps in 2u64..=10, n_max in 8u64..=128) {
        let eps = 1.0 / inv_eps as f64;
        let mut eh = EhCount::new(n_max, eps).unwrap();
        let mut oracle = ExactCount::new(n_max);
        for op in &ops {
            match op {
                BitOp::Push(b) => {
                    eh.push_bit(*b);
                    oracle.push_bit(*b);
                }
                BitOp::Query(frac) => {
                    let n = 1 + (*frac as u64 * (n_max - 1)) / 255;
                    let actual = oracle.query(n);
                    let est = eh.query(n).unwrap();
                    prop_assert!(est.brackets(actual));
                    prop_assert!(est.relative_error(actual) <= eps + 1e-9);
                }
                BitOp::Roundtrip => {}
                BitOp::SkipZeros(k) => {
                    for _ in 0..*k {
                        eh.push_bit(false);
                        oracle.push_bit(false);
                    }
                }
            }
        }
    }

    /// SumWave and EhSum against the exact oracle, with round-trips.
    #[test]
    fn sum_differential(
        ops in prop::collection::vec(
            prop_oneof![
                6 => (0u64..=64).prop_map(Some),
                2 => Just(None), // query
            ],
            1..300,
        ),
        roundtrip_at in 0usize..300,
        inv_eps in 2u64..=8,
        n_max in 8u64..=64,
    ) {
        let eps = 1.0 / inv_eps as f64;
        let r = 64u64;
        let mut wave = SumWave::new(n_max, r, eps).unwrap();
        let mut eh = EhSum::new(n_max, r, eps).unwrap();
        let mut oracle = ExactSum::new(n_max);
        for (i, op) in ops.iter().enumerate() {
            if i == roundtrip_at {
                wave = SumWave::decode(&wave.encode()).unwrap();
            }
            match op {
                Some(v) => {
                    wave.push_value(*v).unwrap();
                    eh.push_value(*v).unwrap();
                    oracle.push_value(*v);
                }
                None => {
                    let actual = oracle.query(n_max);
                    let a = wave.query_max();
                    let b = eh.query(n_max).unwrap();
                    prop_assert!(a.brackets(actual));
                    prop_assert!(b.brackets(actual));
                    prop_assert!(a.relative_error(actual) <= eps + 1e-9);
                    prop_assert!(b.relative_error(actual) <= eps + 1e-9);
                }
            }
        }
    }

    /// Timestamped waves (count + sum) under random clocks with gaps,
    /// duplicates, and codec round-trips.
    #[test]
    fn timestamp_differential(
        steps in prop::collection::vec((0u64..4, 0u64..=31, prop::bool::ANY), 1..300),
        roundtrip_at in 0usize..300,
    ) {
        let (n, u, r, eps) = (32u64, 4_096u64, 31u64, 0.25);
        let mut cw = TimestampWave::new(n, u, eps).unwrap();
        let mut sw = TimestampSumWave::new(n, u, r, eps).unwrap();
        let mut items: Vec<(u64, u64, bool)> = Vec::new();
        let mut ts = 1u64;
        for (i, &(dt, v, bit)) in steps.iter().enumerate() {
            if i == roundtrip_at {
                cw = TimestampWave::decode(&cw.encode()).unwrap();
                sw = TimestampSumWave::decode(&sw.encode()).unwrap();
            }
            ts += dt;
            cw.push(ts, bit).unwrap();
            sw.push(ts, v).unwrap();
            items.push((ts, v, bit));

            let s = ts.saturating_sub(n - 1).max(1);
            let actual_count =
                items.iter().filter(|&&(t, _, b)| t >= s && b).count() as u64;
            let actual_sum: u64 = items
                .iter()
                .filter(|&&(t, _, _)| t >= s)
                .map(|&(_, v, _)| v)
                .sum();
            let ec = cw.query(n).unwrap();
            let es = sw.query(n).unwrap();
            prop_assert!(ec.brackets(actual_count), "{ec:?} vs {actual_count}");
            prop_assert!(es.brackets(actual_sum), "{es:?} vs {actual_sum}");
            prop_assert!(ec.relative_error(actual_count) <= eps + 1e-9);
            prop_assert!(es.relative_error(actual_sum) <= eps + 1e-9);
        }
    }
}

/// A long, seeded soak across all bit synopses at once (not proptest —
/// one deterministic heavy run that exercises deep expiry cycles).
#[test]
fn long_soak_all_bit_synopses() {
    let (eps, n_max) = (0.1, 512u64);
    let mut wave = DetWave::new(n_max, eps).unwrap();
    let mut eh = EhCount::new(n_max, eps).unwrap();
    let mut oracle = ExactCount::new(n_max);
    let mut src = Bernoulli::new(0.47, 2026);
    for step in 1..=200_000u64 {
        let b = src.next_bit();
        wave.push_bit(b);
        eh.push_bit(b);
        oracle.push_bit(b);
        if step % 1_001 == 0 {
            // Splice a codec round-trip mid-soak.
            wave = DetWave::decode(&wave.encode()).unwrap();
        }
        if step % 251 == 0 {
            for n in [1u64, 100, 511, 512] {
                let actual = oracle.query(n);
                assert!(wave.query(n).unwrap().relative_error(actual) <= eps + 1e-9);
                assert!(eh.query(n).unwrap().relative_error(actual) <= eps + 1e-9);
            }
        }
    }
}
