//! The network must be a transparent pipe: a client talking to a
//! loopback server must get exactly the answers a local engine gives
//! for the same stream, and the networked referee must reproduce the
//! in-process distributed-combine results.

use std::collections::HashMap;
use waves::net::{Client, Server, ServerConfig, SynopsisKind};
use waves::streamgen::KeyedWorkload;
use waves::{Bits, DetWave, Engine, EngineConfig, IngestRequest, WaveError};

fn server_on_ephemeral(shards: usize, window: u64, eps: f64) -> Server {
    let cfg = ServerConfig {
        engine: EngineConfig::builder()
            .num_shards(shards)
            .max_window(window)
            .eps(eps)
            .build(),
        read_timeout: None,
        ..Default::default()
    };
    Server::start("127.0.0.1:0", cfg).unwrap()
}

/// Every query answered over the wire equals the local engine oracle,
/// for every key the workload touched.
#[test]
fn networked_engine_matches_local_oracle() {
    let (num_keys, window, eps) = (200u64, 256u64, 0.2f64);
    let server = server_on_ephemeral(4, window, eps);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let local = Engine::new(
        EngineConfig::builder()
            .num_shards(4)
            .max_window(window)
            .eps(eps)
            .build(),
    )
    .unwrap();

    let mut workload = KeyedWorkload::new(num_keys, 16, 0.4, 7).with_hot_set(0.5, 8);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..30 {
        let batch = workload.next_packed_batch(64);
        for (key, _) in &batch {
            seen.insert(*key);
        }
        client.ingest(IngestRequest::batch(batch.clone())).unwrap();
        local
            .ingest(IngestRequest::batch(batch).blocking(true))
            .unwrap();
    }
    client.flush().unwrap();
    local.flush();

    for &key in &seen {
        for w in [1u64, window / 3, window] {
            let over_wire = client.query(key, w).unwrap();
            let oracle = local.query(key, w).unwrap();
            assert_eq!(over_wire, oracle, "key {key} window {w}");
        }
    }

    // Error answers must also travel typed: too-large window, unknown
    // key.
    assert_eq!(
        client.query(*seen.iter().next().unwrap(), window + 1),
        Err(WaveError::WindowTooLarge {
            requested: window + 1,
            max: window,
        })
    );
    assert_eq!(
        client.query(num_keys + 999, window),
        Err(WaveError::UnknownKey {
            key: num_keys + 999
        })
    );

    // Snapshot over the wire matches the server's own totals: same keys
    // the local oracle holds, queue drained after flush.
    let snap = client.snapshot().unwrap();
    assert_eq!(snap.keys(), local.snapshot().keys());
    assert!(snap.shards.iter().all(|s| s.queue_depth == 0));
}

/// The networked referee (push synopsis encodes, ask for a combine)
/// reproduces the in-process Scenario 1 result: per-party waves
/// combined by summing estimates and truth intervals.
#[test]
fn networked_referee_matches_in_process_combine() {
    let (window, eps, parties) = (128u64, 0.25f64, 4usize);
    let server = server_on_ephemeral(1, window, eps);
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Build per-party waves locally (the parties' workspaces), pushing
    // deterministic but distinct streams.
    let mut waves: Vec<DetWave> = (0..parties)
        .map(|_| {
            DetWave::builder()
                .max_window(window)
                .eps(eps)
                .build()
                .unwrap()
        })
        .collect();
    for (p, wave) in waves.iter_mut().enumerate() {
        for i in 0..400u64 {
            wave.push_bit((i + p as u64).is_multiple_of(p as u64 + 2));
        }
    }

    // In-process combine: the same rule the scenario drivers use.
    let expected = waves::combine_estimates(
        waves
            .iter()
            .map(|w| w.query(window).unwrap())
            .collect::<Vec<_>>(),
    );

    // Networked: each party ships its encode; the referee combines.
    for (p, wave) in waves.iter().enumerate() {
        client.push_det_wave(p as u64, wave).unwrap();
    }
    let combined = client.combine(window).unwrap();
    assert_eq!(combined, expected);
    assert_eq!(server.referee_parties(), parties);

    // Re-pushing a party overwrites its slot rather than double
    // counting.
    client.push_det_wave(0, &waves[0]).unwrap();
    assert_eq!(server.referee_parties(), parties);
    assert_eq!(client.combine(window).unwrap(), expected);

    // A combine window beyond the parties' max is a typed error, not a
    // wrong answer.
    assert_eq!(
        client.combine(window + 1),
        Err(WaveError::WindowTooLarge {
            requested: window + 1,
            max: window,
        })
    );
}

/// All four synopsis kinds can represent parties in one referee, and
/// the combined estimate is the sum of each synopsis's own answer.
#[test]
fn referee_mixes_synopsis_families() {
    let (window, eps) = (64u64, 0.25f64);
    let server = server_on_ephemeral(1, window, eps);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut det = DetWave::new(window, eps).unwrap();
    let mut sum = waves::SumWave::new(window, 16, eps).unwrap();
    let mut ehc = waves::EhCount::new(window, eps).unwrap();
    let mut ehs = waves::EhSum::new(window, 16, eps).unwrap();
    for i in 0..300u64 {
        det.push_bit(i % 2 == 0);
        sum.push_value(i % 5).unwrap();
        ehc.push_bit(i % 3 == 0);
        ehs.push_value(i % 7).unwrap();
    }

    client.push_det_wave(0, &det).unwrap();
    client.push_sum_wave(1, &sum).unwrap();
    client.push_eh_count(2, &ehc).unwrap();
    client.push_eh_sum(3, &ehs).unwrap();
    assert_eq!(server.referee_parties(), 4);

    let expected = waves::combine_estimates([
        det.query(window).unwrap(),
        sum.query(window).unwrap(),
        ehc.query(window).unwrap(),
        ehs.query(window).unwrap(),
    ]);
    assert_eq!(client.combine(window).unwrap(), expected);

    // Undecodable synopsis bytes (an empty encode can't even carry the
    // parameters) are rejected with a typed error and do not disturb
    // the registered parties.
    let err = client
        .push_synopsis(9, SynopsisKind::DetWave, Vec::new())
        .unwrap_err();
    assert!(matches!(err, WaveError::Io(_)), "{err:?}");
    assert_eq!(server.referee_parties(), 4);
}

/// Several clients on one server: concurrent ingest to disjoint keys,
/// then each client's view agrees with a merged local oracle.
#[test]
fn concurrent_clients_share_one_engine() {
    let (window, eps) = (128u64, 0.25f64);
    let server = server_on_ephemeral(2, window, eps);
    let addr = server.local_addr();

    let handles: Vec<_> = (0..4u64)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Each client owns keys c*100..c*100+10.
                for k in 0..10u64 {
                    let key = c * 100 + k;
                    let bits: Bits = (0..50).map(|i| (i + key) % 3 == 0).collect();
                    client.ingest(IngestRequest::of(key, bits)).unwrap();
                }
                client.flush().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // One more client verifies every key against a local wave.
    let mut client = Client::connect(addr).unwrap();
    let mut oracles: HashMap<u64, DetWave> = HashMap::new();
    for c in 0..4u64 {
        for k in 0..10u64 {
            let key = c * 100 + k;
            let wave = oracles
                .entry(key)
                .or_insert_with(|| DetWave::new(window, eps).unwrap());
            for i in 0..50u64 {
                wave.push_bit((i + key) % 3 == 0);
            }
            assert_eq!(
                client.query(key, window).unwrap(),
                wave.query(window).unwrap(),
                "key {key}"
            );
        }
    }
}
