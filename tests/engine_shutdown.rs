//! Engine lifecycle: dropping an engine with work still queued must
//! join every shard worker without deadlock, and `flush()` must be a
//! real barrier — after it, snapshots show empty queues no matter how
//! hard the ingest path was driven.

use std::time::{Duration, Instant};
use waves::net::{Client, Server, ServerConfig};
use waves::streamgen::KeyedWorkload;
use waves::{Engine, EngineConfig, IngestRequest};

fn cfg(shards: usize) -> EngineConfig {
    EngineConfig::builder()
        .num_shards(shards)
        .queue_capacity(64)
        .max_window(256)
        .eps(0.2)
        .build()
}

/// Drop with queued batches: the engine must come down promptly (the
/// workers drain or abandon their queues and join) rather than
/// deadlocking on channel teardown. Run on a watchdog thread so a
/// regression fails the test instead of wedging the suite.
#[test]
fn drop_with_queued_batches_joins_workers() {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for shards in [1usize, 2, 8] {
            let engine: Engine<waves::DetWave> = Engine::new(cfg(shards)).unwrap();
            let mut workload = KeyedWorkload::new(500, 32, 0.5, 23);
            // Stuff the queues using the non-blocking path; some of
            // these may be shed, which is fine — the point is queues
            // holding unprocessed batches at drop time.
            for _ in 0..200 {
                let _ = engine.ingest(IngestRequest::batch(workload.next_packed_batch(64)));
            }
            drop(engine);
        }
        done_tx.send(()).unwrap();
    });
    let budget = Duration::from_secs(30);
    assert!(
        done_rx.recv_timeout(budget).is_ok(),
        "engine drop deadlocked: workers not joined within {budget:?}"
    );
}

/// `flush()` after heavy batched ingest leaves every shard queue empty
/// in the very next snapshot, and the engine still answers queries.
#[test]
fn flush_after_heavy_ingest_leaves_queues_empty() {
    let engine: Engine<waves::DetWave> = Engine::new(cfg(4)).unwrap();
    let mut workload = KeyedWorkload::new(2_000, 16, 0.5, 29);
    for _ in 0..100 {
        engine
            .ingest(IngestRequest::batch(workload.next_packed_batch(128)).blocking(true))
            .unwrap();
    }
    engine.flush();
    let snap = engine.snapshot();
    for shard in &snap.shards {
        assert_eq!(
            shard.queue_depth, 0,
            "shard {} still has queued batches after flush",
            shard.shard
        );
    }
    assert!(snap.keys() > 0);
    // The flush barrier means a query now sees every ingested bit.
    let est = engine.query(0, 256);
    assert!(est.is_ok() || snap.keys() < 2_000, "{est:?}");
}

/// Repeated construct/drop cycles stay prompt — no fd/thread leak makes
/// later engines slower to come down than the first.
#[test]
fn repeated_lifecycle_is_prompt() {
    let mut worst = Duration::ZERO;
    for round in 0..20 {
        let engine: Engine<waves::DetWave> = Engine::new(cfg(4)).unwrap();
        let mut workload = KeyedWorkload::new(100, 16, 0.5, round);
        engine
            .ingest(IngestRequest::batch(workload.next_packed_batch(256)).blocking(true))
            .unwrap();
        let t0 = Instant::now();
        drop(engine);
        worst = worst.max(t0.elapsed());
    }
    assert!(
        worst < Duration::from_secs(5),
        "an engine took {worst:?} to drop"
    );
}

/// Count this process's open file descriptors. The readdir handle
/// itself shows up in the listing, but identically on every call, so
/// deltas are exact.
fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd").unwrap().count()
}

/// A full server lifecycle — listener, epoll fd, waker eventfd, served
/// connections — must return every descriptor on drop. Ten cycles with
/// live traffic land back at the baseline fd count.
#[test]
fn server_lifecycle_leaks_no_fds() {
    let server_cfg = || ServerConfig {
        engine: cfg(2),
        read_timeout: None,
        ..Default::default()
    };
    // Warm-up rounds absorb one-time allocations (lazy stdio, DNS-free
    // loopback setup, thread-local inits) before the baseline is taken.
    for _ in 0..2 {
        let server = Server::start("127.0.0.1:0", server_cfg()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.ping().unwrap();
        drop(client);
        drop(server);
    }
    let baseline = open_fds();
    for round in 0..10u64 {
        let server = Server::start("127.0.0.1:0", server_cfg()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .ingest(IngestRequest::of(round, [true, true, false]))
            .unwrap();
        client.flush().unwrap();
        assert_eq!(client.query(round, 256).unwrap().value, 2.0);
        drop(client);
        // Drop joins the event loop and workers; every socket, the
        // listener, the epoll instance, and the waker must close.
        drop(server);
        assert_eq!(
            open_fds(),
            baseline,
            "fd leak after lifecycle round {round}"
        );
    }
}

/// Shutdown with traffic still in flight comes down within the drain
/// deadline plus dispatch time — never hanging on an unread socket —
/// and still returns every fd.
#[test]
fn shutdown_drains_within_bounded_deadline() {
    let baseline = {
        // One throwaway cycle so lazy one-time fds don't skew the
        // post-shutdown comparison.
        let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        drop(server);
        open_fds()
    };
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            engine: cfg(2),
            drain_deadline: Duration::from_millis(250),
            ..Default::default()
        },
    )
    .unwrap();
    // A connection with requests written but replies never read: its
    // replies sit queued (kernel- or server-side) at shutdown time.
    let mut unread = std::net::TcpStream::connect(server.local_addr()).unwrap();
    {
        use std::io::Write;
        use waves::net::{Frame, FrameTag, WireCodec};
        for corr in 1..=8u64 {
            let bytes = WireCodec::encode_tagged(&Frame::Ping, FrameTag { trace: 0, corr });
            unread.write_all(&bytes).unwrap();
        }
        unread.flush().unwrap();
    }
    // Give the loop a moment to accept and dispatch some of the burst.
    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    server.shutdown();
    server.wait();
    let took = t0.elapsed();
    assert!(
        took < Duration::from_secs(5),
        "shutdown took {took:?}; the drain deadline is 250ms"
    );
    drop(unread);
    assert_eq!(
        open_fds(),
        baseline,
        "fds leaked across a draining shutdown"
    );
}
