//! Engine lifecycle: dropping an engine with work still queued must
//! join every shard worker without deadlock, and `flush()` must be a
//! real barrier — after it, snapshots show empty queues no matter how
//! hard the ingest path was driven.

use std::time::{Duration, Instant};
use waves::streamgen::KeyedWorkload;
use waves::{Engine, EngineConfig, IngestRequest};

fn cfg(shards: usize) -> EngineConfig {
    EngineConfig::builder()
        .num_shards(shards)
        .queue_capacity(64)
        .max_window(256)
        .eps(0.2)
        .build()
}

/// Drop with queued batches: the engine must come down promptly (the
/// workers drain or abandon their queues and join) rather than
/// deadlocking on channel teardown. Run on a watchdog thread so a
/// regression fails the test instead of wedging the suite.
#[test]
fn drop_with_queued_batches_joins_workers() {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for shards in [1usize, 2, 8] {
            let engine: Engine<waves::DetWave> = Engine::new(cfg(shards)).unwrap();
            let mut workload = KeyedWorkload::new(500, 32, 0.5, 23);
            // Stuff the queues using the non-blocking path; some of
            // these may be shed, which is fine — the point is queues
            // holding unprocessed batches at drop time.
            for _ in 0..200 {
                let _ = engine.ingest(IngestRequest::batch(workload.next_packed_batch(64)));
            }
            drop(engine);
        }
        done_tx.send(()).unwrap();
    });
    let budget = Duration::from_secs(30);
    assert!(
        done_rx.recv_timeout(budget).is_ok(),
        "engine drop deadlocked: workers not joined within {budget:?}"
    );
}

/// `flush()` after heavy batched ingest leaves every shard queue empty
/// in the very next snapshot, and the engine still answers queries.
#[test]
fn flush_after_heavy_ingest_leaves_queues_empty() {
    let engine: Engine<waves::DetWave> = Engine::new(cfg(4)).unwrap();
    let mut workload = KeyedWorkload::new(2_000, 16, 0.5, 29);
    for _ in 0..100 {
        engine
            .ingest(IngestRequest::batch(workload.next_packed_batch(128)).blocking(true))
            .unwrap();
    }
    engine.flush();
    let snap = engine.snapshot();
    for shard in &snap.shards {
        assert_eq!(
            shard.queue_depth, 0,
            "shard {} still has queued batches after flush",
            shard.shard
        );
    }
    assert!(snap.keys() > 0);
    // The flush barrier means a query now sees every ingested bit.
    let est = engine.query(0, 256);
    assert!(est.is_ok() || snap.keys() < 2_000, "{est:?}");
}

/// Repeated construct/drop cycles stay prompt — no fd/thread leak makes
/// later engines slower to come down than the first.
#[test]
fn repeated_lifecycle_is_prompt() {
    let mut worst = Duration::ZERO;
    for round in 0..20 {
        let engine: Engine<waves::DetWave> = Engine::new(cfg(4)).unwrap();
        let mut workload = KeyedWorkload::new(100, 16, 0.5, round);
        engine
            .ingest(IngestRequest::batch(workload.next_packed_batch(256)).blocking(true))
            .unwrap();
        let t0 = Instant::now();
        drop(engine);
        worst = worst.max(t0.elapsed());
    }
    assert!(
        worst < Duration::from_secs(5),
        "an engine took {worst:?} to drop"
    );
}
