//! The wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  0x57 0x41  (b"WA")
//! 2       1     version (currently 7)
//! 3       1     frame type (see the `TYPE_*` constants)
//! 4       4     payload length, u32 big-endian
//! 8       8     trace id, u64 big-endian (0 = request is untraced)
//! 16      8     correlation id, u64 big-endian (0 = unpipelined)
//! 24      len   payload
//! 24+len  4     CRC-32 of bytes [0, 24+len), u32 big-endian
//! ```
//!
//! The correlation id pairs pipelined responses with their requests: a
//! client may have many frames in flight on one connection, the server
//! may answer them in any order, and each response echoes the request's
//! correlation id verbatim (PROTOCOL.md §1.1a has the full rules).
//!
//! The fixed 24-byte header makes framing self-describing: a reader
//! pulls the header, validates magic/version, bounds-checks the
//! length against [`MAX_PAYLOAD_LEN`], then reads exactly `len` payload
//! bytes plus the 4-byte CRC trailer. Anything that fails those checks
//! is rejected *before* any allocation proportional to the claimed
//! length, so a corrupt or adversarial length field cannot OOM the
//! peer.
//!
//! The CRC-32 trailer (same IEEE 802.3 polynomial as the store's
//! on-disk records) covers header *and* payload, and is verified
//! before any payload field is interpreted. Wire version 1 had no
//! trailer, and the deterministic simulation harness (`waves-dst`)
//! caught the consequence: a single byte flipped in transit inside an
//! estimate reply's payload decoded silently into a wrong answer. With
//! the trailer, corruption anywhere in a frame surfaces as
//! [`FrameError::BadCrc`] — a typed error, never a wrong value.
//!
//! Payload scalars are big-endian; `f64` travels as `to_bits()`.
//! [`Frame::Ingest`] entry bodies are the one exception: they carry the
//! word-packed bit stream of [`waves_core::Bits`] as whole `u64` words
//! of 8 **little-endian** bytes each (LSB-first within each word), so a
//! received batch is applied 64 bits per instruction with no per-bit
//! re-marshalling — and the same bytes are what the engine's WAL
//! appends, so wire and disk stay byte-identical.
//! Synopsis payloads ([`Frame::PushSynopsis`]) carry the synopsis's own
//! compact bit-codec output **verbatim** — the wire layer never
//! re-encodes them, so a synopsis round-trips the network byte-for-byte
//! (property-tested in this crate for all four synopsis types).

use waves_core::bits::{byte_count, Bits};
use waves_core::codec::CodecError;
use waves_core::{DetWave, Estimate, SumWave, WaveError};
use waves_eh::{EhCount, EhSum};
use waves_engine::{EngineSnapshot, KeyedBits, ShardSnapshot};
use waves_store::crc::crc32;

/// First two header bytes of every frame.
pub const MAGIC: [u8; 2] = *b"WA";

/// Current protocol version. Bump on any incompatible layout change;
/// peers reject other versions with [`FrameError::BadVersion`].
/// Version 2 added the CRC-32 frame trailer; version 3 widened the
/// header from 8 to 16 bytes to carry a trace id (0 = untraced) so a
/// request's spans can be correlated across client and server; version
/// 4 switched `INGEST` entry bodies from MSB-first packed bytes to
/// LSB-first little-endian `u64` words (the [`waves_core::Bits`]
/// layout, shared with the store's WAL records); version 5 added the
/// `REPLICATE` request (`0x0A`), by which a cluster primary ships a
/// key's synopsis `encode()` bytes to its follower replicas; version 6
/// widened the header from 16 to 24 bytes to carry a correlation id
/// (0 = unpipelined) so requests can be pipelined and responses
/// completed out of order; version 7 added the `PUSH_DELTA` request
/// (`0x0B`), the continuous-monitoring push: a party ships its
/// synopsis only when local drift crosses its ε-slack budget, with a
/// per-party sequence number so the referee folds deltas exactly once
/// and in order.
pub const WIRE_VERSION: u8 = 7;

/// Fixed header size in bytes (magic + version + type + length +
/// trace id + correlation id).
pub const HEADER_LEN: usize = 24;

/// Size of the CRC-32 trailer that follows every payload.
pub const CRC_LEN: usize = 4;

/// Upper bound on a frame payload. A claimed length above this is
/// treated as corruption ([`FrameError::FrameTooLarge`]) rather than an
/// allocation request.
pub const MAX_PAYLOAD_LEN: usize = 64 << 20;

/// Cap on bits in a single ingest entry, so a corrupt bit count cannot
/// force a huge allocation before the byte-level bounds check.
const MAX_ENTRY_BITS: u64 = (MAX_PAYLOAD_LEN as u64) * 8;

// Request frame types (client -> server).
const TYPE_PING: u8 = 0x01;
const TYPE_INGEST: u8 = 0x02;
const TYPE_QUERY: u8 = 0x03;
const TYPE_FLUSH: u8 = 0x04;
const TYPE_SNAPSHOT: u8 = 0x05;
const TYPE_PUSH_SYNOPSIS: u8 = 0x06;
const TYPE_COMBINE: u8 = 0x07;
const TYPE_SHUTDOWN: u8 = 0x08;
const TYPE_STATS: u8 = 0x09;
const TYPE_REPLICATE: u8 = 0x0A;
const TYPE_PUSH_DELTA: u8 = 0x0B;

// Response frame types (server -> client). High bit set.
const TYPE_OK: u8 = 0x80;
const TYPE_PONG: u8 = 0x81;
const TYPE_ESTIMATE: u8 = 0x82;
const TYPE_SNAPSHOT_RESP: u8 = 0x83;
const TYPE_STATS_RESP: u8 = 0x84;
const TYPE_ERROR: u8 = 0x8F;

/// Which synopsis a [`Frame::PushSynopsis`] payload contains. The wire
/// byte is stable (part of the protocol); the payload bytes are the
/// synopsis's own `encode()` output, untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SynopsisKind {
    /// [`waves_core::DetWave`] (deterministic wave, Basic Counting).
    DetWave = 0,
    /// [`waves_core::SumWave`] (deterministic wave over sums).
    SumWave = 1,
    /// [`waves_eh::EhCount`] (exponential histogram, Basic Counting).
    EhCount = 2,
    /// [`waves_eh::EhSum`] (exponential histogram over sums).
    EhSum = 3,
}

impl SynopsisKind {
    fn from_wire(b: u8) -> Result<Self, FrameError> {
        match b {
            0 => Ok(SynopsisKind::DetWave),
            1 => Ok(SynopsisKind::SumWave),
            2 => Ok(SynopsisKind::EhCount),
            3 => Ok(SynopsisKind::EhSum),
            _ => Err(FrameError::Malformed("unknown synopsis kind")),
        }
    }
}

/// A decoded party synopsis held by the networked referee. Wraps the
/// four concrete synopsis types behind one query interface so the
/// referee can mix parties running different synopses.
#[derive(Debug, Clone)]
pub enum PartySynopsis {
    Det(DetWave),
    Sum(SumWave),
    EhCount(EhCount),
    EhSum(EhSum),
}

impl PartySynopsis {
    /// Decode the wire bytes for `kind` through the synopsis's own
    /// codec. Errors mean the payload did not survive transport (or the
    /// sender lied about the kind).
    pub fn decode(kind: SynopsisKind, bytes: &[u8]) -> Result<Self, CodecError> {
        Ok(match kind {
            SynopsisKind::DetWave => PartySynopsis::Det(DetWave::decode(bytes)?),
            SynopsisKind::SumWave => PartySynopsis::Sum(SumWave::decode(bytes)?),
            SynopsisKind::EhCount => PartySynopsis::EhCount(EhCount::decode(bytes)?),
            SynopsisKind::EhSum => PartySynopsis::EhSum(EhSum::decode(bytes)?),
        })
    }

    /// Answer a window query against whichever synopsis this is.
    pub fn query(&self, window: u64) -> Result<Estimate, WaveError> {
        match self {
            PartySynopsis::Det(w) => w.query(window),
            PartySynopsis::Sum(w) => w.query(window),
            PartySynopsis::EhCount(e) => e.query(window),
            PartySynopsis::EhSum(e) => e.query(window),
        }
    }

    /// The wire kind byte this synopsis travels under.
    pub fn kind(&self) -> SynopsisKind {
        match self {
            PartySynopsis::Det(_) => SynopsisKind::DetWave,
            PartySynopsis::Sum(_) => SynopsisKind::SumWave,
            PartySynopsis::EhCount(_) => SynopsisKind::EhCount,
            PartySynopsis::EhSum(_) => SynopsisKind::EhSum,
        }
    }
}

/// One protocol message. Requests flow client -> server, responses
/// server -> client; [`WireCodec`] maps each variant to exactly one
/// frame type byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // ---- requests ----
    /// Liveness probe; the server answers [`Frame::Pong`].
    Ping,
    /// A batch of keyed word-packed bit runs for the serving engine.
    Ingest(Vec<KeyedBits>),
    /// Window query against one key's synopsis.
    Query { key: u64, window: u64 },
    /// Barrier: drain all shard queues before replying.
    Flush,
    /// Ask for the engine's [`EngineSnapshot`].
    Snapshot,
    /// A party pushes its synopsis encode to the networked referee.
    PushSynopsis {
        party: u64,
        kind: SynopsisKind,
        bytes: Vec<u8>,
    },
    /// Referee combine: query every pushed party synopsis at `window`
    /// and sum the estimates (the paper's additive combine rule).
    Combine { window: u64 },
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
    /// Ask for the server's live [`waves_obs::MetricsSnapshot`].
    Stats,
    /// A cluster primary ships one key's synopsis `encode()` bytes to a
    /// follower replica, which installs them over its local state for
    /// that key. Same payload shape as [`Frame::PushSynopsis`], but the
    /// receiver *replaces* engine state instead of filing a referee
    /// entry — replication, not aggregation.
    Replicate {
        key: u64,
        kind: SynopsisKind,
        bytes: Vec<u8>,
    },
    /// Continuous-monitoring push (wire v7): a party whose local drift
    /// crossed its ε-slack budget ships its current synopsis encode to
    /// the referee. `seq` is a per-party monotone sequence number — the
    /// receiver installs the delta only if it advances the highest seen
    /// for `party`, so retries and late reordered deltas are no-ops
    /// (still answered [`Frame::Ok`], which is what makes the request
    /// idempotent). `slack` carries the party's drift budget so the
    /// referee can report a staleness bound without out-of-band
    /// configuration.
    PushDelta {
        party: u64,
        seq: u64,
        slack: f64,
        kind: SynopsisKind,
        bytes: Vec<u8>,
    },

    // ---- responses ----
    /// Generic success for requests with no payload to return.
    Ok,
    /// Answer to [`Frame::Ping`].
    Pong,
    /// Answer to [`Frame::Query`] / [`Frame::Combine`].
    EstimateResp(Estimate),
    /// Answer to [`Frame::Snapshot`].
    SnapshotResp(EngineSnapshot),
    /// Answer to [`Frame::Stats`]: the server's metrics snapshot as the
    /// JSON text produced by `MetricsSnapshot::to_json`. It travels as
    /// text (not a binary struct) so the schema can grow — new counters,
    /// new histogram fields — without a wire version bump; unknown
    /// fields are simply dropped by `MetricsSnapshot::from_json`.
    StatsResp(String),
    /// The request failed; carries the server-side [`WaveError`].
    ErrorResp(WaveError),
}

/// Why a byte sequence failed to parse as a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic,
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Frame type byte names no known frame.
    UnknownType(u8),
    /// Claimed payload length exceeds [`MAX_PAYLOAD_LEN`].
    FrameTooLarge(u32),
    /// The buffer ended before the frame did.
    Truncated,
    /// The CRC-32 trailer did not match the header + payload bytes.
    BadCrc { expected: u32, got: u32 },
    /// Structurally valid frame whose payload contents are nonsense.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            FrameError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            FrameError::FrameTooLarge(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds cap {MAX_PAYLOAD_LEN}"
                )
            }
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadCrc { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: trailer {expected:#010x}, computed {got:#010x}"
                )
            }
            FrameError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for std::io::Error {
    fn from(e: FrameError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

// ---------------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------------

struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing payload bytes"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

// ---------------------------------------------------------------------------
// WaveError <-> wire
// ---------------------------------------------------------------------------

// Error codes carried in an ERROR frame payload: code u8, two u64 args
// (f64 args travel as to_bits), then a length-prefixed utf-8 detail
// string used only by the opaque codes.
const ERR_INVALID_EPSILON: u8 = 1;
const ERR_INVALID_DELTA: u8 = 2;
const ERR_INVALID_WINDOW: u8 = 3;
const ERR_WINDOW_TOO_LARGE: u8 = 4;
const ERR_VALUE_TOO_LARGE: u8 = 5;
const ERR_POSITION_REGRESSED: u8 = 6;
const ERR_TOO_MANY_ITEMS: u8 = 7;
const ERR_INVALID_QUANTILE: u8 = 8;
const ERR_BACKPRESSURE: u8 = 9;
const ERR_UNKNOWN_KEY: u8 = 10;
const ERR_REMOTE: u8 = 11;

fn encode_error(e: &WaveError, out: &mut Vec<u8>) {
    let (code, a, b, msg): (u8, u64, u64, String) = match e {
        WaveError::InvalidEpsilon(x) => (ERR_INVALID_EPSILON, x.to_bits(), 0, String::new()),
        WaveError::InvalidDelta(x) => (ERR_INVALID_DELTA, x.to_bits(), 0, String::new()),
        WaveError::InvalidWindow(n) => (ERR_INVALID_WINDOW, *n, 0, String::new()),
        WaveError::WindowTooLarge { requested, max } => {
            (ERR_WINDOW_TOO_LARGE, *requested, *max, String::new())
        }
        WaveError::ValueTooLarge { value, max } => {
            (ERR_VALUE_TOO_LARGE, *value, *max, String::new())
        }
        WaveError::PositionRegressed { last, got } => {
            (ERR_POSITION_REGRESSED, *last, *got, String::new())
        }
        WaveError::TooManyItemsInWindow { bound } => (ERR_TOO_MANY_ITEMS, *bound, 0, String::new()),
        WaveError::InvalidQuantile(q) => (ERR_INVALID_QUANTILE, q.to_bits(), 0, String::new()),
        WaveError::Backpressure { shard } => (ERR_BACKPRESSURE, *shard as u64, 0, String::new()),
        WaveError::UnknownKey { key } => (ERR_UNKNOWN_KEY, *key, 0, String::new()),
        // The io::Error payload and the &'static str op name cannot
        // cross the wire structurally; they travel as text and decode
        // to an opaque remote error.
        WaveError::Io(_) | WaveError::Timeout { .. } => (ERR_REMOTE, 0, 0, e.to_string()),
        // `WaveError` is non_exhaustive: future variants degrade to the
        // opaque remote code rather than breaking the protocol.
        other => (ERR_REMOTE, 0, 0, other.to_string()),
    };
    out.push(code);
    put_u64(out, a);
    put_u64(out, b);
    let msg = msg.as_bytes();
    let len = msg.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.extend_from_slice(&msg[..len]);
}

fn decode_error(r: &mut PayloadReader<'_>) -> Result<WaveError, FrameError> {
    let code = r.u8()?;
    let a = r.u64()?;
    let b = r.u64()?;
    let msg_len = u16::from_be_bytes(r.take(2)?.try_into().unwrap()) as usize;
    let msg = String::from_utf8_lossy(r.take(msg_len)?).into_owned();
    Ok(match code {
        ERR_INVALID_EPSILON => WaveError::InvalidEpsilon(f64::from_bits(a)),
        ERR_INVALID_DELTA => WaveError::InvalidDelta(f64::from_bits(a)),
        ERR_INVALID_WINDOW => WaveError::InvalidWindow(a),
        ERR_WINDOW_TOO_LARGE => WaveError::WindowTooLarge {
            requested: a,
            max: b,
        },
        ERR_VALUE_TOO_LARGE => WaveError::ValueTooLarge { value: a, max: b },
        ERR_POSITION_REGRESSED => WaveError::PositionRegressed { last: a, got: b },
        ERR_TOO_MANY_ITEMS => WaveError::TooManyItemsInWindow { bound: a },
        ERR_INVALID_QUANTILE => WaveError::InvalidQuantile(f64::from_bits(a)),
        ERR_BACKPRESSURE => WaveError::Backpressure { shard: a as usize },
        ERR_UNKNOWN_KEY => WaveError::UnknownKey { key: a },
        _ => WaveError::io(std::io::Error::other(format!("remote error: {msg}"))),
    })
}

// ---------------------------------------------------------------------------
// WireCodec
// ---------------------------------------------------------------------------

/// The per-frame header metadata that rides beside the payload: the
/// trace id (0 = untraced) and the correlation id (0 = unpipelined).
/// Responses echo both fields of the request they answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameTag {
    pub trace: u64,
    pub corr: u64,
}

/// Stateless encoder/decoder between [`Frame`]s and wire bytes, plus
/// blocking stream helpers used by the client and server.
pub struct WireCodec;

impl WireCodec {
    /// Serialize an untraced, unpipelined frame (header trace and
    /// correlation ids 0): header, payload, CRC-32 trailer, ready to
    /// write.
    pub fn encode(frame: &Frame) -> Vec<u8> {
        Self::encode_tagged(frame, FrameTag::default())
    }

    /// Serialize a frame carrying `trace` in the header's trace-id
    /// field and correlation id 0. Pass 0 for an untraced request
    /// (what [`WireCodec::encode`] does).
    pub fn encode_traced(frame: &Frame, trace: u64) -> Vec<u8> {
        Self::encode_tagged(frame, FrameTag { trace, corr: 0 })
    }

    /// Serialize a frame with the full header tag (trace id and
    /// correlation id).
    pub fn encode_tagged(frame: &Frame, tag: FrameTag) -> Vec<u8> {
        let (ty, payload) = Self::encode_payload(frame);
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CRC_LEN);
        out.extend_from_slice(&MAGIC);
        out.push(WIRE_VERSION);
        out.push(ty);
        put_u32(&mut out, payload.len() as u32);
        put_u64(&mut out, tag.trace);
        put_u64(&mut out, tag.corr);
        out.extend_from_slice(&payload);
        let sum = crc32(&out);
        put_u32(&mut out, sum);
        out
    }

    fn encode_payload(frame: &Frame) -> (u8, Vec<u8>) {
        let mut p = Vec::new();
        let ty = match frame {
            Frame::Ping => TYPE_PING,
            Frame::Flush => TYPE_FLUSH,
            Frame::Snapshot => TYPE_SNAPSHOT,
            Frame::Shutdown => TYPE_SHUTDOWN,
            Frame::Stats => TYPE_STATS,
            Frame::Ok => TYPE_OK,
            Frame::Pong => TYPE_PONG,
            Frame::StatsResp(json) => {
                p.extend_from_slice(json.as_bytes());
                TYPE_STATS_RESP
            }
            Frame::Ingest(batch) => {
                put_u32(&mut p, batch.len() as u32);
                for (key, bits) in batch {
                    put_u64(&mut p, *key);
                    put_u64(&mut p, bits.len());
                    bits.write_le_bytes(&mut p);
                }
                TYPE_INGEST
            }
            Frame::Query { key, window } => {
                put_u64(&mut p, *key);
                put_u64(&mut p, *window);
                TYPE_QUERY
            }
            Frame::PushSynopsis { party, kind, bytes } => {
                put_u64(&mut p, *party);
                p.push(*kind as u8);
                put_u32(&mut p, bytes.len() as u32);
                p.extend_from_slice(bytes);
                TYPE_PUSH_SYNOPSIS
            }
            Frame::Replicate { key, kind, bytes } => {
                put_u64(&mut p, *key);
                p.push(*kind as u8);
                put_u32(&mut p, bytes.len() as u32);
                p.extend_from_slice(bytes);
                TYPE_REPLICATE
            }
            Frame::PushDelta {
                party,
                seq,
                slack,
                kind,
                bytes,
            } => {
                put_u64(&mut p, *party);
                put_u64(&mut p, *seq);
                put_u64(&mut p, slack.to_bits());
                p.push(*kind as u8);
                put_u32(&mut p, bytes.len() as u32);
                p.extend_from_slice(bytes);
                TYPE_PUSH_DELTA
            }
            Frame::Combine { window } => {
                put_u64(&mut p, *window);
                TYPE_COMBINE
            }
            Frame::EstimateResp(e) => {
                put_u64(&mut p, e.value.to_bits());
                put_u64(&mut p, e.lo);
                put_u64(&mut p, e.hi);
                p.push(e.exact as u8);
                TYPE_ESTIMATE
            }
            Frame::SnapshotResp(s) => {
                put_u64(&mut p, s.dropped_items);
                put_u64(&mut p, s.backpressure_events);
                put_u32(&mut p, s.shards.len() as u32);
                for sh in &s.shards {
                    put_u64(&mut p, sh.keys as u64);
                    put_u64(&mut p, sh.resident_bytes as u64);
                    put_u64(&mut p, sh.synopsis_bits);
                    put_u64(&mut p, sh.entries as u64);
                    put_u64(&mut p, sh.queue_depth as u64);
                }
                TYPE_SNAPSHOT_RESP
            }
            Frame::ErrorResp(e) => {
                encode_error(e, &mut p);
                TYPE_ERROR
            }
        };
        (ty, p)
    }

    /// Parse one frame from the front of `buf`. Returns the frame and
    /// the number of bytes it occupied (so a buffer holding several
    /// frames can be walked). The header's trace and correlation ids
    /// are discarded; use [`WireCodec::decode_tagged`] to keep them.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        let (frame, used, _tag) = Self::decode_tagged(buf)?;
        Ok((frame, used))
    }

    /// Parse one frame from the front of `buf`, also returning the
    /// header's trace id (0 when the sender was untraced). The
    /// correlation id is discarded.
    pub fn decode_traced(buf: &[u8]) -> Result<(Frame, usize, u64), FrameError> {
        let (frame, used, tag) = Self::decode_tagged(buf)?;
        Ok((frame, used, tag.trace))
    }

    /// Parse one frame from the front of `buf`, also returning the full
    /// header tag. [`FrameError::Truncated`] means "feed me more bytes"
    /// — the incremental-reassembly contract the event-loop server's
    /// read path is built on.
    pub fn decode_tagged(buf: &[u8]) -> Result<(Frame, usize, FrameTag), FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        if buf[0..2] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        if buf[2] != WIRE_VERSION {
            return Err(FrameError::BadVersion(buf[2]));
        }
        let ty = buf[3];
        let len = u32::from_be_bytes(buf[4..8].try_into().unwrap());
        if len as usize > MAX_PAYLOAD_LEN {
            return Err(FrameError::FrameTooLarge(len));
        }
        let trace = u64::from_be_bytes(buf[8..16].try_into().unwrap());
        let corr = u64::from_be_bytes(buf[16..24].try_into().unwrap());
        let body_end = HEADER_LEN + len as usize;
        let total = body_end + CRC_LEN;
        if buf.len() < total {
            return Err(FrameError::Truncated);
        }
        let expected = u32::from_be_bytes(buf[body_end..total].try_into().unwrap());
        let got = crc32(&buf[..body_end]);
        if got != expected {
            return Err(FrameError::BadCrc { expected, got });
        }
        let frame = Self::decode_payload(ty, &buf[HEADER_LEN..body_end])?;
        Ok((frame, total, FrameTag { trace, corr }))
    }

    fn decode_payload(ty: u8, payload: &[u8]) -> Result<Frame, FrameError> {
        let mut r = PayloadReader::new(payload);
        let frame = match ty {
            TYPE_PING => Frame::Ping,
            TYPE_FLUSH => Frame::Flush,
            TYPE_SNAPSHOT => Frame::Snapshot,
            TYPE_SHUTDOWN => Frame::Shutdown,
            TYPE_STATS => Frame::Stats,
            TYPE_OK => Frame::Ok,
            TYPE_PONG => Frame::Pong,
            TYPE_STATS_RESP => {
                let n = r.remaining();
                let json = std::str::from_utf8(r.take(n)?)
                    .map_err(|_| FrameError::Malformed("stats response not utf-8"))?;
                Frame::StatsResp(json.to_owned())
            }
            TYPE_INGEST => {
                let n = r.u32()? as usize;
                let mut batch = Vec::new();
                for _ in 0..n {
                    let key = r.u64()?;
                    let nbits = r.u64()?;
                    if nbits > MAX_ENTRY_BITS {
                        return Err(FrameError::Malformed("ingest entry bit count"));
                    }
                    let packed = r.take(byte_count(nbits))?;
                    let bits = Bits::from_le_bytes(packed, nbits)
                        .ok_or(FrameError::Malformed("ingest entry bits"))?;
                    batch.push((key, bits));
                }
                Frame::Ingest(batch)
            }
            TYPE_QUERY => Frame::Query {
                key: r.u64()?,
                window: r.u64()?,
            },
            TYPE_PUSH_SYNOPSIS => {
                let party = r.u64()?;
                let kind = SynopsisKind::from_wire(r.u8()?)?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?.to_vec();
                Frame::PushSynopsis { party, kind, bytes }
            }
            TYPE_REPLICATE => {
                let key = r.u64()?;
                let kind = SynopsisKind::from_wire(r.u8()?)?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?.to_vec();
                Frame::Replicate { key, kind, bytes }
            }
            TYPE_PUSH_DELTA => {
                let party = r.u64()?;
                let seq = r.u64()?;
                let slack = r.f64()?;
                if !slack.is_finite() || slack < 0.0 {
                    return Err(FrameError::Malformed("push delta slack"));
                }
                let kind = SynopsisKind::from_wire(r.u8()?)?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?.to_vec();
                Frame::PushDelta {
                    party,
                    seq,
                    slack,
                    kind,
                    bytes,
                }
            }
            TYPE_COMBINE => Frame::Combine { window: r.u64()? },
            TYPE_ESTIMATE => {
                let value = r.f64()?;
                let lo = r.u64()?;
                let hi = r.u64()?;
                let exact = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::Malformed("estimate exact flag")),
                };
                Frame::EstimateResp(Estimate {
                    value,
                    lo,
                    hi,
                    exact,
                })
            }
            TYPE_SNAPSHOT_RESP => {
                let dropped_items = r.u64()?;
                let backpressure_events = r.u64()?;
                let n = r.u32()? as usize;
                if n > 1 << 20 {
                    return Err(FrameError::Malformed("snapshot shard count"));
                }
                let mut shards = Vec::with_capacity(n.min(1024));
                for shard in 0..n {
                    shards.push(ShardSnapshot {
                        shard,
                        keys: r.u64()? as usize,
                        resident_bytes: r.u64()? as usize,
                        synopsis_bits: r.u64()?,
                        entries: r.u64()? as usize,
                        queue_depth: r.u64()? as usize,
                    });
                }
                Frame::SnapshotResp(EngineSnapshot {
                    shards,
                    dropped_items,
                    backpressure_events,
                })
            }
            TYPE_ERROR => Frame::ErrorResp(decode_error(&mut r)?),
            other => return Err(FrameError::UnknownType(other)),
        };
        r.finish()?;
        Ok(frame)
    }

    /// Write one untraced frame (header trace id 0) to a blocking
    /// stream. Returns the bytes written (header + payload) so callers
    /// can feed byte counters.
    pub fn write_frame<W: std::io::Write>(w: &mut W, frame: &Frame) -> std::io::Result<usize> {
        Self::write_frame_traced(w, frame, 0)
    }

    /// Write one frame carrying `trace` in the header (correlation id
    /// 0) to a blocking stream.
    pub fn write_frame_traced<W: std::io::Write>(
        w: &mut W,
        frame: &Frame,
        trace: u64,
    ) -> std::io::Result<usize> {
        Self::write_frame_tagged(w, frame, FrameTag { trace, corr: 0 })
    }

    /// Write one frame carrying the full header tag to a blocking
    /// stream.
    pub fn write_frame_tagged<W: std::io::Write>(
        w: &mut W,
        frame: &Frame,
        tag: FrameTag,
    ) -> std::io::Result<usize> {
        let bytes = Self::encode_tagged(frame, tag);
        w.write_all(&bytes)?;
        w.flush()?;
        Ok(bytes.len())
    }

    /// Read one frame from a blocking stream, discarding the header's
    /// trace id. Returns the frame and the bytes consumed. Framing
    /// violations surface as `io::ErrorKind::InvalidData` wrapping the
    /// [`FrameError`]; a clean EOF before the first header byte
    /// surfaces as `UnexpectedEof`.
    pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<(Frame, usize)> {
        let (frame, used, _tag) = Self::read_frame_tagged(r)?;
        Ok((frame, used))
    }

    /// Read one frame from a blocking stream, also returning the
    /// header's trace id (0 when the sender was untraced). The
    /// correlation id is discarded.
    pub fn read_frame_traced<R: std::io::Read>(r: &mut R) -> std::io::Result<(Frame, usize, u64)> {
        let (frame, used, tag) = Self::read_frame_tagged(r)?;
        Ok((frame, used, tag.trace))
    }

    /// Read one frame from a blocking stream, also returning the full
    /// header tag.
    pub fn read_frame_tagged<R: std::io::Read>(
        r: &mut R,
    ) -> std::io::Result<(Frame, usize, FrameTag)> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        if header[0..2] != MAGIC {
            return Err(FrameError::BadMagic.into());
        }
        if header[2] != WIRE_VERSION {
            return Err(FrameError::BadVersion(header[2]).into());
        }
        let len = u32::from_be_bytes(header[4..8].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD_LEN {
            return Err(FrameError::FrameTooLarge(len as u32).into());
        }
        let trace = u64::from_be_bytes(header[8..16].try_into().unwrap());
        let corr = u64::from_be_bytes(header[16..24].try_into().unwrap());
        // One buffer holding header + payload + trailer so the CRC can
        // be computed over a contiguous byte range.
        let mut body = vec![0u8; HEADER_LEN + len + CRC_LEN];
        body[..HEADER_LEN].copy_from_slice(&header);
        r.read_exact(&mut body[HEADER_LEN..])?;
        let body_end = HEADER_LEN + len;
        let expected = u32::from_be_bytes(body[body_end..].try_into().unwrap());
        let got = crc32(&body[..body_end]);
        if got != expected {
            return Err(FrameError::BadCrc { expected, got }.into());
        }
        let frame = Self::decode_payload(header[3], &body[HEADER_LEN..body_end])?;
        Ok((frame, body.len(), FrameTag { trace, corr }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recompute the CRC trailer after deliberately mutating a frame's
    /// header or payload, so tests can probe post-checksum validation.
    fn reseal(bytes: &mut Vec<u8>) {
        bytes.truncate(bytes.len() - CRC_LEN);
        let sum = crc32(bytes);
        put_u32(bytes, sum);
    }

    fn roundtrip(frame: Frame) {
        let bytes = WireCodec::encode(&frame);
        let (decoded, used) = WireCodec::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
        // Stream path agrees with the buffer path.
        let mut cursor = std::io::Cursor::new(&bytes);
        let (streamed, n) = WireCodec::read_frame(&mut cursor).unwrap();
        assert_eq!(n, bytes.len());
        assert_eq!(streamed, frame);
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(Frame::Ping);
        roundtrip(Frame::Pong);
        roundtrip(Frame::Ok);
        roundtrip(Frame::Flush);
        roundtrip(Frame::Snapshot);
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::Stats);
        roundtrip(Frame::StatsResp(String::new()));
        roundtrip(Frame::StatsResp(
            r#"{"engine_items_ingested_total":7}"#.into(),
        ));
        roundtrip(Frame::Ingest(vec![
            (7, Bits::from([true, false, true])),
            (9, Bits::new()),
            (u64::MAX, Bits::from(vec![false; 17])),
            (1, Bits::from(vec![true; 64])),
            (2, Bits::from(vec![true; 65])),
        ]));
        roundtrip(Frame::Query {
            key: 42,
            window: 1024,
        });
        roundtrip(Frame::PushSynopsis {
            party: 3,
            kind: SynopsisKind::EhSum,
            bytes: vec![0xde, 0xad, 0xbe, 0xef],
        });
        roundtrip(Frame::Replicate {
            key: 11,
            kind: SynopsisKind::DetWave,
            bytes: vec![0x01, 0x02, 0x03],
        });
        roundtrip(Frame::Replicate {
            key: 0,
            kind: SynopsisKind::SumWave,
            bytes: Vec::new(),
        });
        roundtrip(Frame::PushDelta {
            party: 2,
            seq: 17,
            slack: 3.5,
            kind: SynopsisKind::DetWave,
            bytes: vec![0xca, 0xfe],
        });
        roundtrip(Frame::PushDelta {
            party: u64::MAX,
            seq: 1,
            slack: 0.0,
            kind: SynopsisKind::EhCount,
            bytes: Vec::new(),
        });
        roundtrip(Frame::Combine { window: 512 });
        roundtrip(Frame::EstimateResp(Estimate {
            value: 10.5,
            lo: 9,
            hi: 12,
            exact: false,
        }));
        roundtrip(Frame::SnapshotResp(EngineSnapshot {
            shards: vec![ShardSnapshot {
                shard: 0,
                keys: 3,
                resident_bytes: 1000,
                synopsis_bits: 512,
                entries: 64,
                queue_depth: 2,
            }],
            dropped_items: 5,
            backpressure_events: 1,
        }));
    }

    #[test]
    fn every_error_variant_roundtrips() {
        let errs = [
            WaveError::InvalidEpsilon(1.5),
            WaveError::InvalidDelta(0.0),
            WaveError::InvalidWindow(0),
            WaveError::WindowTooLarge {
                requested: 2000,
                max: 1024,
            },
            WaveError::ValueTooLarge { value: 99, max: 64 },
            WaveError::PositionRegressed { last: 10, got: 5 },
            WaveError::TooManyItemsInWindow { bound: 100 },
            WaveError::InvalidQuantile(0.0),
            WaveError::Backpressure { shard: 3 },
            WaveError::UnknownKey { key: 77 },
        ];
        for e in errs {
            let bytes = WireCodec::encode(&Frame::ErrorResp(e.clone()));
            let (decoded, _) = WireCodec::decode(&bytes).unwrap();
            assert_eq!(decoded, Frame::ErrorResp(e));
        }
        // Io and Timeout degrade to an opaque remote Io error carrying
        // the original Display text.
        let e = WaveError::Timeout {
            op: "read",
            millis: 250,
        };
        let bytes = WireCodec::encode(&Frame::ErrorResp(e));
        match WireCodec::decode(&bytes).unwrap().0 {
            Frame::ErrorResp(WaveError::Io(inner)) => {
                assert!(inner.to_string().contains("timed out after 250 ms"));
            }
            other => panic!("expected opaque remote error, got {other:?}"),
        }
    }

    #[test]
    fn header_rejections() {
        let good = WireCodec::encode(&Frame::Ping);
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(WireCodec::decode(&bad), Err(FrameError::BadMagic));
        let mut bad = good.clone();
        bad[2] = 99;
        assert_eq!(WireCodec::decode(&bad), Err(FrameError::BadVersion(99)));
        // An unknown type with a *valid* checksum (a well-formed frame
        // from a future protocol) is UnknownType; without resealing it
        // would be indistinguishable from corruption (BadCrc).
        let mut bad = good.clone();
        bad[3] = 0x7E;
        reseal(&mut bad);
        assert_eq!(WireCodec::decode(&bad), Err(FrameError::UnknownType(0x7E)));
        let mut bad = good.clone();
        bad[3] = 0x7E;
        assert!(matches!(
            WireCodec::decode(&bad),
            Err(FrameError::BadCrc { .. })
        ));
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            WireCodec::decode(&bad),
            Err(FrameError::FrameTooLarge(u32::MAX))
        );
        for cut in 0..good.len() {
            assert_eq!(WireCodec::decode(&good[..cut]), Err(FrameError::Truncated));
        }
    }

    #[test]
    fn trace_id_rides_the_header() {
        // Traced encode puts the id at header bytes [8, 16); both
        // decode paths hand it back alongside the frame.
        let frame = Frame::Query { key: 3, window: 64 };
        let bytes = WireCodec::encode_traced(&frame, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(&bytes[8..16], &0xDEAD_BEEF_CAFE_F00Du64.to_be_bytes());
        let (decoded, used, trace) = WireCodec::decode_traced(&bytes).unwrap();
        assert_eq!(
            (decoded, used, trace),
            (frame.clone(), bytes.len(), 0xDEAD_BEEF_CAFE_F00D)
        );

        let mut wire = Vec::new();
        let n = WireCodec::write_frame_traced(&mut wire, &frame, 42).unwrap();
        assert_eq!(n, wire.len());
        let mut cursor = std::io::Cursor::new(&wire);
        let (streamed, _, trace) = WireCodec::read_frame_traced(&mut cursor).unwrap();
        assert_eq!((streamed, trace), (frame.clone(), 42));

        // The untraced entry points write trace id 0 and discard it on
        // the way in, so callers that never opt into tracing see the
        // old API shape.
        let bytes = WireCodec::encode(&frame);
        assert_eq!(&bytes[8..16], &[0u8; 8]);
        let (_, _, trace) = WireCodec::decode_traced(&bytes).unwrap();
        assert_eq!(trace, 0);
    }

    #[test]
    fn correlation_id_rides_the_header() {
        // Wire v6: the correlation id occupies header bytes [16, 24)
        // and round-trips through both the buffer and stream paths, so
        // a pipelined client can match out-of-order responses back to
        // their requests.
        let frame = Frame::Query { key: 9, window: 32 };
        let tag = FrameTag {
            trace: 0x1111_2222_3333_4444,
            corr: 0xAABB_CCDD_EEFF_0102,
        };
        let bytes = WireCodec::encode_tagged(&frame, tag);
        assert_eq!(&bytes[8..16], &tag.trace.to_be_bytes());
        assert_eq!(&bytes[16..24], &tag.corr.to_be_bytes());
        let (decoded, used, got) = WireCodec::decode_tagged(&bytes).unwrap();
        assert_eq!((decoded, used, got), (frame.clone(), bytes.len(), tag));

        let mut wire = Vec::new();
        let n = WireCodec::write_frame_tagged(&mut wire, &frame, tag).unwrap();
        assert_eq!(n, wire.len());
        let mut cursor = std::io::Cursor::new(&wire);
        let (streamed, _, got) = WireCodec::read_frame_tagged(&mut cursor).unwrap();
        assert_eq!((streamed, got), (frame.clone(), tag));

        // Trace-only entry points leave the correlation id zeroed: a
        // one-shot exchange is just pipelining with a window of one.
        let bytes = WireCodec::encode_traced(&frame, 7);
        assert_eq!(&bytes[16..24], &[0u8; 8]);
        let (_, _, got) = WireCodec::decode_tagged(&bytes).unwrap();
        assert_eq!((got.trace, got.corr), (7, 0));
    }

    #[test]
    fn stats_resp_rejects_non_utf8() {
        let mut bytes = WireCodec::encode(&Frame::StatsResp("abcd".into()));
        let payload_at = HEADER_LEN;
        bytes[payload_at] = 0xFF;
        reseal(&mut bytes);
        assert_eq!(
            WireCodec::decode(&bytes),
            Err(FrameError::Malformed("stats response not utf-8"))
        );
    }

    #[test]
    fn trailing_garbage_in_payload_is_malformed() {
        let mut bytes = WireCodec::encode(&Frame::Ping);
        // Claim one payload byte and supply it: Ping takes none. The
        // frame is resealed so this exercises the payload check, not
        // the checksum.
        bytes.truncate(bytes.len() - CRC_LEN);
        bytes[4..8].copy_from_slice(&1u32.to_be_bytes());
        bytes.push(0xAA);
        let sum = crc32(&bytes);
        put_u32(&mut bytes, sum);
        assert_eq!(
            WireCodec::decode(&bytes),
            Err(FrameError::Malformed("trailing payload bytes"))
        );
    }

    /// The property the DST harness demanded: no single corrupt byte
    /// anywhere in a frame — header, payload, or trailer — may decode
    /// into a (possibly wrong) value. Wire version 1 failed this for
    /// payload bytes; an estimate reply with one flipped byte decoded
    /// silently into a wrong bound.
    #[test]
    fn any_single_byte_flip_is_rejected() {
        let good = WireCodec::encode(&Frame::EstimateResp(Estimate {
            value: 10.5,
            lo: 9,
            hi: 12,
            exact: false,
        }));
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            assert!(
                WireCodec::decode(&bad).is_err(),
                "flipped byte {i} still decoded"
            );
            let mut cursor = std::io::Cursor::new(&bad);
            assert!(
                WireCodec::read_frame(&mut cursor).is_err(),
                "flipped byte {i} still read from stream"
            );
        }
    }

    #[test]
    fn read_frame_maps_frame_errors_to_invalid_data() {
        let mut bytes = WireCodec::encode(&Frame::Ping);
        bytes[0] = b'X';
        let mut cursor = std::io::Cursor::new(&bytes);
        let err = WireCodec::read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Truncated stream: EOF mid-payload is UnexpectedEof.
        let good = WireCodec::encode(&Frame::Query { key: 1, window: 2 });
        let mut cursor = std::io::Cursor::new(&good[..good.len() - 3]);
        let err = WireCodec::read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    /// Wire v4 ingest entry bodies are whole little-endian words of the
    /// LSB-first bit stream: bit 0 is byte 0's 0x01, bit 9 is byte 1's
    /// 0x02, and the body is zero-padded to an 8-byte boundary.
    #[test]
    fn ingest_body_is_le_words_lsb_first() {
        let mut bits = Bits::new();
        bits.push(true);
        for _ in 0..8 {
            bits.push(false);
        }
        bits.push(true);
        let bytes = WireCodec::encode(&Frame::Ingest(vec![(5, bits)]));
        // header + count u32 + key u64 + bit count u64, then one word.
        let body_at = HEADER_LEN + 4 + 8 + 8;
        assert_eq!(
            &bytes[body_at..body_at + 8],
            &[0x01, 0x02, 0, 0, 0, 0, 0, 0]
        );
    }

    /// Wire v7 PUSH_DELTA payload layout is frozen: party u64, seq
    /// u64, slack f64-as-bits, kind byte, length-prefixed synopsis
    /// bytes — all big-endian.
    #[test]
    fn push_delta_payload_layout_is_stable() {
        let frame = Frame::PushDelta {
            party: 0x0102_0304_0506_0708,
            seq: 9,
            slack: 2.5,
            kind: SynopsisKind::DetWave,
            bytes: vec![0xAB, 0xCD],
        };
        let bytes = WireCodec::encode(&frame);
        assert_eq!(bytes[2], WIRE_VERSION);
        assert_eq!(bytes[3], TYPE_PUSH_DELTA);
        let p = HEADER_LEN;
        assert_eq!(&bytes[p..p + 8], &0x0102_0304_0506_0708u64.to_be_bytes());
        assert_eq!(&bytes[p + 8..p + 16], &9u64.to_be_bytes());
        assert_eq!(&bytes[p + 16..p + 24], &2.5f64.to_bits().to_be_bytes());
        assert_eq!(bytes[p + 24], 0, "DetWave kind byte");
        assert_eq!(&bytes[p + 25..p + 29], &2u32.to_be_bytes());
        assert_eq!(&bytes[p + 29..p + 31], &[0xAB, 0xCD]);

        // Non-finite or negative slack never decodes.
        let mut bad = WireCodec::encode(&frame);
        bad[p + 16..p + 24].copy_from_slice(&f64::NAN.to_bits().to_be_bytes());
        reseal(&mut bad);
        assert_eq!(
            WireCodec::decode(&bad),
            Err(FrameError::Malformed("push delta slack"))
        );
    }

    #[test]
    fn synopsis_kind_wire_bytes_are_stable() {
        for (kind, byte) in [
            (SynopsisKind::DetWave, 0u8),
            (SynopsisKind::SumWave, 1),
            (SynopsisKind::EhCount, 2),
            (SynopsisKind::EhSum, 3),
        ] {
            assert_eq!(kind as u8, byte);
            assert_eq!(SynopsisKind::from_wire(byte).unwrap(), kind);
        }
        assert!(SynopsisKind::from_wire(4).is_err());
    }
}
