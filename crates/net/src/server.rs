//! The TCP server: a [`waves_engine::Engine`] plus a networked referee
//! behind the frame protocol.
//!
//! One accept-loop thread hands each connection to its own handler
//! thread (blocking I/O, no async runtime — the workspace is std-only).
//! Handlers loop `read_frame -> dispatch -> write_frame`; a clean EOF
//! or any I/O error ends the connection without touching the engine.
//!
//! Shutdown never relies on a timeout: [`Server::shutdown`] flips the
//! stop flag, `shutdown(2)`s every live connection socket (unblocking
//! any handler parked in `read`), and pokes the listener with a
//! throwaway connect so the accept loop observes the flag. [`Drop`]
//! does the same and then joins every thread, so dropping a `Server`
//! cannot leak threads or leave the port bound.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use waves_core::{DetWave, WaveError};
use waves_distributed::combine_estimates;
use waves_engine::{Engine, EngineConfig};
use waves_obs::trace::{next_span_id, now_ns, Span, Stage, TraceCtx, TraceId, ROOT_SPAN_ID};
use waves_obs::{Event, HistId, MetricId, NoopRecorder, Recorder};

use crate::frame::{Frame, PartySynopsis, SynopsisKind, WireCodec};

/// Server configuration: the embedded engine's config plus transport
/// knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Configuration for the hosted serving engine.
    pub engine: EngineConfig,
    /// Per-connection idle timeout. `None` (the default) blocks until
    /// the peer sends or the server shuts the socket down — safe
    /// because shutdown force-closes sockets rather than waiting.
    /// `Some(d)` disconnects a connection that stays silent for `d`.
    pub read_timeout: Option<Duration>,
    /// Dispatch-duration threshold for the slow-request log. A request
    /// whose handler runs longer than this bumps
    /// `net_slow_requests_total` and emits a `net.slow_request` event
    /// naming the trace id (0 if the request was untraced). `None`
    /// disables the check.
    pub slow_request: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: EngineConfig::default(),
            read_timeout: None,
            slow_request: Some(Duration::from_millis(500)),
        }
    }
}

struct Shared<R: Recorder + Send + Sync + 'static> {
    engine: Engine<DetWave, R>,
    local_addr: SocketAddr,
    /// Party id -> last pushed synopsis, queried by `Combine`.
    referee: Mutex<HashMap<u64, PartySynopsis>>,
    rec: Arc<R>,
    slow_request: Option<Duration>,
    stopping: AtomicBool,
    /// One clone of each live connection's stream, kept so shutdown can
    /// unblock handlers parked in `read`. Handlers remove their entry
    /// on exit; `usize` keys the slot.
    conns: Mutex<HashMap<usize, TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Bind with [`Server::start`] (or
/// [`Server::start_recorded`] to wire `waves-obs` in), query
/// [`Server::local_addr`] for the actual port when binding port 0, and
/// either [`Server::wait`] for a client-driven [`Frame::Shutdown`] or
/// drop the handle to stop.
pub struct Server<R: Recorder + Send + Sync + 'static = NoopRecorder> {
    shared: Arc<Shared<R>>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server<NoopRecorder> {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving with observability disabled.
    pub fn start<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> Result<Self, WaveError> {
        Self::start_recorded(addr, cfg, Arc::new(NoopRecorder))
    }
}

impl<R: Recorder + Send + Sync + 'static> Server<R> {
    /// Bind `addr` and start serving, recording per-connection frame /
    /// byte / latency telemetry into `rec` (and threading it through to
    /// the hosted engine).
    pub fn start_recorded<A: ToSocketAddrs>(
        addr: A,
        cfg: ServerConfig,
        rec: Arc<R>,
    ) -> Result<Self, WaveError> {
        let listener = TcpListener::bind(addr).map_err(WaveError::io)?;
        let local_addr = listener.local_addr().map_err(WaveError::io)?;
        let (n, eps) = (cfg.engine.max_window, cfg.engine.eps);
        let engine = Engine::with_factory_recorded(
            cfg.engine.clone(),
            move || DetWave::new(n, eps),
            Arc::clone(&rec),
        )?;
        let shared = Arc::new(Shared {
            engine,
            local_addr,
            referee: Mutex::new(HashMap::new()),
            rec,
            slow_request: cfg.slow_request,
            stopping: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            let read_timeout = cfg.read_timeout;
            std::thread::Builder::new()
                .name("waves-net-accept".into())
                .spawn(move || accept_loop(listener, shared, read_timeout))
                .map_err(WaveError::io)?
        };
        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Parties currently registered with the networked referee.
    pub fn referee_parties(&self) -> usize {
        self.shared.referee.lock().unwrap().len()
    }

    /// The hosted engine. Lets a harness drive engine-level operations
    /// that have no wire frame — durable checkpoints and crash
    /// simulation (`Engine::crash_on_drop`) in `waves-dst`.
    pub fn engine(&self) -> &Engine<DetWave, R> {
        &self.shared.engine
    }

    /// Begin stopping: refuse new connections, unblock and end every
    /// live handler. Idempotent; returns without joining (see
    /// [`Server::wait`] / `Drop`).
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Block until the server stops (a client sent [`Frame::Shutdown`],
    /// or another thread called [`Server::shutdown`]), then join every
    /// handler thread.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handlers = std::mem::take(&mut *self.shared.handlers.lock().unwrap());
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl<R: Recorder + Send + Sync + 'static> Drop for Server<R> {
    fn drop(&mut self) {
        self.shutdown();
        self.join_all();
    }
}

fn accept_loop<R: Recorder + Send + Sync + 'static>(
    listener: TcpListener,
    shared: Arc<Shared<R>>,
    read_timeout: Option<Duration>,
) {
    for (id, stream) in listener.incoming().enumerate() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => break,
        };
        shared.rec.incr(MetricId::NetConnectionsAccepted, 1);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(read_timeout);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(id, clone);
        }
        let handler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("waves-net-conn-{id}"))
                .spawn(move || {
                    handle_connection(stream, &shared);
                    shared.conns.lock().unwrap().remove(&id);
                })
        };
        match handler {
            Ok(h) => shared.handlers.lock().unwrap().push(h),
            Err(_) => break,
        }
    }
}

fn handle_connection<R: Recorder + Send + Sync + 'static>(
    mut stream: TcpStream,
    shared: &Shared<R>,
) {
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let (frame, nread, trace) = match WireCodec::read_frame_traced(&mut stream) {
            Ok(ok) => ok,
            Err(e) => {
                // WouldBlock / TimedOut: the idle timeout fired —
                // disconnect (continuing could desync on a half-read
                // header). Clean EOF between frames is a normal
                // disconnect; a framing violation gets a best-effort
                // error reply before closing.
                if e.kind() == std::io::ErrorKind::InvalidData {
                    shared.rec.incr(MetricId::NetRequestErrors, 1);
                    let reply = Frame::ErrorResp(WaveError::io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad frame: {e}"),
                    )));
                    let _ = WireCodec::write_frame(&mut stream, &reply);
                }
                return;
            }
        };
        let enabled = shared.rec.enabled();
        if enabled {
            shared.rec.incr(MetricId::NetFramesReceived, 1);
            shared.rec.incr(MetricId::NetBytesReceived, nread as u64);
            shared.rec.observe(HistId::NetFrameBytes, nread as u64);
        }
        let started = enabled.then(Instant::now);
        let shutdown_after = matches!(frame, Frame::Shutdown);
        // A nonzero header trace id opts this request into tracing: the
        // dispatch span parents to the client's root span (by the
        // ROOT_SPAN_ID convention — only the trace id crossed the wire)
        // and the engine layers below parent to the dispatch span.
        let dispatch_span =
            (trace != 0 && shared.rec.trace_enabled()).then(|| (next_span_id(), now_ns()));
        let ctx = match dispatch_span {
            Some((id, _)) => TraceCtx {
                trace: TraceId(trace),
                parent: ROOT_SPAN_ID,
            }
            .child(id),
            None => TraceCtx::NONE,
        };
        let reply = dispatch(frame, shared, ctx);
        if let Some((id, t0)) = dispatch_span {
            shared.rec.span(Span {
                trace: TraceId(trace),
                id,
                parent: ROOT_SPAN_ID,
                stage: Stage::Dispatch,
                start_ns: t0,
                dur_ns: now_ns().saturating_sub(t0),
            });
        }
        if let Some(t0) = started {
            let elapsed = t0.elapsed();
            shared
                .rec
                .observe(HistId::NetServerFrameNs, elapsed.as_nanos() as u64);
            if shared.slow_request.is_some_and(|limit| elapsed > limit) {
                shared.rec.incr(MetricId::NetSlowRequests, 1);
                shared.rec.event(Event {
                    name: "net.slow_request",
                    fields: &[("trace", trace), ("dur_ns", elapsed.as_nanos() as u64)],
                });
            }
        }
        if matches!(reply, Frame::ErrorResp(_)) {
            shared.rec.incr(MetricId::NetRequestErrors, 1);
        }
        match WireCodec::write_frame_traced(&mut stream, &reply, trace) {
            Ok(nwrote) => {
                if enabled {
                    shared.rec.incr(MetricId::NetFramesSent, 1);
                    shared.rec.incr(MetricId::NetBytesSent, nwrote as u64);
                }
            }
            Err(_) => return,
        }
        if shutdown_after {
            let _ = stream.flush();
            // Trigger the full stop sequence: flag, socket shutdowns,
            // accept-loop poke. Joining is Drop's / `wait`'s job (we
            // *are* one of the handler threads being joined).
            begin_shutdown(shared);
            return;
        }
    }
}

/// The non-joining half of shutdown, safe to run from any thread
/// including a connection handler: flip the flag, `shutdown(2)` every
/// live connection so blocked reads return, and poke the listener so
/// the accept loop observes the flag.
fn begin_shutdown<R: Recorder + Send + Sync + 'static>(shared: &Shared<R>) {
    if shared.stopping.swap(true, Ordering::SeqCst) {
        return;
    }
    for conn in shared.conns.lock().unwrap().values() {
        let _ = conn.shutdown(Shutdown::Both);
    }
    // Failure is fine — the accept loop also exits on accept errors.
    let _ = TcpStream::connect_timeout(&shared.local_addr, Duration::from_secs(1));
}

fn dispatch<R: Recorder + Send + Sync + 'static>(
    frame: Frame,
    shared: &Shared<R>,
    ctx: TraceCtx,
) -> Frame {
    match frame {
        Frame::Ping => Frame::Pong,
        Frame::Shutdown => Frame::Ok,
        Frame::Flush => {
            shared.engine.flush();
            Frame::Ok
        }
        Frame::Snapshot => Frame::SnapshotResp(shared.engine.snapshot()),
        Frame::Stats => match shared.rec.metrics_snapshot() {
            Some(snap) => Frame::StatsResp(snap.to_json()),
            // NoopRecorder (and SpanRecorder-only) servers have no
            // registry to report; tell the client why instead of
            // returning an empty snapshot it would mistake for zeros.
            None => Frame::ErrorResp(WaveError::io(std::io::Error::other(
                "server was started without a metrics registry",
            ))),
        },
        Frame::Ingest(batch) => {
            match shared
                .engine
                .ingest(waves_engine::IngestRequest::batch(batch).traced(ctx))
            {
                Ok(()) => Frame::Ok,
                Err(e) => Frame::ErrorResp(e),
            }
        }
        Frame::Query { key, window } => match shared.engine.query_traced(key, window, ctx) {
            Ok(est) => Frame::EstimateResp(est),
            Err(e) => Frame::ErrorResp(e),
        },
        Frame::PushSynopsis { party, kind, bytes } => match PartySynopsis::decode(kind, &bytes) {
            Ok(syn) => {
                shared.referee.lock().unwrap().insert(party, syn);
                Frame::Ok
            }
            Err(e) => Frame::ErrorResp(WaveError::io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("synopsis decode failed: {e}"),
            ))),
        },
        Frame::Replicate { key, kind, bytes } => {
            // This server hosts a DetWave engine; a primary shipping any
            // other synopsis kind is misconfigured, and installing its
            // bytes would corrupt the key silently.
            if kind != SynopsisKind::DetWave {
                Frame::ErrorResp(WaveError::io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("replicate kind {kind:?} not hosted by this server"),
                )))
            } else {
                match shared.engine.install_synopsis(key, bytes) {
                    Ok(()) => Frame::Ok,
                    Err(e) => Frame::ErrorResp(e),
                }
            }
        }
        Frame::Combine { window } => {
            let referee = shared.referee.lock().unwrap();
            let mut reports = Vec::with_capacity(referee.len());
            for syn in referee.values() {
                match syn.query(window) {
                    Ok(est) => reports.push(est),
                    Err(e) => return Frame::ErrorResp(e),
                }
            }
            // The same additive combine rule the in-process scenario
            // drivers use (waves-distributed).
            Frame::EstimateResp(combine_estimates(reports))
        }
        // A response frame arriving as a request is a protocol error.
        Frame::Ok
        | Frame::Pong
        | Frame::EstimateResp(_)
        | Frame::SnapshotResp(_)
        | Frame::StatsResp(_)
        | Frame::ErrorResp(_) => Frame::ErrorResp(WaveError::io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response frame sent as request",
        ))),
    }
}
