//! The TCP server: a [`waves_engine::Engine`] plus a networked referee
//! behind the frame protocol.
//!
//! One event-loop thread owns every socket: a [`poll::Poller`]
//! (vendored epoll shim — the workspace is std-only) watches the
//! listener, a waker, and every live connection for readiness, and all
//! reads and writes happen non-blockingly on that thread. Connections
//! are state machines: bytes accumulate in a read buffer until
//! [`WireCodec::decode_tagged`] can peel a whole frame off the front
//! (wire v6 carries a correlation id, so many requests can be in
//! flight per connection), and responses queue in a per-connection
//! bounded write queue until the socket accepts them — possibly out of
//! request order.
//!
//! Frame *handling* runs on a small pool of dispatch workers, so a
//! slow engine operation never stalls the loop. The loop hands each
//! decoded frame to the pool over a channel; workers run
//! `dispatch`, encode the reply under the request's header tag, and
//! hand the bytes back over a completion channel, poking the loop's
//! waker. Backpressure is explicit at both ends: a connection with
//! [`ServerConfig::max_inflight`] requests outstanding has its read
//! interest dropped until replies drain, and one whose write queue
//! exceeds [`ServerConfig::max_write_queue`] bytes (a slow or stalled
//! reader) is evicted rather than buffered without bound.
//!
//! Shutdown ([`Server::shutdown`], a client [`Frame::Shutdown`], or
//! [`Drop`]) flips the stop flag and wakes the loop, which stops
//! reading, lets in-flight dispatches complete, and flushes write
//! queues under a bounded [`ServerConfig::drain_deadline`] before
//! closing every socket — so dropping a `Server` cannot leak threads,
//! file descriptors, or the bound port, and a replied shutdown frame
//! actually reaches its sender.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use poll::{Events, Interest, Poller, Token, Waker};
use waves_core::{DetWave, WaveError};
use waves_distributed::combine_estimates;
use waves_engine::{Engine, EngineConfig};
use waves_obs::trace::{next_span_id, now_ns, Span, Stage, TraceCtx, TraceId, ROOT_SPAN_ID};
use waves_obs::{Event, HistId, MetricId, NoopRecorder, Recorder};

use crate::frame::{Frame, FrameError, FrameTag, PartySynopsis, SynopsisKind, WireCodec};

/// Server configuration: the embedded engine's config plus transport
/// knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Configuration for the hosted serving engine.
    pub engine: EngineConfig,
    /// Per-connection idle timeout. `None` (the default) keeps silent
    /// connections open indefinitely — safe because shutdown closes
    /// sockets rather than waiting on them. `Some(d)` disconnects a
    /// connection that neither sends a byte nor has a request in
    /// flight for `d`.
    pub read_timeout: Option<Duration>,
    /// Dispatch-duration threshold for the slow-request log. A request
    /// whose handler runs longer than this bumps
    /// `net_slow_requests_total` and emits a `net.slow_request` event
    /// naming the trace id (0 if the request was untraced). `None`
    /// disables the check.
    pub slow_request: Option<Duration>,
    /// Accepted-connection cap. Connections beyond this are accepted
    /// and immediately closed (the kernel backlog would otherwise hold
    /// them in limbo). Sized under the process fd limit by default.
    pub max_connections: usize,
    /// Pipelining depth: requests a single connection may have in
    /// flight (decoded but not yet replied). At the cap the loop stops
    /// reading from that connection until replies drain.
    pub max_inflight: usize,
    /// Write-queue byte cap per connection. A peer that stops reading
    /// while responses accumulate past this is evicted
    /// (`net_connections_evicted_total`) instead of buffered without
    /// bound.
    pub max_write_queue: usize,
    /// Dispatch worker threads. `0` (the default) sizes from available
    /// parallelism, capped at 4 — frame handling is cheap; the engine
    /// has its own shard workers.
    pub dispatch_threads: usize,
    /// Shutdown flush budget: how long the event loop keeps flushing
    /// queued responses (and letting in-flight dispatches finish)
    /// after stop is requested, before force-closing sockets.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: EngineConfig::default(),
            read_timeout: None,
            slow_request: Some(Duration::from_millis(500)),
            max_connections: 10_240,
            max_inflight: 128,
            max_write_queue: 8 << 20,
            dispatch_threads: 0,
            drain_deadline: Duration::from_secs(1),
        }
    }
}

/// A decoded request travelling loop -> worker.
struct Job {
    conn: usize,
    frame: Frame,
    tag: FrameTag,
}

/// An encoded reply travelling worker -> loop.
struct Done {
    conn: usize,
    bytes: Vec<u8>,
    /// The request was [`Frame::Shutdown`]: stop the server once this
    /// reply is flushed to its sender.
    shutdown_after: bool,
}

struct Shared<R: Recorder + Send + Sync + 'static> {
    engine: Engine<DetWave, R>,
    /// Party id -> last pushed synopsis, queried by `Combine`.
    referee: Mutex<HashMap<u64, PartySynopsis>>,
    /// Party id -> (highest PUSH_DELTA sequence seen, declared slack).
    /// A delta whose sequence does not advance the entry is a no-op, so
    /// retried and late reordered pushes cannot roll the referee back.
    monitor: Mutex<HashMap<u64, (u64, f64)>>,
    rec: Arc<R>,
    slow_request: Option<Duration>,
    stopping: AtomicBool,
    /// Wakes the event loop out of `Poller::wait` — for completions
    /// and for external shutdown.
    waker: Arc<Waker>,
}

/// A running server. Bind with [`Server::start`] (or
/// [`Server::start_recorded`] to wire `waves-obs` in), query
/// [`Server::local_addr`] for the actual port when binding port 0, and
/// either [`Server::wait`] for a client-driven [`Frame::Shutdown`] or
/// drop the handle to stop.
pub struct Server<R: Recorder + Send + Sync + 'static = NoopRecorder> {
    shared: Arc<Shared<R>>,
    local_addr: SocketAddr,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server<NoopRecorder> {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving with observability disabled.
    pub fn start<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> Result<Self, WaveError> {
        Self::start_recorded(addr, cfg, Arc::new(NoopRecorder))
    }
}

impl<R: Recorder + Send + Sync + 'static> Server<R> {
    /// Bind `addr` and start serving, recording per-connection frame /
    /// byte / latency telemetry into `rec` (and threading it through to
    /// the hosted engine).
    pub fn start_recorded<A: ToSocketAddrs>(
        addr: A,
        cfg: ServerConfig,
        rec: Arc<R>,
    ) -> Result<Self, WaveError> {
        let listener = TcpListener::bind(addr).map_err(WaveError::io)?;
        listener.set_nonblocking(true).map_err(WaveError::io)?;
        let local_addr = listener.local_addr().map_err(WaveError::io)?;
        let (n, eps) = (cfg.engine.max_window, cfg.engine.eps);
        let engine = Engine::with_factory_recorded(
            cfg.engine.clone(),
            move || DetWave::new(n, eps),
            Arc::clone(&rec),
        )?;
        let poller = Poller::new().map_err(WaveError::io)?;
        let waker = Waker::new(&poller, WAKER).map_err(WaveError::io)?;
        let shared = Arc::new(Shared {
            engine,
            referee: Mutex::new(HashMap::new()),
            monitor: Mutex::new(HashMap::new()),
            rec,
            slow_request: cfg.slow_request,
            stopping: AtomicBool::new(false),
            waker,
        });

        let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<Done>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let threads = match cfg.dispatch_threads {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(4),
            n => n,
        };
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            let job_rx = Arc::clone(&job_rx);
            let done_tx = done_tx.clone();
            let h = std::thread::Builder::new()
                .name(format!("waves-net-dispatch-{i}"))
                .spawn(move || dispatch_worker(shared, job_rx, done_tx))
                .map_err(WaveError::io)?;
            workers.push(h);
        }
        drop(done_tx);

        let event_loop = {
            let shared = Arc::clone(&shared);
            let el = EventLoop {
                listener,
                poller,
                shared,
                job_tx,
                done_rx,
                conns: HashMap::new(),
                next_conn: 0,
                read_timeout: cfg.read_timeout,
                max_connections: cfg.max_connections,
                max_inflight: cfg.max_inflight.max(1),
                max_write_queue: cfg.max_write_queue.max(1),
                drain_deadline: cfg.drain_deadline,
            };
            std::thread::Builder::new()
                .name("waves-net-loop".into())
                .spawn(move || el.run())
                .map_err(WaveError::io)?
        };
        Ok(Server {
            shared,
            local_addr,
            event_loop: Some(event_loop),
            workers,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Parties currently registered with the networked referee.
    pub fn referee_parties(&self) -> usize {
        self.shared.referee.lock().unwrap().len()
    }

    /// Highest PUSH_DELTA sequence number seen from `party` (continuous
    /// monitoring), or `None` if the party has never pushed a delta.
    pub fn monitor_seq_of(&self, party: u64) -> Option<u64> {
        self.shared.monitor.lock().unwrap().get(&party).map(|e| e.0)
    }

    /// Sum of the slack budgets declared by parties that have pushed
    /// deltas: the staleness bound on `Combine` answers over them.
    pub fn monitor_slack_total(&self) -> f64 {
        self.shared
            .monitor
            .lock()
            .unwrap()
            .values()
            .map(|e| e.1)
            .sum()
    }

    /// The hosted engine. Lets a harness drive engine-level operations
    /// that have no wire frame — durable checkpoints and crash
    /// simulation (`Engine::crash_on_drop`) in `waves-dst`.
    pub fn engine(&self) -> &Engine<DetWave, R> {
        &self.shared.engine
    }

    /// Begin stopping: refuse new connections, stop reading, drain
    /// write queues under the configured deadline. Idempotent; returns
    /// without joining (see [`Server::wait`] / `Drop`).
    pub fn shutdown(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
    }

    /// Block until the server stops (a client sent [`Frame::Shutdown`],
    /// or another thread called [`Server::shutdown`]), then join the
    /// event loop and every dispatch worker.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<R: Recorder + Send + Sync + 'static> Drop for Server<R> {
    fn drop(&mut self) {
        self.shutdown();
        self.join_all();
    }
}

/// Poll token for the listening socket.
const LISTENER: Token = Token(usize::MAX);
/// Poll token for the loop waker's eventfd.
const WAKER: Token = Token(usize::MAX - 1);
/// Read chunk size; also the initial write burst granularity.
const READ_CHUNK: usize = 64 << 10;

/// One connection's state machine. All I/O on it is non-blocking and
/// happens on the event-loop thread; dispatch workers only ever see
/// decoded frames and produce encoded replies.
struct Conn {
    sock: TcpStream,
    /// Unparsed inbound bytes: a partial frame's prefix, or complete
    /// frames beyond the in-flight cap waiting for replies to drain.
    rbuf: Vec<u8>,
    /// Outbound frames not yet accepted by the socket, front first.
    wq: VecDeque<Vec<u8>>,
    /// Bytes across `wq` (minus `woff`), checked against the cap.
    wq_bytes: usize,
    /// Bytes of `wq.front()` already written.
    woff: usize,
    /// Requests decoded but not yet replied.
    inflight: usize,
    /// Read interest dropped: at the in-flight cap, after a framing
    /// violation, or while stopping.
    paused: bool,
    /// Peer closed its write half (clean EOF); no more requests, but
    /// queued replies still flush.
    read_closed: bool,
    /// Close once the write queue drains and nothing is in flight.
    closing: bool,
    /// This connection replied to [`Frame::Shutdown`]: once its write
    /// queue drains, stop the whole server.
    shutdown_after: bool,
    /// Last byte read or reply enqueued, for the idle timeout.
    last_activity: Instant,
    interest: Interest,
}

struct EventLoop<R: Recorder + Send + Sync + 'static> {
    listener: TcpListener,
    poller: Poller,
    shared: Arc<Shared<R>>,
    job_tx: Sender<Job>,
    done_rx: Receiver<Done>,
    conns: HashMap<usize, Conn>,
    next_conn: usize,
    read_timeout: Option<Duration>,
    max_connections: usize,
    max_inflight: usize,
    max_write_queue: usize,
    drain_deadline: Duration,
}

impl<R: Recorder + Send + Sync + 'static> EventLoop<R> {
    fn run(mut self) {
        let rec = Arc::clone(&self.shared.rec);
        if self
            .poller
            .register(&self.listener, LISTENER, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events = Events::with_capacity(1024);
        // Serving phase: until stop is requested.
        while !self.shared.stopping.load(Ordering::SeqCst) {
            // With an idle timeout configured the loop must wake on its
            // own to sweep silent connections; otherwise readiness (or
            // the waker) is the only schedule.
            let timeout = self.read_timeout.map(|d| d.min(Duration::from_millis(100)));
            let n = match self.poller.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => break,
            };
            if rec.enabled() {
                rec.incr(MetricId::PollWakeups, 1);
                rec.observe(HistId::PollEventsPerWake, n as u64);
            }
            // Re-check before touching sockets: a stop requested while
            // we slept must not race a request that arrived in the same
            // readiness batch into dispatch. Level triggering re-reports
            // anything unconsumed, so the batch isn't lost.
            if self.shared.stopping.load(Ordering::SeqCst) {
                break;
            }
            for ev in events.iter() {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKER => self.shared.waker.ack(),
                    Token(id) => self.conn_ready(id, ev.readable, ev.writable || ev.error),
                }
            }
            self.drain_completions();
            self.sweep_idle();
        }
        self.drain_and_close();
    }

    /// Accept until the listener would block. Beyond the connection
    /// cap, accept-and-close: leaving sockets in the backlog would
    /// stall clients invisibly rather than failing them fast.
    fn accept_ready(&mut self) {
        loop {
            let (sock, _) = match self.listener.accept() {
                Ok(ok) => ok,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.conns.len() >= self.max_connections {
                drop(sock);
                continue;
            }
            if sock.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = sock.set_nodelay(true);
            let id = self.next_conn;
            // Skip the reserved control tokens on wraparound.
            self.next_conn = self.next_conn.wrapping_add(1);
            if self.next_conn >= usize::MAX - 1 {
                self.next_conn = 0;
            }
            if self
                .poller
                .register(&sock, Token(id), Interest::READ)
                .is_err()
            {
                continue;
            }
            self.shared.rec.incr(MetricId::NetConnectionsAccepted, 1);
            self.conns.insert(
                id,
                Conn {
                    sock,
                    rbuf: Vec::new(),
                    wq: VecDeque::new(),
                    wq_bytes: 0,
                    woff: 0,
                    inflight: 0,
                    paused: false,
                    read_closed: false,
                    closing: false,
                    shutdown_after: false,
                    last_activity: Instant::now(),
                    interest: Interest::READ,
                },
            );
        }
    }

    fn conn_ready(&mut self, id: usize, readable: bool, writable: bool) {
        if readable && self.read_ready(id) {
            return; // connection closed
        }
        if writable {
            self.write_ready(id);
        }
    }

    /// Pull bytes and parse frames. Returns true if the connection was
    /// closed.
    fn read_ready(&mut self, id: usize) -> bool {
        let mut failed = false;
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                return true;
            };
            if conn.paused || conn.read_closed || conn.closing {
                return false;
            }
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match conn.sock.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                        conn.last_activity = Instant::now();
                        if n < chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if failed {
            self.close(id);
            return true;
        }
        self.parse_frames(id);
        self.finish_if_drained(id)
    }

    /// Peel complete frames off the connection's read buffer and hand
    /// them to the dispatch pool, stopping at the in-flight cap (the
    /// remainder stays buffered; [`EventLoop::drain_completions`]
    /// re-parses when replies free slots).
    fn parse_frames(&mut self, id: usize) {
        let mut error_reply = None;
        {
            let max_inflight = self.max_inflight;
            let poller = &self.poller;
            let job_tx = &self.job_tx;
            let rec = &self.shared.rec;
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let mut consumed = 0;
            while !conn.closing {
                if conn.inflight >= max_inflight {
                    if !conn.paused {
                        conn.paused = true;
                        set_interest(poller, conn, Token(id), false);
                    }
                    break;
                }
                match WireCodec::decode_tagged(&conn.rbuf[consumed..]) {
                    Ok((frame, used, tag)) => {
                        consumed += used;
                        conn.inflight += 1;
                        if rec.enabled() {
                            rec.incr(MetricId::NetFramesReceived, 1);
                            rec.incr(MetricId::NetBytesReceived, used as u64);
                            rec.observe(HistId::NetFrameBytes, used as u64);
                            rec.observe(HistId::NetInflightPerConn, conn.inflight as u64);
                        }
                        let _ = job_tx.send(Job {
                            conn: id,
                            frame,
                            tag,
                        });
                    }
                    Err(FrameError::Truncated) => break,
                    Err(e) => {
                        // Framing violation: a best-effort error reply,
                        // then close once it (and any in-flight
                        // replies) flush. The rest of the buffer is
                        // garbage.
                        rec.incr(MetricId::NetRequestErrors, 1);
                        let reply = Frame::ErrorResp(WaveError::io(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("bad frame: {e}"),
                        )));
                        error_reply = Some(WireCodec::encode_tagged(&reply, FrameTag::default()));
                        conn.rbuf.clear();
                        consumed = 0;
                        conn.closing = true;
                        if !conn.paused {
                            conn.paused = true;
                            set_interest(poller, conn, Token(id), false);
                        }
                        break;
                    }
                }
            }
            if consumed > 0 {
                conn.rbuf.drain(..consumed);
            }
        }
        if let Some(bytes) = error_reply {
            self.enqueue_reply(id, bytes);
        }
    }

    /// Queue an encoded reply on a connection, evicting the peer if
    /// its write queue is past the cap, then push bytes opportunistically.
    fn enqueue_reply(&mut self, id: usize, bytes: Vec<u8>) {
        let evict = {
            let rec = &self.shared.rec;
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.wq_bytes + bytes.len() > self.max_write_queue {
                rec.incr(MetricId::NetConnectionsEvicted, 1);
                rec.event(Event {
                    name: "net.conn_evicted",
                    fields: &[("queued_bytes", conn.wq_bytes as u64)],
                });
                true
            } else {
                conn.wq_bytes += bytes.len();
                conn.last_activity = Instant::now();
                if rec.enabled() {
                    rec.observe(HistId::NetWriteQueueBytes, conn.wq_bytes as u64);
                }
                conn.wq.push_back(bytes);
                false
            }
        };
        if evict {
            self.close(id);
        } else {
            self.write_ready(id);
        }
    }

    /// Flush the write queue as far as the socket allows, keep write
    /// interest only while bytes remain, and finish close/shutdown
    /// transitions once drained.
    fn write_ready(&mut self, id: usize) {
        let mut failed = false;
        {
            let rec = &self.shared.rec;
            let poller = &self.poller;
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            while let Some(front) = conn.wq.front() {
                match conn.sock.write(&front[conn.woff..]) {
                    Ok(n) => {
                        conn.woff += n;
                        conn.wq_bytes -= n;
                        if rec.enabled() {
                            rec.incr(MetricId::NetBytesSent, n as u64);
                        }
                        if conn.woff == front.len() {
                            conn.wq.pop_front();
                            conn.woff = 0;
                            rec.incr(MetricId::NetFramesSent, 1);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if !failed {
                set_interest(poller, conn, Token(id), !conn.paused && !conn.read_closed);
            }
        }
        if failed {
            self.close(id);
            return;
        }
        self.finish_if_drained(id);
    }

    /// Apply end-of-life transitions for a connection whose queues may
    /// have just emptied. Returns true if it was closed.
    fn finish_if_drained(&mut self, id: usize) -> bool {
        let should_close = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return true;
            };
            if !conn.wq.is_empty() || conn.inflight > 0 {
                return false;
            }
            if conn.shutdown_after {
                // The shutdown reply reached the kernel; now stop the
                // server. The drain phase closes this connection.
                self.shared.stopping.store(true, Ordering::SeqCst);
                conn.shutdown_after = false;
                conn.closing = true;
                return false;
            }
            // With the peer's write half closed, leftover buffered
            // bytes can never complete into a frame.
            conn.closing || conn.read_closed
        };
        if should_close {
            self.close(id);
            return true;
        }
        false
    }

    /// Absorb finished dispatches: enqueue replies, release in-flight
    /// slots, resume reading on connections that were at the cap.
    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            let id = done.conn;
            {
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue; // connection already gone; drop the reply
                };
                conn.inflight -= 1;
                if done.shutdown_after {
                    conn.shutdown_after = true;
                }
            }
            self.enqueue_reply(id, done.bytes);
            let resumed = {
                let poller = &self.poller;
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue; // evicted by the enqueue
                };
                if conn.paused && !conn.closing && conn.inflight < self.max_inflight {
                    conn.paused = false;
                    if !conn.read_closed {
                        set_interest(poller, conn, Token(id), true);
                    }
                    true
                } else {
                    false
                }
            };
            if resumed {
                // Frames may be sitting whole in the read buffer from
                // before the pause; the socket won't re-signal for them.
                self.parse_frames(id);
                self.finish_if_drained(id);
            }
        }
    }

    /// Disconnect connections that have been silent past the idle
    /// timeout with nothing in flight.
    fn sweep_idle(&mut self) {
        let Some(limit) = self.read_timeout else {
            return;
        };
        let now = Instant::now();
        let idle: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.inflight == 0 && c.wq.is_empty() && now.duration_since(c.last_activity) > limit
            })
            .map(|(id, _)| *id)
            .collect();
        for id in idle {
            self.close(id);
        }
    }

    fn close(&mut self, id: usize) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.poller.deregister(&conn.sock);
        }
    }

    /// The stop sequence: refuse new work, let in-flight dispatches
    /// finish, flush write queues under the drain deadline, then close
    /// everything. Dropping `job_tx` (when `self` drops) ends the
    /// dispatch workers.
    fn drain_and_close(&mut self) {
        let _ = self.poller.deregister(&self.listener);
        let ids: Vec<usize> = self.conns.keys().copied().collect();
        for id in ids {
            if let Some(conn) = self.conns.get_mut(&id) {
                if !conn.paused {
                    conn.paused = true;
                    set_interest(&self.poller, conn, Token(id), false);
                }
                conn.closing = true;
            }
            self.finish_if_drained(id);
        }
        let deadline = Instant::now() + self.drain_deadline;
        let mut events = Events::with_capacity(256);
        while !self.conns.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break; // force-close whatever is still queued
            }
            let timeout = (deadline - now).min(Duration::from_millis(20));
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            for ev in events.iter() {
                match ev.token {
                    LISTENER => {}
                    WAKER => self.shared.waker.ack(),
                    Token(id) => {
                        if ev.writable || ev.error {
                            self.write_ready(id);
                        }
                    }
                }
            }
            self.drain_completions();
        }
        let ids: Vec<usize> = self.conns.keys().copied().collect();
        for id in ids {
            self.close(id);
        }
    }
}

/// Reconcile a connection's epoll interest with its queue state:
/// writable while the queue holds bytes, readable per `want_read`.
fn set_interest(poller: &Poller, conn: &mut Conn, token: Token, want_read: bool) {
    let want = Interest {
        readable: want_read,
        writable: !conn.wq.is_empty(),
    };
    if want != conn.interest {
        conn.interest = want;
        let _ = poller.reregister(&conn.sock, token, want);
    }
}

/// A dispatch worker: decoded request in, encoded reply out. All the
/// per-request telemetry the threaded server kept inline lives here —
/// dispatch spans, slow-request accounting, server-side frame latency.
fn dispatch_worker<R: Recorder + Send + Sync + 'static>(
    shared: Arc<Shared<R>>,
    jobs: Arc<Mutex<Receiver<Job>>>,
    done: Sender<Done>,
) {
    loop {
        let job = match jobs.lock().unwrap().recv() {
            Ok(j) => j,
            Err(_) => return, // loop exited; no more work
        };
        let rec = &shared.rec;
        let enabled = rec.enabled();
        let started = enabled.then(Instant::now);
        let shutdown_after = matches!(job.frame, Frame::Shutdown);
        let trace = job.tag.trace;
        // A nonzero header trace id opts this request into tracing: the
        // dispatch span parents to the client's root span (by the
        // ROOT_SPAN_ID convention — only the trace id crossed the wire)
        // and the engine layers below parent to the dispatch span.
        let dispatch_span = (trace != 0 && rec.trace_enabled()).then(|| (next_span_id(), now_ns()));
        let ctx = match dispatch_span {
            Some((id, _)) => TraceCtx {
                trace: TraceId(trace),
                parent: ROOT_SPAN_ID,
            }
            .child(id),
            None => TraceCtx::NONE,
        };
        let reply = dispatch(job.frame, &shared, ctx);
        if let Some((id, t0)) = dispatch_span {
            rec.span(Span {
                trace: TraceId(trace),
                id,
                parent: ROOT_SPAN_ID,
                stage: Stage::Dispatch,
                start_ns: t0,
                dur_ns: now_ns().saturating_sub(t0),
            });
        }
        if let Some(t0) = started {
            let elapsed = t0.elapsed();
            rec.observe(HistId::NetServerFrameNs, elapsed.as_nanos() as u64);
            if shared.slow_request.is_some_and(|limit| elapsed > limit) {
                rec.incr(MetricId::NetSlowRequests, 1);
                rec.event(Event {
                    name: "net.slow_request",
                    fields: &[("trace", trace), ("dur_ns", elapsed.as_nanos() as u64)],
                });
            }
        }
        if matches!(reply, Frame::ErrorResp(_)) {
            rec.incr(MetricId::NetRequestErrors, 1);
        }
        let bytes = WireCodec::encode_tagged(&reply, job.tag);
        if done
            .send(Done {
                conn: job.conn,
                bytes,
                shutdown_after,
            })
            .is_err()
        {
            return;
        }
        shared.waker.wake();
    }
}

fn dispatch<R: Recorder + Send + Sync + 'static>(
    frame: Frame,
    shared: &Shared<R>,
    ctx: TraceCtx,
) -> Frame {
    match frame {
        Frame::Ping => Frame::Pong,
        Frame::Shutdown => Frame::Ok,
        Frame::Flush => {
            shared.engine.flush();
            Frame::Ok
        }
        Frame::Snapshot => Frame::SnapshotResp(shared.engine.snapshot()),
        Frame::Stats => match shared.rec.metrics_snapshot() {
            Some(snap) => Frame::StatsResp(snap.to_json()),
            // NoopRecorder (and SpanRecorder-only) servers have no
            // registry to report; tell the client why instead of
            // returning an empty snapshot it would mistake for zeros.
            None => Frame::ErrorResp(WaveError::io(std::io::Error::other(
                "server was started without a metrics registry",
            ))),
        },
        Frame::Ingest(batch) => {
            match shared
                .engine
                .ingest(waves_engine::IngestRequest::batch(batch).traced(ctx))
            {
                Ok(()) => Frame::Ok,
                Err(e) => Frame::ErrorResp(e),
            }
        }
        Frame::Query { key, window } => match shared.engine.query_traced(key, window, ctx) {
            Ok(est) => Frame::EstimateResp(est),
            Err(e) => Frame::ErrorResp(e),
        },
        Frame::PushSynopsis { party, kind, bytes } => match PartySynopsis::decode(kind, &bytes) {
            Ok(syn) => {
                shared.referee.lock().unwrap().insert(party, syn);
                Frame::Ok
            }
            Err(e) => Frame::ErrorResp(WaveError::io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("synopsis decode failed: {e}"),
            ))),
        },
        Frame::Replicate { key, kind, bytes } => {
            // This server hosts a DetWave engine; a primary shipping any
            // other synopsis kind is misconfigured, and installing its
            // bytes would corrupt the key silently.
            if kind != SynopsisKind::DetWave {
                Frame::ErrorResp(WaveError::io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("replicate kind {kind:?} not hosted by this server"),
                )))
            } else {
                match shared.engine.install_synopsis(key, bytes) {
                    Ok(()) => Frame::Ok,
                    Err(e) => Frame::ErrorResp(e),
                }
            }
        }
        Frame::PushDelta {
            party,
            seq,
            slack,
            kind,
            bytes,
        } => {
            // Deduplicate by sequence *before* decoding: a stale or
            // replayed delta is answered Ok without touching state,
            // which is what makes PUSH_DELTA retry-safe (idempotent)
            // and late reordering harmless.
            {
                let monitor = shared.monitor.lock().unwrap();
                if let Some(&(last, _)) = monitor.get(&party) {
                    if last >= seq {
                        shared.rec.incr(MetricId::MonitorStaleDeltas, 1);
                        return Frame::Ok;
                    }
                }
            }
            match PartySynopsis::decode(kind, &bytes) {
                Ok(syn) => {
                    // Lock order: referee before monitor, and re-check
                    // the sequence under the lock so a racing duplicate
                    // dispatched on another worker cannot double-install.
                    let mut referee = shared.referee.lock().unwrap();
                    let mut monitor = shared.monitor.lock().unwrap();
                    match monitor.get(&party) {
                        Some(&(last, _)) if last >= seq => {
                            shared.rec.incr(MetricId::MonitorStaleDeltas, 1);
                        }
                        _ => {
                            monitor.insert(party, (seq, slack));
                            referee.insert(party, syn);
                            shared.rec.incr(MetricId::MonitorPushes, 1);
                            shared
                                .rec
                                .incr(MetricId::MonitorPushBytes, bytes.len() as u64);
                        }
                    }
                    Frame::Ok
                }
                Err(e) => Frame::ErrorResp(WaveError::io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("push delta decode failed: {e}"),
                ))),
            }
        }
        Frame::Combine { window } => {
            let referee = shared.referee.lock().unwrap();
            let mut reports = Vec::with_capacity(referee.len());
            for syn in referee.values() {
                match syn.query(window) {
                    Ok(est) => reports.push(est),
                    Err(e) => return Frame::ErrorResp(e),
                }
            }
            // The same additive combine rule the in-process scenario
            // drivers use (waves-distributed).
            Frame::EstimateResp(combine_estimates(reports))
        }
        // A response frame arriving as a request is a protocol error.
        Frame::Ok
        | Frame::Pong
        | Frame::EstimateResp(_)
        | Frame::SnapshotResp(_)
        | Frame::StatsResp(_)
        | Frame::ErrorResp(_) => Frame::ErrorResp(WaveError::io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response frame sent as request",
        ))),
    }
}
