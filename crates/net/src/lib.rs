//! `waves-net`: the networked transport for waves — a versioned binary
//! wire protocol, a TCP server hosting the serving engine plus a
//! networked referee, a blocking client with real timeout/retry
//! behavior, and a fault-injection proxy to prove the failure paths.
//!
//! The paper's distributed-streams model has parties ship synopses to a
//! referee at query time; everywhere else in this workspace that happens
//! through function calls. This crate puts an actual network between
//! them, std-only (no async runtime, no serde — blocking sockets and a
//! hand-rolled frame codec, matching the workspace's no-external-deps
//! rule):
//!
//! * [`frame`] — the wire format: 24-byte header (magic, version,
//!   type, u32 length, u64 trace id, u64 correlation id) + payload +
//!   CRC-32 trailer, with [`WireCodec`] mapping [`Frame`]s to bytes.
//!   Synopsis payloads carry each synopsis's own `encode()` bytes
//!   verbatim, so the compact codecs of `waves-core` / `waves-eh`
//!   round-trip the network byte-for-byte (property-tested below).
//! * [`server`] — [`Server`]: a single epoll event-loop thread (the
//!   vendored `poll` crate) owning every socket non-blockingly, with a
//!   small dispatch-worker pool running requests against a
//!   [`waves_engine::Engine`], plus a referee map for
//!   [`Frame::PushSynopsis`] / [`Frame::Combine`] that reuses the
//!   in-process combine rule ([`waves_distributed::combine_estimates`]).
//!   Wire v7's [`Frame::PushDelta`] feeds the same map in continuous-
//!   monitoring push mode, deduplicated by per-party sequence numbers
//!   so retries and late reordered deltas cannot roll the referee back.
//!   Requests pipeline per connection (bounded in-flight window,
//!   bounded write queues, out-of-order completion by correlation id).
//! * [`client`] — [`Client`]: blocking request/response with connect/
//!   read/write deadlines, typed [`WaveError::Io`] /
//!   [`WaveError::Timeout`] failures, and bounded retry-with-backoff
//!   restricted to idempotent requests; [`Client::send_many`] /
//!   [`Client::ingest_many`] pipeline a window of requests over the
//!   same connection.
//! * [`chaos`] — [`ChaosProxy`]: drops, delays, truncates, or corrupts
//!   server->client traffic so tests can assert the client degrades to
//!   clean typed errors instead of hanging.
//!
//! ```no_run
//! use waves_engine::IngestRequest;
//! use waves_net::{Client, Server, ServerConfig};
//!
//! let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ingest(IngestRequest::of(7, [true, true, false])).unwrap();
//! client.flush().unwrap();
//! let est = client.query(7, 1024).unwrap();
//! assert_eq!(est.value, 2.0);
//! ```
//!
//! [`WaveError::Io`]: waves_core::WaveError::Io
//! [`WaveError::Timeout`]: waves_core::WaveError::Timeout
//! [`WaveError`]: waves_core::WaveError

pub mod chaos;
pub mod client;
pub mod frame;
pub mod server;

pub use chaos::{ChaosProxy, Fault};
pub use client::{Client, ClientConfig, RetryPolicy};
pub use frame::{Frame, FrameError, FrameTag, PartySynopsis, SynopsisKind, WireCodec};
pub use server::{Server, ServerConfig};

#[cfg(test)]
mod proptests {
    use super::frame::*;
    use proptest::prelude::*;
    use waves_core::{DetWave, SumWave};
    use waves_eh::{EhCount, EhSum};

    /// The synopsis's own encode must survive the wire untouched: wrap
    /// it in a PushSynopsis frame, serialize, parse, and compare the
    /// carried bytes — and the re-decoded synopsis must re-encode to
    /// the identical byte string.
    fn assert_wire_preserves(kind: SynopsisKind, encoded: Vec<u8>, party: u64) {
        let frame = Frame::PushSynopsis {
            party,
            kind,
            bytes: encoded.clone(),
        };
        let wire = WireCodec::encode(&frame);
        let (decoded, used) = WireCodec::decode(&wire).unwrap();
        assert_eq!(used, wire.len());
        match decoded {
            Frame::PushSynopsis {
                party: p,
                kind: k,
                bytes,
            } => {
                assert_eq!(p, party);
                assert_eq!(k, kind);
                assert_eq!(bytes, encoded, "synopsis bytes mutated in transit");
                let syn = PartySynopsis::decode(k, &bytes).unwrap();
                let reencoded = match syn {
                    PartySynopsis::Det(w) => w.encode(),
                    PartySynopsis::Sum(w) => w.encode(),
                    PartySynopsis::EhCount(e) => e.encode(),
                    PartySynopsis::EhSum(e) => e.encode(),
                };
                assert_eq!(reencoded, encoded, "re-encode not byte-identical");
            }
            other => panic!("wrong frame came back: {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Wire round-trip is byte-exact for all four synopsis types.
        #[test]
        fn det_wave_roundtrips_byte_identical(
            bits in prop::collection::vec(prop::bool::weighted(0.5), 0..800),
            inv_eps in 2u64..=10,
            party in 0u64..=1000,
        ) {
            let mut w = DetWave::new(256, 1.0 / inv_eps as f64).unwrap();
            for &b in &bits {
                w.push_bit(b);
            }
            assert_wire_preserves(SynopsisKind::DetWave, w.encode(), party);
        }

        #[test]
        fn sum_wave_roundtrips_byte_identical(
            vals in prop::collection::vec(0u64..=32, 0..400),
            inv_eps in 2u64..=8,
            party in 0u64..=1000,
        ) {
            let mut w = SumWave::new(128, 32, 1.0 / inv_eps as f64).unwrap();
            for &v in &vals {
                w.push_value(v).unwrap();
            }
            assert_wire_preserves(SynopsisKind::SumWave, w.encode(), party);
        }

        #[test]
        fn eh_count_roundtrips_byte_identical(
            bits in prop::collection::vec(prop::bool::weighted(0.5), 0..800),
            inv_eps in 2u64..=10,
            party in 0u64..=1000,
        ) {
            let mut e = EhCount::new(256, 1.0 / inv_eps as f64).unwrap();
            for &b in &bits {
                e.push_bit(b);
            }
            assert_wire_preserves(SynopsisKind::EhCount, e.encode(), party);
        }

        #[test]
        fn eh_sum_roundtrips_byte_identical(
            vals in prop::collection::vec(0u64..=32, 0..400),
            inv_eps in 2u64..=8,
            party in 0u64..=1000,
        ) {
            let mut e = EhSum::new(128, 32, 1.0 / inv_eps as f64).unwrap();
            for &v in &vals {
                e.push_value(v).unwrap();
            }
            assert_wire_preserves(SynopsisKind::EhSum, e.encode(), party);
        }

        /// Every strict prefix of a valid frame is Truncated — never a
        /// panic, never a bogus success.
        #[test]
        fn truncated_frames_are_rejected(
            bits in prop::collection::vec(prop::bool::weighted(0.5), 0..200),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut w = DetWave::new(128, 0.25).unwrap();
            for &b in &bits {
                w.push_bit(b);
            }
            let frame = Frame::PushSynopsis { party: 1, kind: SynopsisKind::DetWave, bytes: w.encode() };
            let wire = WireCodec::encode(&frame);
            let cut = ((wire.len() as f64 * cut_frac) as usize).min(wire.len() - 1);
            prop_assert_eq!(WireCodec::decode(&wire[..cut]), Err(FrameError::Truncated));
        }

        /// Corrupting the magic or version byte is always rejected with
        /// the specific error, regardless of the rest of the frame.
        #[test]
        fn bad_magic_and_version_are_rejected(
            key in 0u64..=u64::MAX,
            window in 1u64..=1 << 40,
            wrong in 0u8..=255,
        ) {
            let wire = WireCodec::encode(&Frame::Query { key, window });
            if wrong != wire[0] {
                let mut bad = wire.clone();
                bad[0] = wrong;
                prop_assert_eq!(WireCodec::decode(&bad), Err(FrameError::BadMagic));
            }
            if wrong != WIRE_VERSION {
                let mut bad = wire.clone();
                bad[2] = wrong;
                prop_assert_eq!(WireCodec::decode(&bad), Err(FrameError::BadVersion(wrong)));
            }
        }

        /// Arbitrary bytes never panic the decoder.
        #[test]
        fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
            let _ = WireCodec::decode(&bytes);
        }
    }
}
