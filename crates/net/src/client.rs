//! The blocking client: one TCP connection, request/response framing,
//! configurable timeouts, and bounded retry-with-backoff — plus a
//! pipelined submission path ([`Client::send_many`] /
//! [`Client::ingest_many`]) that keeps a window of correlation-id
//! tagged requests in flight and accepts replies out of order. The
//! one-shot request methods are a pipeline of length one.
//!
//! Every socket operation runs under a deadline from [`ClientConfig`];
//! a fired deadline surfaces as [`WaveError::Timeout`] naming the
//! operation and its budget, other transport failures as
//! [`WaveError::Io`] with the `std::io::Error` reachable through
//! `source()`. The client never hangs and never panics on a sick peer —
//! the chaos-proxy integration tests hold it to that.
//!
//! Retries are deliberately narrow: only *idempotent* requests (ping,
//! query, flush, snapshot, combine, push-synopsis, push-delta,
//! replicate — the pushes overwrite a slot, and a delta re-send is
//! deduplicated by its sequence number, so a re-send lands on the same
//! state) are
//! retried, only on errors where the request plausibly never executed
//! (connect failures and broken/reset connections), and at most
//! [`RetryPolicy::retries`] times with linear backoff. The whole
//! discipline lives in [`RetryPolicy`] so other layers (the cluster
//! client's failover walk, notably) reuse the same judgment instead of
//! re-deriving it. Ingest is *not* retried: a reply lost after the
//! server applied the batch would double-count on replay.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use waves_core::{Bits, Estimate, WaveError};
use waves_engine::{EngineSnapshot, IngestRequest};
use waves_obs::trace::{next_span_id, now_ns, Span, Stage, TraceId, ROOT_SPAN_ID};
use waves_obs::{HistId, MetricId, MetricsSnapshot, NoopRecorder, Recorder};

use crate::frame::{Frame, FrameTag, SynopsisKind, WireCodec};

/// The retry discipline shared by everything that re-sends requests:
/// the client's idempotent request loop, its connect loop, and the
/// cluster layer's failover walk. Attempt budget plus linear backoff,
/// with the retryability judgment in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts after the first failure (0 disables retries).
    pub retries: u32,
    /// Backoff before retry `k` is `backoff * k` (linear).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 2,
            backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries at all: fail on the first error.
    pub fn none() -> Self {
        RetryPolicy {
            retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// The sleep before retry attempt `attempt` (1-based): linear
    /// backoff, `backoff * attempt`.
    pub fn delay(&self, attempt: u32) -> Duration {
        self.backoff * attempt
    }

    /// Transport errors where the request plausibly never ran
    /// server-side, so re-sending an idempotent request is safe.
    /// Timeouts and server-side errors are *not* retryable: the request
    /// may have executed.
    pub fn is_retryable(e: &WaveError) -> bool {
        match e {
            WaveError::Io(io) => matches!(
                io.kind(),
                std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::NotConnected
                    | std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionRefused
            ),
            _ => false,
        }
    }

    /// Drive `op` under this policy: call it with the attempt number
    /// (0 for the first try), and re-call after sleeping [`Self::delay`]
    /// while the error is [`Self::is_retryable`] and the budget allows.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T, WaveError>) -> Result<T, WaveError> {
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    if attempt > self.retries || !Self::is_retryable(&e) {
                        return Err(e);
                    }
                    std::thread::sleep(self.delay(attempt));
                }
            }
        }
    }
}

/// Client transport knobs. The defaults suit loopback and LAN use;
/// every field is a hard budget, not a hint.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Budget for establishing the TCP connection (per attempt).
    pub connect_timeout: Duration,
    /// Socket read timeout: the longest a single reply may take.
    pub read_timeout: Duration,
    /// Socket write timeout: the longest a single request may take to
    /// drain into the send buffer.
    pub write_timeout: Duration,
    /// Retry budget and backoff for idempotent requests and connects.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
        }
    }
}

/// A blocking connection to a `waves-net` server.
///
/// A complete loopback round trip (ephemeral port, server shut down
/// at the end):
///
/// ```
/// use waves_engine::IngestRequest;
/// use waves_net::{Client, Server, ServerConfig};
///
/// let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
/// let mut client = Client::connect(server.local_addr()).unwrap();
/// client.ping().unwrap();
/// client.ingest(IngestRequest::of(7, [true, true, false])).unwrap();
/// client.flush().unwrap(); // barrier: the batch is applied
/// assert_eq!(client.query(7, 1024).unwrap().value, 2.0);
/// client.shutdown_server().unwrap();
/// server.wait();
/// ```
pub struct Client<R: Recorder + Send + Sync + 'static = NoopRecorder> {
    stream: TcpStream,
    addr: SocketAddr,
    cfg: ClientConfig,
    rec: Arc<R>,
    /// Trace id allocated for the most recent traced request, so a
    /// caller holding the span sink can look the request's tree up.
    last_trace: Option<TraceId>,
    /// Next wire v6 correlation id. Starts at 1 and never repeats on
    /// this connection (0 is reserved for frames outside a pipeline).
    next_corr: u64,
}

impl Client<NoopRecorder> {
    /// Connect with default timeouts and observability disabled.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, WaveError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit transport knobs.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, cfg: ClientConfig) -> Result<Self, WaveError> {
        Self::connect_recorded(addr, cfg, Arc::new(NoopRecorder))
    }
}

impl<R: Recorder + Send + Sync + 'static> Client<R> {
    /// Connect, recording request latency and frame/byte counters into
    /// `rec`.
    pub fn connect_recorded<A: ToSocketAddrs>(
        addr: A,
        cfg: ClientConfig,
        rec: Arc<R>,
    ) -> Result<Self, WaveError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(WaveError::io)?
            .next()
            .ok_or_else(|| {
                WaveError::io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to nothing",
                ))
            })?;
        let stream = connect_with_retries(addr, &cfg)?;
        Ok(Client {
            stream,
            addr,
            cfg,
            rec,
            last_trace: None,
            next_corr: 1,
        })
    }

    /// The server address this client talks to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The trace id of the most recent traced request, or `None` if no
    /// request has been traced yet (tracing is on only when the
    /// recorder's [`Recorder::trace_enabled`] is `true`).
    pub fn last_trace(&self) -> Option<TraceId> {
        self.last_trace
    }

    // ---- the request surface ----

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), WaveError> {
        match self.request_idempotent(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// The single ingest entry point, mirroring [`waves_engine::Engine::ingest`]:
    /// the request's word-packed entries travel as one wire v4 `INGEST`
    /// frame. Not retried (not idempotent).
    ///
    /// Only `entries` crosses the wire. `blocking` is a local-delivery
    /// knob with no remote meaning — the server applies batches through
    /// its own queue policy and surfaces a full shard queue as a
    /// [`WaveError::Backpressure`] error response — and `ctx` is
    /// superseded by the client's own per-request tracing (the header
    /// trace id).
    pub fn ingest(&mut self, req: IngestRequest) -> Result<(), WaveError> {
        match self.request_once(&Frame::Ingest(req.entries))? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Deprecated shim for the pre-[`IngestRequest`] API.
    #[deprecated(note = "use `ingest(IngestRequest::batch(entries))`")]
    pub fn ingest_batch(&mut self, batch: &[(u64, Vec<bool>)]) -> Result<(), WaveError> {
        let entries = batch
            .iter()
            .map(|(key, bits)| (*key, Bits::from_bools(bits)))
            .collect();
        self.ingest(IngestRequest::batch(entries))
    }

    /// Window query against one key's synopsis on the server.
    pub fn query(&mut self, key: u64, window: u64) -> Result<Estimate, WaveError> {
        match self.request_idempotent(&Frame::Query { key, window })? {
            Frame::EstimateResp(est) => Ok(est),
            other => Err(unexpected(other)),
        }
    }

    /// Barrier: returns once the server has drained all shard queues.
    pub fn flush(&mut self) -> Result<(), WaveError> {
        match self.request_idempotent(&Frame::Flush)? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the server engine's point-in-time snapshot.
    pub fn snapshot(&mut self) -> Result<EngineSnapshot, WaveError> {
        match self.request_idempotent(&Frame::Snapshot)? {
            Frame::SnapshotResp(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the server's live metrics snapshot — counters, histograms
    /// (with buckets, so quantiles recompute exactly), per-shard and
    /// per-key-family dimensions. Fails with a server-side error if the
    /// server was started without a metrics registry. Idempotent, so it
    /// is retried.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, WaveError> {
        match self.request_idempotent(&Frame::Stats)? {
            Frame::StatsResp(json) => MetricsSnapshot::from_json(&json).map_err(|e| {
                WaveError::io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("stats response did not parse: {e}"),
                ))
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Push a party's synopsis encode to the networked referee.
    /// Idempotent (a re-push overwrites the same party slot), so it is
    /// retried.
    pub fn push_synopsis(
        &mut self,
        party: u64,
        kind: SynopsisKind,
        bytes: Vec<u8>,
    ) -> Result<(), WaveError> {
        match self.request_idempotent(&Frame::PushSynopsis { party, kind, bytes })? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Push a deterministic wave's encode for `party`.
    pub fn push_det_wave(
        &mut self,
        party: u64,
        wave: &waves_core::DetWave,
    ) -> Result<(), WaveError> {
        self.push_synopsis(party, SynopsisKind::DetWave, wave.encode())
    }

    /// Push a sum wave's encode for `party`.
    pub fn push_sum_wave(
        &mut self,
        party: u64,
        wave: &waves_core::SumWave,
    ) -> Result<(), WaveError> {
        self.push_synopsis(party, SynopsisKind::SumWave, wave.encode())
    }

    /// Push an exponential-histogram counter's encode for `party`.
    pub fn push_eh_count(&mut self, party: u64, eh: &waves_eh::EhCount) -> Result<(), WaveError> {
        self.push_synopsis(party, SynopsisKind::EhCount, eh.encode())
    }

    /// Push an exponential-histogram summer's encode for `party`.
    pub fn push_eh_sum(&mut self, party: u64, eh: &waves_eh::EhSum) -> Result<(), WaveError> {
        self.push_synopsis(party, SynopsisKind::EhSum, eh.encode())
    }

    /// Continuous-monitoring push (wire v7): ship a party's synopsis
    /// delta to the referee after its drift crossed the `slack` budget.
    /// `seq` must be the party's monotone sequence number (what
    /// `waves_distributed::PushParty` emits). Idempotent — the server
    /// installs a delta only if `seq` advances the party's highest
    /// seen and answers Ok either way — so it is retried.
    pub fn push_delta(
        &mut self,
        party: u64,
        seq: u64,
        slack: f64,
        kind: SynopsisKind,
        bytes: Vec<u8>,
    ) -> Result<(), WaveError> {
        match self.request_idempotent(&Frame::PushDelta {
            party,
            seq,
            slack,
            kind,
            bytes,
        })? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ship one key's synopsis encode to this server, which installs it
    /// over its local state for that key — the wire v5 replication path
    /// a cluster primary uses toward its followers. Idempotent (an
    /// install is a state overwrite, so a re-send converges to the same
    /// state), so it is retried.
    pub fn replicate(
        &mut self,
        key: u64,
        kind: SynopsisKind,
        bytes: Vec<u8>,
    ) -> Result<(), WaveError> {
        match self.request_idempotent(&Frame::Replicate { key, kind, bytes })? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Referee combine across every pushed party at `window`.
    pub fn combine(&mut self, window: u64) -> Result<Estimate, WaveError> {
        match self.request_idempotent(&Frame::Combine { window })? {
            Frame::EstimateResp(est) => Ok(est),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to stop. The server acks before exiting.
    pub fn shutdown_server(&mut self) -> Result<(), WaveError> {
        match self.request_once(&Frame::Shutdown)? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    // ---- the pipelined surface ----

    /// Submit many requests over the connection with up to `window`
    /// in flight at once (wire v6 pipelining), and return the replies
    /// **in request order** regardless of the order the server
    /// completed them — each frame carries a fresh correlation id and
    /// replies are matched back by it.
    ///
    /// Per-request server-side failures come back as
    /// [`Frame::ErrorResp`] entries, not an `Err`: one bad request in
    /// a batch doesn't cost the rest. `Err` means the *transport*
    /// failed (write, read, or a reply with an unknown correlation
    /// id), and the connection should be considered dead: replies for
    /// requests already in flight may have been lost, so nothing is
    /// retried here — idempotent callers can resubmit on a fresh
    /// connection.
    pub fn send_many(&mut self, reqs: &[Frame], window: usize) -> Result<Vec<Frame>, WaveError> {
        let started = self.rec.enabled().then(Instant::now);
        let opened = self.begin_trace();
        let replies = self.pipeline(reqs, opened.map_or(0, |(t, _)| t.0), window);
        self.end_trace(opened);
        if let Some(t0) = started {
            self.rec
                .observe(HistId::NetRequestNs, t0.elapsed().as_nanos() as u64);
        }
        replies
    }

    /// Windowed pipelined ingest: every request's entries travel as
    /// their own `INGEST` frame with up to `window` outstanding.
    /// Returns the number of batches acknowledged `Ok`; the first
    /// server-side error aborts with that error (later batches in the
    /// same pipeline may still have been applied — ingest is not
    /// idempotent, which is why nothing here retries).
    pub fn ingest_many<I>(&mut self, reqs: I, window: usize) -> Result<usize, WaveError>
    where
        I: IntoIterator<Item = IngestRequest>,
    {
        let frames: Vec<Frame> = reqs
            .into_iter()
            .map(|req| Frame::Ingest(req.entries))
            .collect();
        let replies = self.send_many(&frames, window)?;
        let mut acked = 0usize;
        for reply in replies {
            match reply {
                Frame::Ok => acked += 1,
                Frame::ErrorResp(e) => return Err(e),
                other => return Err(unexpected(other)),
            }
        }
        Ok(acked)
    }

    // ---- transport plumbing ----

    /// Allocate a trace for one request if the recorder wants traces.
    /// Returns the trace id and the root span's start time.
    fn begin_trace(&mut self) -> Option<(TraceId, u64)> {
        if !self.rec.trace_enabled() {
            return None;
        }
        let trace = TraceId::next();
        self.last_trace = Some(trace);
        Some((trace, now_ns()))
    }

    /// Close the request's root span. Its id is [`ROOT_SPAN_ID`] by the
    /// cross-process convention: the server parents its dispatch span
    /// there without ever seeing this record.
    fn end_trace(&self, opened: Option<(TraceId, u64)>) {
        if let Some((trace, t0)) = opened {
            self.rec.span(Span {
                trace,
                id: ROOT_SPAN_ID,
                parent: 0,
                stage: Stage::Request,
                start_ns: t0,
                dur_ns: now_ns().saturating_sub(t0),
            });
        }
    }

    /// One request/response exchange, no retries.
    fn request_once(&mut self, req: &Frame) -> Result<Frame, WaveError> {
        let started = self.rec.enabled().then(Instant::now);
        let opened = self.begin_trace();
        let reply = self.exchange(req, opened.map_or(0, |(t, _)| t.0))?;
        self.end_trace(opened);
        if let Some(t0) = started {
            self.rec
                .observe(HistId::NetRequestNs, t0.elapsed().as_nanos() as u64);
        }
        match reply {
            Frame::ErrorResp(e) => Err(e),
            other => Ok(other),
        }
    }

    /// Request/response with bounded retry-with-backoff for idempotent
    /// requests: retried only on transport errors where the request
    /// plausibly never executed, reconnecting first. Timeouts and
    /// server-side errors are not retried.
    fn request_idempotent(&mut self, req: &Frame) -> Result<Frame, WaveError> {
        let mut attempt = 0u32;
        loop {
            let started = self.rec.enabled().then(Instant::now);
            // Each attempt is its own trace: a retried request's
            // attempts have distinct wire frames and server dispatches,
            // so merging them under one id would produce a tree with
            // two of every stage.
            let opened = self.begin_trace();
            let outcome = self.exchange(req, opened.map_or(0, |(t, _)| t.0));
            self.end_trace(opened);
            match outcome {
                Ok(reply) => {
                    if let Some(t0) = started {
                        self.rec
                            .observe(HistId::NetRequestNs, t0.elapsed().as_nanos() as u64);
                    }
                    return match reply {
                        Frame::ErrorResp(e) => Err(e),
                        other => Ok(other),
                    };
                }
                Err(e) => {
                    attempt += 1;
                    if attempt > self.cfg.retry.retries || !RetryPolicy::is_retryable(&e) {
                        return Err(e);
                    }
                    std::thread::sleep(self.cfg.retry.delay(attempt));
                    match connect_with_retries(self.addr, &self.cfg) {
                        Ok(stream) => self.stream = stream,
                        Err(_) => return Err(e),
                    }
                }
            }
        }
    }

    /// One request/response exchange: the blocking one-shot API is a
    /// pipeline of length one. The wire span covers socket write
    /// through reply read — the client's view of everything beyond its
    /// own process.
    fn exchange(&mut self, req: &Frame, trace: u64) -> Result<Frame, WaveError> {
        let wire_span = (trace != 0).then(|| (next_span_id(), now_ns()));
        let mut replies = self.pipeline(std::slice::from_ref(req), trace, 1)?;
        if let Some((id, t0)) = wire_span {
            self.rec.span(Span {
                trace: TraceId(trace),
                id,
                parent: ROOT_SPAN_ID,
                stage: Stage::Wire,
                start_ns: t0,
                dur_ns: now_ns().saturating_sub(t0),
            });
        }
        Ok(replies
            .pop()
            .expect("pipeline returns one reply per request"))
    }

    /// The pipelined transport core: write requests keeping up to
    /// `window` in flight, read replies as they arrive (possibly out
    /// of order), slot each into its request's position by correlation
    /// id. All frames in one call share `trace` (0 = untraced).
    fn pipeline(
        &mut self,
        reqs: &[Frame],
        trace: u64,
        window: usize,
    ) -> Result<Vec<Frame>, WaveError> {
        let window = window.max(1);
        let n = reqs.len();
        let mut replies: Vec<Option<Frame>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut inflight: HashMap<u64, usize> = HashMap::with_capacity(window.min(n));
        let mut next = 0usize;
        let mut received = 0usize;
        let enabled = self.rec.enabled();
        while received < n {
            while next < n && inflight.len() < window {
                let corr = self.next_corr;
                self.next_corr += 1;
                let tag = FrameTag { trace, corr };
                let wrote = WireCodec::write_frame_tagged(&mut self.stream, &reqs[next], tag)
                    .map_err(|e| {
                        WaveError::from_io("write", e, self.cfg.write_timeout.as_millis() as u64)
                    })?;
                if enabled {
                    self.rec.incr(MetricId::NetFramesSent, 1);
                    self.rec.incr(MetricId::NetBytesSent, wrote as u64);
                    self.rec.observe(HistId::NetFrameBytes, wrote as u64);
                }
                inflight.insert(corr, next);
                next += 1;
            }
            let (reply, nread, tag) =
                WireCodec::read_frame_tagged(&mut self.stream).map_err(|e| {
                    WaveError::from_io("read", e, self.cfg.read_timeout.as_millis() as u64)
                })?;
            if enabled {
                self.rec.incr(MetricId::NetFramesReceived, 1);
                self.rec.incr(MetricId::NetBytesReceived, nread as u64);
            }
            let Some(idx) = inflight.remove(&tag.corr) else {
                return Err(WaveError::io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("reply with unknown correlation id {}", tag.corr),
                )));
            };
            replies[idx] = Some(reply);
            received += 1;
        }
        Ok(replies
            .into_iter()
            .map(|r| r.expect("every slot filled once received == n"))
            .collect())
    }
}

fn connect_with_retries(addr: SocketAddr, cfg: &ClientConfig) -> Result<TcpStream, WaveError> {
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(cfg.read_timeout))
                    .map_err(WaveError::io)?;
                stream
                    .set_write_timeout(Some(cfg.write_timeout))
                    .map_err(WaveError::io)?;
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => {
                attempt += 1;
                if attempt > cfg.retry.retries {
                    return Err(WaveError::from_io(
                        "connect",
                        e,
                        cfg.connect_timeout.as_millis() as u64,
                    ));
                }
                std::thread::sleep(cfg.retry.delay(attempt));
            }
        }
    }
}

fn unexpected(frame: Frame) -> WaveError {
    WaveError::io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("unexpected reply frame: {frame:?}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_delay_is_linear() {
        let p = RetryPolicy {
            retries: 3,
            backoff: Duration::from_millis(10),
        };
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(3), Duration::from_millis(30));
        assert_eq!(RetryPolicy::none().delay(5), Duration::ZERO);
    }

    #[test]
    fn retryability_judgment_is_connection_shaped() {
        let reset = WaveError::io(std::io::Error::from(std::io::ErrorKind::ConnectionReset));
        assert!(RetryPolicy::is_retryable(&reset));
        let timeout = WaveError::Timeout {
            op: "read",
            millis: 5,
        };
        assert!(!RetryPolicy::is_retryable(&timeout));
        assert!(!RetryPolicy::is_retryable(&WaveError::InvalidWindow(0)));
    }

    #[test]
    fn run_retries_up_to_budget_then_surfaces_the_error() {
        let p = RetryPolicy {
            retries: 2,
            backoff: Duration::ZERO,
        };
        let mut calls = 0u32;
        let out: Result<(), _> = p.run(|attempt| {
            assert_eq!(attempt, calls);
            calls += 1;
            Err(WaveError::io(std::io::Error::from(
                std::io::ErrorKind::ConnectionRefused,
            )))
        });
        assert!(out.is_err());
        assert_eq!(calls, 3, "first try + two retries");

        // Non-retryable errors short-circuit.
        let mut calls = 0u32;
        let out: Result<(), _> = p.run(|_| {
            calls += 1;
            Err(WaveError::InvalidWindow(0))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);

        // Success passes straight through.
        let ok = p.run(|attempt| if attempt == 0 { Ok(7) } else { unreachable!() });
        assert_eq!(ok.unwrap(), 7);
    }
}
