//! Fault injection for the wire layer: a TCP proxy that forwards
//! client<->server traffic while misbehaving on demand.
//!
//! [`ChaosProxy`] binds an ephemeral port, forwards every accepted
//! connection to the upstream server, and applies one [`Fault`] to the
//! **server -> client** direction (requests pass through untouched, so
//! the server's view stays clean and the client is the one that must
//! cope). Integration tests point a [`crate::Client`] at the proxy and
//! assert that every fault surfaces as a typed [`waves_core::WaveError`]
//! — `Io` for closed/corrupt streams, `Timeout` for stalls — within the
//! client's configured budget, never a hang and never a panic.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What the proxy does to server->client bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything unchanged (baseline / control).
    None,
    /// Accept the client's connection and close it immediately; nothing
    /// reaches the upstream. The client sees EOF / reset.
    DropConnection,
    /// Stall each server->client chunk by this long before forwarding.
    /// Longer than the client's read timeout => `WaveError::Timeout`.
    Delay(Duration),
    /// Forward only the first `n` server->client bytes, then close both
    /// sides — the client sees a frame cut off mid-flight.
    TruncateAfter(usize),
    /// XOR 0xFF into the server->client byte at this stream offset,
    /// corrupting a header or payload in place.
    CorruptByteAt(usize),
}

/// A running fault-injection proxy. Dropping it closes the listener and
/// every proxied connection and joins all pump threads.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
    bytes_forwarded: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Start proxying `127.0.0.1:<ephemeral>` -> `upstream` with the
    /// given fault.
    pub fn start(upstream: SocketAddr, fault: Fault) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let streams = Arc::new(Mutex::new(Vec::new()));
        let pumps = Arc::new(Mutex::new(Vec::new()));
        let bytes_forwarded = Arc::new(AtomicU64::new(0));
        let accept = {
            let stopping = Arc::clone(&stopping);
            let streams = Arc::clone(&streams);
            let pumps = Arc::clone(&pumps);
            let bytes_forwarded = Arc::clone(&bytes_forwarded);
            std::thread::Builder::new()
                .name("waves-chaos-accept".into())
                .spawn(move || {
                    accept_loop(
                        listener,
                        upstream,
                        fault,
                        stopping,
                        streams,
                        pumps,
                        bytes_forwarded,
                    )
                })?
        };
        Ok(ChaosProxy {
            local_addr,
            stopping,
            streams,
            accept: Some(accept),
            pumps,
            bytes_forwarded,
        })
    }

    /// The address clients should connect to instead of the upstream.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Total server->client bytes actually forwarded (post-fault).
    pub fn bytes_forwarded(&self) -> u64 {
        self.bytes_forwarded.load(Ordering::Relaxed)
    }

    /// Stop proxying: close the listener and force-close every proxied
    /// stream so pump threads unblock.
    pub fn shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        for s in self.streams.lock().unwrap().iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let pumps = std::mem::take(&mut *self.pumps.lock().unwrap());
        for h in pumps {
            let _ = h.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    fault: Fault,
    stopping: Arc<AtomicBool>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
    bytes_forwarded: Arc<AtomicU64>,
) {
    for client in listener.incoming() {
        if stopping.load(Ordering::SeqCst) {
            break;
        }
        let client = match client {
            Ok(s) => s,
            Err(_) => break,
        };
        if fault == Fault::DropConnection {
            // Close without even dialing upstream; the dropped stream
            // sends FIN/RST to the client.
            drop(client);
            continue;
        }
        let server = match TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) {
            Ok(s) => s,
            Err(_) => {
                drop(client);
                continue;
            }
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        // Keep clones so shutdown can unblock both pumps.
        {
            let mut guard = streams.lock().unwrap();
            if let Ok(c) = client.try_clone() {
                guard.push(c);
            }
            if let Ok(s) = server.try_clone() {
                guard.push(s);
            }
        }
        // client -> server: always a clean copy.
        let c2s = {
            let (mut from, mut to) = match (client.try_clone(), server.try_clone()) {
                (Ok(f), Ok(t)) => (f, t),
                _ => continue,
            };
            std::thread::Builder::new()
                .name("waves-chaos-c2s".into())
                .spawn(move || {
                    pump(&mut from, &mut to, Fault::None, &AtomicU64::new(0));
                })
        };
        // server -> client: the fault applies here.
        let s2c = {
            let (mut from, mut to) = (server, client);
            let bytes = Arc::clone(&bytes_forwarded);
            std::thread::Builder::new()
                .name("waves-chaos-s2c".into())
                .spawn(move || {
                    pump(&mut from, &mut to, fault, &bytes);
                })
        };
        let mut guard = pumps.lock().unwrap();
        if let Ok(h) = c2s {
            guard.push(h);
        }
        if let Ok(h) = s2c {
            guard.push(h);
        }
    }
}

/// Copy bytes `from -> to`, applying the fault. Exits when either side
/// closes or the fault decides to kill the connection.
fn pump(from: &mut TcpStream, to: &mut TcpStream, fault: Fault, forwarded: &AtomicU64) {
    let mut buf = [0u8; 4096];
    let mut offset = 0usize;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = buf[..n].to_vec();
        match fault {
            Fault::None | Fault::DropConnection => {}
            Fault::Delay(d) => std::thread::sleep(d),
            Fault::CorruptByteAt(pos) => {
                if pos >= offset && pos < offset + n {
                    chunk[pos - offset] ^= 0xFF;
                }
            }
            Fault::TruncateAfter(limit) => {
                if offset >= limit {
                    break;
                }
                chunk.truncate(limit - offset);
            }
        }
        if to.write_all(&chunk).is_err() {
            break;
        }
        forwarded.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        offset += n;
        if let Fault::TruncateAfter(limit) = fault {
            if offset >= limit {
                break;
            }
        }
    }
    // Propagate the close both ways so the peer's blocked reads end.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
