//! Vendored stand-in for the `proptest` 1.x API subset this workspace
//! uses.
//!
//! The build environment has no registry access, so the workspace
//! vendors a std-only property-testing harness covering exactly the
//! surface its tests consume: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]` header and `name in strategy` /
//! `name: Type` argument forms), integer-range / tuple / [`Just`] /
//! `prop_map` / [`prop_oneof!`] / `prop::collection::vec` /
//! `prop::bool` strategies, [`any`], and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from the test name), and there
//! is **no automatic shrink tree** — a failing case panics with the
//! case index so it can be replayed by rerunning the test. For
//! vector-shaped values there is explicit *element-removal* shrinking:
//! [`shrink_elements`] (also reachable as
//! `prop::collection::VecStrategy::shrink_failing`) greedily deletes
//! chunks of a failing vector while a caller-supplied predicate keeps
//! failing, which is what the `waves-dst` harness uses to minimize
//! failing fault schedules.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test RNG handed to strategies. Deterministic per (test name,
/// case index), so failures reproduce on rerun.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name mixes distinct tests apart.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Greedy element-removal shrinking (delta-debugging style) for a
/// failing vector-shaped input.
///
/// `failing` must currently fail (`still_fails(failing)` is true; this
/// is debug-asserted). The shrinker repeatedly tries deleting chunks —
/// starting at half the vector and halving down to single elements —
/// keeping any candidate for which `still_fails` returns true. The
/// result is 1-minimal with respect to single-element removal: deleting
/// any one remaining element makes the failure disappear. Every
/// candidate handed to `still_fails` is a subsequence of `failing`
/// (order preserved, no mutation), so schedule-shaped inputs whose
/// steps carry materialized data shrink soundly.
pub fn shrink_elements<T, F>(failing: &[T], mut still_fails: F) -> Vec<T>
where
    T: Clone,
    F: FnMut(&[T]) -> bool,
{
    debug_assert!(still_fails(failing), "input to shrink_elements must fail");
    let mut cur: Vec<T> = failing.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if still_fails(&candidate) {
                cur = candidate;
                progressed = true;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !progressed {
                return cur;
            }
            // A removal succeeded at granularity 1: one more sweep may
            // now remove elements that were previously load-bearing.
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike real proptest there is no shrink tree —
/// `sample` draws one value.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64);

/// Full-domain strategy for `T` — `any::<u64>()` etc.
pub struct Any<T>(core::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// One weighted arm of a [`Union`]: `(weight, sampler)`.
pub type UnionArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

/// Weighted union of same-valued strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, f) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return f(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

pub mod prop {
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// `bool` strategy that is `true` with probability `p`.
        pub struct Weighted(f64);

        pub fn weighted(p: f64) -> Weighted {
            assert!((0.0..=1.0).contains(&p));
            Weighted(p)
        }

        impl Strategy for Weighted {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.gen_bool(self.0)
            }
        }

        /// Unbiased `bool` strategy.
        pub struct Any;

        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }

    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Acceptable length specifications for [`vec()`].
        pub trait IntoSizeRange {
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// `Vec` strategy: `len` elements drawn from `element`.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        impl<S: Strategy, L: IntoSizeRange> VecStrategy<S, L>
        where
            S::Value: Clone,
        {
            /// Element-removal shrinking for a failing sample drawn from
            /// this strategy: returns a 1-minimal subsequence that still
            /// fails `still_fails`. See [`crate::shrink_elements`].
            pub fn shrink_failing<F>(&self, failing: &[S::Value], still_fails: F) -> Vec<S::Value>
            where
                F: FnMut(&[S::Value]) -> bool,
            {
                crate::shrink_elements(failing, still_fails)
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        shrink_elements, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(
            (
                $weight as u32,
                {
                    let __s = $strat;
                    Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::sample(&__s, rng))
                        as Box<dyn Fn(&mut $crate::TestRng) -> _>
                },
            )
        ),+])
    };
}

/// Generate `let` bindings for one test case from the proptest argument
/// list (`name in strategy` or `name: Type` forms, in any order).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $n:ident in $s:expr, $($rest:tt)*) => {
        let $n = $crate::Strategy::sample(&($s), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $n:ident in $s:expr) => {
        let $n = $crate::Strategy::sample(&($s), &mut $rng);
    };
    ($rng:ident, $n:ident : $t:ty, $($rest:tt)*) => {
        let $n: $t = $crate::Strategy::sample(&$crate::any::<$t>(), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $n:ident : $t:ty) => {
        let $n: $t = $crate::Strategy::sample(&$crate::any::<$t>(), &mut $rng);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(__cfg.cases) {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $crate::__proptest_bind!(__rng, $($args)*);
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(bool),
        Query(u8),
        Skip,
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                4 => prop::bool::ANY.prop_map(Op::Push),
                2 => (0u8..=255).prop_map(Op::Query),
                1 => Just(Op::Skip),
            ],
            0..50,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..10, b in 5u32..=5, neg in -4i64..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert_eq!(b, 5);
            prop_assert!((-4..=4).contains(&neg));
        }

        #[test]
        fn typed_args_cover_domain(x: u64, y: u8, flag: bool) {
            // Smoke: values exist and the binding forms mix freely.
            let _ = (x, y, flag);
        }

        #[test]
        fn mixed_forms_and_tuples(
            pair in (0u64..4, 10u64..=20),
            seed: u64,
            v in prop::collection::vec(prop::bool::weighted(0.3), 2..8),
        ) {
            prop_assert!(pair.0 < 4 && (10..=20).contains(&pair.1));
            let _ = seed;
            prop_assert!((2..8).contains(&v.len()));
        }

        #[test]
        fn oneof_produces_every_arm(all in prop::collection::vec(
            prop_oneof![1 => Just(0u8), 1 => Just(1u8), 1 => Just(2u8)],
            200..201,
        )) {
            for arm in 0..3u8 {
                prop_assert!(all.contains(&arm), "arm {arm} never sampled");
            }
        }
    }

    #[test]
    fn composite_strategy_samples() {
        let strat = ops();
        let mut rng = crate::TestRng::for_case("composite", 0);
        let mut saw_push = false;
        for _ in 0..64 {
            let v = strat.sample(&mut rng);
            assert!(v.len() < 50);
            saw_push |= v.iter().any(|o| matches!(o, Op::Push(_)));
        }
        assert!(saw_push);
    }

    #[test]
    fn shrink_elements_reaches_one_minimal_subsequence() {
        // Failure = "contains a 7 and a 3, with the 7 before the 3".
        let failing = vec![1, 7, 9, 2, 3, 3, 7, 5];
        let fails = |v: &[i32]| {
            let first7 = v.iter().position(|&x| x == 7);
            match first7 {
                Some(i) => v[i..].contains(&3),
                None => false,
            }
        };
        let min = crate::shrink_elements(&failing, fails);
        assert!(fails(&min), "shrunk result must still fail");
        assert_eq!(min, vec![7, 3], "expected the minimal witness");
        // 1-minimality: removing any single element un-fails it.
        for i in 0..min.len() {
            let mut sub = min.clone();
            sub.remove(i);
            assert!(!fails(&sub));
        }
    }

    #[test]
    fn shrink_failing_on_vec_strategy_delegates() {
        let strat = crate::prop::collection::vec(0u64..100, 0..20usize);
        let mut rng = crate::TestRng::for_case("shrink_failing", 0);
        let mut sample = strat.sample(&mut rng);
        sample.push(63); // ensure the witness is present
        let fails = |v: &[u64]| v.contains(&63);
        let min = strat.shrink_failing(&sample, fails);
        assert_eq!(min, vec![63]);
    }

    #[test]
    fn shrink_elements_candidates_are_subsequences() {
        let failing: Vec<u32> = (0..57).collect();
        let fails = |v: &[u32]| {
            // Every candidate must be an order-preserving subsequence.
            let mut it = failing.iter();
            assert!(
                v.iter().all(|x| it.any(|y| y == x)),
                "candidate {v:?} is not a subsequence"
            );
            v.iter().copied().sum::<u32>() >= 100
        };
        let min = crate::shrink_elements(&failing, fails);
        assert!(fails(&min));
    }

    #[test]
    fn cases_are_deterministic() {
        let s = 0u64..1000;
        let a: Vec<u64> = (0..10)
            .map(|c| s.sample(&mut crate::TestRng::for_case("det", c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.sample(&mut crate::TestRng::for_case("det", c)))
            .collect();
        assert_eq!(a, b);
        let other: Vec<u64> = (0..10)
            .map(|c| s.sample(&mut crate::TestRng::for_case("other", c)))
            .collect();
        assert_ne!(a, other);
    }
}
