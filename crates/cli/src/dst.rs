//! The `dst` subcommand: deterministic simulation from the command
//! line.
//!
//! `waves dst --seed <n>` replays the schedule that seed derives —
//! printing the configuration, every trace line, and the trace hash —
//! which is the replay path printed in every `DST FAILURE` report.
//! `waves dst --seeds <N>` soaks seeds `0..N`, printing a progress line
//! per seed and stopping at the first violation with the minimized
//! schedule; the process exits nonzero so CI can gate on it.

use crate::args::Config;
use std::io::Write;
use waves_dst::{run, run_or_minimize, Schedule};

/// Run the `dst` subcommand. `--seeds N` soaks, `--seed n` replays.
pub fn run_dst<W: Write>(cfg: &Config, out: &mut W) -> Result<(), String> {
    match cfg.seeds {
        Some(n) => soak(n, out),
        None => replay(cfg.seed, out),
    }
}

/// Replay one seed, trace line by trace line.
fn replay<W: Write>(seed: u64, out: &mut W) -> Result<(), String> {
    let sched = Schedule::from_seed(seed);
    let e = |err: std::io::Error| err.to_string();
    let cluster = if sched.cfg.cluster_nodes > 0 {
        format!(
            " cluster={}x{}",
            sched.cfg.cluster_nodes, sched.cfg.replication
        )
    } else {
        String::new()
    };
    writeln!(
        out,
        "seed {seed}: {} steps, window={} eps={} keys={} shards={}{}{}{}",
        sched.steps.len(),
        sched.cfg.max_window,
        sched.cfg.eps,
        sched.cfg.num_keys,
        sched.cfg.num_shards,
        if sched.cfg.persist { " persist" } else { "" },
        if sched.cfg.tcp { " tcp" } else { "" },
        cluster,
    )
    .map_err(e)?;
    match run_or_minimize(&sched) {
        Ok(report) => {
            for line in &report.trace {
                writeln!(out, "  {line}").map_err(e)?;
            }
            writeln!(
                out,
                "seed {seed}: OK — {} oracle checks, trace hash {:016x}",
                report.checks, report.trace_hash
            )
            .map_err(e)?;
            Ok(())
        }
        Err(failure) => {
            writeln!(out, "{failure}").map_err(e)?;
            out.flush().ok();
            Err(format!("seed {seed} violated the oracle"))
        }
    }
}

/// Soak seeds `0..n`, stopping at the first violation.
fn soak<W: Write>(n: u64, out: &mut W) -> Result<(), String> {
    let e = |err: std::io::Error| err.to_string();
    let mut checks = 0u64;
    for seed in 0..n {
        match run(&Schedule::from_seed(seed)) {
            Ok(report) => {
                checks += report.checks;
                writeln!(
                    out,
                    "seed {seed}: ok ({} steps, {} checks)",
                    report.steps, report.checks
                )
                .map_err(e)?;
            }
            Err(_) => {
                // Re-run through the minimizer for the full report; the
                // violation is deterministic, so it recurs.
                let failure = run_or_minimize(&Schedule::from_seed(seed))
                    .expect_err("violation vanished on deterministic re-run");
                writeln!(out, "{failure}").map_err(e)?;
                out.flush().ok();
                return Err(format!("seed {seed} violated the oracle"));
            }
        }
    }
    writeln!(
        out,
        "soak OK: {n} seeds, {checks} oracle checks, 0 violations"
    )
    .map_err(e)?;
    Ok(())
}
