//! The `engine` subcommand: replay a generated keyed workload through
//! the sharded serving engine and report what it held.
//!
//! Unlike the stream modes this takes no stdin — the workload comes from
//! `waves-streamgen`'s seeded [`KeyedWorkload`], so runs are
//! reproducible and the subcommand doubles as a smoke test for the
//! whole serving stack (generator → engine → synopses → obs).

use crate::args::{Config, SynopsisKind};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;
use waves_core::BitSynopsis;
use waves_eh::EhCount;
use waves_engine::{Engine, EngineConfig, IngestRequest};
use waves_obs::{MetricsRegistry, Recorder};
use waves_streamgen::KeyedWorkload;

/// Bits carried by each generated event.
const BITS_PER_EVENT: usize = 8;

/// Run the `engine` subcommand.
pub fn run_engine<W: Write>(cfg: &Config, out: &mut W) -> Result<(), String> {
    let mut builder = EngineConfig::builder()
        .num_shards(cfg.shards)
        .max_window(cfg.window)
        .eps(cfg.eps);
    if let Some(pc) = cfg.persist_config() {
        builder = builder.persist_config(pc);
    }
    let ecfg = builder.build();
    let registry = cfg.stats.then(|| Arc::new(MetricsRegistry::new()));
    let (n, eps) = (cfg.window, cfg.eps);
    match (cfg.synopsis, &registry) {
        (SynopsisKind::Det, None) => {
            let engine = Engine::new(ecfg).map_err(|e| e.to_string())?;
            drive(&engine, cfg, out)?;
        }
        (SynopsisKind::Det, Some(reg)) => {
            let engine = Engine::new_recorded(ecfg, Arc::clone(reg)).map_err(|e| e.to_string())?;
            drive(&engine, cfg, out)?;
        }
        (SynopsisKind::Eh, None) => {
            let engine = Engine::with_factory(ecfg, move || EhCount::new(n, eps))
                .map_err(|e| e.to_string())?;
            drive(&engine, cfg, out)?;
        }
        (SynopsisKind::Eh, Some(reg)) => {
            let engine =
                Engine::with_factory_recorded(ecfg, move || EhCount::new(n, eps), Arc::clone(reg))
                    .map_err(|e| e.to_string())?;
            drive(&engine, cfg, out)?;
        }
    }
    if let Some(reg) = &registry {
        let snap = reg.snapshot();
        if cfg.json {
            writeln!(out, "{}", snap.to_json()).map_err(|e| e.to_string())?;
        } else {
            write!(out, "{}", snap.to_text()).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Replay the workload, run sample queries, print the engine snapshot.
fn drive<S, R, W>(engine: &Engine<S, R>, cfg: &Config, out: &mut W) -> Result<(), String>
where
    S: BitSynopsis + Send + 'static,
    R: Recorder + Send + Sync + 'static,
    W: Write,
{
    let mut workload = KeyedWorkload::new(cfg.keys, BITS_PER_EVENT, 0.5, cfg.seed);
    let started = Instant::now();
    let mut remaining = cfg.items;
    while remaining > 0 {
        let n = remaining.min(cfg.batch as u64) as usize;
        let batch = workload.next_packed_batch(n);
        engine
            .ingest(IngestRequest::batch(batch).blocking(true))
            .map_err(|e| e.to_string())?;
        remaining -= n as u64;
    }
    engine.flush();
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    let bits = cfg.items * BITS_PER_EVENT as u64;
    writeln!(
        out,
        "replayed {} events ({} bits) over {} keys into {} shards in {:.3}s ({:.2} Mbit/s)",
        cfg.items,
        bits,
        cfg.keys,
        engine.num_shards(),
        secs,
        bits as f64 / secs / 1e6,
    )
    .map_err(|e| e.to_string())?;
    for key in sample_keys(cfg.keys) {
        match engine.query(key, cfg.window) {
            Ok(est) => writeln!(
                out,
                "key {key}: estimate {} in [{}, {}] ({})",
                est.value,
                est.lo,
                est.hi,
                if est.exact { "exact" } else { "approx" }
            ),
            Err(e) => writeln!(out, "key {key}: {e}"),
        }
        .map_err(|e| e.to_string())?;
    }
    write!(out, "{}", engine.snapshot().to_text()).map_err(|e| e.to_string())?;
    Ok(())
}

/// A few representative keys: the edges and the middle of the id space.
fn sample_keys(num_keys: u64) -> Vec<u64> {
    let mut keys = vec![0, num_keys / 2, num_keys - 1];
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Config;

    fn engine_cfg() -> Config {
        Config {
            mode: crate::args::Mode::Engine,
            window: 64,
            eps: 0.25,
            shards: 2,
            keys: 50,
            items: 500,
            batch: 16,
            ..Config::default()
        }
    }

    fn run_to_string(cfg: Config) -> String {
        let mut out = Vec::new();
        run_engine(&cfg, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn replays_and_reports() {
        let out = run_to_string(engine_cfg());
        assert!(out.contains("replayed 500 events"), "{out}");
        assert!(out.contains("over 50 keys into 2 shards"), "{out}");
        assert!(out.contains("key 0: estimate"), "{out}");
        assert!(out.contains("== engine =="), "{out}");
        assert!(out.contains("total"), "{out}");
        assert!(!out.contains("== metrics =="), "{out}");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            run_to_string(engine_cfg()).lines().last().map(String::from),
            run_to_string(engine_cfg()).lines().last().map(String::from)
        );
    }

    #[test]
    fn eh_synopsis_end_to_end() {
        let cfg = Config {
            synopsis: SynopsisKind::Eh,
            ..engine_cfg()
        };
        let out = run_to_string(cfg);
        assert!(out.contains("replayed 500 events"), "{out}");
        assert!(out.contains("== engine =="), "{out}");
    }

    #[test]
    fn persist_dir_writes_durable_state_and_recovers() {
        let dir = waves_engine::PersistConfig::new(std::env::temp_dir())
            .dir
            .join(format!("waves-cli-persist-{}", std::process::id()));
        let cfg = Config {
            persist_dir: Some(dir.to_string_lossy().into_owned()),
            ..engine_cfg()
        };
        let first = run_to_string(cfg.clone());
        assert!(first.contains("replayed 500 events"), "{first}");
        // The run left shard directories with WAL/checkpoint files.
        let shard0 = dir.join("shard-0");
        assert!(shard0.is_dir(), "missing {shard0:?}");
        assert!(std::fs::read_dir(&shard0).unwrap().next().is_some());
        // A second run recovers the first run's keys, then replays the
        // same workload on top: the reported key count stays 50 (same
        // seed), proving recovery actually loaded prior state.
        let second = run_to_string(cfg);
        assert!(second.contains("over 50 keys"), "{second}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_flag_reports_engine_metrics() {
        let cfg = Config {
            stats: true,
            ..engine_cfg()
        };
        let out = run_to_string(cfg);
        assert!(out.contains("== metrics =="), "{out}");
        assert!(out.contains("engine_items_ingested_total"), "{out}");
        assert!(out.contains("engine_queries_served_total"), "{out}");
        assert!(out.contains("engine_ingest_batch_ns"), "{out}");
    }

    #[test]
    fn json_flag_reports_engine_metrics_json() {
        let cfg = Config {
            stats: true,
            json: true,
            ..engine_cfg()
        };
        let out = run_to_string(cfg);
        let last = out.lines().last().unwrap();
        assert!(last.starts_with('{') && last.ends_with('}'), "{last}");
        assert!(
            last.contains(r#""engine_items_ingested_total":4000"#),
            "{last}"
        );
    }
}
