//! The stream-processing loop behind the CLI.

use crate::args::{Config, Mode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use waves_core::{DetWave, Estimate, SlidingAverage, SumWave};
use waves_rand::{DistinctParty, DistinctReferee, RandConfig};

/// One synopsis, dispatched by mode.
enum Synopsis {
    Count(DetWave),
    Sum(SumWave),
    Distinct {
        party: DistinctParty,
        referee: DistinctReferee,
    },
    Average(SlidingAverage),
}

impl Synopsis {
    fn build(cfg: &Config) -> Result<Self, String> {
        match cfg.mode {
            Mode::Count => Ok(Synopsis::Count(
                DetWave::new(cfg.window, cfg.eps).map_err(|e| e.to_string())?,
            )),
            Mode::Sum => Ok(Synopsis::Sum(
                SumWave::new(cfg.window, cfg.max_value, cfg.eps)
                    .map_err(|e| e.to_string())?,
            )),
            Mode::Average => Ok(Synopsis::Average(
                SlidingAverage::with_eps(
                    cfg.window,
                    // U: items per window; default to window * 16.
                    cfg.window.saturating_mul(16),
                    cfg.max_value,
                    cfg.eps,
                )
                .map_err(|e| e.to_string())?,
            )),
            Mode::Distinct => {
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let rc = RandConfig::for_values(
                    cfg.window,
                    cfg.max_value,
                    cfg.eps,
                    cfg.delta,
                    &mut rng,
                )
                .map_err(|e| e.to_string())?;
                Ok(Synopsis::Distinct {
                    party: DistinctParty::new(&rc),
                    referee: DistinctReferee::new(rc),
                })
            }
        }
    }

    fn push(&mut self, v: u64) -> Result<(), String> {
        match self {
            Synopsis::Count(w) => {
                if v > 1 {
                    return Err(format!("count mode expects 0/1, got {v}"));
                }
                w.push_bit(v == 1);
                Ok(())
            }
            Synopsis::Sum(w) => w.push_value(v).map_err(|e| e.to_string()),
            Synopsis::Distinct { party, .. } => {
                party.push_value(v);
                Ok(())
            }
            Synopsis::Average(_) => unreachable!("average uses push_record"),
        }
    }

    fn push_record(&mut self, ts: u64, v: u64) -> Result<(), String> {
        match self {
            Synopsis::Average(a) => a.push(ts, v).map_err(|e| e.to_string()),
            _ => Err("this mode expects single-token items".into()),
        }
    }

    fn query(&self, n: u64) -> Result<String, String> {
        match self {
            Synopsis::Count(w) => Ok(render(&w.query(n).map_err(|e| e.to_string())?)),
            Synopsis::Sum(w) => Ok(render(&w.query(n).map_err(|e| e.to_string())?)),
            Synopsis::Distinct { party, referee } => {
                let msg = party.message(n).map_err(|e| e.to_string())?;
                let s = (party.pos() + 1).saturating_sub(n);
                let est = referee.estimate(&[msg], s);
                Ok(format!("estimate {est}"))
            }
            Synopsis::Average(a) => match a.query().map_err(|e| e.to_string())? {
                Some(r) => Ok(format!(
                    "estimate {:.4} in [{:.4}, {:.4}]",
                    r.value, r.lo, r.hi
                )),
                None => Ok("estimate undefined (no items provably in window)".into()),
            },
        }
    }

    fn window(&self) -> u64 {
        match self {
            Synopsis::Count(w) => w.max_window(),
            Synopsis::Sum(w) => w.max_window(),
            Synopsis::Distinct { party: _, referee } => referee.config().max_window(),
            Synopsis::Average(a) => a.window(),
        }
    }

    fn stats(&self) -> String {
        match self {
            Synopsis::Count(w) => {
                let r = w.space_report();
                format!(
                    "pos {} rank {} entries {} synopsis_bits {} resident_bytes {}",
                    w.pos(),
                    w.rank(),
                    r.entries,
                    r.synopsis_bits,
                    r.resident_bytes
                )
            }
            Synopsis::Sum(w) => {
                let r = w.space_report();
                format!(
                    "pos {} total {} entries {} synopsis_bits {} resident_bytes {}",
                    w.pos(),
                    w.total(),
                    r.entries,
                    r.synopsis_bits,
                    r.resident_bytes
                )
            }
            Synopsis::Distinct { party, referee } => format!(
                "pos {} stored {} instances {} levels {}",
                party.pos(),
                party.stored(),
                referee.config().instances(),
                referee.config().degree() + 1
            ),
            Synopsis::Average(a) => format!(
                "window {} eps {}",
                a.window(),
                a.eps()
            ),
        }
    }
}

fn render(e: &Estimate) -> String {
    format!(
        "estimate {} in [{}, {}] ({})",
        e.value,
        e.lo,
        e.hi,
        if e.exact { "exact" } else { "approx" }
    )
}

/// Process the line protocol. Public for integration testing.
pub fn run<I, W>(cfg: Config, lines: &mut I, out: &mut W) -> Result<(), String>
where
    I: Iterator<Item = std::io::Result<String>>,
    W: Write,
{
    let mut syn = Synopsis::build(&cfg)?;
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let tok = line.trim();
        if tok.is_empty() || tok.starts_with('#') {
            continue;
        }
        if let Some(rest) = tok.strip_prefix('?') {
            let n = rest.trim();
            let n = if n.is_empty() {
                syn.window()
            } else {
                n.parse::<u64>()
                    .map_err(|_| format!("line {}: bad query '{tok}'", lineno + 1))?
            };
            let ans = syn
                .query(n)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            writeln!(out, "{ans}").map_err(|e| e.to_string())?;
            continue;
        }
        if tok == "!" {
            writeln!(out, "{}", syn.stats()).map_err(|e| e.to_string())?;
            continue;
        }
        if matches!(syn, Synopsis::Average(_)) {
            let mut parts = tok.split_whitespace();
            let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "line {}: average mode expects '<ts> <value>'",
                    lineno + 1
                ));
            };
            let ts: u64 = a
                .parse()
                .map_err(|_| format!("line {}: bad timestamp '{a}'", lineno + 1))?;
            let v: u64 = b
                .parse()
                .map_err(|_| format!("line {}: bad value '{b}'", lineno + 1))?;
            syn.push_record(ts, v)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            continue;
        }
        let v: u64 = tok
            .parse()
            .map_err(|_| format!("line {}: bad item '{tok}'", lineno + 1))?;
        syn.push(v)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{Config, Mode};

    fn run_lines(cfg: Config, input: &str) -> Result<String, String> {
        let mut lines = input.lines().map(|l| Ok(l.to_string()));
        let mut out = Vec::new();
        run(cfg, &mut lines, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn count_cfg(window: u64) -> Config {
        Config {
            mode: Mode::Count,
            window,
            eps: 0.5,
            delta: 0.05,
            max_value: 1,
            seed: 1,
        }
    }

    #[test]
    fn count_protocol() {
        let out = run_lines(count_cfg(8), "1\n0\n1\n?\n").unwrap();
        assert!(out.contains("estimate 2"), "{out}");
        assert!(out.contains("exact"));
    }

    #[test]
    fn sub_window_query() {
        let input = "1\n1\n1\n1\n? 2\n";
        let out = run_lines(count_cfg(8), input).unwrap();
        assert!(out.contains("estimate 2"), "{out}");
    }

    #[test]
    fn stats_line() {
        let out = run_lines(count_cfg(8), "1\n!\n").unwrap();
        assert!(out.contains("pos 1 rank 1"), "{out}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let out = run_lines(count_cfg(8), "# hi\n\n1\n?\n").unwrap();
        assert!(out.contains("estimate 1"), "{out}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = run_lines(count_cfg(8), "1\nbanana\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = run_lines(count_cfg(8), "7\n").unwrap_err();
        assert!(err.contains("expects 0/1"), "{err}");
    }

    #[test]
    fn sum_mode() {
        let cfg = Config {
            mode: Mode::Sum,
            window: 4,
            eps: 0.25,
            delta: 0.05,
            max_value: 100,
            seed: 1,
        };
        let out = run_lines(cfg, "10\n20\n30\n40\n50\n?\n").unwrap();
        // Window of 4: 20+30+40+50 = 140.
        assert!(out.contains("140"), "{out}");
    }

    #[test]
    fn distinct_mode() {
        let cfg = Config {
            mode: Mode::Distinct,
            window: 8,
            eps: 0.5,
            delta: 0.3,
            max_value: 255,
            seed: 1,
        };
        let out = run_lines(cfg, "5\n5\n9\n5\n?\n").unwrap();
        assert!(out.contains("estimate 2"), "{out}");
    }

    #[test]
    fn average_mode_two_token_protocol() {
        let cfg = Config {
            mode: Mode::Average,
            window: 8,
            eps: 0.25,
            delta: 0.05,
            max_value: 100,
            seed: 1,
        };
        let out = run_lines(cfg.clone(), "1 10\n2 20\n3 30\n?\n").unwrap();
        assert!(out.contains("estimate 20"), "{out}");
        // Malformed record.
        let err = run_lines(cfg.clone(), "1\n").unwrap_err();
        assert!(err.contains("expects"), "{err}");
        // Regressing timestamps surface the library error.
        let err = run_lines(cfg, "5 1\n4 1\n").unwrap_err();
        assert!(err.contains("before"), "{err}");
    }

    #[test]
    fn oversized_query_is_an_error() {
        let err = run_lines(count_cfg(8), "1\n? 9\n").unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }
}
