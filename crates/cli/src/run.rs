//! The stream-processing loop behind the CLI.

use crate::args::{Config, Mode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::time::Instant;
use waves_core::{DetWave, Estimate, SlidingAverage, SumWave};
use waves_obs::{HistId, JsonWriter, MetricId, MetricsRegistry, NoopRecorder, Recorder};
use waves_rand::{DistinctParty, DistinctReferee, RandConfig};

/// One synopsis, dispatched by mode.
enum Synopsis {
    Count(DetWave),
    Sum(SumWave),
    Distinct {
        party: DistinctParty,
        referee: DistinctReferee,
    },
    Average(SlidingAverage),
}

impl Synopsis {
    fn build(cfg: &Config) -> Result<Self, String> {
        match cfg.mode {
            Mode::Count => Ok(Synopsis::Count(
                DetWave::new(cfg.window, cfg.eps).map_err(|e| e.to_string())?,
            )),
            Mode::Sum => Ok(Synopsis::Sum(
                SumWave::new(cfg.window, cfg.max_value, cfg.eps).map_err(|e| e.to_string())?,
            )),
            Mode::Average => Ok(Synopsis::Average(
                SlidingAverage::with_eps(
                    cfg.window,
                    // U: items per window; default to window * 16.
                    cfg.window.saturating_mul(16),
                    cfg.max_value,
                    cfg.eps,
                )
                .map_err(|e| e.to_string())?,
            )),
            Mode::Engine
            | Mode::Serve
            | Mode::Client
            | Mode::Top
            | Mode::Dst
            | Mode::Cluster
            | Mode::Monitor => Err(
                "engine/serve/client/top/dst/cluster/monitor modes take no stdin stream; they \
                 are handled before the stream loop"
                    .into(),
            ),
            Mode::Distinct => {
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let rc =
                    RandConfig::for_values(cfg.window, cfg.max_value, cfg.eps, cfg.delta, &mut rng)
                        .map_err(|e| e.to_string())?;
                Ok(Synopsis::Distinct {
                    party: DistinctParty::new(&rc),
                    referee: DistinctReferee::new(rc),
                })
            }
        }
    }

    fn push(&mut self, v: u64, rec: &dyn Recorder) -> Result<(), String> {
        match self {
            Synopsis::Count(w) => {
                if v > 1 {
                    return Err(format!("count mode expects 0/1, got {v}"));
                }
                w.push_bit_recorded(v == 1, rec);
                Ok(())
            }
            Synopsis::Sum(w) => w.push_value_recorded(v, rec).map_err(|e| e.to_string()),
            Synopsis::Distinct { party, .. } => {
                party.push_value(v);
                Ok(())
            }
            Synopsis::Average(_) => unreachable!("average uses push_record"),
        }
    }

    fn push_record(&mut self, ts: u64, v: u64) -> Result<(), String> {
        match self {
            Synopsis::Average(a) => a.push(ts, v).map_err(|e| e.to_string()),
            _ => Err("this mode expects single-token items".into()),
        }
    }

    fn query(&self, n: u64, rec: &dyn Recorder) -> Result<String, String> {
        match self {
            Synopsis::Count(w) => Ok(render(
                &w.query_recorded(n, rec).map_err(|e| e.to_string())?,
            )),
            Synopsis::Sum(w) => Ok(render(&w.query(n).map_err(|e| e.to_string())?)),
            Synopsis::Distinct { party, referee } => {
                let msg = party.message(n).map_err(|e| e.to_string())?;
                let s = (party.pos() + 1).saturating_sub(n);
                let est = referee.estimate(&[msg], s);
                Ok(format!("estimate {est}"))
            }
            Synopsis::Average(a) => match a.query().map_err(|e| e.to_string())? {
                Some(r) => Ok(format!(
                    "estimate {:.4} in [{:.4}, {:.4}]",
                    r.value, r.lo, r.hi
                )),
                None => Ok("estimate undefined (no items provably in window)".into()),
            },
        }
    }

    fn window(&self) -> u64 {
        match self {
            Synopsis::Count(w) => w.max_window(),
            Synopsis::Sum(w) => w.max_window(),
            Synopsis::Distinct { party: _, referee } => referee.config().max_window(),
            Synopsis::Average(a) => a.window(),
        }
    }

    /// The `! json` line: the space report (or this mode's equivalent
    /// stats) as one JSON object.
    fn stats_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        match self {
            Synopsis::Count(wave) => {
                let r = wave.space_report();
                w.field_str("mode", "count");
                w.field_u64("pos", wave.pos());
                w.field_u64("rank", wave.rank());
                w.field_u64("entries", r.entries as u64);
                w.field_u64("synopsis_bits", r.synopsis_bits);
                w.field_u64("resident_bytes", r.resident_bytes as u64);
            }
            Synopsis::Sum(wave) => {
                let r = wave.space_report();
                w.field_str("mode", "sum");
                w.field_u64("pos", wave.pos());
                w.field_u64("total", wave.total());
                w.field_u64("entries", r.entries as u64);
                w.field_u64("synopsis_bits", r.synopsis_bits);
                w.field_u64("resident_bytes", r.resident_bytes as u64);
            }
            Synopsis::Distinct { party, referee } => {
                w.field_str("mode", "distinct");
                w.field_u64("pos", party.pos());
                w.field_u64("stored", party.stored() as u64);
                w.field_u64("instances", referee.config().instances() as u64);
                w.field_u64("levels", referee.config().degree() as u64 + 1);
            }
            Synopsis::Average(a) => {
                w.field_str("mode", "average");
                w.field_u64("window", a.window());
                w.field_f64("eps", a.eps());
            }
        }
        w.end_object();
        w.finish()
    }

    fn stats(&self) -> String {
        match self {
            Synopsis::Count(w) => {
                let r = w.space_report();
                format!(
                    "pos {} rank {} entries {} synopsis_bits {} resident_bytes {}",
                    w.pos(),
                    w.rank(),
                    r.entries,
                    r.synopsis_bits,
                    r.resident_bytes
                )
            }
            Synopsis::Sum(w) => {
                let r = w.space_report();
                format!(
                    "pos {} total {} entries {} synopsis_bits {} resident_bytes {}",
                    w.pos(),
                    w.total(),
                    r.entries,
                    r.synopsis_bits,
                    r.resident_bytes
                )
            }
            Synopsis::Distinct { party, referee } => format!(
                "pos {} stored {} instances {} levels {}",
                party.pos(),
                party.stored(),
                referee.config().instances(),
                referee.config().degree() + 1
            ),
            Synopsis::Average(a) => format!("window {} eps {}", a.window(), a.eps()),
        }
    }
}

fn render(e: &Estimate) -> String {
    format!(
        "estimate {} in [{}, {}] ({})",
        e.value,
        e.lo,
        e.hi,
        if e.exact { "exact" } else { "approx" }
    )
}

/// Process the line protocol. Public for integration testing.
pub fn run<I, W>(cfg: Config, lines: &mut I, out: &mut W) -> Result<(), String>
where
    I: Iterator<Item = std::io::Result<String>>,
    W: Write,
{
    let mut syn = Synopsis::build(&cfg)?;
    // Under --stats every push and query is timed and counted; without
    // it the noop recorder keeps the hot path identical to the plain
    // library calls.
    let registry = cfg.stats.then(MetricsRegistry::new);
    let noop = NoopRecorder;
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let tok = line.trim();
        if tok.is_empty() || tok.starts_with('#') {
            continue;
        }
        if let Some(rest) = tok.strip_prefix('?') {
            let n = rest.trim();
            let n = if n.is_empty() {
                syn.window()
            } else {
                n.parse::<u64>()
                    .map_err(|_| format!("line {}: bad query '{tok}'", lineno + 1))?
            };
            let ans = match &registry {
                Some(reg) => {
                    let started = Instant::now();
                    let ans = syn.query(n, reg);
                    reg.observe(HistId::QueryLatencyNs, started.elapsed().as_nanos() as u64);
                    reg.incr(MetricId::CliQueries, 1);
                    ans
                }
                None => syn.query(n, &noop),
            }
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            writeln!(out, "{ans}").map_err(|e| e.to_string())?;
            continue;
        }
        if let Some(rest) = tok.strip_prefix('!') {
            match rest.trim() {
                "" => {
                    writeln!(out, "{}", syn.stats()).map_err(|e| e.to_string())?;
                    if let Some(reg) = &registry {
                        write_metrics(reg, cfg.json, out)?;
                    }
                }
                "json" => {
                    writeln!(out, "{}", syn.stats_json()).map_err(|e| e.to_string())?;
                }
                _ => {
                    return Err(format!("line {}: bad command '{tok}'", lineno + 1));
                }
            }
            continue;
        }
        if matches!(syn, Synopsis::Average(_)) {
            let mut parts = tok.split_whitespace();
            let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!(
                    "line {}: average mode expects '<ts> <value>'",
                    lineno + 1
                ));
            };
            let ts: u64 = a
                .parse()
                .map_err(|_| format!("line {}: bad timestamp '{a}'", lineno + 1))?;
            let v: u64 = b
                .parse()
                .map_err(|_| format!("line {}: bad value '{b}'", lineno + 1))?;
            let started = registry.as_ref().map(|_| Instant::now());
            syn.push_record(ts, v)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if let (Some(reg), Some(t0)) = (&registry, started) {
                reg.observe(HistId::PushLatencyNs, t0.elapsed().as_nanos() as u64);
                reg.incr(MetricId::CliItems, 1);
            }
            continue;
        }
        let v: u64 = tok
            .parse()
            .map_err(|_| format!("line {}: bad item '{tok}'", lineno + 1))?;
        match &registry {
            Some(reg) => {
                let started = Instant::now();
                let res = syn.push(v, reg);
                reg.observe(HistId::PushLatencyNs, started.elapsed().as_nanos() as u64);
                reg.incr(MetricId::CliItems, 1);
                res
            }
            None => syn.push(v, &noop),
        }
        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    if let Some(reg) = &registry {
        write_metrics(reg, cfg.json, out)?;
    }
    Ok(())
}

/// Dump a metrics snapshot: multi-line text, or one JSON line.
fn write_metrics<W: Write>(reg: &MetricsRegistry, json: bool, out: &mut W) -> Result<(), String> {
    let snap = reg.snapshot();
    if json {
        writeln!(out, "{}", snap.to_json()).map_err(|e| e.to_string())
    } else {
        write!(out, "{}", snap.to_text()).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{Config, Mode};

    fn run_lines(cfg: Config, input: &str) -> Result<String, String> {
        let mut lines = input.lines().map(|l| Ok(l.to_string()));
        let mut out = Vec::new();
        run(cfg, &mut lines, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn count_cfg(window: u64) -> Config {
        Config {
            mode: Mode::Count,
            window,
            eps: 0.5,
            delta: 0.05,
            max_value: 1,
            seed: 1,
            ..Config::default()
        }
    }

    #[test]
    fn count_protocol() {
        let out = run_lines(count_cfg(8), "1\n0\n1\n?\n").unwrap();
        assert!(out.contains("estimate 2"), "{out}");
        assert!(out.contains("exact"));
    }

    #[test]
    fn sub_window_query() {
        let input = "1\n1\n1\n1\n? 2\n";
        let out = run_lines(count_cfg(8), input).unwrap();
        assert!(out.contains("estimate 2"), "{out}");
    }

    #[test]
    fn stats_line() {
        let out = run_lines(count_cfg(8), "1\n!\n").unwrap();
        assert!(out.contains("pos 1 rank 1"), "{out}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let out = run_lines(count_cfg(8), "# hi\n\n1\n?\n").unwrap();
        assert!(out.contains("estimate 1"), "{out}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = run_lines(count_cfg(8), "1\nbanana\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = run_lines(count_cfg(8), "7\n").unwrap_err();
        assert!(err.contains("expects 0/1"), "{err}");
    }

    #[test]
    fn sum_mode() {
        let cfg = Config {
            mode: Mode::Sum,
            window: 4,
            eps: 0.25,
            delta: 0.05,
            max_value: 100,
            seed: 1,
            ..Config::default()
        };
        let out = run_lines(cfg, "10\n20\n30\n40\n50\n?\n").unwrap();
        // Window of 4: 20+30+40+50 = 140.
        assert!(out.contains("140"), "{out}");
    }

    #[test]
    fn distinct_mode() {
        let cfg = Config {
            mode: Mode::Distinct,
            window: 8,
            eps: 0.5,
            delta: 0.3,
            max_value: 255,
            seed: 1,
            ..Config::default()
        };
        let out = run_lines(cfg, "5\n5\n9\n5\n?\n").unwrap();
        assert!(out.contains("estimate 2"), "{out}");
    }

    #[test]
    fn average_mode_two_token_protocol() {
        let cfg = Config {
            mode: Mode::Average,
            window: 8,
            eps: 0.25,
            delta: 0.05,
            max_value: 100,
            seed: 1,
            ..Config::default()
        };
        let out = run_lines(cfg.clone(), "1 10\n2 20\n3 30\n?\n").unwrap();
        assert!(out.contains("estimate 20"), "{out}");
        // Malformed record.
        let err = run_lines(cfg.clone(), "1\n").unwrap_err();
        assert!(err.contains("expects"), "{err}");
        // Regressing timestamps surface the library error.
        let err = run_lines(cfg, "5 1\n4 1\n").unwrap_err();
        assert!(err.contains("before"), "{err}");
    }

    #[test]
    fn oversized_query_is_an_error() {
        let err = run_lines(count_cfg(8), "1\n? 9\n").unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn stats_flag_dumps_metrics_text() {
        let mut cfg = count_cfg(8);
        cfg.stats = true;
        let out = run_lines(cfg, "1\n0\n1\n?\n? 2\n").unwrap();
        assert!(out.contains("== metrics =="), "{out}");
        assert!(out.contains("cli_items_total              3"), "{out}");
        assert!(out.contains("cli_queries_total            2"), "{out}");
        // Wave structural counters flow through from the recorded path.
        assert!(out.contains("wave_pushes_total            3"), "{out}");
        assert!(out.contains("wave_ones_total              2"), "{out}");
        // Exact-vs-approx classification: tiny stream, both exact.
        assert!(out.contains("wave_queries_exact           2"), "{out}");
        // Latency quantiles from the timed push path.
        assert!(out.contains("push_latency_ns"), "{out}");
        assert!(out.contains("p999="), "{out}");
        assert!(out.contains("query_latency_ns"), "{out}");
    }

    #[test]
    fn json_flag_dumps_metrics_json() {
        let mut cfg = count_cfg(8);
        cfg.stats = true;
        cfg.json = true;
        let out = run_lines(cfg, "1\n0\n?\n").unwrap();
        // Last line is one JSON object with counters and histograms.
        let last = out.lines().last().unwrap();
        assert!(last.starts_with('{') && last.ends_with('}'), "{last}");
        assert!(last.contains(r#""cli_items_total":2"#), "{last}");
        assert!(last.contains(r#""cli_queries_total":1"#), "{last}");
        assert!(last.contains(r#""wave_queries_exact":1"#), "{last}");
        assert!(last.contains(r#""push_latency_ns":{"count":2"#), "{last}");
        assert!(last.contains(r#""p999":"#), "{last}");
        // No metrics lines except the final dump (text stays clean).
        assert_eq!(out.matches("cli_items_total").count(), 1);
    }

    #[test]
    fn bang_json_emits_space_report_line() {
        let out = run_lines(count_cfg(8), "1\n1\n! json\n").unwrap();
        let line = out
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("json stats line");
        assert!(line.contains(r#""mode":"count""#), "{line}");
        assert!(line.contains(r#""pos":2"#), "{line}");
        assert!(line.contains(r#""rank":2"#), "{line}");
        assert!(line.contains(r#""synopsis_bits":"#), "{line}");
        assert!(line.contains(r#""resident_bytes":"#), "{line}");
        assert!(line.contains(r#""entries":"#), "{line}");
        // Sum mode reports its own fields.
        let cfg = Config {
            mode: Mode::Sum,
            window: 4,
            eps: 0.25,
            delta: 0.05,
            max_value: 100,
            seed: 1,
            ..Config::default()
        };
        let out = run_lines(cfg, "10\n20\n! json\n").unwrap();
        assert!(out.contains(r#""mode":"sum""#), "{out}");
        assert!(out.contains(r#""total":30"#), "{out}");
    }

    #[test]
    fn bang_with_metrics_under_stats() {
        let mut cfg = count_cfg(8);
        cfg.stats = true;
        let out = run_lines(cfg, "1\n!\n").unwrap();
        // `!` prints the space line followed by the metrics snapshot.
        assert!(out.contains("pos 1 rank 1"), "{out}");
        let bang_idx = out.find("pos 1 rank 1").unwrap();
        let metrics_idx = out.find("== metrics ==").unwrap();
        assert!(metrics_idx > bang_idx);
    }

    #[test]
    fn bad_bang_command_is_an_error() {
        let err = run_lines(count_cfg(8), "! frob\n").unwrap_err();
        assert!(err.contains("bad command"), "{err}");
    }
}
