//! The `serve` and `client` subcommands: the `waves-net` wire protocol
//! from the command line.
//!
//! `serve` binds `--addr` (use port 0 for an ephemeral port), prints
//! `listening on <addr>` once accepting — scripts wait for that line —
//! and runs until a client sends a shutdown request. `client` dials a
//! server and performs the requested operations in a fixed order:
//! ping, ingest `--bits`, query, snapshot, shutdown; each prints one
//! line, so output is scriptable.

use crate::args::Config;
use std::io::Write;
use std::sync::Arc;
use waves_net::{Client, ClientConfig, Server, ServerConfig};
use waves_obs::MetricsRegistry;

use waves_engine::{EngineConfig, IngestRequest};

/// Run the `serve` subcommand: host the engine until shut down.
///
/// The ready line goes to `out` and is flushed immediately so a parent
/// process piping our stdout can scrape the bound address before any
/// client exists.
pub fn run_serve<W: Write>(cfg: &Config, out: &mut W) -> Result<(), String> {
    let mut builder = EngineConfig::builder()
        .num_shards(cfg.shards)
        .max_window(cfg.window)
        .eps(cfg.eps);
    if let Some(pc) = cfg.persist_config() {
        builder = builder.persist_config(pc);
    }
    let ecfg = builder.build();
    let scfg = ServerConfig {
        engine: ecfg,
        read_timeout: None,
        ..Default::default()
    };
    let registry = cfg.stats.then(|| Arc::new(MetricsRegistry::new()));
    match &registry {
        Some(reg) => {
            let server = Server::start_recorded(&cfg.addr as &str, scfg, Arc::clone(reg))
                .map_err(|e| e.to_string())?;
            announce_and_wait(server, out)?;
        }
        None => {
            let server = Server::start(&cfg.addr as &str, scfg).map_err(|e| e.to_string())?;
            announce_and_wait(server, out)?;
        }
    }
    if let Some(reg) = &registry {
        let snap = reg.snapshot();
        if cfg.json {
            writeln!(out, "{}", snap.to_json()).map_err(|e| e.to_string())?;
        } else {
            write!(out, "{}", snap.to_text()).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn announce_and_wait<R, W>(server: Server<R>, out: &mut W) -> Result<(), String>
where
    R: waves_obs::Recorder + Send + Sync + 'static,
    W: Write,
{
    writeln!(out, "listening on {}", server.local_addr()).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    server.wait();
    writeln!(out, "server stopped").map_err(|e| e.to_string())?;
    Ok(())
}

/// Run the `client` subcommand against a running server.
pub fn run_client<W: Write>(cfg: &Config, out: &mut W) -> Result<(), String> {
    let registry = cfg.stats.then(|| Arc::new(MetricsRegistry::new()));
    let ccfg = ClientConfig::default();
    let res = match &registry {
        Some(reg) => {
            let client = Client::connect_recorded(&cfg.addr as &str, ccfg, Arc::clone(reg))
                .map_err(|e| e.to_string())?;
            drive_client(client, cfg, out)
        }
        None => {
            let client =
                Client::connect_with(&cfg.addr as &str, ccfg).map_err(|e| e.to_string())?;
            drive_client(client, cfg, out)
        }
    };
    res?;
    if let Some(reg) = &registry {
        let snap = reg.snapshot();
        if cfg.json {
            writeln!(out, "{}", snap.to_json()).map_err(|e| e.to_string())?;
        } else {
            write!(out, "{}", snap.to_text()).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn drive_client<R, W>(mut client: Client<R>, cfg: &Config, out: &mut W) -> Result<(), String>
where
    R: waves_obs::Recorder + Send + Sync + 'static,
    W: Write,
{
    if cfg.ping {
        client.ping().map_err(|e| e.to_string())?;
        writeln!(out, "pong").map_err(|e| e.to_string())?;
    }
    if let Some(bits) = &cfg.bits {
        let parsed: waves_core::Bits = bits.chars().map(|c| c == '1').collect();
        let n = parsed.len();
        if cfg.repeat > 1 {
            // Pipelined path: one windowed submission with many ingest
            // frames in flight on the single connection.
            let reqs = (0..cfg.repeat).map(|_| IngestRequest::of(cfg.key, parsed.clone()));
            let acked = client.ingest_many(reqs, 32).map_err(|e| e.to_string())?;
            client.flush().map_err(|e| e.to_string())?;
            writeln!(
                out,
                "ingested {n} bits x {acked} pipelined batches for key {}",
                cfg.key
            )
            .map_err(|e| e.to_string())?;
        } else {
            client
                .ingest(IngestRequest::of(cfg.key, parsed))
                .map_err(|e| e.to_string())?;
            client.flush().map_err(|e| e.to_string())?;
            writeln!(out, "ingested {n} bits for key {}", cfg.key).map_err(|e| e.to_string())?;
        }
    }
    if cfg.do_query {
        let est = client
            .query(cfg.key, cfg.window)
            .map_err(|e| e.to_string())?;
        writeln!(
            out,
            "key {}: estimate {} in [{}, {}] ({})",
            cfg.key,
            est.value,
            est.lo,
            est.hi,
            if est.exact { "exact" } else { "approx" }
        )
        .map_err(|e| e.to_string())?;
    }
    if cfg.net_snapshot {
        let snap = client.snapshot().map_err(|e| e.to_string())?;
        write!(out, "{}", snap.to_text()).map_err(|e| e.to_string())?;
    }
    if cfg.shutdown {
        client.shutdown_server().map_err(|e| e.to_string())?;
        writeln!(out, "server shutdown requested").map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Mode;

    /// End-to-end through the real binary paths: serve on an ephemeral
    /// port in a thread, drive the client functions against it, and
    /// check the printed protocol.
    #[test]
    fn serve_and_client_loopback() {
        let serve_cfg = Config {
            mode: Mode::Serve,
            addr: "127.0.0.1:0".into(),
            shards: 2,
            window: 128,
            eps: 0.25,
            ..Config::default()
        };
        // Start the server exactly as run_serve does, but keep the
        // handle so we can learn the port without parsing stdout.
        let ecfg = EngineConfig::builder()
            .num_shards(serve_cfg.shards)
            .max_window(serve_cfg.window)
            .eps(serve_cfg.eps)
            .build();
        let server = Server::start(
            &serve_cfg.addr as &str,
            ServerConfig {
                engine: ecfg,
                read_timeout: None,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        let client_cfg = Config {
            mode: Mode::Client,
            addr: addr.to_string(),
            key: 9,
            bits: Some("110101".into()),
            do_query: true,
            ping: true,
            net_snapshot: true,
            window: 128,
            ..Config::default()
        };
        let mut out = Vec::new();
        run_client(&client_cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("pong"), "{text}");
        assert!(text.contains("ingested 6 bits for key 9"), "{text}");
        assert!(
            text.contains("key 9: estimate 4 in [4, 4] (exact)"),
            "{text}"
        );
        assert!(text.contains("== engine =="), "{text}");

        // Pipelined ingest: --repeat ships the batch N times through
        // `ingest_many` (windowed, many frames in flight), and the
        // query sees every copy.
        let repeat_cfg = Config {
            mode: Mode::Client,
            addr: addr.to_string(),
            key: 11,
            bits: Some("101".into()),
            repeat: 5,
            do_query: true,
            window: 128,
            ..Config::default()
        };
        let mut out = Vec::new();
        run_client(&repeat_cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("ingested 3 bits x 5 pipelined batches for key 11"),
            "{text}"
        );
        assert!(
            text.contains("key 11: estimate 10 in [10, 10] (exact)"),
            "{text}"
        );

        // Shutdown via the client path; the server handle drops after.
        let shutdown_cfg = Config {
            shutdown: true,
            ..client_cfg
        };
        let mut out = Vec::new();
        run_client(&shutdown_cfg, &mut out).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("server shutdown requested"));
        server.wait();
    }

    #[test]
    fn client_surfaces_connect_failure() {
        // Dial a port nothing listens on: the error must be a clean
        // string (typed WaveError underneath), not a hang or panic.
        let cfg = Config {
            mode: Mode::Client,
            addr: "127.0.0.1:1".into(),
            ping: true,
            ..Config::default()
        };
        let mut out = Vec::new();
        let err = run_client(&cfg, &mut out).unwrap_err();
        assert!(
            err.contains("i/o error") || err.contains("timed out"),
            "{err}"
        );
    }
}
