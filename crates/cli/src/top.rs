//! The `top` subcommand: a live dashboard over a running server's
//! metrics, polled via the wire STATS frame.
//!
//! Each tick fetches the server's full [`MetricsSnapshot`] and redraws:
//! ingest/query *rates* (deltas between consecutive snapshots divided
//! by the poll interval), request-latency quantiles recomputed locally
//! from the transported histogram buckets, a per-shard load bar chart,
//! and health flags (backpressure seen, WAL degraded to in-memory).
//!
//! `--once` prints a single frame with no screen control; with `--json`
//! or `--prometheus` the raw snapshot is printed in that format instead
//! — the scriptable faces of the same data.

use std::io::Write;
use std::time::Duration;

use crate::args::Config;
use waves_net::Client;
use waves_obs::{MetricsSnapshot, ShardStats};

/// ANSI clear-screen + cursor-home, written before each live frame.
const CLEAR: &str = "\x1b[2J\x1b[H";

/// Width of a full per-shard load bar, in characters.
const BAR_WIDTH: usize = 24;

/// Run the `top` subcommand against a running server.
pub fn run_top<W: Write>(cfg: &Config, out: &mut W) -> Result<(), String> {
    let mut client = Client::connect(&cfg.addr as &str).map_err(|e| e.to_string())?;
    if cfg.once {
        let snap = client.stats().map_err(|e| e.to_string())?;
        let rendered = if cfg.prometheus {
            snap.to_prometheus()
        } else if cfg.json {
            let mut j = snap.to_json();
            j.push('\n');
            j
        } else {
            render_dashboard(&cfg.addr, None, &snap, 0.0)
        };
        write!(out, "{rendered}").map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        return Ok(());
    }
    let interval = Duration::from_millis(cfg.interval_ms);
    let mut prev: Option<MetricsSnapshot> = None;
    let mut tick = 0u64;
    loop {
        let snap = client.stats().map_err(|e| e.to_string())?;
        let dt = if prev.is_some() {
            interval.as_secs_f64()
        } else {
            0.0
        };
        let frame = render_dashboard(&cfg.addr, prev.as_ref(), &snap, dt);
        write!(out, "{CLEAR}{frame}").map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        prev = Some(snap);
        tick += 1;
        if cfg.ticks.is_some_and(|n| tick >= n) {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn counter(s: &MetricsSnapshot, name: &str) -> u64 {
    s.counter(name).unwrap_or(0)
}

/// Per-second rate of a counter between two snapshots; `None` without a
/// previous snapshot to difference against (the first tick).
fn rate(prev: Option<&MetricsSnapshot>, cur: &MetricsSnapshot, name: &str, dt: f64) -> Option<f64> {
    let prev = prev?;
    if dt <= 0.0 {
        return None;
    }
    Some(counter(cur, name).saturating_sub(counter(prev, name)) as f64 / dt)
}

fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(r) => format!("{r:>10.1}/s"),
        None => format!("{:>12}", "-"),
    }
}

fn bar(value: u64, max: u64) -> String {
    let filled = if max == 0 {
        0
    } else {
        ((value as u128 * BAR_WIDTH as u128) / max as u128) as usize
    };
    let mut s = String::with_capacity(BAR_WIDTH);
    for i in 0..BAR_WIDTH {
        s.push(if i < filled { '#' } else { ' ' });
    }
    s
}

/// Render one dashboard frame. Pure: everything on screen is a function
/// of the two snapshots and the poll interval, so tests can pin the
/// layout without a server.
pub fn render_dashboard(
    addr: &str,
    prev: Option<&MetricsSnapshot>,
    cur: &MetricsSnapshot,
    dt: f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("waves top — {addr}\n\n"));

    let ingested = counter(cur, "engine_items_ingested_total");
    let queries = counter(cur, "engine_queries_served_total");
    let errors = counter(cur, "net_request_errors_total");
    let slow = counter(cur, "net_slow_requests_total");
    out.push_str(&format!(
        "ingest   {ingested:>12} items {}\n",
        fmt_rate(rate(prev, cur, "engine_items_ingested_total", dt))
    ));
    out.push_str(&format!(
        "queries  {queries:>12}       {}\n",
        fmt_rate(rate(prev, cur, "engine_queries_served_total", dt))
    ));
    out.push_str(&format!(
        "net      {:>12} B rx  {:>10} B tx   errors {errors}  slow {slow}\n",
        counter(cur, "net_bytes_received_total"),
        counter(cur, "net_bytes_sent_total"),
    ));

    out.push_str("\nlatency (ns)            p50        p99        max\n");
    for (label, name) in [
        ("server frame", "net_server_frame_ns"),
        ("engine batch", "engine_ingest_batch_ns"),
        ("engine query", "engine_query_ns"),
        ("wal append", "store_wal_append_ns"),
        ("fsync", "store_fsync_ns"),
    ] {
        if let Some(h) = cur.hist(name) {
            if h.count > 0 {
                out.push_str(&format!(
                    "{label:<18} {:>10.0} {:>10.0} {:>10}\n",
                    h.p50(),
                    h.p99(),
                    h.max
                ));
            }
        }
    }

    if !cur.shards.is_empty() {
        out.push_str("\nshards (items)\n");
        let max_items = cur.shards.iter().map(|s| s.items).max().unwrap_or(0);
        for (i, s) in cur.shards.iter().enumerate() {
            let delta = prev
                .and_then(|p| p.shards.get(i))
                .copied()
                .unwrap_or(ShardStats::default());
            let item_rate = if dt > 0.0 && prev.is_some() {
                format!("{:>8.1}/s", s.items.saturating_sub(delta.items) as f64 / dt)
            } else {
                format!("{:>10}", "-")
            };
            out.push_str(&format!(
                "  {i:>2} [{}] {:>10} {item_rate}  q={}\n",
                bar(s.items, max_items),
                s.items,
                s.queries
            ));
        }
    }

    let mut flags = Vec::new();
    if counter(cur, "engine_backpressure_events_total") > 0 {
        flags.push("BACKPRESSURE");
    }
    if counter(cur, "store_wal_disabled_total") > 0 {
        flags.push("WAL-DEGRADED");
    }
    if !flags.is_empty() {
        out.push_str(&format!("\nflags: {}\n", flags.join(" ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use waves_obs::{HistId, MetricId, MetricsRegistry, Recorder, ShardStat};

    fn snap_with(items: u64, queries: u64) -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.incr(MetricId::EngineItemsIngested, items);
        reg.incr(MetricId::EngineQueriesServed, queries);
        reg.incr_shard(0, ShardStat::Items, items / 2);
        reg.incr_shard(1, ShardStat::Items, items - items / 2);
        reg.observe(HistId::EngineQueryNs, 1000);
        reg.snapshot()
    }

    #[test]
    fn first_frame_has_totals_but_no_rates() {
        let cur = snap_with(100, 7);
        let frame = render_dashboard("127.0.0.1:4600", None, &cur, 0.0);
        assert!(frame.contains("waves top — 127.0.0.1:4600"), "{frame}");
        assert!(frame.contains("100 items"), "{frame}");
        assert!(!frame.contains("/s"), "no rates without a previous frame");
    }

    #[test]
    fn rates_are_deltas_over_the_interval() {
        let prev = snap_with(100, 0);
        let cur = snap_with(350, 10);
        let frame = render_dashboard("a", Some(&prev), &cur, 2.0);
        // (350 - 100) items / 2 s = 125.0/s; (10 - 0) queries / 2 s.
        assert!(frame.contains("125.0/s"), "{frame}");
        assert!(frame.contains("5.0/s"), "{frame}");
    }

    #[test]
    fn shard_bars_scale_to_the_busiest_shard() {
        let reg = MetricsRegistry::new();
        reg.incr_shard(0, ShardStat::Items, 100);
        reg.incr_shard(1, ShardStat::Items, 50);
        let frame = render_dashboard("a", None, &reg.snapshot(), 0.0);
        let full: String = "#".repeat(BAR_WIDTH);
        let half: String = "#".repeat(BAR_WIDTH / 2);
        assert!(frame.contains(&format!("[{full}]")), "{frame}");
        assert!(
            frame.contains(&format!("[{half}{}]", " ".repeat(BAR_WIDTH / 2))),
            "{frame}"
        );
    }

    #[test]
    fn health_flags_appear_only_when_set() {
        let reg = MetricsRegistry::new();
        let clean = render_dashboard("a", None, &reg.snapshot(), 0.0);
        assert!(!clean.contains("flags:"), "{clean}");
        reg.incr(MetricId::EngineBackpressureEvents, 1);
        reg.incr(MetricId::StoreWalDisabled, 1);
        let flagged = render_dashboard("a", None, &reg.snapshot(), 0.0);
        assert!(flagged.contains("BACKPRESSURE"), "{flagged}");
        assert!(flagged.contains("WAL-DEGRADED"), "{flagged}");
    }

    #[test]
    fn once_modes_against_a_loopback_server() {
        use crate::args::Mode;
        use std::sync::Arc;
        use waves_engine::EngineConfig;
        use waves_net::{Server, ServerConfig};
        use waves_obs::JsonValue;

        let reg = Arc::new(MetricsRegistry::new());
        let server = Server::start_recorded(
            "127.0.0.1:0",
            ServerConfig {
                engine: EngineConfig::builder()
                    .num_shards(2)
                    .max_window(64)
                    .eps(0.25)
                    .build(),
                ..Default::default()
            },
            Arc::clone(&reg),
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .ingest(waves_engine::IngestRequest::of(1, [true, true, true]))
            .unwrap();
        client.flush().unwrap();

        let cfg = Config {
            mode: Mode::Top,
            addr: server.local_addr().to_string(),
            once: true,
            json: true,
            ..Config::default()
        };
        let mut out = Vec::new();
        run_top(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let v = JsonValue::parse(text.trim()).unwrap();
        let ingested = v
            .get("counters")
            .and_then(|c| c.get("engine_items_ingested_total"))
            .and_then(JsonValue::as_u64)
            .unwrap();
        assert_eq!(ingested, 3, "{text}");

        let cfg = Config {
            prometheus: true,
            json: false,
            ..cfg
        };
        let mut out = Vec::new();
        run_top(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("engine_items_ingested_total 3"), "{text}");
        assert!(text.contains("# TYPE engine_shard_items_total counter"));

        // The human dashboard path, one frame, no screen control.
        let cfg = Config {
            prometheus: false,
            ..cfg
        };
        let mut out = Vec::new();
        run_top(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("waves top — "), "{text}");
        assert!(!text.contains('\x1b'), "--once must not clear the screen");
    }

    #[test]
    fn latency_rows_render_quantiles() {
        let reg = MetricsRegistry::new();
        for v in [100, 200, 10_000] {
            reg.observe(HistId::EngineQueryNs, v);
        }
        let frame = render_dashboard("a", None, &reg.snapshot(), 0.0);
        assert!(frame.contains("engine query"), "{frame}");
        // Empty hists are elided.
        assert!(!frame.contains("wal append"), "{frame}");
    }
}
