//! The `cluster` subcommand: a self-contained, end-to-end exercise of
//! `waves-cluster` — spawn N local servers, route a seeded keyed
//! workload over the consistent-hash ring with R replicas per key,
//! replicate synopses primary -> followers, and verify every key's
//! answer against the client's shadow oracle. With `--kill <I>` the
//! node is shut down after the first verification and every key is
//! verified again through the failover walk.
//!
//! Output is line-oriented and scriptable; the run fails (nonzero
//! exit through `main`) if any key's answer deviates from the oracle.

use crate::args::Config;
use std::io::Write;
use std::sync::Arc;
use waves_cluster::{ClusterClient, ClusterConfig};
use waves_engine::EngineConfig;
use waves_net::{Server, ServerConfig};
use waves_obs::{MetricId, MetricsRegistry};

/// Deterministic workload bit: same generator family as the engine
/// subcommand (an LCG step per item), so runs replay exactly by seed.
fn lcg_step(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

pub fn run_cluster<W: Write>(cfg: &Config, out: &mut W) -> Result<(), String> {
    let say = |out: &mut W, line: String| -> Result<(), String> {
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())
    };

    let ecfg = EngineConfig::builder()
        .num_shards(cfg.shards)
        .max_window(cfg.window)
        .eps(cfg.eps)
        .build();
    let mut servers = Vec::with_capacity(cfg.nodes);
    for _ in 0..cfg.nodes {
        let scfg = ServerConfig {
            engine: ecfg.clone(),
            read_timeout: None,
            ..Default::default()
        };
        servers.push(Server::start("127.0.0.1:0", scfg).map_err(|e| e.to_string())?);
    }
    let replicas = cfg.replicas.min(cfg.nodes);
    say(
        out,
        format!(
            "cluster: {} nodes, replication {}, ring seed {}, {} keys, {} items",
            cfg.nodes, replicas, cfg.seed, cfg.keys, cfg.items
        ),
    )?;
    for (i, s) in servers.iter().enumerate() {
        say(out, format!("node {i} listening on {}", s.local_addr()))?;
    }

    let registry = Arc::new(MetricsRegistry::new());
    let ccfg = ClusterConfig {
        replication: replicas,
        ring_seed: cfg.seed,
        max_window: cfg.window,
        eps: cfg.eps,
        ..Default::default()
    };
    let addrs = servers.iter().map(|s| s.local_addr()).collect();
    let mut client = ClusterClient::new_recorded(addrs, ccfg, Arc::clone(&registry))
        .map_err(|e| e.to_string())?;

    // Seeded keyed workload, batched per key to amortize round trips.
    let mut rng = cfg.seed ^ 0xC1D5;
    let mut pending: Vec<(u64, Vec<bool>)> = (0..cfg.keys).map(|k| (k, Vec::new())).collect();
    for _ in 0..cfg.items {
        let key = lcg_step(&mut rng) % cfg.keys;
        let bit = lcg_step(&mut rng) % 2 == 1;
        let buf = &mut pending[key as usize].1;
        buf.push(bit);
        if buf.len() >= cfg.batch {
            let bits = std::mem::take(buf);
            client.ingest(key, &bits[..]).map_err(|e| e.to_string())?;
        }
    }
    for (key, buf) in std::mem::take(&mut pending) {
        if !buf.is_empty() {
            client.ingest(key, &buf[..]).map_err(|e| e.to_string())?;
        }
    }
    client.flush().map_err(|e| e.to_string())?;
    say(
        out,
        format!("ingested {} items across {} keys", cfg.items, cfg.keys),
    )?;

    let shipped = client.replicate_all();
    say(out, format!("replicated {shipped} installs to followers"))?;

    let verify = |client: &mut ClusterClient<MetricsRegistry>| -> Result<u64, String> {
        let mut ok = 0u64;
        for key in 0..cfg.keys {
            let got = client.query(key, cfg.window).map_err(|e| e.to_string())?;
            let want = client
                .shadow_query(key, cfg.window)
                .map_err(|e| e.to_string())?;
            if got == want {
                ok += 1;
            } else {
                return Err(format!(
                    "key {key}: cluster answered {got:?}, oracle says {want:?}"
                ));
            }
        }
        Ok(ok)
    };
    let ok = verify(&mut client)?;
    say(
        out,
        format!("verify: {ok}/{} keys match the oracle", cfg.keys),
    )?;

    if let Some(victim) = cfg.kill {
        if victim >= cfg.nodes {
            return Err(format!("--kill {victim}: no such node (0..{})", cfg.nodes));
        }
        if replicas < 2 {
            return Err("--kill needs --replicas >= 2 to have a failover target".into());
        }
        servers.remove(victim).shutdown();
        say(out, format!("killed node {victim}"))?;
        let ok = verify(&mut client)?;
        let failovers = registry.counter(MetricId::ClusterFailovers);
        say(
            out,
            format!(
                "failover verify: {ok}/{} keys match the oracle ({failovers} failovers)",
                cfg.keys
            ),
        )?;
    }

    for s in servers {
        s.shutdown();
    }
    say(out, "cluster OK".to_string())
}
