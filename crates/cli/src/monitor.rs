//! The `monitor` subcommand: a self-contained, end-to-end exercise of
//! continuous monitoring over a real socket — N `PushParty`s stream a
//! seeded workload and ship `PUSH_DELTA` frames to a loopback server's
//! referee only when local drift crosses the ε-slack budget (push
//! mode), or re-push every party's full synopsis before each query
//! (pull mode). At every checkpoint the referee's answer is verified
//! against an in-process pull reference (within the slack pool) and
//! the exact ring-buffer truth (within the ε+slack contract), with
//! live communication counters per checkpoint.
//!
//! Output is line-oriented and scriptable; the run fails (nonzero exit
//! through `main`) if any answer deviates from its contract.

use crate::args::Config;
use std::io::Write;
use std::sync::Arc;
use waves_core::ExactCount;
use waves_distributed::{combine_estimates, MonitorConfig, PushParty};
use waves_engine::EngineConfig;
use waves_net::{Client, Frame, Server, ServerConfig, SynopsisKind, WireCodec};
use waves_obs::{MetricId, MetricsRegistry};

/// Same deterministic generator family as the engine and cluster
/// subcommands (an LCG step per item), so runs replay exactly by seed.
fn lcg_step(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

pub fn run_monitor<W: Write>(cfg: &Config, out: &mut W) -> Result<(), String> {
    let say = |out: &mut W, line: String| -> Result<(), String> {
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())
    };

    let mcfg = MonitorConfig {
        max_window: cfg.window,
        eps: cfg.eps,
        eps_split: cfg.eps_split,
        parties: cfg.parties,
    };
    mcfg.validate().map_err(|e| e.to_string())?;
    let mode = if cfg.pull { "pull" } else { "push" };
    say(
        out,
        format!(
            "monitor: {} parties, mode {mode}, window {}, eps {} (split {}: synopsis {:.4}, \
             slack pool {:.2}), {} items, seed {}",
            cfg.parties,
            cfg.window,
            cfg.eps,
            cfg.eps_split,
            mcfg.eps_synopsis(),
            mcfg.slack_total(),
            cfg.items,
            cfg.seed
        ),
    )?;

    // The referee lives behind a real loopback server; its metrics
    // registry exposes the monitor_* counters the summary reports.
    let registry = Arc::new(MetricsRegistry::new());
    let server = Server::start_recorded(
        "127.0.0.1:0",
        ServerConfig {
            engine: EngineConfig::builder()
                .num_shards(1)
                .max_window(cfg.window)
                .eps(cfg.eps)
                .build(),
            read_timeout: None,
            ..Default::default()
        },
        Arc::clone(&registry),
    )
    .map_err(|e| e.to_string())?;
    say(out, format!("referee listening on {}", server.local_addr()))?;

    // One connection per party, as deployed monitors would hold.
    let mut parties = Vec::with_capacity(cfg.parties as usize);
    for p in 0..cfg.parties {
        let client = Client::connect(server.local_addr()).map_err(|e| e.to_string())?;
        let party = PushParty::new(&mcfg, p).map_err(|e| e.to_string())?;
        parties.push((party, client, ExactCount::new(cfg.window)));
    }

    let checkpoints = 20u64.min(cfg.items.max(1));
    let per_checkpoint = (cfg.items / checkpoints).max(1);
    let (mut frames, mut bytes) = (0u64, 0u64);
    let mut rng = cfg.seed ^ 0x3A7E;
    let mut sent = 0u64;
    while sent < cfg.items {
        let batch = per_checkpoint.min(cfg.items - sent);
        for _ in 0..batch {
            let idx = (lcg_step(&mut rng) % cfg.parties) as usize;
            let bit = lcg_step(&mut rng) % 2 == 1;
            let (party, client, exact) = &mut parties[idx];
            exact.push_bit(bit);
            if let Some(delta) = party.push_bit(bit) {
                if !cfg.pull {
                    // Threshold crossing: ship the delta. The frame is
                    // encoded once up front so bytes-on-wire counts the
                    // real wire cost, header and trailer included.
                    let frame = Frame::PushDelta {
                        party: delta.party,
                        seq: delta.seq,
                        slack: delta.slack,
                        kind: SynopsisKind::DetWave,
                        bytes: delta.bytes,
                    };
                    bytes += WireCodec::encode(&frame).len() as u64;
                    frames += 1;
                    let Frame::PushDelta {
                        party,
                        seq,
                        slack,
                        kind,
                        bytes,
                    } = frame
                    else {
                        unreachable!("just built")
                    };
                    client
                        .push_delta(party, seq, slack, kind, bytes)
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        sent += batch;

        if cfg.pull {
            // Pull mode: the referee only learns state at query time —
            // every party re-pushes its full synopsis, every query.
            for (party, client, _) in parties.iter_mut() {
                let frame = Frame::PushSynopsis {
                    party: party.party(),
                    kind: SynopsisKind::DetWave,
                    bytes: party.local().encode(),
                };
                bytes += WireCodec::encode(&frame).len() as u64;
                frames += 1;
                client
                    .push_det_wave(party.party(), party.local())
                    .map_err(|e| e.to_string())?;
            }
        }

        let answer = parties[0]
            .1
            .combine(cfg.window)
            .map_err(|e| e.to_string())?;
        let pull_ref = combine_estimates(parties.iter().map(|(p, _, _)| p.local().query_max()));
        let truth: u64 = parties.iter().map(|(_, _, e)| e.query(cfg.window)).sum();
        let slack = if cfg.pull { 0.0 } else { mcfg.slack_total() };
        if (answer.value - pull_ref.value).abs() > slack + 1e-6 {
            return Err(format!(
                "t={sent}: referee answered {}, pull reference says {} (allowed slack {slack})",
                answer.value, pull_ref.value
            ));
        }
        let contract = mcfg.eps_synopsis() * truth as f64 + slack;
        if (answer.value - truth as f64).abs() > contract + 1e-6 {
            return Err(format!(
                "t={sent}: referee answered {}, truth is {truth} (allowed error {contract:.3})",
                answer.value
            ));
        }
        say(
            out,
            format!(
                "t={sent} answer={} truth={truth} frames={frames} bytes={bytes}",
                answer.value
            ),
        )?;
    }

    say(
        out,
        format!(
            "{mode} totals: {frames} frames, {bytes} bytes on wire \
             (server counted {} pushes, {} payload bytes, {} stale)",
            registry.counter(MetricId::MonitorPushes),
            registry.counter(MetricId::MonitorPushBytes),
            registry.counter(MetricId::MonitorStaleDeltas),
        ),
    )?;
    drop(parties);
    server.shutdown();
    say(out, format!("monitor OK ({mode})"))
}
