//! Hand-rolled argument parsing (no external CLI dependency).

use std::fmt;

pub const USAGE: &str = "\
waves — sliding-window aggregation over a stream on stdin

USAGE:
    waves <MODE> [OPTIONS]

MODES:
    count       number of 1's in the window (input lines: 0 or 1)
    sum         sum of bounded integers (input lines: integers)
    distinct    distinct values, randomized (eps, delta) scheme
    average     average of timestamped records (lines: '<ts> <value>';
                the window is the last N time units)
    engine      sharded multi-key serving engine: replay a generated
                keyed workload and report per-shard state (no stdin)
    serve       host the serving engine on a TCP port (no stdin);
                prints 'listening on <addr>' once ready
    client      talk to a running server: ingest bits, query windows,
                push referee synopses, fetch snapshots
    top         live dashboard over a running server's metrics: polls
                the STATS frame at --interval and redraws ingest /
                query rates, latency quantiles, per-shard load bars,
                and health flags (no stdin)
    dst         deterministic simulation: replay the fault schedule a
                seed derives (--seed), or soak many seeds (--seeds);
                prints 'DST FAILURE seed=<n> step=<k>' plus a minimized
                schedule on any oracle violation (no stdin)
    cluster     spawn --nodes local servers, route a seeded keyed
                workload over a consistent-hash ring with --replicas
                per key, replicate synopses primary -> followers, and
                verify every key against the client's shadow oracle;
                --kill <I> downs node I afterward and re-verifies
                through failover (no stdin)
    monitor     continuous monitoring over loopback TCP: --parties
                parties stream a seeded workload and (push mode) ship
                PUSH_DELTA frames only when local drift crosses the
                ε-slack budget, or (pull mode) re-push every synopsis
                before each query; every referee answer is verified
                against an exact oracle and the slack contract, and
                per-mode communication counters are reported (no stdin)

OPTIONS:
    --window <N>      maximum window size            [default: 1024]
    --eps <E>         relative error bound, 0<E<1    [default: 0.1]
    --delta <D>       failure probability (distinct) [default: 0.05]
    --max-value <R>   value bound (sum / distinct)   [default: 65535]
    --seed <S>        seed (distinct coins / engine workload)
                                                     [default: 42]
    --seeds <N>       dst: run seeds 0..N instead of the single --seed
    --stats           collect metrics (latency quantiles, structural
                      counters) and dump them at end of stream
    --json            render metrics dumps as JSON (implies --stats)
    --help            print this help

ENGINE OPTIONS (engine / serve modes):
    --shards <T>      worker threads                 [default: 4]
    --keys <K>        distinct stream keys           [default: 1000]
    --items <I>       events to replay               [default: 10000]
    --batch <B>       events per ingest batch        [default: 64]
    --synopsis <S>    per-key synopsis: det | eh     [default: det]
    --persist-dir <P> durable WAL + checkpoints under this directory;
                      on startup prior state is recovered from it
    --sync-policy <Y> WAL fsync cadence: every-batch | every-<N> |
                      on-checkpoint                  [default: every-64]
    --checkpoint-every <C>
                      checkpoint after C applied batches per shard;
                      0 disables auto-checkpoints    [default: 4096]

CLUSTER OPTIONS (cluster mode only):
    --nodes <N>       local server processes to spawn [default: 3]
    --replicas <R>    replicas per key (primary + followers; clamped
                      to the node count)              [default: 2]
    --kill <I>        after verifying, shut node I down and verify
                      every key again through failover

MONITOR OPTIONS (monitor mode only):
    --parties <N>     monitoring parties sharing the slack pool
                                                      [default: 3]
    --eps-split <F>   fraction of --eps spent on the synopses, the
                      rest becomes drift slack (0<F<1) [default: 0.5]
    --mode <M>        push (ship deltas on threshold crossings) or
                      pull (re-push everything per query)
                                                      [default: push]

NETWORK OPTIONS (serve / client / top modes only):
    --addr <A>        address to bind (serve) or dial (client / top)
                                           [default: 127.0.0.1:4600]
    --interval <MS>   top: refresh period in milliseconds
                                           [default: 1000]
    --ticks <N>       top: exit after N refreshes (0 = run until ^C)
    --once            top: print one snapshot and exit (no screen
                      clearing; combine with --json or --prometheus
                      for machine-readable output)
    --prometheus      top: render the snapshot in Prometheus text
                      exposition format (implies --once)
    --key <K>         client: key to ingest into / query  [default: 0]
    --bits <S>        client: string of 0/1 to ingest for --key
    --repeat <N>      client: ingest --bits N times as one pipelined
                      batch sequence (windowed send, many frames in
                      flight per connection)  [default: 1]
    --query           client: query --key at --window, print estimate
    --ping            client: liveness probe first
    --snapshot        client: print the server engine snapshot
    --shutdown        client: ask the server to exit when done

INPUT PROTOCOL (one token per line):
    <value>     stream item
    ?           query the full window
    ? <n>       query the last n items
    !           print a space report (plus metrics under --stats)
    ! json      print the space report as a single JSON line
    # ...       comment (ignored)
";

/// Aggregation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Count,
    Sum,
    Distinct,
    /// Average of timestamped records (input lines: `<ts> <value>`).
    Average,
    /// Sharded multi-key serving engine replaying a generated workload.
    Engine,
    /// Host the serving engine behind the `waves-net` TCP protocol.
    Serve,
    /// Talk to a running `serve` instance.
    Client,
    /// Live metrics dashboard over a running `serve` instance.
    Top,
    /// Deterministic simulation: replay or soak seed-derived fault
    /// schedules through the full stack.
    Dst,
    /// Spawn N local servers and drive a replicated, ring-routed
    /// workload over them, with optional kill-and-failover.
    Cluster,
    /// Continuous monitoring: N parties over loopback TCP pushing
    /// drift-triggered deltas (or pulling per query), verified against
    /// an exact oracle and the ε-slack contract.
    Monitor,
}

/// Which per-key synopsis the engine serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynopsisKind {
    /// The paper's deterministic wave.
    Det,
    /// The exponential-histogram baseline.
    Eh,
}

/// Parsed configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    pub mode: Mode,
    pub window: u64,
    pub eps: f64,
    pub delta: f64,
    pub max_value: u64,
    pub seed: u64,
    /// Collect metrics and dump a snapshot at end of stream.
    pub stats: bool,
    /// Render metrics dumps as JSON (implies `stats`).
    pub json: bool,
    /// Engine mode: worker threads.
    pub shards: usize,
    /// Engine mode: distinct stream keys in the workload.
    pub keys: u64,
    /// Engine mode: events to replay.
    pub items: u64,
    /// Engine mode: events per ingest batch.
    pub batch: usize,
    /// Engine mode: per-key synopsis family.
    pub synopsis: SynopsisKind,
    /// Engine / serve modes: durable state directory (None = in-memory).
    pub persist_dir: Option<String>,
    /// Engine / serve modes: WAL fsync cadence.
    pub sync_policy: waves_engine::SyncPolicy,
    /// Engine / serve modes: auto-checkpoint interval in batches (0 off).
    pub checkpoint_every: u64,
    /// Serve mode: address to bind. Client mode: address to dial.
    pub addr: String,
    /// Client mode: key to ingest into / query.
    pub key: u64,
    /// Client mode: a string of `0`/`1` characters to ingest for `key`.
    pub bits: Option<String>,
    /// Client mode: ingest `bits` this many times as one pipelined
    /// batch sequence (windowed submission, out-of-order completion).
    pub repeat: u64,
    /// Client mode: query `key` at `window` and print the estimate.
    pub do_query: bool,
    /// Client mode: liveness probe before anything else.
    pub ping: bool,
    /// Client mode: print the server engine's snapshot.
    pub net_snapshot: bool,
    /// Client mode: ask the server to exit after the other requests.
    pub shutdown: bool,
    /// Dst mode: soak seeds `0..N` instead of replaying `--seed`.
    pub seeds: Option<u64>,
    /// Top mode: print one snapshot and exit instead of refreshing.
    pub once: bool,
    /// Top mode: render the snapshot as Prometheus text exposition.
    pub prometheus: bool,
    /// Top mode: refresh period in milliseconds.
    pub interval_ms: u64,
    /// Top mode: exit after this many refreshes (`None` = until ^C).
    pub ticks: Option<u64>,
    /// Cluster mode: local server processes to spawn.
    pub nodes: usize,
    /// Cluster mode: replicas per key (primary + followers).
    pub replicas: usize,
    /// Cluster mode: node to shut down for the failover re-verify.
    pub kill: Option<usize>,
    /// Monitor mode: parties sharing the slack pool.
    pub parties: u64,
    /// Monitor mode: fraction of `eps` spent on the synopses.
    pub eps_split: f64,
    /// Monitor mode: pull per query instead of pushing on drift.
    pub pull: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mode: Mode::Count,
            window: 1024,
            eps: 0.1,
            delta: 0.05,
            max_value: 65_535,
            seed: 42,
            stats: false,
            json: false,
            shards: 4,
            keys: 1000,
            items: 10_000,
            batch: 64,
            synopsis: SynopsisKind::Det,
            persist_dir: None,
            sync_policy: waves_engine::SyncPolicy::default(),
            checkpoint_every: 4096,
            addr: "127.0.0.1:4600".to_string(),
            key: 0,
            bits: None,
            repeat: 1,
            do_query: false,
            ping: false,
            net_snapshot: false,
            shutdown: false,
            seeds: None,
            once: false,
            prometheus: false,
            interval_ms: 1000,
            ticks: None,
            nodes: 3,
            replicas: 2,
            kill: None,
            parties: 3,
            eps_split: 0.5,
            pull: false,
        }
    }
}

impl Config {
    /// The engine persistence settings these flags describe, or `None`
    /// when `--persist-dir` was not given.
    pub fn persist_config(&self) -> Option<waves_engine::PersistConfig> {
        self.persist_dir.as_ref().map(|dir| {
            waves_engine::PersistConfig::new(dir)
                .sync_policy(self.sync_policy)
                .checkpoint_every(self.checkpoint_every)
        })
    }
}

/// Argument errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    MissingMode,
    UnknownMode(String),
    UnknownFlag(String),
    MissingValue(String),
    BadValue(String, String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingMode => write!(f, "missing mode"),
            ArgError::UnknownMode(m) => write!(f, "unknown mode '{m}'"),
            ArgError::UnknownFlag(s) => write!(f, "unknown flag '{s}'"),
            ArgError::MissingValue(s) => write!(f, "flag '{s}' needs a value"),
            ArgError::BadValue(s, v) => write!(f, "bad value '{v}' for '{s}'"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parse argv (without the program name). `Ok(None)` means help was
/// requested.
pub fn parse(argv: &[String]) -> Result<Option<Config>, ArgError> {
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        if argv.is_empty() {
            return Err(ArgError::MissingMode);
        }
        return Ok(None);
    }
    let mode = match argv[0].as_str() {
        "count" => Mode::Count,
        "sum" => Mode::Sum,
        "distinct" => Mode::Distinct,
        "average" => Mode::Average,
        "engine" => Mode::Engine,
        "serve" => Mode::Serve,
        "client" => Mode::Client,
        "top" => Mode::Top,
        "dst" => Mode::Dst,
        "cluster" => Mode::Cluster,
        "monitor" => Mode::Monitor,
        other => return Err(ArgError::UnknownMode(other.to_string())),
    };
    let mut cfg = Config {
        mode,
        ..Config::default()
    };
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: usize| -> Result<&String, ArgError> {
            argv.get(i + 1)
                .ok_or_else(|| ArgError::MissingValue(flag.to_string()))
        };
        let bad = |v: &str| ArgError::BadValue(flag.to_string(), v.to_string());
        match flag {
            "--window" => {
                let v = value(i)?;
                cfg.window = v.parse().map_err(|_| bad(v))?;
                i += 2;
            }
            "--eps" => {
                let v = value(i)?;
                cfg.eps = v.parse().map_err(|_| bad(v))?;
                if !(cfg.eps > 0.0 && cfg.eps < 1.0) {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--delta" => {
                let v = value(i)?;
                cfg.delta = v.parse().map_err(|_| bad(v))?;
                if !(cfg.delta > 0.0 && cfg.delta < 1.0) {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--max-value" => {
                let v = value(i)?;
                cfg.max_value = v.parse().map_err(|_| bad(v))?;
                i += 2;
            }
            "--seed" => {
                let v = value(i)?;
                cfg.seed = v.parse().map_err(|_| bad(v))?;
                i += 2;
            }
            "--shards" => {
                let v = value(i)?;
                cfg.shards = v.parse().map_err(|_| bad(v))?;
                if cfg.shards == 0 {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--keys" => {
                let v = value(i)?;
                cfg.keys = v.parse().map_err(|_| bad(v))?;
                if cfg.keys == 0 {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--items" => {
                let v = value(i)?;
                cfg.items = v.parse().map_err(|_| bad(v))?;
                i += 2;
            }
            "--batch" => {
                let v = value(i)?;
                cfg.batch = v.parse().map_err(|_| bad(v))?;
                if cfg.batch == 0 {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--synopsis" => {
                let v = value(i)?;
                cfg.synopsis = match v.as_str() {
                    "det" => SynopsisKind::Det,
                    "eh" => SynopsisKind::Eh,
                    _ => return Err(bad(v)),
                };
                i += 2;
            }
            "--persist-dir" => {
                let v = value(i)?;
                if v.is_empty() {
                    return Err(bad(v));
                }
                cfg.persist_dir = Some(v.clone());
                i += 2;
            }
            "--sync-policy" => {
                let v = value(i)?;
                cfg.sync_policy = v.parse().map_err(|_| bad(v))?;
                i += 2;
            }
            "--checkpoint-every" => {
                let v = value(i)?;
                cfg.checkpoint_every = v.parse().map_err(|_| bad(v))?;
                i += 2;
            }
            "--addr" => {
                let v = value(i)?;
                if v.is_empty() {
                    return Err(bad(v));
                }
                cfg.addr = v.clone();
                i += 2;
            }
            "--key" => {
                let v = value(i)?;
                cfg.key = v.parse().map_err(|_| bad(v))?;
                i += 2;
            }
            "--bits" => {
                let v = value(i)?;
                if v.is_empty() || !v.chars().all(|c| c == '0' || c == '1') {
                    return Err(bad(v));
                }
                cfg.bits = Some(v.clone());
                i += 2;
            }
            "--repeat" => {
                let v = value(i)?;
                cfg.repeat = v.parse().map_err(|_| bad(v))?;
                if cfg.repeat == 0 {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--seeds" => {
                let v = value(i)?;
                let n: u64 = v.parse().map_err(|_| bad(v))?;
                if n == 0 {
                    return Err(bad(v));
                }
                cfg.seeds = Some(n);
                i += 2;
            }
            "--nodes" => {
                let v = value(i)?;
                cfg.nodes = v.parse().map_err(|_| bad(v))?;
                if cfg.nodes == 0 {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--replicas" => {
                let v = value(i)?;
                cfg.replicas = v.parse().map_err(|_| bad(v))?;
                if cfg.replicas == 0 {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--kill" => {
                let v = value(i)?;
                cfg.kill = Some(v.parse().map_err(|_| bad(v))?);
                i += 2;
            }
            "--parties" => {
                let v = value(i)?;
                cfg.parties = v.parse().map_err(|_| bad(v))?;
                if cfg.parties == 0 {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--eps-split" => {
                let v = value(i)?;
                cfg.eps_split = v.parse().map_err(|_| bad(v))?;
                if !(cfg.eps_split > 0.0 && cfg.eps_split < 1.0) {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--mode" => {
                let v = value(i)?;
                cfg.pull = match v.as_str() {
                    "push" => false,
                    "pull" => true,
                    _ => return Err(bad(v)),
                };
                i += 2;
            }
            "--interval" => {
                let v = value(i)?;
                cfg.interval_ms = v.parse().map_err(|_| bad(v))?;
                if cfg.interval_ms == 0 {
                    return Err(bad(v));
                }
                i += 2;
            }
            "--ticks" => {
                let v = value(i)?;
                let n: u64 = v.parse().map_err(|_| bad(v))?;
                cfg.ticks = (n > 0).then_some(n);
                i += 2;
            }
            "--once" => {
                cfg.once = true;
                i += 1;
            }
            "--prometheus" => {
                cfg.prometheus = true;
                cfg.once = true;
                i += 1;
            }
            "--query" => {
                cfg.do_query = true;
                i += 1;
            }
            "--ping" => {
                cfg.ping = true;
                i += 1;
            }
            "--snapshot" => {
                cfg.net_snapshot = true;
                i += 1;
            }
            "--shutdown" => {
                cfg.shutdown = true;
                i += 1;
            }
            "--stats" => {
                cfg.stats = true;
                i += 1;
            }
            "--json" => {
                cfg.stats = true;
                cfg.json = true;
                i += 1;
            }
            other => return Err(ArgError::UnknownFlag(other.to_string())),
        }
    }
    Ok(Some(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_count_defaults() {
        let cfg = parse(&argv("count")).unwrap().unwrap();
        assert_eq!(cfg.mode, Mode::Count);
        assert_eq!(cfg.window, 1024);
        assert_eq!(cfg.eps, 0.1);
    }

    #[test]
    fn parses_full_flags() {
        let cfg = parse(&argv(
            "distinct --window 5000 --eps 0.2 --delta 0.01 --max-value 100 --seed 7",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.mode, Mode::Distinct);
        assert_eq!(cfg.window, 5000);
        assert_eq!(cfg.eps, 0.2);
        assert_eq!(cfg.delta, 0.01);
        assert_eq!(cfg.max_value, 100);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            parse(&argv("frobnicate")),
            Err(ArgError::UnknownMode("frobnicate".into()))
        );
        assert!(matches!(
            parse(&argv("count --window")),
            Err(ArgError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&argv("count --eps 1.5")),
            Err(ArgError::BadValue(..))
        ));
        assert!(matches!(
            parse(&argv("count --wat 3")),
            Err(ArgError::UnknownFlag(_))
        ));
        assert!(matches!(parse(&[]), Err(ArgError::MissingMode)));
    }

    #[test]
    fn parses_engine_mode() {
        let cfg = parse(&argv(
            "engine --shards 8 --keys 100000 --items 500000 --batch 256 --synopsis eh",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.mode, Mode::Engine);
        assert_eq!(cfg.shards, 8);
        assert_eq!(cfg.keys, 100_000);
        assert_eq!(cfg.items, 500_000);
        assert_eq!(cfg.batch, 256);
        assert_eq!(cfg.synopsis, SynopsisKind::Eh);
        // Defaults.
        let cfg = parse(&argv("engine")).unwrap().unwrap();
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.keys, 1000);
        assert_eq!(cfg.synopsis, SynopsisKind::Det);
        // Validation.
        assert!(matches!(
            parse(&argv("engine --shards 0")),
            Err(ArgError::BadValue(..))
        ));
        assert!(matches!(
            parse(&argv("engine --synopsis frob")),
            Err(ArgError::BadValue(..))
        ));
    }

    #[test]
    fn parses_net_modes() {
        let cfg = parse(&argv("serve --addr 127.0.0.1:0 --shards 2 --window 256"))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.mode, Mode::Serve);
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.shards, 2);
        let cfg = parse(&argv(
            "client --addr 127.0.0.1:4600 --key 7 --bits 10110 --query --ping --snapshot --shutdown",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.mode, Mode::Client);
        assert_eq!(cfg.key, 7);
        assert_eq!(cfg.bits.as_deref(), Some("10110"));
        assert!(cfg.do_query && cfg.ping && cfg.net_snapshot && cfg.shutdown);
        let cfg = parse(&argv("client --bits 10110 --repeat 64"))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.repeat, 64);
        // Defaults.
        let cfg = parse(&argv("client")).unwrap().unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:4600");
        assert_eq!(cfg.repeat, 1);
        assert!(!cfg.do_query && cfg.bits.is_none());
        // Validation: bits must be 0/1 only, and --repeat 0 is
        // rejected.
        assert!(matches!(
            parse(&argv("client --bits 012")),
            Err(ArgError::BadValue(..))
        ));
        assert!(matches!(
            parse(&argv("client --repeat 0")),
            Err(ArgError::BadValue(..))
        ));
        assert!(matches!(
            parse(&argv("serve --addr")),
            Err(ArgError::MissingValue(_))
        ));
    }

    #[test]
    fn parses_persistence_flags() {
        use waves_engine::SyncPolicy;
        let cfg = parse(&argv(
            "engine --persist-dir /tmp/w --sync-policy every-batch --checkpoint-every 100",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.persist_dir.as_deref(), Some("/tmp/w"));
        assert_eq!(cfg.sync_policy, SyncPolicy::EveryBatch);
        assert_eq!(cfg.checkpoint_every, 100);
        let pc = cfg.persist_config().unwrap();
        assert_eq!(pc.sync, SyncPolicy::EveryBatch);
        assert_eq!(pc.checkpoint_every_batches, 100);
        // Defaults: no persistence, every-64, 4096.
        let cfg = parse(&argv("engine")).unwrap().unwrap();
        assert_eq!(cfg.persist_dir, None);
        assert!(cfg.persist_config().is_none());
        assert_eq!(cfg.sync_policy, SyncPolicy::EveryN(64));
        assert_eq!(cfg.checkpoint_every, 4096);
        // every-<N> and on-checkpoint parse through FromStr.
        let cfg = parse(&argv("serve --sync-policy every-7"))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.sync_policy, SyncPolicy::EveryN(7));
        let cfg = parse(&argv("serve --sync-policy on-checkpoint"))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.sync_policy, SyncPolicy::OnCheckpoint);
        // Validation.
        assert!(matches!(
            parse(&argv("engine --sync-policy sometimes")),
            Err(ArgError::BadValue(..))
        ));
        assert!(matches!(
            parse(&argv("engine --persist-dir")),
            Err(ArgError::MissingValue(_))
        ));
    }

    #[test]
    fn parses_dst_mode() {
        let cfg = parse(&argv("dst --seed 17")).unwrap().unwrap();
        assert_eq!(cfg.mode, Mode::Dst);
        assert_eq!(cfg.seed, 17);
        assert_eq!(cfg.seeds, None);
        let cfg = parse(&argv("dst --seeds 300")).unwrap().unwrap();
        assert_eq!(cfg.seeds, Some(300));
        // Validation: zero seeds would soak nothing.
        assert!(matches!(
            parse(&argv("dst --seeds 0")),
            Err(ArgError::BadValue(..))
        ));
    }

    #[test]
    fn parses_cluster_mode() {
        let cfg = parse(&argv(
            "cluster --nodes 4 --replicas 3 --kill 1 --keys 50 --items 2000 --seed 9",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.mode, Mode::Cluster);
        assert_eq!(cfg.nodes, 4);
        assert_eq!(cfg.replicas, 3);
        assert_eq!(cfg.kill, Some(1));
        assert_eq!(cfg.keys, 50);
        assert_eq!(cfg.seed, 9);
        // Defaults.
        let cfg = parse(&argv("cluster")).unwrap().unwrap();
        assert_eq!(cfg.nodes, 3);
        assert_eq!(cfg.replicas, 2);
        assert_eq!(cfg.kill, None);
        // Validation: zero nodes / replicas route nothing.
        assert!(matches!(
            parse(&argv("cluster --nodes 0")),
            Err(ArgError::BadValue(..))
        ));
        assert!(matches!(
            parse(&argv("cluster --replicas 0")),
            Err(ArgError::BadValue(..))
        ));
    }

    #[test]
    fn parses_monitor_mode() {
        let cfg = parse(&argv(
            "monitor --parties 4 --eps-split 0.6 --mode pull --items 5000 --window 256 --seed 9",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.mode, Mode::Monitor);
        assert_eq!(cfg.parties, 4);
        assert_eq!(cfg.eps_split, 0.6);
        assert!(cfg.pull);
        assert_eq!(cfg.items, 5000);
        assert_eq!(cfg.window, 256);
        assert_eq!(cfg.seed, 9);
        // Defaults.
        let cfg = parse(&argv("monitor")).unwrap().unwrap();
        assert_eq!(cfg.parties, 3);
        assert_eq!(cfg.eps_split, 0.5);
        assert!(!cfg.pull, "push is the default mode");
        // Validation: the split must leave room on both sides, the
        // party count must be nonzero, and --mode only knows push/pull.
        assert!(matches!(
            parse(&argv("monitor --eps-split 1.0")),
            Err(ArgError::BadValue(..))
        ));
        assert!(matches!(
            parse(&argv("monitor --parties 0")),
            Err(ArgError::BadValue(..))
        ));
        assert!(matches!(
            parse(&argv("monitor --mode sometimes")),
            Err(ArgError::BadValue(..))
        ));
    }

    #[test]
    fn parses_top_mode() {
        let cfg = parse(&argv("top --addr 127.0.0.1:4600 --interval 250 --ticks 3"))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.mode, Mode::Top);
        assert_eq!(cfg.addr, "127.0.0.1:4600");
        assert_eq!(cfg.interval_ms, 250);
        assert_eq!(cfg.ticks, Some(3));
        assert!(!cfg.once && !cfg.prometheus);
        // --once --json: one machine-readable snapshot.
        let cfg = parse(&argv("top --once --json")).unwrap().unwrap();
        assert!(cfg.once && cfg.json && !cfg.prometheus);
        // --prometheus implies --once.
        let cfg = parse(&argv("top --prometheus")).unwrap().unwrap();
        assert!(cfg.once && cfg.prometheus);
        // Defaults.
        let cfg = parse(&argv("top")).unwrap().unwrap();
        assert_eq!(cfg.interval_ms, 1000);
        assert_eq!(cfg.ticks, None);
        // Validation: a zero interval would spin.
        assert!(matches!(
            parse(&argv("top --interval 0")),
            Err(ArgError::BadValue(..))
        ));
        // --ticks 0 means "no limit", same as omitting it.
        let cfg = parse(&argv("top --ticks 0")).unwrap().unwrap();
        assert_eq!(cfg.ticks, None);
    }

    #[test]
    fn help_requests_none() {
        assert_eq!(parse(&argv("count --help")).unwrap(), None);
    }

    #[test]
    fn stats_and_json_flags() {
        let cfg = parse(&argv("count --stats")).unwrap().unwrap();
        assert!(cfg.stats && !cfg.json);
        let cfg = parse(&argv("count --json")).unwrap().unwrap();
        assert!(cfg.stats && cfg.json, "--json implies --stats");
        let cfg = parse(&argv("count")).unwrap().unwrap();
        assert!(!cfg.stats && !cfg.json);
    }
}
