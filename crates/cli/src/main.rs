//! `waves` — sliding-window aggregation over a stream on stdin.
//!
//! ```text
//! waves count    --window 10000 --eps 0.05
//! waves sum      --window 10000 --eps 0.05 --max-value 1000
//! waves distinct --window 10000 --eps 0.1 --delta 0.05 --max-value 65535
//! ```
//!
//! Input protocol (one token per line):
//! * `0` / `1` (count mode) or a nonnegative integer (sum / distinct);
//! * `?` — query the full window; `? n` — query the last `n` items;
//! * `!` — print a space report (plus a metrics snapshot under
//!   `--stats`); `! json` — the space report as one JSON line;
//! * `#...` — comment, ignored.
//!
//! With `--stats` every push and query is timed into log-bucketed
//! histograms and a metrics snapshot is printed at end of stream
//! (`--json` renders it as a single JSON object).
//!
//! Estimates print as `estimate <value> in [<lo>, <hi>] (exact|approx)`.

use std::io::{BufRead, Write};
use std::process::ExitCode;

mod args;
mod cluster;
mod dst;
mod engine;
mod monitor;
mod net;
mod run;
mod top;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match args::parse(&argv) {
        Ok(Some(cfg)) => cfg,
        Ok(None) => {
            print!("{}", args::USAGE);
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // Engine replay and the network modes take no stdin.
    let stdinless = match cfg.mode {
        args::Mode::Engine => Some(engine::run_engine(&cfg, &mut out)),
        args::Mode::Serve => Some(net::run_serve(&cfg, &mut out)),
        args::Mode::Client => Some(net::run_client(&cfg, &mut out)),
        args::Mode::Top => Some(top::run_top(&cfg, &mut out)),
        args::Mode::Dst => Some(dst::run_dst(&cfg, &mut out)),
        args::Mode::Cluster => Some(cluster::run_cluster(&cfg, &mut out)),
        args::Mode::Monitor => Some(monitor::run_monitor(&cfg, &mut out)),
        _ => None,
    };
    if let Some(result) = stdinless {
        return match result {
            Ok(()) => {
                out.flush().ok();
                ExitCode::SUCCESS
            }
            Err(e) => {
                out.flush().ok();
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let stdin = std::io::stdin();
    match run::run(cfg, &mut stdin.lock().lines(), &mut out) {
        Ok(()) => {
            out.flush().ok();
            ExitCode::SUCCESS
        }
        Err(e) => {
            out.flush().ok();
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
