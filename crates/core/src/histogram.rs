//! Windowed histograms (Section 5, "Other Problems": "histogramming").
//!
//! An equi-width (or custom-edge) histogram over a bounded value domain,
//! maintained over a sliding window: bucket `b`'s count is a Basic
//! Counting instance fed the indicator "this item falls in bucket `b`",
//! so every per-bucket count carries the deterministic wave's `eps`
//! guarantee. On top of the per-bucket counts the histogram answers
//! quantile queries with certified value ranges.
//!
//! Costs: `B` buckets cost `B` waves of space; per-item time is O(B)
//! (every bucket's wave consumes the indicator bit — the wave for the
//! matching bucket gets a 1, the rest get a 0, each in O(1)).

use crate::det_wave::DetWave;
use crate::error::WaveError;
use crate::estimate::{Estimate, SpaceReport};

/// A histogram over a sliding window of the last `N` items.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    /// Bucket upper bounds (exclusive), strictly increasing; the last
    /// edge is `max_value + 1` so every value lands somewhere.
    edges: Vec<u64>,
    waves: Vec<DetWave>,
    pos: u64,
}

impl WindowedHistogram {
    /// Equi-width histogram with `buckets` buckets over `[0..=max_value]`.
    pub fn equi_width(
        max_window: u64,
        max_value: u64,
        buckets: usize,
        eps: f64,
    ) -> Result<Self, WaveError> {
        if buckets == 0 || (buckets as u64) > max_value + 1 {
            return Err(WaveError::InvalidWindow(buckets as u64));
        }
        let width = (max_value + 1).div_ceil(buckets as u64);
        let edges = (1..=buckets as u64)
            .map(|i| (i * width).min(max_value + 1))
            .collect();
        Self::with_edges_impl(max_window, edges, eps)
    }

    /// Custom bucket edges: bucket `i` covers `[edges[i-1], edges[i])`
    /// (with an implicit 0 lower bound for the first bucket). Edges must
    /// be strictly increasing and nonzero.
    pub fn with_edges(max_window: u64, edges: Vec<u64>, eps: f64) -> Result<Self, WaveError> {
        if edges.is_empty() || edges[0] == 0 || edges.windows(2).any(|w| w[0] >= w[1]) {
            return Err(WaveError::InvalidWindow(0));
        }
        Self::with_edges_impl(max_window, edges, eps)
    }

    fn with_edges_impl(max_window: u64, edges: Vec<u64>, eps: f64) -> Result<Self, WaveError> {
        let waves = edges
            .iter()
            .map(|_| DetWave::new(max_window, eps))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WindowedHistogram {
            edges,
            waves,
            pos: 0,
        })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.edges.len()
    }

    /// The bucket covering `v`, or `None` if `v` is beyond the last edge.
    pub fn bucket_of(&self, v: u64) -> Option<usize> {
        let i = self.edges.partition_point(|&e| e <= v);
        (i < self.edges.len()).then_some(i)
    }

    /// Value range `[lo, hi]` (inclusive) covered by bucket `b`.
    pub fn bucket_range(&self, b: usize) -> (u64, u64) {
        let lo = if b == 0 { 0 } else { self.edges[b - 1] };
        (lo, self.edges[b] - 1)
    }

    /// Items observed so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Observe the next item. Values beyond the last edge are rejected.
    pub fn push_value(&mut self, v: u64) -> Result<(), WaveError> {
        let Some(b) = self.bucket_of(v) else {
            return Err(WaveError::ValueTooLarge {
                value: v,
                max: *self.edges.last().expect("nonempty") - 1,
            });
        };
        self.pos += 1;
        for (i, w) in self.waves.iter_mut().enumerate() {
            w.push_bit(i == b);
        }
        Ok(())
    }

    /// Per-bucket count estimates over the last `n` items.
    pub fn query(&self, n: u64) -> Result<Vec<Estimate>, WaveError> {
        self.waves.iter().map(|w| w.query(n)).collect()
    }

    /// Estimate the `q`-quantile (0 < q <= 1) of the values in the last
    /// `n` items: the certified value range of the bucket(s) that could
    /// contain it, given the per-bucket count intervals. Returns `None`
    /// when the window is provably empty.
    ///
    /// The returned `(lo, hi)` is a *value* range: every consistent
    /// assignment of true counts places the quantile inside it.
    pub fn query_quantile(&self, n: u64, q: f64) -> Result<Option<(u64, u64)>, WaveError> {
        if !(q > 0.0 && q <= 1.0) {
            return Err(WaveError::InvalidQuantile(q));
        }
        let counts = self.query(n)?;
        let total_lo: u64 = counts.iter().map(|e| e.lo).sum();
        let total_hi: u64 = counts.iter().map(|e| e.hi).sum();
        if total_hi == 0 {
            return Ok(None);
        }
        // Rank bounds for the quantile element.
        let rank_lo = (q * total_lo as f64).ceil().max(1.0) as u64;
        let rank_hi = (q * total_hi as f64).ceil() as u64;
        // Earliest possible bucket: assume preceding buckets are as full
        // as possible (hi) and the target rank as small as possible.
        let mut first = self.edges.len() - 1;
        let mut acc = 0u64;
        for (i, e) in counts.iter().enumerate() {
            acc += e.hi;
            if acc >= rank_lo {
                first = i;
                break;
            }
        }
        // Latest possible bucket: preceding buckets as empty as possible.
        let mut last = self.edges.len() - 1;
        let mut acc = 0u64;
        for (i, e) in counts.iter().enumerate() {
            acc += e.lo;
            if acc >= rank_hi {
                last = i;
                break;
            }
        }
        let (lo, _) = self.bucket_range(first.min(last));
        let (_, hi) = self.bucket_range(last.max(first));
        Ok(Some((lo, hi)))
    }

    /// Space accounting: sum over buckets.
    pub fn space_report(&self) -> SpaceReport {
        let mut total = SpaceReport {
            resident_bytes: std::mem::size_of::<Self>(),
            synopsis_bits: 0,
            entries: 0,
        };
        for w in &self.waves {
            let r = w.space_report();
            total.resident_bytes += r.resident_bytes;
            total.synopsis_bits += r.synopsis_bits;
            total.entries += r.entries;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn equi_width_edges() {
        let h = WindowedHistogram::equi_width(16, 99, 10, 0.5).unwrap();
        assert_eq!(h.buckets(), 10);
        assert_eq!(h.bucket_range(0), (0, 9));
        assert_eq!(h.bucket_range(9), (90, 99));
        assert_eq!(h.bucket_of(0), Some(0));
        assert_eq!(h.bucket_of(99), Some(9));
        assert_eq!(h.bucket_of(100), None);
    }

    #[test]
    fn custom_edges() {
        let h = WindowedHistogram::with_edges(16, vec![10, 100, 1000], 0.5).unwrap();
        assert_eq!(h.bucket_of(5), Some(0));
        assert_eq!(h.bucket_of(10), Some(1));
        assert_eq!(h.bucket_of(999), Some(2));
        assert_eq!(h.bucket_of(1000), None);
        assert!(WindowedHistogram::with_edges(16, vec![10, 10], 0.5).is_err());
        assert!(WindowedHistogram::with_edges(16, vec![], 0.5).is_err());
        assert!(WindowedHistogram::with_edges(16, vec![0, 5], 0.5).is_err());
    }

    #[test]
    fn rejects_out_of_domain() {
        let mut h = WindowedHistogram::equi_width(8, 9, 2, 0.5).unwrap();
        assert!(matches!(
            h.push_value(10),
            Err(WaveError::ValueTooLarge { .. })
        ));
        assert_eq!(h.pos(), 0, "failed push must not advance");
    }

    #[test]
    fn bucket_counts_within_eps() {
        let (n, r, buckets, eps) = (256u64, 1023u64, 8usize, 0.1);
        let mut h = WindowedHistogram::equi_width(n, r, buckets, eps).unwrap();
        let mut window: VecDeque<u64> = VecDeque::new();
        let mut x = 11u64;
        for step in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % (r + 1);
            h.push_value(v).unwrap();
            window.push_back(v);
            if window.len() as u64 > n {
                window.pop_front();
            }
            if step % 97 == 0 {
                let ests = h.query(n).unwrap();
                for (b, est) in ests.iter().enumerate() {
                    let (lo, hi) = h.bucket_range(b);
                    let actual = window.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
                    assert!(est.brackets(actual), "bucket {b}");
                    assert!(est.relative_error(actual) <= eps + 1e-9, "bucket {b}");
                }
            }
        }
    }

    #[test]
    fn quantiles_bracket_truth() {
        let (n, r, buckets, eps) = (512u64, 4_095u64, 32usize, 0.05);
        let mut h = WindowedHistogram::equi_width(n, r, buckets, eps).unwrap();
        let mut window: VecDeque<u64> = VecDeque::new();
        let mut x = 23u64;
        for _ in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Skewed values: mostly small, occasional large.
            let v = if (x >> 60) == 0 {
                (x >> 33) % (r + 1)
            } else {
                (x >> 33) % 64
            };
            h.push_value(v).unwrap();
            window.push_back(v);
            if window.len() as u64 > n {
                window.pop_front();
            }
        }
        let mut sorted: Vec<u64> = window.iter().copied().collect();
        sorted.sort_unstable();
        for q in [0.5f64, 0.9, 0.99] {
            let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            let truth = sorted[idx];
            let (lo, hi) = h.query_quantile(n, q).unwrap().unwrap();
            assert!(
                lo <= truth && truth <= hi,
                "q={q}: truth {truth} not in [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn empty_quantile_is_none() {
        let mut h = WindowedHistogram::equi_width(8, 9, 2, 0.5).unwrap();
        assert_eq!(h.query_quantile(8, 0.5).unwrap(), None);
        h.push_value(3).unwrap();
        for _ in 0..20 {
            h.push_value(0).unwrap();
        }
        // Items still in window: quantile defined.
        assert!(h.query_quantile(8, 0.5).unwrap().is_some());
    }

    #[test]
    fn space_scales_with_buckets() {
        let h2 = WindowedHistogram::equi_width(1 << 10, 1023, 2, 0.1).unwrap();
        let h16 = WindowedHistogram::equi_width(1 << 10, 1023, 16, 0.1).unwrap();
        assert!(h16.space_report().resident_bytes > 4 * h2.space_report().resident_bytes);
    }
}
