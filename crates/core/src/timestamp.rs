//! Sliding windows with duplicated positions (Corollary 1).
//!
//! Stream items are `(position, bit)` pairs whose positions are
//! nondecreasing (e.g. positions are time units and several items share a
//! timestamp). The window is the last `N` *positions*, and `U` bounds the
//! number of stream items that can fall in any window, so the wave has
//! `ceil(log2(2 eps U))` levels.
//!
//! Two deliberate generalizations over the paper's setting, both safe:
//!
//! * positions may skip values (the paper's "consecutive integers with
//!   possible repetitions" is the special case); expiry then discards a
//!   batch of entries in amortized O(1) each, instead of the paper's
//!   worst-case O(1) trick with an auxiliary first-item-per-position
//!   list (the asymptotic totals are identical and no reproduced claim
//!   depends on worst-case expiry latency of this variant);
//! * the boundary case `p2 = s` is reported exact only when the truth
//!   interval collapses: with duplicated positions, entries at the
//!   boundary position may have been capacity-evicted, so claiming
//!   exactness from the stored smallest rank alone would be unsound.

use crate::basic_wave::{wave_estimate, wave_levels};
use crate::chain::{Chain, Fifo};
use crate::error::WaveError;
use crate::estimate::{Estimate, SpaceReport};
use crate::level::rank_level;
use crate::space::{delta_coded_bits, elias_gamma_bits};
use crate::window::ModRing;

#[derive(Debug, Clone, Copy)]
struct Entry {
    pos: u64,
    rank: u64,
    level: u8,
}

/// Deterministic wave for Basic Counting over timestamped streams
/// (Corollary 1): windows of up to `N` positions, at most `U` items per
/// window, relative error `eps`.
#[derive(Debug, Clone)]
pub struct TimestampWave {
    max_window: u64,
    max_items: u64,
    eps: f64,
    num_levels: u32,
    ring: ModRing,
    /// Latest position observed (0 before any item).
    cur: u64,
    rank: u64,
    /// Largest 1-rank expired (0 if none).
    r1: u64,
    chain: Chain<Entry>,
    queues: Vec<Fifo>,
}

impl TimestampWave {
    /// Build a wave for windows of up to `max_window` positions with at
    /// most `max_items` stream items per window.
    pub fn new(max_window: u64, max_items: u64, eps: f64) -> Result<Self, WaveError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        Self::with_k(max_window, max_items, (1.0 / eps).ceil() as u64, eps)
    }

    /// Build from `k = ceil(1/eps)` directly (used by decode; the f64
    /// `eps -> k` map is not injective).
    fn with_k(max_window: u64, max_items: u64, k: u64, eps: f64) -> Result<Self, WaveError> {
        if k == 0 || k > 1 << 32 {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        if max_window == 0 || max_items == 0 {
            return Err(WaveError::InvalidWindow(max_window.min(max_items)));
        }
        if max_window > 1 << 62 || max_items > 1 << 62 {
            return Err(WaveError::InvalidWindow(max_window.max(max_items)));
        }
        let num_levels = wave_levels(max_items, k);
        let lower_cap = ((k + 1).div_ceil(2)) as usize;
        let top_cap = (k + 1) as usize;
        let mut queues = Vec::with_capacity(num_levels as usize);
        let mut total_cap = 0usize;
        for lvl in 0..num_levels {
            let cap = if lvl + 1 == num_levels {
                top_cap
            } else {
                lower_cap
            };
            total_cap += cap;
            queues.push(Fifo::new(cap));
        }
        Ok(TimestampWave {
            max_window,
            max_items,
            eps,
            num_levels,
            ring: ModRing::for_window(max_window.max(max_items)),
            cur: 0,
            rank: 0,
            r1: 0,
            chain: Chain::with_capacity(total_cap),
            queues,
        })
    }

    /// Maximum window size in positions.
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// The per-window item bound `U`.
    pub fn max_items(&self) -> u64 {
        self.max_items
    }

    /// The configured error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Latest position observed.
    pub fn current_position(&self) -> u64 {
        self.cur
    }

    /// Number of 1's observed so far.
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// Number of entries currently stored.
    pub fn entries(&self) -> usize {
        self.chain.len()
    }

    /// Observe an item `(position, bit)`. Positions must be
    /// nondecreasing; gaps are allowed.
    pub fn push(&mut self, position: u64, bit: bool) -> Result<(), WaveError> {
        if position < self.cur {
            return Err(WaveError::PositionRegressed {
                last: self.cur,
                got: position,
            });
        }
        self.cur = position;
        self.expire();
        if bit {
            self.rank += 1;
            let j = rank_level(self.rank).min(self.num_levels - 1) as usize;
            if self.queues[j].is_full() {
                let old = self.queues[j].pop_front().expect("full queue has a front");
                self.chain.remove(old);
            }
            let id = self.chain.push_back(Entry {
                pos: position,
                rank: self.rank,
                level: j as u8,
            });
            self.queues[j].push_back(id);
        }
        Ok(())
    }

    /// Advance the clock to `position` without observing an item (e.g. a
    /// heartbeat in a quiet period).
    pub fn advance_to(&mut self, position: u64) -> Result<(), WaveError> {
        if position < self.cur {
            return Err(WaveError::PositionRegressed {
                last: self.cur,
                got: position,
            });
        }
        self.cur = position;
        self.expire();
        Ok(())
    }

    fn expire(&mut self) {
        while let Some(h) = self.chain.head() {
            let e = *self.chain.get(h);
            if e.pos + self.max_window <= self.cur {
                self.r1 = e.rank;
                let popped = self.queues[e.level as usize].pop_front();
                debug_assert_eq!(popped, Some(h));
                self.chain.remove(h);
            } else {
                break;
            }
        }
    }

    /// Estimate the number of 1's among items whose position lies in the
    /// last `n <= N` positions, i.e. in `[cur - n + 1, cur]`.
    pub fn query(&self, n: u64) -> Result<Estimate, WaveError> {
        if n > self.max_window {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_window,
            });
        }
        if n > self.cur || self.cur == 0 {
            return Ok(Estimate::exact(self.rank));
        }
        let s = self.cur - n + 1;
        let mut r1 = self.r1;
        let mut first_in: Option<Entry> = None;
        for (_, e) in self.chain.iter() {
            if e.pos < s {
                // Entries are (position, rank)-ordered; the last one
                // before s carries the largest rank at position p1.
                r1 = e.rank;
            } else {
                first_in = Some(*e);
                break;
            }
        }
        let Some(e) = first_in else {
            return Ok(Estimate::exact(0));
        };
        // With duplicated positions we never claim exactness from
        // p2 == s alone (see module docs); wave_estimate still collapses
        // to exact when the interval is a point.
        Ok(wave_estimate(self.rank, r1, e.rank))
    }

    /// Serialize into the compact bit encoding (scheme as in
    /// [`crate::det_wave::DetWave::encode`], with the `U` parameter).
    pub fn encode(&self) -> Vec<u8> {
        use crate::codec::{write_deltas, BitWriter};
        let mut w = BitWriter::new();
        w.write_gamma(self.max_window);
        w.write_gamma(self.max_items);
        w.write_gamma((1.0 / self.eps).ceil() as u64);
        w.write_gamma0(self.cur);
        w.write_gamma0(self.rank);
        w.write_gamma0(self.r1);
        w.write_gamma0(self.chain.len() as u64);
        let positions: Vec<u64> = self.chain.iter().map(|(_, e)| e.pos).collect();
        let ranks: Vec<u64> = self.chain.iter().map(|(_, e)| e.rank).collect();
        write_deltas(&mut w, &positions);
        write_deltas(&mut w, &ranks);
        for (_, e) in self.chain.iter() {
            w.write_gamma0(e.level as u64);
        }
        w.finish()
    }

    /// Reconstruct a synopsis from [`TimestampWave::encode`] output.
    pub fn decode(bytes: &[u8]) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::{read_deltas, BitReader, CodecError};
        let mut r = BitReader::new(bytes);
        let max_window = r.read_gamma()?;
        let max_items = r.read_gamma()?;
        let k = r.read_gamma()?;
        if k == 0 || k > 1 << 32 {
            return Err(CodecError::Corrupt("bad k"));
        }
        let mut wave = TimestampWave::with_k(max_window, max_items, k, 1.0 / k as f64)?;
        wave.cur = r.read_gamma0()?;
        wave.rank = r.read_gamma0()?;
        wave.r1 = r.read_gamma0()?;
        if wave.cur > 1 << 62 || wave.rank > 1 << 62 || wave.r1 > wave.rank {
            return Err(CodecError::Corrupt("counters inconsistent"));
        }
        let count = r.read_gamma0()? as usize;
        let positions = read_deltas(&mut r, count)?;
        let ranks = read_deltas(&mut r, count)?;
        let mut prev_rank = 0u64;
        for i in 0..count {
            let level = r.read_gamma0()?;
            if level >= wave.num_levels as u64 {
                return Err(CodecError::Corrupt("level out of range"));
            }
            let (p, rk) = (positions[i], ranks[i]);
            // Positions may repeat (duplicates); ranks strictly increase.
            if p > wave.cur || rk > wave.rank || (i > 0 && rk <= prev_rank) {
                return Err(CodecError::Corrupt("entries inconsistent"));
            }
            if p + max_window <= wave.cur || rk <= wave.r1 {
                return Err(CodecError::Corrupt("entry already expired"));
            }
            prev_rank = rk;
            if wave.queues[level as usize].is_full() {
                return Err(CodecError::Corrupt("level queue overflow"));
            }
            let id = wave.chain.push_back(Entry {
                pos: p,
                rank: rk,
                level: level as u8,
            });
            wave.queues[level as usize].push_back(id);
        }
        Ok(wave)
    }

    /// Space accounting (see [`SpaceReport`]).
    pub fn space_report(&self) -> SpaceReport {
        let resident_bytes = std::mem::size_of::<Self>()
            + self.chain.heap_bytes()
            + self.queues.iter().map(Fifo::heap_bytes).sum::<usize>();
        let counter_bits = self.ring.counter_bits() as u64;
        let positions = self.chain.iter().map(|(_, e)| e.pos);
        let ranks = self.chain.iter().map(|(_, e)| e.rank);
        let synopsis_bits = 3 * counter_bits
            + delta_coded_bits(positions)
            + delta_coded_bits(ranks)
            + self.chain.len() as u64 * elias_gamma_bits(self.num_levels as u64 + 1);
        SpaceReport {
            resident_bytes,
            synopsis_bits,
            entries: self.chain.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Exact oracle: positions of 1-items within the window.
    struct Oracle {
        max_window: u64,
        cur: u64,
        ones: VecDeque<u64>,
    }

    impl Oracle {
        fn new(max_window: u64) -> Self {
            Oracle {
                max_window,
                cur: 0,
                ones: VecDeque::new(),
            }
        }
        fn push(&mut self, position: u64, bit: bool) {
            self.cur = position;
            if bit {
                self.ones.push_back(position);
            }
            while self
                .ones
                .front()
                .is_some_and(|&p| p + self.max_window <= self.cur)
            {
                self.ones.pop_front();
            }
        }
        fn query(&self, n: u64) -> u64 {
            if n > self.cur {
                return self.ones.len() as u64;
            }
            let s = self.cur - n + 1;
            self.ones.iter().filter(|&&p| p >= s).count() as u64
        }
    }

    #[test]
    fn rejects_regressing_positions() {
        let mut w = TimestampWave::new(10, 100, 0.5).unwrap();
        w.push(5, true).unwrap();
        assert!(matches!(
            w.push(4, true),
            Err(WaveError::PositionRegressed { last: 5, got: 4 })
        ));
    }

    #[test]
    fn duplicate_positions_counted() {
        let mut w = TimestampWave::new(10, 100, 0.5).unwrap();
        for _ in 0..5 {
            w.push(3, true).unwrap();
        }
        let e = w.query(10).unwrap();
        assert!(e.brackets(5));
    }

    #[test]
    fn paper_example_stream_shape() {
        // The example from Section 3.2: (1,0),(2,1),(2,0),(2,1),(2,1),
        // (3,1),(4,0),(4,0).
        let mut w = TimestampWave::new(4, 8, 0.5).unwrap();
        let items = [
            (1, false),
            (2, true),
            (2, false),
            (2, true),
            (2, true),
            (3, true),
            (4, false),
            (4, false),
        ];
        for (p, b) in items {
            w.push(p, b).unwrap();
        }
        // 4 ones total, all within the window of 4 positions.
        let e = w.query(4).unwrap();
        assert!(e.brackets(4));
    }

    #[test]
    fn error_bound_holds_random_timestamps() {
        let eps = 0.25;
        let (n_pos, u) = (64u64, 512u64);
        let mut w = TimestampWave::new(n_pos, u, eps).unwrap();
        let mut oracle = Oracle::new(n_pos);
        let mut x = 77u64;
        let mut pos = 1u64;
        for step in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Advance the clock 0..2 positions, keeping density within U.
            pos += (x >> 60) % 2;
            let bit = (x >> 33).is_multiple_of(3);
            w.push(pos, bit).unwrap();
            oracle.push(pos, bit);
            if step % 97 == 0 {
                for n in [1u64, 8, 32, 64] {
                    let actual = oracle.query(n);
                    let est = w.query(n).unwrap();
                    assert!(
                        est.brackets(actual),
                        "step={step} n={n}: [{},{}] vs {actual}",
                        est.lo,
                        est.hi
                    );
                    assert!(
                        est.relative_error(actual) <= eps + 1e-9,
                        "step={step} n={n} actual={actual} est={:?}",
                        est
                    );
                }
            }
        }
    }

    #[test]
    fn roundtrip_survives_non_injective_eps_to_k() {
        let mut w = TimestampWave::new(100, 50, 1.0 / 48.5).unwrap();
        for t in 1..=500u64 {
            w.push(t, t % 3 == 0).unwrap();
        }
        let w2 = TimestampWave::decode(&w.encode()).expect("valid encode must decode");
        assert_eq!(w.query(100).unwrap(), w2.query(100).unwrap());
    }

    #[test]
    fn gaps_expire_old_entries() {
        let mut w = TimestampWave::new(10, 100, 0.5).unwrap();
        for p in 1..=5u64 {
            w.push(p, true).unwrap();
        }
        w.advance_to(1000).unwrap();
        assert_eq!(w.query(10).unwrap(), Estimate::exact(0));
        assert_eq!(w.entries(), 0);
    }

    #[test]
    fn setting_u_equals_n_recovers_det_wave_behavior() {
        // Without duplicates (each position once), U = N suffices and the
        // timestamp wave must satisfy the same error bound as DetWave on
        // the same stream; its truth interval may only be looser at the
        // boundary cases where it declines to claim exactness.
        use crate::det_wave::DetWave;
        let eps = 0.25;
        let n = 64u64;
        let mut tw = TimestampWave::new(n, n, eps).unwrap();
        let mut dw = DetWave::new(n, eps).unwrap();
        let mut oracle = Oracle::new(n);
        let mut x = 5u64;
        for p in 1..=5000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) & 1 == 1;
            tw.push(p, b).unwrap();
            dw.push_bit(b);
            oracle.push(p, b);
            let actual = oracle.query(n);
            let a = tw.query(n).unwrap();
            let d = dw.query_max();
            assert!(a.brackets(actual), "p={p}");
            assert!(d.brackets(actual), "p={p}");
            assert!(a.relative_error(actual) <= eps + 1e-9, "p={p}");
            assert!(a.lo <= d.lo && a.hi >= d.hi, "timestamp interval looser");
        }
    }
}
