//! The basic deterministic wave of Section 3.1.
//!
//! Level `i` of the wave stores the `(position, 1-rank)` pairs of the
//! `1/eps + 1` most recent 1-bits whose 1-rank is a multiple of `2^i`
//! (every entry is replicated in all levels it qualifies for). A level
//! that has not yet filled also holds the dummy pair `(0, 0)`.
//!
//! This is the pedagogical variant: it is "somewhat wasteful in terms of
//! its space bound, processing time, and query time" (the paper's words)
//! but transparently matches Figure 2 and the proof of Lemma 1. The
//! production synopsis is [`crate::det_wave::DetWave`]; this type is kept
//! for the Figure 2 reproduction, as the reference implementation in
//! differential tests, and as the A1 ablation baseline.

use crate::error::WaveError;
use crate::estimate::Estimate;
use crate::level::rank_level;
use std::collections::VecDeque;

/// A basic wave for Basic Counting over windows up to `N`.
#[derive(Debug, Clone)]
pub struct BasicWave {
    max_window: u64,
    /// `k = 1/eps` (the paper assumes `1/eps` integral).
    k: u64,
    /// Per-level queues of `(position, rank)`, oldest first.
    levels: Vec<VecDeque<(u64, u64)>>,
    pos: u64,
    rank: u64,
}

impl BasicWave {
    /// Build a wave with error bound `eps` (`0 < eps < 1`) for windows up
    /// to `max_window`.
    pub fn new(max_window: u64, eps: f64) -> Result<Self, WaveError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        if max_window == 0 {
            return Err(WaveError::InvalidWindow(0));
        }
        let k = (1.0 / eps).ceil() as u64;
        let num_levels = wave_levels(max_window, k);
        let cap = (k + 1) as usize;
        let levels = (0..num_levels)
            .map(|_| {
                let mut q = VecDeque::with_capacity(cap + 1);
                q.push_back((0u64, 0u64)); // dummy entry
                q
            })
            .collect();
        Ok(BasicWave {
            max_window,
            k,
            levels,
            pos: 0,
            rank: 0,
        })
    }

    /// Maximum window size `N`.
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// Number of levels `ceil(log2(2 eps N))`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Stream length so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Number of 1's seen so far.
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// Contents of each level, oldest first (for printing Figure 2).
    pub fn level_contents(&self) -> Vec<Vec<(u64, u64)>> {
        self.levels
            .iter()
            .map(|q| q.iter().copied().collect())
            .collect()
    }

    /// Process the next stream bit.
    pub fn push_bit(&mut self, b: bool) {
        self.pos += 1;
        if !b {
            return;
        }
        self.push_one();
    }

    /// Record the 1-bit at the current position (`pos` already advanced).
    fn push_one(&mut self) {
        self.rank += 1;
        let top = rank_level(self.rank).min(self.levels.len() as u32 - 1);
        let cap = (self.k + 1) as usize;
        for q in self.levels.iter_mut().take(top as usize + 1) {
            q.push_back((self.pos, self.rank));
            if q.len() > cap {
                q.pop_front();
            }
        }
    }

    /// Ingest a packed batch, oldest first. The basic wave does nothing
    /// on a 0-bit beyond advancing `pos`, so a zero run of any length —
    /// merged across whole words — is a single addition; only 1-bits
    /// (found with `trailing_zeros`) touch the levels. State-identical
    /// to per-bit [`BasicWave::push_bit`].
    pub fn push_words(&mut self, bits: crate::bits::BitsRef<'_>) {
        bits.scan_runs(|run| match run {
            crate::bits::Run::Zeros(n) => self.pos += n,
            crate::bits::Run::One => {
                self.pos += 1;
                self.push_one();
            }
        });
    }

    /// Space accounting for the basic wave, counting every stored copy
    /// of every entry (the wave replicates entries across qualifying
    /// levels, and its encoding cost charges each copy).
    pub fn space_report(&self) -> crate::estimate::SpaceReport {
        let contents = self.level_contents();
        let entries: usize = contents.iter().map(Vec::len).sum();
        let bits: u64 = contents
            .iter()
            .flat_map(|lv| {
                lv.iter().map(|&(p, r)| {
                    crate::space::elias_gamma_bits(p + 1) + crate::space::elias_gamma_bits(r + 1)
                })
            })
            .sum();
        crate::estimate::SpaceReport {
            resident_bytes: std::mem::size_of_val(self)
                + entries * std::mem::size_of::<(u64, u64)>(),
            synopsis_bits: bits,
            entries,
        }
    }

    /// Estimate the number of 1's among the last `n <= N` bits, following
    /// the two-step procedure of Section 3.1.
    pub fn query(&self, n: u64) -> Result<Estimate, WaveError> {
        if n > self.max_window {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_window,
            });
        }
        if n >= self.pos {
            return Ok(Estimate::exact(self.rank));
        }
        let s = self.pos - n + 1;
        // p1: maximum stored position < s; p2: minimum stored position
        // >= s, each with its rank.
        let mut p1: Option<(u64, u64)> = None;
        let mut p2: Option<(u64, u64)> = None;
        for q in &self.levels {
            for &(p, r) in q {
                if p < s {
                    if p1.is_none_or(|(bp, _)| p > bp) {
                        p1 = Some((p, r));
                    }
                } else if p2.is_none_or(|(bp, _)| p < bp) {
                    p2 = Some((p, r));
                }
            }
        }
        let Some((p2, r2)) = p2 else {
            return Ok(Estimate::exact(0));
        };
        if p2 == s {
            return Ok(Estimate::exact(self.rank + 1 - r2));
        }
        // Lemma 1 guarantees p1 exists for n <= N.
        let r1 = p1.map_or(0, |(_, r)| r);
        Ok(wave_estimate(self.rank, r1, r2))
    }
}

/// Number of wave levels: `ceil(log2(2 eps N))`, at least 1 — computed in
/// integer arithmetic as the smallest `l` with `2^l * k >= 2N`.
pub(crate) fn wave_levels(n: u64, k: u64) -> u32 {
    let target = 2 * n;
    let mut l = 0u32;
    while (k << l) < target {
        l += 1;
    }
    l.max(1)
}

/// The paper's estimate for interval `[rank - r2 + 1, rank - r1]`:
/// `x̂ = rank + 1 - (r1 + r2)/2`, exact when the interval is a point.
pub(crate) fn wave_estimate(rank: u64, r1: u64, r2: u64) -> Estimate {
    debug_assert!(r1 < r2 && r2 <= rank);
    let lo = rank + 1 - r2;
    let hi = rank - r1;
    if lo >= hi {
        Estimate::exact(lo)
    } else {
        Estimate {
            value: rank as f64 + 1.0 - (r1 + r2) as f64 / 2.0,
            lo,
            hi,
            exact: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactCount;

    #[test]
    fn level_count_formula() {
        // eps = 1/3, N = 48: ceil(log2(2 * 48 / 3)) = ceil(log2 32) = 5.
        assert_eq!(wave_levels(48, 3), 5);
        // eps = 1/2, N = 4: ceil(log2(4)) = 2.
        assert_eq!(wave_levels(4, 2), 2);
        // Tiny: k >= 2N gives a single level (store everything).
        assert_eq!(wave_levels(4, 100), 1);
    }

    #[test]
    fn all_ones_small() {
        let mut w = BasicWave::new(16, 0.5).unwrap();
        for _ in 0..64 {
            w.push_bit(true);
        }
        let e = w.query(16).unwrap();
        assert!(e.brackets(16));
        assert!(e.relative_error(16) <= 0.5 + 1e-9);
    }

    #[test]
    fn exactness_cases() {
        let mut w = BasicWave::new(8, 0.5).unwrap();
        // Whole-stream query is exact.
        for b in [true, false, true] {
            w.push_bit(b);
        }
        let e = w.query(8).unwrap();
        assert!(e.exact);
        assert_eq!(e.value, 2.0);
        // No recent 1's: exact zero.
        let mut w2 = BasicWave::new(8, 0.5).unwrap();
        for _ in 0..4 {
            w2.push_bit(true);
        }
        for _ in 0..20 {
            w2.push_bit(false);
        }
        let e2 = w2.query(8).unwrap();
        assert!(e2.exact);
        assert_eq!(e2.value, 0.0);
    }

    #[test]
    fn error_within_eps_random_stream() {
        let eps = 0.25;
        let n_max = 128u64;
        let mut w = BasicWave::new(n_max, eps).unwrap();
        let mut oracle = ExactCount::new(n_max);
        // Deterministic pseudo-random bits.
        let mut x = 0x12345u64;
        for step in 0..4_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) & 1 == 1;
            w.push_bit(b);
            oracle.push_bit(b);
            if step % 37 == 0 {
                for n in [1, 17, 63, 128] {
                    let actual = oracle.query(n);
                    let est = w.query(n).unwrap();
                    assert!(
                        est.brackets(actual),
                        "step {step} n {n}: [{}, {}] vs {actual}",
                        est.lo,
                        est.hi
                    );
                    assert!(
                        est.relative_error(actual) <= eps + 1e-9,
                        "step {step} n {n}: rel err {}",
                        est.relative_error(actual)
                    );
                }
            }
        }
    }

    #[test]
    fn query_larger_than_max_rejected() {
        let w = BasicWave::new(8, 0.5).unwrap();
        assert!(matches!(
            w.query(9),
            Err(WaveError::WindowTooLarge {
                requested: 9,
                max: 8
            })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(BasicWave::new(8, 0.0).is_err());
        assert!(BasicWave::new(8, 1.0).is_err());
        assert!(BasicWave::new(0, 0.5).is_err());
    }

    #[test]
    fn dummy_entry_present_until_level_fills() {
        let mut w = BasicWave::new(32, 0.5).unwrap(); // k = 2, cap = 3
        w.push_bit(true);
        let lv = w.level_contents();
        assert!(lv[0].contains(&(0, 0)), "dummy should still be present");
        for _ in 0..10 {
            w.push_bit(true);
        }
        let lv = w.level_contents();
        assert!(!lv[0].contains(&(0, 0)), "dummy evicted once full");
    }
}
