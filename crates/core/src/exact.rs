//! Exact sliding-window oracles.
//!
//! These keep the full window (O(N) space) and answer exactly. They are
//! the ground truth for every test and experiment in the repository and
//! double as the "naive" baseline in the space/time comparisons.

use std::collections::VecDeque;

/// Exact count of 1's in any window of the last `N` bits.
#[derive(Debug, Clone)]
pub struct ExactCount {
    max_window: u64,
    pos: u64,
    rank: u64,
    /// Positions of the 1-bits inside the max window, oldest first.
    ones: VecDeque<u64>,
}

impl ExactCount {
    pub fn new(max_window: u64) -> Self {
        assert!(max_window >= 1);
        ExactCount {
            max_window,
            pos: 0,
            rank: 0,
            ones: VecDeque::new(),
        }
    }

    /// The maximum queryable window `N` (the prune bound).
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// Stream length so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Total 1's seen so far.
    pub fn rank(&self) -> u64 {
        self.rank
    }

    pub fn push_bit(&mut self, b: bool) {
        self.pos += 1;
        if b {
            self.rank += 1;
            self.ones.push_back(self.pos);
        }
        self.prune();
    }

    /// Ingest a packed batch, oldest first: record each 1-bit's absolute
    /// position (located with `trailing_zeros`), advance `pos` over zero
    /// runs in one addition, and prune the window once at the end.
    /// Pruning is a monotone front-pop, so deferring it to the end of
    /// the batch leaves exactly the per-bit state.
    pub fn push_words(&mut self, bits: crate::bits::BitsRef<'_>) {
        bits.scan_runs(|run| match run {
            crate::bits::Run::Zeros(n) => self.pos += n,
            crate::bits::Run::One => {
                self.pos += 1;
                self.rank += 1;
                self.ones.push_back(self.pos);
            }
        });
        self.prune();
    }

    fn prune(&mut self) {
        while let Some(&p) = self.ones.front() {
            if p + self.max_window <= self.pos {
                self.ones.pop_front();
            } else {
                break;
            }
        }
    }

    /// Exact number of 1's among the last `n <= N` bits.
    pub fn query(&self, n: u64) -> u64 {
        assert!(n <= self.max_window, "window exceeds maximum");
        if n >= self.pos {
            return self.rank;
        }
        let s = self.pos - n + 1;
        // Binary search for the first stored 1-position >= s.
        let idx = self.ones.partition_point(|&p| p < s);
        (self.ones.len() - idx) as u64
    }
}

/// Exact sum over any window of the last `N` items.
#[derive(Debug, Clone)]
pub struct ExactSum {
    max_window: u64,
    pos: u64,
    total: u64,
    /// (position, value) of nonzero items in the max window.
    items: VecDeque<(u64, u64)>,
    /// Running suffix sums aligned with `items` would be O(N) extra; we
    /// instead store values and prefix-sum on query (tests only).
    window_sum: u64,
    /// All values in the window including zeros, for O(1) window-N sums.
    values: VecDeque<u64>,
}

impl ExactSum {
    pub fn new(max_window: u64) -> Self {
        assert!(max_window >= 1);
        ExactSum {
            max_window,
            pos: 0,
            total: 0,
            items: VecDeque::new(),
            window_sum: 0,
            values: VecDeque::new(),
        }
    }

    pub fn pos(&self) -> u64 {
        self.pos
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn push_value(&mut self, v: u64) {
        self.pos += 1;
        self.total += v;
        self.window_sum += v;
        self.values.push_back(v);
        if v > 0 {
            self.items.push_back((self.pos, v));
        }
        if self.values.len() as u64 > self.max_window {
            let old = self.values.pop_front().unwrap();
            self.window_sum -= old;
        }
        while let Some(&(p, _)) = self.items.front() {
            if p + self.max_window <= self.pos {
                self.items.pop_front();
            } else {
                break;
            }
        }
    }

    /// Exact sum of the last `n <= N` items.
    pub fn query(&self, n: u64) -> u64 {
        assert!(n <= self.max_window, "window exceeds maximum");
        if n >= self.pos {
            return self.total;
        }
        if n == self.max_window {
            return self.window_sum;
        }
        let s = self.pos - n + 1;
        let idx = self.items.partition_point(|&(p, _)| p < s);
        self.items.iter().skip(idx).map(|&(_, v)| v).sum()
    }
}

/// Exact count of distinct values among the last `N` items, with
/// per-value most-recent positions (matching the semantics of the
/// distinct-values wave: a value is in the window if its most recent
/// occurrence is).
#[derive(Debug, Clone)]
pub struct ExactDistinct {
    max_window: u64,
    pos: u64,
    last_seen: std::collections::HashMap<u64, u64>,
}

impl ExactDistinct {
    pub fn new(max_window: u64) -> Self {
        assert!(max_window >= 1);
        ExactDistinct {
            max_window,
            pos: 0,
            last_seen: std::collections::HashMap::new(),
        }
    }

    pub fn pos(&self) -> u64 {
        self.pos
    }

    pub fn push_value(&mut self, v: u64) {
        self.pos += 1;
        self.last_seen.insert(v, self.pos);
    }

    /// Advance the clock without observing a value (used when merging
    /// multiple streams on a shared position axis).
    pub fn push_absent(&mut self) {
        self.pos += 1;
    }

    /// Exact number of distinct values whose most recent occurrence lies
    /// in the last `n <= N` positions.
    pub fn query(&self, n: u64) -> u64 {
        assert!(n <= self.max_window, "window exceeds maximum");
        if n >= self.pos {
            return self.last_seen.len() as u64;
        }
        let s = self.pos - n + 1;
        self.last_seen.values().filter(|&&p| p >= s).count() as u64
    }

    /// Distinct values in the window satisfying a predicate.
    pub fn query_predicate<F: Fn(u64) -> bool>(&self, n: u64, pred: F) -> u64 {
        let s = if n >= self.pos { 1 } else { self.pos - n + 1 };
        self.last_seen
            .iter()
            .filter(|&(&v, &p)| p >= s && pred(v))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_bruteforce() {
        let bits: Vec<bool> = (0..500).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let mut c = ExactCount::new(64);
        let mut seen = Vec::new();
        for &b in &bits {
            c.push_bit(b);
            seen.push(b);
            for n in [1u64, 7, 33, 64] {
                let start = seen.len().saturating_sub(n as usize);
                let want = seen[start..].iter().filter(|&&x| x).count() as u64;
                assert_eq!(c.query(n), want);
            }
        }
    }

    #[test]
    fn sum_matches_bruteforce() {
        let vals: Vec<u64> = (0..400).map(|i| (i * 13 + 5) % 17).collect();
        let mut s = ExactSum::new(50);
        let mut seen = Vec::new();
        for &v in &vals {
            s.push_value(v);
            seen.push(v);
            for n in [1u64, 10, 50] {
                let start = seen.len().saturating_sub(n as usize);
                let want: u64 = seen[start..].iter().sum();
                assert_eq!(s.query(n), want, "n={n} len={}", seen.len());
            }
        }
    }

    #[test]
    fn distinct_counts_most_recent_occurrence() {
        let mut d = ExactDistinct::new(4);
        for v in [1u64, 2, 1, 3] {
            d.push_value(v);
        }
        // Window of all 4: values {1, 2, 3}.
        assert_eq!(d.query(4), 3);
        // Window of last 2 (positions 3, 4): most recent 1 is at pos 3,
        // most recent 3 at pos 4 -> {1, 3}.
        assert_eq!(d.query(2), 2);
        assert_eq!(d.query(1), 1);
    }

    #[test]
    fn distinct_predicate() {
        let mut d = ExactDistinct::new(10);
        for v in 1..=8u64 {
            d.push_value(v);
        }
        assert_eq!(d.query_predicate(10, |v| v % 2 == 0), 4);
        assert_eq!(d.query_predicate(4, |v| v % 2 == 0), 2); // {6, 8}
    }

    #[test]
    fn distinct_push_absent_advances_clock() {
        let mut d = ExactDistinct::new(4);
        d.push_value(7);
        for _ in 0..4 {
            d.push_absent();
        }
        assert_eq!(d.pos(), 5);
        assert_eq!(d.query(4), 0, "value 7's last occurrence expired");
        assert_eq!(d.query(4.min(d.pos())), 0);
    }

    #[test]
    fn whole_stream_queries_are_totals() {
        let mut c = ExactCount::new(8);
        for _ in 0..5 {
            c.push_bit(true);
        }
        assert_eq!(c.query(8), 5);
        let mut s = ExactSum::new(8);
        for v in [1u64, 2, 3] {
            s.push_value(v);
        }
        assert_eq!(s.query(8), 6);
    }
}
