//! The deterministic sum wave of Section 3.3 (Figure 5, Theorem 3).
//!
//! Maintains an `eps`-approximation of the sum of the last `N` integers,
//! each in `[0..R]`, using `O((1/eps)(log N + log R))` memory words with
//! O(1) worst-case per-item time and O(1) query time.
//!
//! The key idea: an item of value `v` arriving at running total `T` is
//! stored **once**, at the largest level `j` such that a multiple of
//! `2^j` lies in `(T, T + v]` (computed in O(1) as the most-significant
//! set bit of `!T & (T + v)`). This is what beats the exponential
//! histogram, which splits the same item across up to
//! `O(log N + log R)` buckets.

use crate::basic_wave::wave_levels;
use crate::chain::{Chain, Fifo};
use crate::error::WaveError;
use crate::estimate::{Estimate, SpaceReport};
use crate::level::sum_level;
use crate::space::{delta_coded_bits, elias_gamma_bits};
use crate::window::ModRing;

/// One stored entry: position, item value, and the running total
/// inclusive of the item (the paper's `(p, v, z)` triple).
#[derive(Debug, Clone, Copy)]
struct Entry {
    pos: u64,
    v: u64,
    z: u64,
    level: u8,
}

/// Deterministic wave for the sum of bounded integers in a sliding
/// window (Theorem 3).
#[derive(Debug, Clone)]
pub struct SumWave {
    max_window: u64,
    max_value: u64,
    eps: f64,
    num_levels: u32,
    ring: ModRing,
    pos: u64,
    total: u64,
    /// Largest partial sum expired from the wave (0 if none yet).
    z1: u64,
    chain: Chain<Entry>,
    queues: Vec<Fifo>,
}

/// Builder for [`SumWave`] — the preferred construction surface.
///
/// Defaults: `max_window = 1024`, `max_value = 65_535`, `eps = 0.1`.
/// All validation happens in [`SumWaveBuilder::build`].
///
/// ```
/// use waves_core::SumWave;
/// let wave = SumWave::builder().max_window(4096).max_value(1000).eps(0.05).build().unwrap();
/// assert_eq!(wave.max_window(), 4096);
/// ```
#[derive(Debug, Clone)]
pub struct SumWaveBuilder {
    max_window: u64,
    max_value: u64,
    eps: f64,
}

impl SumWaveBuilder {
    /// Maximum queryable window `N` (default 1024).
    pub fn max_window(mut self, n: u64) -> Self {
        self.max_window = n;
        self
    }

    /// Item value bound `R` (default 65_535).
    pub fn max_value(mut self, r: u64) -> Self {
        self.max_value = r;
        self
    }

    /// Relative error bound, `0 < eps < 1` (default 0.1).
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Validate the configuration and build the wave.
    pub fn build(self) -> Result<SumWave, WaveError> {
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(self.eps));
        }
        SumWave::with_k(
            self.max_window,
            self.max_value,
            (1.0 / self.eps).ceil() as u64,
            self.eps,
        )
    }
}

impl SumWave {
    /// Start building: `SumWave::builder().max_window(n).max_value(r).eps(e).build()`.
    pub fn builder() -> SumWaveBuilder {
        SumWaveBuilder {
            max_window: 1024,
            max_value: 65_535,
            eps: 0.1,
        }
    }

    /// Build a sum wave with error bound `eps` for windows up to
    /// `max_window`, item values in `[0..max_value]` (thin shim over
    /// [`SumWave::builder`]).
    pub fn new(max_window: u64, max_value: u64, eps: f64) -> Result<Self, WaveError> {
        Self::builder()
            .max_window(max_window)
            .max_value(max_value)
            .eps(eps)
            .build()
    }

    /// Build from the integer parameter `k = ceil(1/eps)` directly (used
    /// by [`SumWave::decode`]; the f64 `eps -> k` map is not injective).
    fn with_k(max_window: u64, max_value: u64, k: u64, eps: f64) -> Result<Self, WaveError> {
        if k == 0 || k > 1 << 32 {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        if max_window == 0 {
            return Err(WaveError::InvalidWindow(0));
        }
        if max_value == 0 {
            return Err(WaveError::ValueTooLarge { value: 0, max: 0 });
        }
        let nr = max_window
            .checked_mul(max_value)
            .filter(|&x| x <= 1 << 62)
            .ok_or(WaveError::InvalidWindow(max_window))?;
        let num_levels = wave_levels(nr, k);
        let cap = (k + 1) as usize;
        let queues: Vec<Fifo> = (0..num_levels).map(|_| Fifo::new(cap)).collect();
        let total_cap = cap * num_levels as usize;
        Ok(SumWave {
            max_window,
            max_value,
            eps,
            num_levels,
            ring: ModRing::for_window(nr),
            pos: 0,
            total: 0,
            z1: 0,
            chain: Chain::with_capacity(total_cap),
            queues,
        })
    }

    /// Maximum window size `N`.
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// Value bound `R`.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// The configured error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of levels `ceil(log2(2 eps N R))`.
    pub fn num_levels(&self) -> u32 {
        self.num_levels
    }

    /// Stream length so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Running total of all items seen.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of entries currently stored.
    pub fn entries(&self) -> usize {
        self.chain.len()
    }

    /// Process the next item — O(1) worst case (Figure 5).
    ///
    /// Returns an error (without consuming the item) if `v > R`.
    #[inline]
    pub fn push_value(&mut self, v: u64) -> Result<(), WaveError> {
        if v > self.max_value {
            return Err(WaveError::ValueTooLarge {
                value: v,
                max: self.max_value,
            });
        }
        self.pos += 1;
        self.expire();
        if v > 0 {
            // Level from the pre-update total (step 3(a) of Figure 5).
            let j = sum_level(self.total, v).min(self.num_levels - 1) as usize;
            self.total += v;
            if self.queues[j].is_full() {
                let old = self.queues[j].pop_front().expect("full queue has a front");
                self.chain.remove(old);
            }
            let id = self.chain.push_back(Entry {
                pos: self.pos,
                v,
                z: self.total,
                level: j as u8,
            });
            self.queues[j].push_back(id);
        }
        Ok(())
    }

    /// [`SumWave::push_value`] with structural instrumentation reported
    /// into `rec` (see [`crate::det_wave::DetWave::push_bit_recorded`]
    /// for the monomorphization contract).
    #[inline]
    pub fn push_value_recorded<R: waves_obs::Recorder + ?Sized>(
        &mut self,
        v: u64,
        rec: &R,
    ) -> Result<(), WaveError> {
        use waves_obs::MetricId;
        if v > self.max_value {
            return Err(WaveError::ValueTooLarge {
                value: v,
                max: self.max_value,
            });
        }
        self.pos += 1;
        let live_before = self.chain.len();
        self.expire();
        rec.incr(MetricId::WavePushesTotal, 1);
        let expired = (live_before - self.chain.len()) as u64;
        if expired > 0 {
            rec.incr(MetricId::WaveEntriesExpired, expired);
        }
        if v > 0 {
            rec.incr(MetricId::WaveOnesTotal, 1);
            rec.incr(MetricId::WaveLevelOracleCalls, 1);
            let j = sum_level(self.total, v).min(self.num_levels - 1) as usize;
            self.total += v;
            if self.queues[j].is_full() {
                let old = self.queues[j].pop_front().expect("full queue has a front");
                self.chain.remove(old);
                rec.incr(MetricId::WaveEntriesEvicted, 1);
            }
            let id = self.chain.push_back(Entry {
                pos: self.pos,
                v,
                z: self.total,
                level: j as u8,
            });
            self.queues[j].push_back(id);
            rec.incr(MetricId::WaveEntriesStored, 1);
        }
        Ok(())
    }

    fn expire(&mut self) {
        while let Some(h) = self.chain.head() {
            let e = *self.chain.get(h);
            if e.pos + self.max_window <= self.pos {
                self.z1 = e.z;
                let popped = self.queues[e.level as usize].pop_front();
                debug_assert_eq!(popped, Some(h));
                self.chain.remove(h);
            } else {
                break;
            }
        }
    }

    /// Estimate the sum over the maximum window `N` in O(1).
    pub fn query_max(&self) -> Estimate {
        if self.max_window >= self.pos {
            return Estimate::exact(self.total);
        }
        let Some(h) = self.chain.head() else {
            return Estimate::exact(0);
        };
        let e = self.chain.get(h);
        let s = self.pos - self.max_window + 1;
        if e.pos == s {
            return Estimate::exact(self.total - e.z + e.v);
        }
        sum_estimate(self.total, self.z1, e.v, e.z)
    }

    /// Estimate the sum over any window `n <= N` by walking the
    /// position-ordered list.
    pub fn query(&self, n: u64) -> Result<Estimate, WaveError> {
        if n > self.max_window {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_window,
            });
        }
        if n == self.max_window {
            return Ok(self.query_max());
        }
        if n >= self.pos {
            return Ok(Estimate::exact(self.total));
        }
        let s = self.pos - n + 1;
        let mut z1 = self.z1;
        let mut first_in: Option<Entry> = None;
        for (_, e) in self.chain.iter() {
            if e.pos < s {
                z1 = e.z;
            } else {
                first_in = Some(*e);
                break;
            }
        }
        let Some(e) = first_in else {
            return Ok(Estimate::exact(0));
        };
        if e.pos == s {
            return Ok(Estimate::exact(self.total - e.z + e.v));
        }
        Ok(sum_estimate(self.total, z1, e.v, e.z))
    }

    /// Serialize into the compact bit encoding (see
    /// [`crate::det_wave::DetWave::encode`] for the scheme; the sum wave
    /// additionally gamma-codes each entry's value).
    pub fn encode(&self) -> Vec<u8> {
        use crate::codec::{write_deltas, BitWriter};
        let mut w = BitWriter::new();
        w.write_gamma(self.max_window);
        w.write_gamma(self.max_value);
        w.write_gamma((1.0 / self.eps).ceil() as u64);
        w.write_gamma0(self.pos);
        w.write_gamma0(self.total);
        w.write_gamma0(self.z1);
        w.write_gamma0(self.chain.len() as u64);
        let positions: Vec<u64> = self.chain.iter().map(|(_, e)| e.pos).collect();
        let sums: Vec<u64> = self.chain.iter().map(|(_, e)| e.z).collect();
        write_deltas(&mut w, &positions);
        write_deltas(&mut w, &sums);
        for (_, e) in self.chain.iter() {
            w.write_gamma(e.v);
            w.write_gamma0(e.level as u64);
        }
        w.finish()
    }

    /// Reconstruct a synopsis from [`SumWave::encode`] output.
    pub fn decode(bytes: &[u8]) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::{read_deltas, BitReader, CodecError};
        let mut r = BitReader::new(bytes);
        let max_window = r.read_gamma()?;
        let max_value = r.read_gamma()?;
        let k = r.read_gamma()?;
        if k == 0 || k > 1 << 32 {
            return Err(CodecError::Corrupt("bad k"));
        }
        let mut wave = SumWave::with_k(max_window, max_value, k, 1.0 / k as f64)?;
        wave.pos = r.read_gamma0()?;
        wave.total = r.read_gamma0()?;
        wave.z1 = r.read_gamma0()?;
        if wave.pos > 1 << 62 || wave.total > 1 << 62 || wave.z1 > wave.total {
            return Err(CodecError::Corrupt("counters inconsistent"));
        }
        let count = r.read_gamma0()? as usize;
        let positions = read_deltas(&mut r, count)?;
        let sums = read_deltas(&mut r, count)?;
        let mut prev = (0u64, 0u64);
        for i in 0..count {
            let v = r.read_gamma()?;
            let level = r.read_gamma0()?;
            if level >= wave.num_levels as u64 {
                return Err(CodecError::Corrupt("level out of range"));
            }
            let (p, z) = (positions[i], sums[i]);
            if p > wave.pos || z > wave.total || v > max_value || v > z {
                return Err(CodecError::Corrupt("entry beyond counters"));
            }
            // Entries must be live and consistent with the expired
            // boundary: z1 <= z - v (the estimator's invariant).
            if p + max_window <= wave.pos || z - v < wave.z1 {
                return Err(CodecError::Corrupt("entry already expired"));
            }
            if i > 0 && (p <= prev.0 || z <= prev.1) {
                return Err(CodecError::Corrupt("entries not increasing"));
            }
            prev = (p, z);
            if wave.queues[level as usize].is_full() {
                return Err(CodecError::Corrupt("level queue overflow"));
            }
            let id = wave.chain.push_back(Entry {
                pos: p,
                v,
                z,
                level: level as u8,
            });
            wave.queues[level as usize].push_back(id);
        }
        Ok(wave)
    }

    /// Space accounting (see [`SpaceReport`]).
    pub fn space_report(&self) -> SpaceReport {
        let resident_bytes = std::mem::size_of::<Self>()
            + self.chain.heap_bytes()
            + self.queues.iter().map(Fifo::heap_bytes).sum::<usize>();
        let counter_bits = self.ring.counter_bits() as u64;
        let positions = self.chain.iter().map(|(_, e)| e.pos);
        let sums = self.chain.iter().map(|(_, e)| e.z);
        let value_bits: u64 = self
            .chain
            .iter()
            .map(|(_, e)| elias_gamma_bits(e.v + 1))
            .sum();
        let synopsis_bits =
            3 * counter_bits + delta_coded_bits(positions) + delta_coded_bits(sums) + value_bits;
        SpaceReport {
            resident_bytes,
            synopsis_bits,
            entries: self.chain.len(),
        }
    }
}

/// The Figure 5 estimate: truth is in `[total - z2 + v2, total - z1]`
/// and the returned value `total - (z1 + z2 - v2)/2` is exactly the
/// midpoint of that interval.
pub(crate) fn sum_estimate(total: u64, z1: u64, v2: u64, z2: u64) -> Estimate {
    debug_assert!(z1 <= z2 - v2, "z1={z1} z2={z2} v2={v2}");
    Estimate::midpoint(total - z2 + v2, total - z1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSum;

    fn lcg_vals(seed: u64, len: usize, r: u64) -> Vec<u64> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % (r + 1)
            })
            .collect()
    }

    #[test]
    fn builder_matches_new() {
        let a = SumWave::new(512, 100, 0.2).unwrap();
        let b = SumWave::builder()
            .max_window(512)
            .max_value(100)
            .eps(0.2)
            .build()
            .unwrap();
        assert_eq!(a.max_window(), b.max_window());
        assert!(SumWave::builder().eps(0.0).build().is_err());
        assert!(SumWave::builder().max_window(0).build().is_err());
        assert!(SumWave::builder().max_value(0).build().is_err());
        // Defaults are usable as-is.
        assert_eq!(SumWave::builder().build().unwrap().max_window(), 1024);
    }

    #[test]
    fn empty_and_whole_stream() {
        let mut w = SumWave::new(10, 100, 0.25).unwrap();
        assert_eq!(w.query_max(), Estimate::exact(0));
        w.push_value(7).unwrap();
        w.push_value(0).unwrap();
        w.push_value(3).unwrap();
        assert_eq!(w.query_max(), Estimate::exact(10));
    }

    #[test]
    fn rejects_out_of_range_values() {
        let mut w = SumWave::new(10, 5, 0.25).unwrap();
        assert!(matches!(
            w.push_value(6),
            Err(WaveError::ValueTooLarge { value: 6, max: 5 })
        ));
        // The failed push must not have advanced the stream.
        assert_eq!(w.pos(), 0);
    }

    #[test]
    fn error_bound_holds_max_window() {
        for &(eps, n_max, r) in &[(0.5, 64u64, 15u64), (0.25, 128, 255), (0.1, 64, 7)] {
            let mut w = SumWave::new(n_max, r, eps).unwrap();
            let mut oracle = ExactSum::new(n_max);
            for v in lcg_vals(3, 5000, r) {
                w.push_value(v).unwrap();
                oracle.push_value(v);
                let actual = oracle.query(n_max);
                let est = w.query_max();
                assert!(
                    est.brackets(actual),
                    "eps={eps} r={r}: [{},{}] vs {actual}",
                    est.lo,
                    est.hi
                );
                assert!(
                    est.relative_error(actual) <= eps + 1e-9,
                    "eps={eps} actual={actual} est={}",
                    est.value
                );
            }
        }
    }

    #[test]
    fn error_bound_holds_smaller_windows() {
        let (eps, n_max, r) = (0.2, 100u64, 31u64);
        let mut w = SumWave::new(n_max, r, eps).unwrap();
        let mut oracle = ExactSum::new(n_max);
        for (step, v) in lcg_vals(11, 4000, r).into_iter().enumerate() {
            w.push_value(v).unwrap();
            oracle.push_value(v);
            if step % 17 == 0 {
                for n in [1u64, 13, 50, 99] {
                    let actual = oracle.query(n);
                    let est = w.query(n).unwrap();
                    assert!(
                        est.relative_error(actual) <= eps + 1e-9,
                        "step={step} n={n} actual={actual} est={:?}",
                        est
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_unit_values_match_basic_counting_bound() {
        // With R = 1 this is exactly Basic Counting.
        let eps = 0.25;
        let mut w = SumWave::new(64, 1, eps).unwrap();
        let mut oracle = ExactSum::new(64);
        for v in lcg_vals(17, 3000, 1) {
            w.push_value(v).unwrap();
            oracle.push_value(v);
            let actual = oracle.query(64);
            assert!(w.query_max().relative_error(actual) <= eps + 1e-9);
        }
    }

    #[test]
    fn zeros_do_not_create_entries() {
        let mut w = SumWave::new(16, 10, 0.5).unwrap();
        for _ in 0..100 {
            w.push_value(0).unwrap();
        }
        assert_eq!(w.entries(), 0);
        assert_eq!(w.query_max(), Estimate::exact(0));
    }

    #[test]
    fn bursty_large_values() {
        let eps = 0.125;
        let (n_max, r) = (128u64, 1u64 << 16);
        let mut w = SumWave::new(n_max, r, eps).unwrap();
        let mut oracle = ExactSum::new(n_max);
        for i in 0..3000u64 {
            let v = if i % 97 == 0 { r } else { i % 3 };
            w.push_value(v).unwrap();
            oracle.push_value(v);
            let actual = oracle.query(n_max);
            let est = w.query_max();
            assert!(
                est.relative_error(actual) <= eps + 1e-9,
                "i={i} actual={actual} est={}",
                est.value
            );
        }
    }

    #[test]
    fn entries_bounded() {
        let (eps, n_max, r) = (0.1, 1u64 << 12, 1u64 << 10);
        let w0 = SumWave::new(n_max, r, eps).unwrap();
        let cap = (w0.num_levels() as u64) * ((1.0 / eps).ceil() as u64 + 1);
        let mut w = w0;
        for v in lcg_vals(23, 50_000, r) {
            w.push_value(v).unwrap();
        }
        assert!(w.entries() as u64 <= cap);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (eps, n_max, r) = (0.1, 512u64, 1u64 << 8);
        let mut w = SumWave::new(n_max, r, eps).unwrap();
        for v in lcg_vals(91, 8_000, r) {
            w.push_value(v).unwrap();
        }
        let bytes = w.encode();
        let w2 = SumWave::decode(&bytes).unwrap();
        assert_eq!(w.pos(), w2.pos());
        assert_eq!(w.total(), w2.total());
        for n in [1u64, 17, 100, 511, 512] {
            assert_eq!(w.query(n).unwrap(), w2.query(n).unwrap(), "n={n}");
        }
        let (mut a, mut b) = (w, w2);
        for v in lcg_vals(92, 2_000, r) {
            a.push_value(v).unwrap();
            b.push_value(v).unwrap();
            assert_eq!(a.query_max(), b.query_max());
        }
    }

    #[test]
    fn roundtrip_survives_non_injective_eps_to_k() {
        // Regression: k=49-class eps values must decode losslessly.
        let mut w = SumWave::new(50, 1, 1.0 / 48.5).unwrap();
        for i in 0..200u64 {
            w.push_value(i % 2).unwrap();
        }
        let w2 = SumWave::decode(&w.encode()).expect("valid encode must decode");
        assert_eq!(w.query_max(), w2.query_max());
        assert_eq!(w.num_levels(), w2.num_levels());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut w = SumWave::new(64, 100, 0.25).unwrap();
        for v in lcg_vals(9, 500, 100) {
            w.push_value(v).unwrap();
        }
        let bytes = w.encode();
        assert!(SumWave::decode(&bytes[..bytes.len() / 3]).is_err());
    }

    #[test]
    fn space_report_sane() {
        let mut w = SumWave::new(1 << 10, 1 << 8, 0.2).unwrap();
        for v in lcg_vals(29, 10_000, 1 << 8) {
            w.push_value(v).unwrap();
        }
        let r = w.space_report();
        assert!(r.entries > 0 && r.synopsis_bits > 0);
    }

    #[test]
    fn push_recorded_matches_plain_push() {
        let mut plain = SumWave::new(128, 50, 0.2).unwrap();
        let mut recorded = SumWave::new(128, 50, 0.2).unwrap();
        let rec = waves_obs::NoopRecorder;
        for (i, v) in lcg_vals(11, 3000, 50).into_iter().enumerate() {
            plain.push_value(v).unwrap();
            recorded.push_value_recorded(v, &rec).unwrap();
            if i % 13 == 0 {
                assert_eq!(plain.query_max(), recorded.query_max(), "i={i}");
                assert_eq!(plain.entries(), recorded.entries());
            }
        }
        // Oversized values are rejected without consuming the item.
        assert!(recorded.push_value_recorded(51, &rec).is_err());
        assert_eq!(plain.pos(), recorded.pos());
    }

    #[test]
    fn recorded_counters_are_consistent() {
        let reg = waves_obs::MetricsRegistry::new();
        let mut w = SumWave::new(64, 20, 0.25).unwrap();
        let vals = lcg_vals(17, 2000, 20);
        let nonzero = vals.iter().filter(|&&v| v > 0).count() as u64;
        for v in vals {
            w.push_value_recorded(v, &reg).unwrap();
        }
        use waves_obs::MetricId as M;
        assert_eq!(reg.counter(M::WavePushesTotal), 2000);
        assert_eq!(reg.counter(M::WaveEntriesStored), nonzero);
        assert_eq!(
            reg.counter(M::WaveEntriesStored)
                - reg.counter(M::WaveEntriesExpired)
                - reg.counter(M::WaveEntriesEvicted),
            w.entries() as u64,
        );
    }
}
