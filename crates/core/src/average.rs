//! Sliding average via composition (Section 5, "Other Problems").
//!
//! The paper: "an eps-approximation scheme for the sliding average is
//! readily obtained by running our sum and count algorithms (each
//! targeting a relative error of eps/(2+eps))".
//!
//! Two pieces are provided:
//!
//! * [`ratio_error_target`] and [`ratio_estimate`] — the generic
//!   composition lemma: if `sum` is known within `e1` and `count` within
//!   `e2`, their ratio is within `(e1 + e2)/(1 - e2)`; targeting
//!   `e1 = e2 = eps/(2+eps)` makes that exactly `eps`.
//! * [`SlidingAverage`] — average of the items in the last `N` time
//!   units of a timestamped value stream, composing a
//!   [`TimestampSumWave`] (sum) with a [`TimestampWave`] (count), the
//!   setting where *both* components must be estimated. (For plain
//!   position windows the count is `min(pos, N)` exactly and only the
//!   sum errs.)

use crate::error::WaveError;
use crate::estimate::Estimate;
use crate::timestamp::TimestampWave;
use crate::timestamp_sum::TimestampSumWave;

/// The per-component error target `eps/(2+eps)` from Section 5.
pub fn ratio_error_target(eps: f64) -> f64 {
    eps / (2.0 + eps)
}

/// Combine a sum estimate and a count estimate into a ratio estimate.
///
/// The returned interval is `[sum.lo/count.hi, sum.hi/count.lo]` (the
/// extreme quotients), with the point estimate the quotient of the point
/// estimates. Returns `None` when the count interval includes 0 (the
/// average is undefined / unbounded).
pub fn ratio_estimate(sum: &Estimate, count: &Estimate) -> Option<RatioEstimate> {
    if count.lo == 0 {
        return None;
    }
    Some(RatioEstimate {
        value: sum.value / count.value,
        lo: sum.lo as f64 / count.hi as f64,
        hi: sum.hi as f64 / count.lo as f64,
    })
}

/// A ratio (average) estimate with its guaranteed interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioEstimate {
    pub value: f64,
    pub lo: f64,
    pub hi: f64,
}

impl RatioEstimate {
    /// Relative error against the true average.
    pub fn relative_error(&self, actual: f64) -> f64 {
        if actual == 0.0 {
            if self.value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.value - actual).abs() / actual.abs()
        }
    }

    /// True if the guaranteed interval contains `actual`.
    pub fn brackets(&self, actual: f64) -> bool {
        self.lo <= actual + 1e-9 && actual <= self.hi + 1e-9
    }
}

/// Average of item values over the last `N` time units of a timestamped
/// stream, composing a timestamped sum wave with a timestamped count
/// wave, each run at error `eps/(2+eps)`.
#[derive(Debug, Clone)]
pub struct SlidingAverage {
    eps: f64,
    window: u64,
    sum: TimestampSumWave,
    count: TimestampWave,
}

impl SlidingAverage {
    /// `window`: time units; `max_items_per_window` (the Corollary 1
    /// `U`); `max_value`: the value bound `R`. Overall error defaults
    /// to 0.1.
    pub fn new(window: u64, max_items_per_window: u64, max_value: u64) -> Result<Self, WaveError> {
        Self::with_eps(window, max_items_per_window, max_value, 0.1)
    }

    /// As [`SlidingAverage::new`] with an explicit overall error bound.
    pub fn with_eps(
        window: u64,
        max_items_per_window: u64,
        max_value: u64,
        eps: f64,
    ) -> Result<Self, WaveError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        let sub = ratio_error_target(eps);
        Ok(SlidingAverage {
            eps,
            window,
            sum: TimestampSumWave::new(window, max_items_per_window, max_value, sub)?,
            count: TimestampWave::new(window, max_items_per_window, sub)?,
        })
    }

    /// The overall error bound `eps`.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The window length in time units.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Observe an item `(timestamp, value)`; timestamps nondecreasing.
    pub fn push(&mut self, ts: u64, value: u64) -> Result<(), WaveError> {
        self.sum.push(ts, value)?;
        self.count.push(ts, true)
    }

    /// Advance the clock without an item.
    pub fn advance_to(&mut self, ts: u64) -> Result<(), WaveError> {
        self.sum.advance_to(ts)?;
        self.count.advance_to(ts)
    }

    /// Estimate the average value over the last `window` time units
    /// ending at the latest timestamp. `None` when no item can be
    /// proven to be in the window.
    pub fn query(&self) -> Result<Option<RatioEstimate>, WaveError> {
        let sum_est = self.sum.query(self.window)?;
        let count_est = self.count.query(self.window)?;
        Ok(ratio_estimate(&sum_est, &count_est))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_target_formula() {
        let eps = 0.1f64;
        let e = ratio_error_target(eps);
        // (e + e) / (1 - e) == eps exactly.
        assert!(((2.0 * e) / (1.0 - e) - eps).abs() < 1e-12);
    }

    #[test]
    fn ratio_estimate_brackets() {
        let sum = Estimate::midpoint(90, 110);
        let count = Estimate::midpoint(9, 11);
        let r = ratio_estimate(&sum, &count).unwrap();
        assert!(r.brackets(10.0));
        assert!(r.lo <= 10.0 && r.hi >= 10.0);
    }

    #[test]
    fn ratio_estimate_undefined_for_zero_count() {
        let sum = Estimate::exact(0);
        let count = Estimate::midpoint(0, 3);
        assert!(ratio_estimate(&sum, &count).is_none());
    }

    #[test]
    fn composed_error_bound() {
        // If both components respect e = eps/(2+eps), the ratio respects
        // eps: verify numerically on a grid of worst-case components.
        let eps = 0.2;
        let e = ratio_error_target(eps);
        for true_sum in [100.0f64, 1000.0] {
            for true_count in [10.0f64, 50.0] {
                let truth = true_sum / true_count;
                for ds in [-e, e] {
                    for dc in [-e, e] {
                        let est = (true_sum * (1.0 + ds)) / (true_count * (1.0 + dc));
                        let rel = (est - truth).abs() / truth;
                        assert!(rel <= eps + 1e-12, "rel={rel}");
                    }
                }
            }
        }
    }

    #[test]
    fn sliding_average_end_to_end() {
        let window = 64u64;
        let mut avg = SlidingAverage::with_eps(window, 1 << 12, 100, 0.2).unwrap();
        let mut items: Vec<(u64, u64)> = Vec::new();
        let mut x = 3u64;
        let mut ts = 1u64;
        for step in 0..3000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ts += (x >> 60) % 3;
            let v = (x >> 33) % 101;
            avg.push(ts, v).unwrap();
            items.push((ts, v));
            if step % 100 == 99 {
                let s = ts.saturating_sub(window - 1);
                let in_w: Vec<u64> = items
                    .iter()
                    .filter(|&&(t, _)| t >= s)
                    .map(|&(_, v)| v)
                    .collect();
                if in_w.is_empty() {
                    continue;
                }
                let truth = in_w.iter().sum::<u64>() as f64 / in_w.len() as f64;
                if let Some(r) = avg.query().unwrap() {
                    assert!(
                        r.relative_error(truth) <= 0.2 + 1e-9,
                        "step={step} truth={truth} est={:?}",
                        r
                    );
                    assert!(r.brackets(truth));
                }
            }
        }
    }

    #[test]
    fn empty_average_is_none_or_zero_free() {
        let avg = SlidingAverage::new(10, 100, 10).unwrap();
        assert!(avg.query().unwrap().is_none());
    }

    #[test]
    fn quiet_period_expires_items() {
        let mut avg = SlidingAverage::with_eps(10, 100, 10, 0.2).unwrap();
        avg.push(1, 5).unwrap();
        avg.advance_to(1_000).unwrap();
        // The count interval's lower bound reaches 0: no provable item.
        assert!(avg.query().unwrap().is_none());
    }
}
