//! Wave-level computation (Section 3.2 and step 3(a) of Figures 4–5).
//!
//! * For Basic Counting, a 1-bit with 1-rank `r` belongs to level
//!   `tz(r)` — the position of the least-significant set bit of `r`.
//! * For sums, an item of value `v` arriving at running total `T`
//!   belongs to the largest `j` such that some multiple of `2^j` lies in
//!   `(T, T + v]`; the paper shows this is the most-significant bit of
//!   `!T & (T + v)`.
//!
//! Both are single instructions on modern hardware. The paper also gives
//! constant-time methods for a weaker machine model with neither
//! `trailing_zeros` nor `leading_zeros`; those are implemented here too
//! ([`RulerLevelOracle`] and [`msb_binary_search`]) and tested for
//! equivalence, both for fidelity and as the A3 ablation.

/// Level of a 1-bit with 1-rank `r >= 1` for Basic Counting:
/// the largest `j` with `2^j | r`.
#[inline]
pub fn rank_level(rank: u64) -> u32 {
    debug_assert!(rank >= 1);
    rank.trailing_zeros()
}

/// Level of an arriving item of value `v >= 1` when the running total
/// (before adding `v`) is `total`: the largest `j` such that a multiple
/// of `2^j` lies in `(total, total + v]`.
#[inline]
pub fn sum_level(total: u64, v: u64) -> u32 {
    debug_assert!(v >= 1);
    // j is the most-significant bit position where `total` has a 0 and
    // `total + v` has a 1 (the highest bit that flips 0 -> 1 somewhere in
    // the interval). h is nonzero because total + v > total.
    let h = !total & total.wrapping_add(v);
    debug_assert!(h != 0);
    63 - h.leading_zeros()
}

/// Most-significant set bit via binary search with shifting masks — the
/// weak-machine-model fallback from footnote 8 of the paper, running in
/// `O(log w)` mask steps for word size `w`.
pub fn msb_binary_search(h: u64) -> u32 {
    assert!(h != 0, "msb of zero is undefined");
    let mut lo = 0u32; // msb is known to be in [lo, lo + width)
    let mut width = 64u32;
    while width > 1 {
        let half = width / 2;
        let mask = (((1u128 << half) - 1) as u64) << (lo + half);
        if h & mask != 0 || (h >> (lo + half)) != 0 {
            lo += half;
        }
        width = half;
    }
    lo
}

/// The weak-machine-model level oracle for Basic Counting ("Computing
/// the Wave Level on a Weaker Machine Model", Section 3.2).
///
/// Stores the ruler sequence `tz(1), ..., tz(B-1)` for a power-of-two
/// block size `B`, plus a block counter `d`. While ranks walk through a
/// block the level is the next array entry; at a block boundary
/// (`rank = m·B`) the level is `log2(B) + tz(m)`, and `tz` of the *next*
/// block index is located one bit per arrival, interleaved with the array
/// walk, so every call is O(1) worst case.
#[derive(Debug, Clone)]
pub struct RulerLevelOracle {
    ruler: Box<[u32]>,
    log_b: u32,
    idx: usize,
    /// Next block index whose trailing zeros we are (or will be) finding.
    next_block: u64,
    /// Incremental scan state for tz(next_block).
    scan_bit: u32,
    scan_result: Option<u32>,
}

impl RulerLevelOracle {
    /// Build the oracle with block size `B = 2^log_b` (`log_b >= 1`).
    /// `B` should be about `log2(N')`, rounded up to a power of two.
    pub fn new(log_b: u32) -> Self {
        assert!((1..=20).contains(&log_b), "block size out of range");
        let b = 1usize << log_b;
        let ruler: Box<[u32]> = (1..b as u64).map(rank_level).collect();
        RulerLevelOracle {
            ruler,
            log_b,
            idx: 0,
            next_block: 1,
            scan_bit: 0,
            scan_result: None,
        }
    }

    /// Level of the next 1-rank (ranks are implicit: the i-th call
    /// returns the level of rank i, starting from rank 1).
    pub fn next_level(&mut self) -> u32 {
        // Advance the interleaved scan for tz(next_block) by one bit per
        // call; it has B calls of budget and needs at most 64 probes, so
        // for log_b >= 6 a single probe per call suffices. For smaller
        // blocks we probe a couple of bits per call — still O(1).
        let probes = (64 >> self.log_b).max(1);
        for _ in 0..probes {
            if self.scan_result.is_none() {
                if (self.next_block >> self.scan_bit) & 1 == 1 {
                    self.scan_result = Some(self.scan_bit);
                } else {
                    self.scan_bit += 1;
                }
            }
        }
        if self.idx < self.ruler.len() {
            let lvl = self.ruler[self.idx];
            self.idx += 1;
            lvl
        } else {
            // Block boundary: rank = next_block * B.
            let tz = self
                .scan_result
                .expect("interleaved scan must finish within one block");
            let lvl = self.log_b + tz;
            self.idx = 0;
            self.next_block += 1;
            self.scan_bit = 0;
            self.scan_result = None;
            lvl
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_level_small_cases() {
        let expect = [0, 1, 0, 2, 0, 1, 0, 3, 0, 1, 0, 2, 0, 1, 0, 4];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(rank_level(i as u64 + 1), e);
        }
    }

    #[test]
    fn sum_level_definition_bruteforce() {
        // Check against the definition: largest j such that some multiple
        // of 2^j lies in (total, total+v].
        for total in 0u64..128 {
            for v in 1u64..64 {
                let mut best = 0;
                for j in 0..16 {
                    let step = 1u64 << j;
                    // smallest multiple of 2^j strictly greater than total
                    let m = (total / step + 1) * step;
                    if m <= total + v {
                        best = j;
                    }
                }
                assert_eq!(sum_level(total, v), best, "total={total} v={v}");
            }
        }
    }

    #[test]
    fn sum_level_of_unit_value_matches_rank_level() {
        // With v = 1 the sum wave degenerates to Basic Counting:
        // sum_level(r-1, 1) == rank_level(r).
        for r in 1u64..10_000 {
            assert_eq!(sum_level(r - 1, 1), rank_level(r));
        }
    }

    #[test]
    fn msb_binary_search_matches_leading_zeros() {
        for h in [1u64, 2, 3, 255, 256, 0x8000_0000_0000_0000, u64::MAX] {
            assert_eq!(msb_binary_search(h), 63 - h.leading_zeros());
        }
        for sh in 0..64 {
            assert_eq!(msb_binary_search(1u64 << sh), sh);
        }
    }

    #[test]
    fn ruler_oracle_matches_trailing_zeros() {
        for log_b in [1u32, 2, 4, 6] {
            let mut oracle = RulerLevelOracle::new(log_b);
            for rank in 1u64..100_000 {
                assert_eq!(
                    oracle.next_level(),
                    rank_level(rank),
                    "log_b={log_b} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn ruler_example_from_paper() {
        // log(N') = 16 example: {0,1,0,2,0,1,0,3,0,1,0,2,0,1,0}.
        let oracle = RulerLevelOracle::new(4);
        assert_eq!(
            oracle.ruler.as_ref(),
            &[0, 1, 0, 2, 0, 1, 0, 3, 0, 1, 0, 2, 0, 1, 0]
        );
    }
}
