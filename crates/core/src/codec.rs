//! Bit-level serialization of wave synopses.
//!
//! The paper's space bounds assume a compact encoding: counters stored
//! modulo `N'`, positions delta-coded between consecutive entries. This
//! module makes that encoding a real wire format, so a party can ship
//! its synopsis (or a query report) to the Referee in the number of bits
//! the accounting promises, and the Referee can reconstruct a queryable
//! synopsis on the other side.
//!
//! Gamma codes are used for the variable-length integers: `gamma(x)` for
//! `x >= 1` writes `floor(log2 x)` zero bits, then the binary digits of
//! `x` (MSB first) — `2*floor(log2 x) + 1` bits, matching
//! [`crate::space::elias_gamma_bits`] exactly.

use crate::error::WaveError;
use std::fmt;

/// Errors from decoding a serialized synopsis.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// Ran off the end of the buffer.
    UnexpectedEnd,
    /// A decoded field violated an invariant (e.g. non-monotone
    /// positions, level out of range).
    Corrupt(&'static str),
    /// The decoded parameters are invalid for synopsis construction.
    BadParams(WaveError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CodecError::Corrupt(what) => write!(f, "corrupt synopsis: {what}"),
            CodecError::BadParams(e) => write!(f, "bad parameters: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<WaveError> for CodecError {
    fn from(e: WaveError) -> Self {
        CodecError::BadParams(e)
    }
}

/// MSB-first bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits used in the final byte (0..8; 0 means byte-aligned).
    used: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        if self.used == 0 {
            self.buf.len() as u64 * 8
        } else {
            // `used` counts *free* bits remaining in the last byte.
            (self.buf.len() as u64 - 1) * 8 + (8 - self.used as u64)
        }
    }

    /// Finish and return the byte buffer (zero-padded to a byte).
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Write a single bit.
    pub fn write_bit(&mut self, b: bool) {
        if self.used == 0 {
            self.buf.push(0);
            self.used = 8;
        }
        if b {
            let last = self.buf.last_mut().expect("just pushed");
            *last |= 1 << (self.used - 1);
        }
        self.used -= 1;
    }

    /// Write the low `width` bits of `v`, MSB first. `width <= 64`.
    pub fn write_bits(&mut self, v: u64, width: u32) {
        assert!(width <= 64);
        for i in (0..width).rev() {
            self.write_bit((v >> i) & 1 == 1);
        }
    }

    /// Write `x >= 1` as an Elias-gamma code.
    pub fn write_gamma(&mut self, x: u64) {
        assert!(x >= 1, "gamma codes positive integers");
        let bits = 64 - x.leading_zeros(); // bit length of x
        for _ in 0..bits - 1 {
            self.write_bit(false);
        }
        self.write_bits(x, bits);
    }

    /// Write any `x >= 0` as gamma of `x + 1`.
    pub fn write_gamma0(&mut self, x: u64) {
        self.write_gamma(x + 1);
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: u64, // bit cursor
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let byte = (self.pos / 8) as usize;
        if byte >= self.buf.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let bit = 7 - (self.pos % 8) as u32;
        self.pos += 1;
        Ok((self.buf[byte] >> bit) & 1 == 1)
    }

    pub fn read_bits(&mut self, width: u32) -> Result<u64, CodecError> {
        assert!(width <= 64);
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }

    pub fn read_gamma(&mut self) -> Result<u64, CodecError> {
        let mut zeros = 0u32;
        while !self.read_bit()? {
            zeros += 1;
            if zeros > 63 {
                return Err(CodecError::Corrupt("gamma prefix too long"));
            }
        }
        // The leading 1 already read; read the remaining `zeros` digits.
        let rest = self.read_bits(zeros)?;
        Ok((1u64 << zeros) | rest)
    }

    pub fn read_gamma0(&mut self) -> Result<u64, CodecError> {
        Ok(self.read_gamma()? - 1)
    }
}

/// Pack bits MSB-first into bytes, appending to `out` (the same
/// orientation as [`BitWriter`], so hexdumps line up). The final byte is
/// zero-padded on the right.
///
/// This is the shared batch-payload packing used by both the wire
/// protocol (`waves-net`) and the write-ahead log (`waves-store`);
/// keeping one definition means the two formats cannot drift apart.
pub fn pack_bits(bits: &[bool], out: &mut Vec<u8>) {
    let mut cur = 0u8;
    let mut used = 0u8;
    for &b in bits {
        cur = (cur << 1) | b as u8;
        used += 1;
        if used == 8 {
            out.push(cur);
            cur = 0;
            used = 0;
        }
    }
    if used > 0 {
        out.push(cur << (8 - used));
    }
}

/// Inverse of [`pack_bits`]: read the first `nbits` MSB-first bits of
/// `bytes`. Returns `UnexpectedEnd` if `bytes` is too short.
pub fn unpack_bits(bytes: &[u8], nbits: usize) -> Result<Vec<bool>, CodecError> {
    if bytes.len() < nbits.div_ceil(8) {
        return Err(CodecError::UnexpectedEnd);
    }
    let mut bits = Vec::with_capacity(nbits);
    for i in 0..nbits {
        let byte = bytes[i / 8];
        bits.push((byte >> (7 - (i % 8))) & 1 == 1);
    }
    Ok(bits)
}

/// Encode a strictly increasing (or nondecreasing) sequence as gamma
/// deltas, with an implicit previous value of 0.
pub fn write_deltas(w: &mut BitWriter, sorted: &[u64]) {
    let mut prev = 0u64;
    for &x in sorted {
        debug_assert!(x >= prev);
        w.write_gamma(x - prev + 1);
        prev = x;
    }
}

/// Decode `count` gamma deltas into the original sequence.
///
/// Preallocation is capped so a corrupt count cannot force a huge
/// up-front allocation, and the accumulation is checked so adversarial
/// deltas yield `Corrupt` instead of overflow.
pub fn read_deltas(r: &mut BitReader<'_>, count: usize) -> Result<Vec<u64>, CodecError> {
    let mut out = Vec::with_capacity(count.min(1 << 16));
    let mut prev = 0u64;
    for _ in 0..count {
        let d = r.read_gamma()?;
        prev = prev
            .checked_add(d - 1)
            .ok_or(CodecError::Corrupt("delta overflow"))?;
        out.push(prev);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, false, true, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(1).unwrap(), 0);
    }

    #[test]
    fn gamma_roundtrip_and_length() {
        let mut w = BitWriter::new();
        let values = [1u64, 2, 3, 4, 5, 100, 255, 256, 1 << 40];
        for &v in &values {
            let before = w.bit_len();
            w.write_gamma(v);
            assert_eq!(
                w.bit_len() - before,
                crate::space::elias_gamma_bits(v),
                "gamma length for {v}"
            );
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &v in &values {
            assert_eq!(r.read_gamma().unwrap(), v);
        }
    }

    #[test]
    fn gamma0_covers_zero() {
        let mut w = BitWriter::new();
        w.write_gamma0(0);
        w.write_gamma0(7);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_gamma0().unwrap(), 0);
        assert_eq!(r.read_gamma0().unwrap(), 7);
    }

    #[test]
    fn deltas_roundtrip() {
        let seq = vec![3u64, 3, 10, 11, 500, 500, 501];
        let mut w = BitWriter::new();
        write_deltas(&mut w, &seq);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(read_deltas(&mut r, seq.len()).unwrap(), seq);
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = BitWriter::new();
        w.write_gamma(1 << 20);
        let mut buf = w.finish();
        buf.truncate(1);
        let mut r = BitReader::new(&buf);
        assert!(matches!(r.read_gamma(), Err(CodecError::UnexpectedEnd)));
    }

    #[test]
    fn empty_input_errors() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let mut bytes = Vec::new();
            pack_bits(&bits, &mut bytes);
            assert_eq!(bytes.len(), len.div_ceil(8));
            assert_eq!(unpack_bits(&bytes, len).unwrap(), bits, "len={len}");
        }
    }

    #[test]
    fn unpack_short_buffer_errors() {
        assert_eq!(unpack_bits(&[0xFF], 9), Err(CodecError::UnexpectedEnd));
        assert_eq!(unpack_bits(&[], 1), Err(CodecError::UnexpectedEnd));
    }
}
