//! The optimal deterministic wave of Section 3.2 (Figure 4, Theorem 1).
//!
//! Differences from the basic wave:
//!
//! * each 1-bit is stored **only at its maximum level** `tz(rank)`
//!   (capped at the top level), so processing a bit touches exactly one
//!   level queue — O(1) *worst case* per item, the paper's headline
//!   improvement over the exponential histogram's cascading merges;
//! * levels `0..l-2` store `ceil((1/eps + 1)/2)` positions and the top
//!   level stores `1/eps + 1`;
//! * positions older than the maximum window `N` are expired as the
//!   stream advances, and the largest expired 1-rank `r1` is retained so
//!   a window-`N` query is answered in O(1);
//! * all entries are threaded on a doubly linked list `L` in position
//!   order (oldest at the head), so any window `n <= N` can be answered
//!   in `O((1/eps) log(eps N))` by walking `L`.

use crate::basic_wave::{wave_estimate, wave_levels};
use crate::chain::{Chain, Fifo};
use crate::error::WaveError;
use crate::estimate::{Estimate, SpaceReport};
use crate::level::rank_level;
use crate::space::{delta_coded_bits, elias_gamma_bits};
use crate::window::ModRing;

/// Which query counter an estimate belongs to.
#[inline]
pub(crate) fn classify_query(est: &Estimate) -> waves_obs::MetricId {
    if est.exact {
        waves_obs::MetricId::WaveQueriesExact
    } else {
        waves_obs::MetricId::WaveQueriesApprox
    }
}

/// One stored wave entry: a 1-bit's stream position and 1-rank, plus the
/// level whose queue owns it.
#[derive(Debug, Clone, Copy)]
struct Entry {
    pos: u64,
    rank: u64,
    level: u8,
}

/// Deterministic wave for Basic Counting (Theorem 1): relative error at
/// most `eps` for any window `n <= N`, `O((1/eps) log^2(eps N))` bits,
/// O(1) worst-case per-item time, O(1) query time for the max window.
#[derive(Debug, Clone)]
pub struct DetWave {
    max_window: u64,
    eps: f64,
    k: u64,
    num_levels: u32,
    ring: ModRing,
    pos: u64,
    rank: u64,
    /// Largest 1-rank expired from the wave (0 if none yet).
    r1: u64,
    chain: Chain<Entry>,
    queues: Vec<Fifo>,
}

/// Builder for [`DetWave`] — the preferred construction surface.
///
/// Defaults: `max_window = 1024`, `eps = 0.1`. All validation happens
/// in [`DetWaveBuilder::build`], so setters are infallible and chain.
///
/// ```
/// use waves_core::DetWave;
/// let wave = DetWave::builder().max_window(10_000).eps(0.05).build().unwrap();
/// assert_eq!(wave.max_window(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct DetWaveBuilder {
    max_window: u64,
    eps: f64,
}

impl DetWaveBuilder {
    /// Maximum queryable window `N` (default 1024).
    pub fn max_window(mut self, n: u64) -> Self {
        self.max_window = n;
        self
    }

    /// Relative error bound, `0 < eps < 1` (default 0.1).
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Validate the configuration and build the wave.
    pub fn build(self) -> Result<DetWave, WaveError> {
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(self.eps));
        }
        DetWave::with_k(self.max_window, (1.0 / self.eps).ceil() as u64, self.eps)
    }
}

impl DetWave {
    /// Start building a wave: `DetWave::builder().max_window(n).eps(e).build()`.
    pub fn builder() -> DetWaveBuilder {
        DetWaveBuilder {
            max_window: 1024,
            eps: 0.1,
        }
    }

    /// Build a wave with error bound `eps` for windows up to `max_window`
    /// (thin shim over [`DetWave::builder`]).
    pub fn new(max_window: u64, eps: f64) -> Result<Self, WaveError> {
        Self::builder().max_window(max_window).eps(eps).build()
    }

    /// Build from the integer parameter `k = ceil(1/eps)` directly —
    /// the structural parameter everything derives from. Used by
    /// [`DetWave::decode`] so the float `eps -> k` mapping (which is not
    /// injective under f64 rounding) never has to round-trip.
    fn with_k(max_window: u64, k: u64, eps: f64) -> Result<Self, WaveError> {
        if k == 0 || k > 1 << 32 {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        if max_window == 0 || max_window > (1 << 62) {
            return Err(WaveError::InvalidWindow(max_window));
        }
        let num_levels = wave_levels(max_window, k);
        let lower_cap = ((k + 1).div_ceil(2)) as usize;
        let top_cap = (k + 1) as usize;
        let mut queues = Vec::with_capacity(num_levels as usize);
        let mut total_cap = 0usize;
        for lvl in 0..num_levels {
            let cap = if lvl + 1 == num_levels {
                top_cap
            } else {
                lower_cap
            };
            total_cap += cap;
            queues.push(Fifo::new(cap));
        }
        Ok(DetWave {
            max_window,
            eps,
            k,
            num_levels,
            ring: ModRing::for_window(max_window),
            pos: 0,
            rank: 0,
            r1: 0,
            chain: Chain::with_capacity(total_cap),
            queues,
        })
    }

    /// Maximum window size `N`.
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// The configured error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The paper's `1/eps` parameter `k` (queue sizes derive from it:
    /// `ceil((k+1)/2)` per level, `k+1` at the top level).
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Number of levels `ceil(log2(2 eps N))`.
    pub fn num_levels(&self) -> u32 {
        self.num_levels
    }

    /// Stream length so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Number of 1's seen so far.
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// Number of entries currently stored.
    pub fn entries(&self) -> usize {
        self.chain.len()
    }

    /// Contents of each level queue as `(position, rank)`, oldest first
    /// (for printing Figure 3).
    pub fn level_contents(&self) -> Vec<Vec<(u64, u64)>> {
        let mut out = vec![Vec::new(); self.num_levels as usize];
        for (_, e) in self.chain.iter() {
            out[e.level as usize].push((e.pos, e.rank));
        }
        out
    }

    /// Process the next stream bit — O(1) worst case (Figure 4).
    #[inline]
    pub fn push_bit(&mut self, b: bool) {
        self.pos += 1;
        self.expire();
        if b {
            self.rank += 1;
            let j = rank_level(self.rank).min(self.num_levels - 1) as usize;
            if self.queues[j].is_full() {
                let old = self.queues[j].pop_front().expect("full queue has a front");
                self.chain.remove(old);
            }
            let id = self.chain.push_back(Entry {
                pos: self.pos,
                rank: self.rank,
                level: j as u8,
            });
            self.queues[j].push_back(id);
        }
    }

    /// [`DetWave::push_bit`] with structural instrumentation reported
    /// into `rec`. Monomorphized over the recorder: with
    /// [`waves_obs::NoopRecorder`] every recorder call is an empty
    /// inline body and this compiles to the uninstrumented push (the
    /// `obs-overhead` experiment in `waves-bench` checks the overhead
    /// stays within noise). The `push_recorded_matches_plain_push` test
    /// guards the two bodies against drifting apart.
    #[inline]
    pub fn push_bit_recorded<R: waves_obs::Recorder + ?Sized>(&mut self, b: bool, rec: &R) {
        use waves_obs::MetricId;
        self.pos += 1;
        let live_before = self.chain.len();
        self.expire();
        rec.incr(MetricId::WavePushesTotal, 1);
        let expired = (live_before - self.chain.len()) as u64;
        if expired > 0 {
            rec.incr(MetricId::WaveEntriesExpired, expired);
        }
        if b {
            self.rank += 1;
            rec.incr(MetricId::WaveOnesTotal, 1);
            rec.incr(MetricId::WaveLevelOracleCalls, 1);
            let j = rank_level(self.rank).min(self.num_levels - 1) as usize;
            if self.queues[j].is_full() {
                let old = self.queues[j].pop_front().expect("full queue has a front");
                self.chain.remove(old);
                rec.incr(MetricId::WaveEntriesEvicted, 1);
                rec.event(waves_obs::Event {
                    name: "wave_evict",
                    fields: &[("level", j as u64), ("pos", self.pos)],
                });
            }
            let id = self.chain.push_back(Entry {
                pos: self.pos,
                rank: self.rank,
                level: j as u8,
            });
            self.queues[j].push_back(id);
            rec.incr(MetricId::WaveEntriesStored, 1);
        }
    }

    /// Process a batch of stream bits, oldest first — observationally
    /// identical to pushing each bit with [`DetWave::push_bit`] (the
    /// `push_bits_matches_single_pushes` property test pins the encoded
    /// state byte-for-byte), but runs of 0s advance the position counter
    /// in one step and pay for expiry once per run instead of once per
    /// bit. This is the engine shard workers' ingest path.
    pub fn push_bits(&mut self, bits: &[bool]) {
        let mut i = 0;
        while i < bits.len() {
            if bits[i] {
                self.push_bit(true);
                i += 1;
            } else {
                let start = i;
                while i < bits.len() && !bits[i] {
                    i += 1;
                }
                self.skip_zeros((i - start) as u64);
            }
        }
    }

    /// Packed-word counterpart of [`DetWave::push_bits`]: ingest `bits`
    /// oldest first, 64 bits per word. 1-bits are located with
    /// `trailing_zeros`, and runs of 0s — including whole zero words —
    /// collapse into a single [`DetWave::skip_zeros`] call, so a sparse
    /// stream costs O(ones) rather than O(len). State-identical to
    /// pushing every bit through [`DetWave::push_bit`] (the
    /// `push_words_matches_single_pushes` property test pins the
    /// encoding byte-for-byte).
    pub fn push_words(&mut self, bits: crate::bits::BitsRef<'_>) {
        bits.scan_runs(|run| match run {
            crate::bits::Run::Zeros(n) => self.skip_zeros(n),
            crate::bits::Run::One => self.push_bit(true),
        });
    }

    /// Advance the stream by `count` 0-bits at once (used when a party
    /// observes a gap in a shared position space — Scenario 2). Amortized
    /// O(1) per expired entry.
    pub fn skip_zeros(&mut self, count: u64) {
        self.pos += count;
        self.expire();
    }

    fn expire(&mut self) {
        // Planted off-by-one for the DST mutation smoke test
        // (tests/dst_mutation.rs): under `--cfg dst_mutation` entries
        // expire one stream position early, which the harness must
        // catch against the exact oracle. Never enabled in real builds.
        #[cfg(dst_mutation)]
        let horizon = self.pos + 1;
        #[cfg(not(dst_mutation))]
        let horizon = self.pos;
        while let Some(h) = self.chain.head() {
            let e = *self.chain.get(h);
            if e.pos + self.max_window <= horizon {
                self.r1 = e.rank;
                let popped = self.queues[e.level as usize].pop_front();
                debug_assert_eq!(popped, Some(h), "expiring head must be its queue's front");
                self.chain.remove(h);
            } else {
                break;
            }
        }
    }

    /// Estimate the count over the maximum window `N` in O(1) (Figure 4's
    /// query procedure).
    pub fn query_max(&self) -> Estimate {
        if self.max_window >= self.pos {
            return Estimate::exact(self.rank);
        }
        let Some(h) = self.chain.head() else {
            return Estimate::exact(0);
        };
        let e = self.chain.get(h);
        let s = self.pos - self.max_window + 1;
        if e.pos == s {
            return Estimate::exact(self.rank + 1 - e.rank);
        }
        wave_estimate(self.rank, self.r1, e.rank)
    }

    /// [`DetWave::query_max`] plus exact-vs-approx classification: the
    /// recorder's `wave_queries_exact` / `wave_queries_approx` counters
    /// measure how often the synopsis answers with zero error.
    pub fn query_max_recorded<R: waves_obs::Recorder + ?Sized>(&self, rec: &R) -> Estimate {
        let est = self.query_max();
        rec.incr(classify_query(&est), 1);
        est
    }

    /// [`DetWave::query`] plus exact-vs-approx classification.
    pub fn query_recorded<R: waves_obs::Recorder + ?Sized>(
        &self,
        n: u64,
        rec: &R,
    ) -> Result<Estimate, WaveError> {
        let est = self.query(n)?;
        rec.incr(classify_query(&est), 1);
        Ok(est)
    }

    /// Estimate the count over any window `n <= N`, by walking the
    /// position-ordered list — `O((1/eps) log(eps N))` worst case.
    pub fn query(&self, n: u64) -> Result<Estimate, WaveError> {
        if n > self.max_window {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_window,
            });
        }
        if n == self.max_window {
            return Ok(self.query_max());
        }
        if n >= self.pos {
            return Ok(Estimate::exact(self.rank));
        }
        let s = self.pos - n + 1;
        // Walk oldest-to-newest: the last entry before s gives r1; the
        // first entry at or after s gives (p2, r2).
        let mut r1 = self.r1;
        let mut first_in: Option<(u64, u64)> = None;
        for (_, e) in self.chain.iter() {
            if e.pos < s {
                r1 = e.rank; // entries are position-ordered, so this grows
            } else {
                first_in = Some((e.pos, e.rank));
                break;
            }
        }
        let Some((p2, r2)) = first_in else {
            // The newest 1 (always stored) is before s: none in window.
            return Ok(Estimate::exact(0));
        };
        if p2 == s {
            return Ok(Estimate::exact(self.rank + 1 - r2));
        }
        Ok(wave_estimate(self.rank, r1, r2))
    }

    /// The full estimate profile: for every window size `n in 1..=N`,
    /// the estimate is a step function of `n` whose value can only
    /// change where a stored entry enters the window or becomes the
    /// boundary — at most two breakpoints per stored entry, plus the
    /// whole-stream boundary. This returns the compressed step function
    /// instead of `N` separate queries.
    ///
    /// Returns `(n_start, estimate)` pairs, each meaning "for windows of
    /// size `n_start` up to the next pair's `n_start` (exclusive), the
    /// estimate is `estimate`"; the first pair has `n_start = 1` and the
    /// profile covers `1..=max_window`.
    pub fn profile(&self) -> Vec<(u64, Estimate)> {
        // Candidate breakpoints: n = 1, and for each stored entry at
        // position p both n = pos - p + 1 (entry becomes the window
        // start) and n = pos - p + 2 (entry strictly inside), plus the
        // whole-stream boundary n = pos.
        let mut candidates: Vec<u64> = vec![1];
        for (_, e) in self.chain.iter() {
            let n1 = self.pos - e.pos + 1;
            candidates.push(n1.min(self.max_window));
            candidates.push((n1 + 1).min(self.max_window));
        }
        if self.pos >= 1 {
            candidates.push(self.pos.min(self.max_window));
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut out: Vec<(u64, Estimate)> = Vec::with_capacity(candidates.len());
        for n in candidates {
            let est = self.query(n).expect("n <= max_window by construction");
            if out.last().map(|&(_, e)| e) != Some(est) {
                out.push((n, est));
            }
        }
        out
    }

    /// Serialize the synopsis into the paper's compact bit encoding:
    /// gamma-coded parameters and counters, delta-coded positions and
    /// ranks, per-entry levels. The result can be shipped to a Referee
    /// and reconstructed with [`DetWave::decode`].
    pub fn encode(&self) -> Vec<u8> {
        use crate::codec::{write_deltas, BitWriter};
        let mut w = BitWriter::new();
        w.write_gamma(self.max_window);
        w.write_gamma(self.k);
        w.write_gamma0(self.pos);
        w.write_gamma0(self.rank);
        w.write_gamma0(self.r1);
        w.write_gamma0(self.chain.len() as u64);
        let positions: Vec<u64> = self.chain.iter().map(|(_, e)| e.pos).collect();
        let ranks: Vec<u64> = self.chain.iter().map(|(_, e)| e.rank).collect();
        write_deltas(&mut w, &positions);
        write_deltas(&mut w, &ranks);
        for (_, e) in self.chain.iter() {
            w.write_gamma0(e.level as u64);
        }
        w.finish()
    }

    /// Reconstruct a synopsis from [`DetWave::encode`] output. The
    /// reconstruction answers queries identically to the original.
    pub fn decode(bytes: &[u8]) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::{read_deltas, BitReader, CodecError};
        let mut r = BitReader::new(bytes);
        let max_window = r.read_gamma()?;
        let k = r.read_gamma()?;
        if k == 0 || k > 1 << 32 {
            return Err(CodecError::Corrupt("bad k"));
        }
        let mut wave = DetWave::with_k(max_window, k, 1.0 / k as f64)?;
        wave.pos = r.read_gamma0()?;
        wave.rank = r.read_gamma0()?;
        wave.r1 = r.read_gamma0()?;
        if wave.pos > 1 << 62 || wave.rank > wave.pos || wave.r1 > wave.rank {
            return Err(CodecError::Corrupt("counters inconsistent"));
        }
        let count = r.read_gamma0()? as usize;
        let positions = read_deltas(&mut r, count)?;
        let ranks = read_deltas(&mut r, count)?;
        let mut prev = (0u64, 0u64);
        for i in 0..count {
            let level = r.read_gamma0()?;
            if level >= wave.num_levels as u64 {
                return Err(CodecError::Corrupt("level out of range"));
            }
            let (p, rk) = (positions[i], ranks[i]);
            if p > wave.pos || rk > wave.rank {
                return Err(CodecError::Corrupt("entry beyond counters"));
            }
            // Entries must be live (a real wave expires on every push)
            // and strictly newer than the expired boundary r1.
            if p + max_window <= wave.pos || rk <= wave.r1 {
                return Err(CodecError::Corrupt("entry already expired"));
            }
            if i > 0 && (p <= prev.0 || rk <= prev.1) {
                return Err(CodecError::Corrupt("entries not increasing"));
            }
            prev = (p, rk);
            if wave.queues[level as usize].is_full() {
                return Err(CodecError::Corrupt("level queue overflow"));
            }
            let id = wave.chain.push_back(Entry {
                pos: p,
                rank: rk,
                level: level as u8,
            });
            wave.queues[level as usize].push_back(id);
        }
        Ok(wave)
    }

    /// Space accounting (see [`SpaceReport`]).
    pub fn space_report(&self) -> SpaceReport {
        let resident_bytes = std::mem::size_of::<Self>()
            + self.chain.heap_bytes()
            + self.queues.iter().map(Fifo::heap_bytes).sum::<usize>();
        // Paper encoding: two mod-N' counters + r1, plus delta-coded
        // positions; ranks are recoverable from one delta-coded rank
        // sequence as well.
        let counter_bits = self.ring.counter_bits() as u64;
        let positions = self.chain.iter().map(|(_, e)| e.pos);
        let ranks = self.chain.iter().map(|(_, e)| e.rank);
        let synopsis_bits = 3 * counter_bits
            + delta_coded_bits(positions)
            + delta_coded_bits(ranks)
            + self.chain.len() as u64 * elias_gamma_bits(self.num_levels as u64 + 1);
        SpaceReport {
            resident_bytes,
            synopsis_bits,
            entries: self.chain.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic_wave::BasicWave;
    use crate::exact::ExactCount;

    fn lcg_bits(seed: u64, len: usize, density_mod: u64, density_lt: u64) -> Vec<bool> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % density_mod < density_lt
            })
            .collect()
    }

    #[test]
    fn empty_wave_queries() {
        let w = DetWave::new(16, 0.5).unwrap();
        assert_eq!(w.query_max(), Estimate::exact(0));
        assert_eq!(w.query(4).unwrap(), Estimate::exact(0));
    }

    #[test]
    fn whole_stream_exact() {
        let mut w = DetWave::new(100, 0.25).unwrap();
        for b in [true, true, false, true] {
            w.push_bit(b);
        }
        assert_eq!(w.query_max(), Estimate::exact(3));
    }

    #[test]
    fn all_zeros_after_ones() {
        let mut w = DetWave::new(8, 0.5).unwrap();
        for _ in 0..10 {
            w.push_bit(true);
        }
        for _ in 0..20 {
            w.push_bit(false);
        }
        assert_eq!(w.query_max(), Estimate::exact(0));
    }

    #[test]
    fn error_bound_holds_max_window() {
        for &(eps, n_max) in &[(0.5, 64u64), (0.25, 128), (0.1, 256), (1.0 / 3.0, 48)] {
            let mut w = DetWave::new(n_max, eps).unwrap();
            let mut oracle = ExactCount::new(n_max);
            for b in lcg_bits(42, 6000, 10, 4) {
                w.push_bit(b);
                oracle.push_bit(b);
                let actual = oracle.query(n_max);
                let est = w.query_max();
                assert!(est.brackets(actual), "[{},{}] vs {actual}", est.lo, est.hi);
                assert!(
                    est.relative_error(actual) <= eps + 1e-9,
                    "eps={eps} actual={actual} est={}",
                    est.value
                );
            }
        }
    }

    #[test]
    fn error_bound_holds_all_window_sizes() {
        let eps = 0.25;
        let n_max = 128u64;
        let mut w = DetWave::new(n_max, eps).unwrap();
        let mut oracle = ExactCount::new(n_max);
        for (step, b) in lcg_bits(7, 5000, 3, 1).into_iter().enumerate() {
            w.push_bit(b);
            oracle.push_bit(b);
            if step % 23 == 0 {
                for n in 1..=n_max {
                    let actual = oracle.query(n);
                    let est = w.query(n).unwrap();
                    assert!(
                        est.relative_error(actual) <= eps + 1e-9,
                        "step={step} n={n} actual={actual} est={:?}",
                        est
                    );
                }
            }
        }
    }

    #[test]
    fn bursty_stream_error_bound() {
        let eps = 0.2;
        let n_max = 200u64;
        let mut w = DetWave::new(n_max, eps).unwrap();
        let mut oracle = ExactCount::new(n_max);
        // Alternating bursts of 1s and 0s of varying lengths.
        let mut bit = true;
        for burst in 1..200u64 {
            for _ in 0..(burst % 17) + 1 {
                w.push_bit(bit);
                oracle.push_bit(bit);
            }
            bit = !bit;
            let actual = oracle.query(n_max);
            assert!(w.query_max().relative_error(actual) <= eps + 1e-9);
        }
    }

    #[test]
    fn entries_bounded_by_capacity() {
        let eps = 0.1;
        let n_max = 1u64 << 14;
        let k = 10u64;
        let l = wave_levels(n_max, k) as u64;
        let cap = (l - 1) * (k + 1).div_ceil(2) + (k + 1);
        let mut w = DetWave::new(n_max, eps).unwrap();
        for _ in 0..100_000 {
            w.push_bit(true);
        }
        assert!(w.entries() as u64 <= cap, "{} > {cap}", w.entries());
    }

    #[test]
    fn matches_basic_wave_estimates_are_both_valid() {
        // Both variants must bracket the truth; they may differ in value.
        let eps = 1.0 / 3.0;
        let n_max = 48u64;
        let mut opt = DetWave::new(n_max, eps).unwrap();
        let mut basic = BasicWave::new(n_max, eps).unwrap();
        let mut oracle = ExactCount::new(n_max);
        for b in lcg_bits(99, 2000, 5, 2) {
            opt.push_bit(b);
            basic.push_bit(b);
            oracle.push_bit(b);
            for n in [12u64, 30, 48] {
                let actual = oracle.query(n);
                assert!(opt.query(n).unwrap().relative_error(actual) <= eps + 1e-9);
                assert!(basic.query(n).unwrap().relative_error(actual) <= eps + 1e-9);
            }
        }
    }

    #[test]
    fn builder_matches_new() {
        let a = DetWave::new(500, 0.2).unwrap();
        let b = DetWave::builder().max_window(500).eps(0.2).build().unwrap();
        assert_eq!(a.k(), b.k());
        assert_eq!(a.max_window(), b.max_window());
        assert_eq!(a.num_levels(), b.num_levels());
        // Defaults are usable as-is.
        let d = DetWave::builder().build().unwrap();
        assert_eq!(d.max_window(), 1024);
        // Validation is deferred to build().
        assert_eq!(
            DetWave::builder().eps(2.0).build().unwrap_err(),
            WaveError::InvalidEpsilon(2.0)
        );
        assert_eq!(
            DetWave::builder().max_window(0).build().unwrap_err(),
            WaveError::InvalidWindow(0)
        );
    }

    #[test]
    fn push_bits_batches_match_single_pushes() {
        let mut single = DetWave::new(64, 0.25).unwrap();
        let mut batched = DetWave::new(64, 0.25).unwrap();
        let bits = lcg_bits(11, 3000, 5, 1); // sparse: long zero runs
        for &b in &bits {
            single.push_bit(b);
        }
        for chunk in bits.chunks(37) {
            batched.push_bits(chunk);
        }
        assert_eq!(single.encode(), batched.encode());
        assert_eq!(single.query_max(), batched.query_max());
    }

    #[test]
    fn skip_zeros_equivalent_to_pushing_zeros() {
        let mut a = DetWave::new(32, 0.25).unwrap();
        let mut b = DetWave::new(32, 0.25).unwrap();
        for i in 0..200u64 {
            let bit = i % 7 == 0;
            a.push_bit(bit);
            b.push_bit(bit);
            if i % 13 == 0 {
                for _ in 0..5 {
                    a.push_bit(false);
                }
                b.skip_zeros(5);
            }
            assert_eq!(a.query_max(), b.query_max(), "i={i}");
            assert_eq!(a.pos(), b.pos());
        }
    }

    #[test]
    fn space_report_sane() {
        let mut w = DetWave::new(1 << 12, 0.1).unwrap();
        for b in lcg_bits(5, 20_000, 2, 1) {
            w.push_bit(b);
        }
        let r = w.space_report();
        assert!(r.entries > 0);
        assert!(r.synopsis_bits > 0);
        assert!(r.resident_bytes > r.entries); // bytes >> entries
                                               // Theoretical bits should be far less than exact storage (N bits).
        assert!(r.synopsis_bits < 1 << 12);
    }

    #[test]
    fn profile_matches_per_n_queries() {
        for &(seed, density_mod, lt) in &[(1u64, 2u64, 1u64), (2, 10, 1), (3, 3, 2)] {
            let n_max = 200u64;
            let mut w = DetWave::new(n_max, 0.25).unwrap();
            for b in lcg_bits(seed, 700, density_mod, lt) {
                w.push_bit(b);
            }
            let profile = w.profile();
            assert!(!profile.is_empty());
            assert_eq!(profile[0].0, 1, "profile starts at n = 1");
            assert!(profile.windows(2).all(|p| p[0].0 < p[1].0));
            // The step function must equal query(n) for every n.
            let mut idx = 0;
            for n in 1..=n_max {
                while idx + 1 < profile.len() && profile[idx + 1].0 <= n {
                    idx += 1;
                }
                assert_eq!(profile[idx].1, w.query(n).unwrap(), "seed={seed} n={n}");
            }
        }
    }

    #[test]
    fn profile_of_empty_wave() {
        let w = DetWave::new(16, 0.5).unwrap();
        let p = w.profile();
        assert_eq!(p, vec![(1, Estimate::exact(0))]);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_queries() {
        let eps = 0.1;
        let n_max = 1u64 << 10;
        let mut w = DetWave::new(n_max, eps).unwrap();
        for b in lcg_bits(77, 12_000, 7, 3) {
            w.push_bit(b);
        }
        let bytes = w.encode();
        let w2 = DetWave::decode(&bytes).unwrap();
        assert_eq!(w.pos(), w2.pos());
        assert_eq!(w.rank(), w2.rank());
        for n in 1..=n_max {
            assert_eq!(w.query(n).unwrap(), w2.query(n).unwrap(), "n={n}");
        }
        // Both continue identically after more stream.
        let (mut a, mut b2) = (w, w2);
        for b in lcg_bits(78, 3_000, 2, 1) {
            a.push_bit(b);
            b2.push_bit(b);
            assert_eq!(a.query_max(), b2.query_max());
        }
    }

    #[test]
    fn encoded_size_matches_space_report() {
        let mut w = DetWave::new(1 << 12, 0.05).unwrap();
        for b in lcg_bits(3, 30_000, 2, 1) {
            w.push_bit(b);
        }
        let bytes = w.encode();
        let report = w.space_report();
        // Encoded length tracks the analytic bit count (same codes plus a
        // small parameter header), well under 2x.
        let encoded_bits = bytes.len() as u64 * 8;
        assert!(encoded_bits < 2 * report.synopsis_bits + 128);
        // And the synopsis is tiny compared to the window.
        assert!(encoded_bits < (1 << 12));
    }

    #[test]
    fn roundtrip_survives_non_injective_eps_to_k() {
        // Regression: ceil(1.0/(1.0/k)) != k for k in {49, 98, 103, ...}
        // under f64 rounding; decode must reconstruct from the integer k
        // rather than round-tripping through eps.
        for &k_target in &[49u64, 98, 103, 107, 196] {
            let eps = 1.0 / (k_target as f64 - 0.5);
            let mut w = DetWave::new(1000, eps).unwrap();
            assert_eq!(w.k(), k_target);
            for i in 0..5000u64 {
                w.push_bit(i % 3 == 0);
            }
            let w2 = DetWave::decode(&w.encode()).unwrap_or_else(|e| panic!("k={k_target}: {e}"));
            assert_eq!(w.query_max(), w2.query_max());
        }
    }

    #[test]
    fn decode_rejects_adversarial_delta_overflow() {
        // Regression: huge gamma deltas must yield Corrupt, not an
        // arithmetic overflow panic.
        use crate::codec::BitWriter;
        let mut w = BitWriter::new();
        w.write_gamma(1 << 20); // max_window
        w.write_gamma(4); // k
        w.write_gamma0(100); // pos
        w.write_gamma0(50); // rank
        w.write_gamma0(0); // r1
        w.write_gamma0(3); // count
        for _ in 0..3 {
            w.write_gamma(1 << 63); // adversarial deltas
        }
        assert!(DetWave::decode(&w.finish()).is_err());
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut w = DetWave::new(256, 0.25).unwrap();
        for i in 0..1000u64 {
            w.push_bit(i % 2 == 0);
        }
        let bytes = w.encode();
        assert!(DetWave::decode(&bytes[..bytes.len() / 2]).is_err());
        assert!(DetWave::decode(&[]).is_err());
        let mut flipped = bytes.clone();
        flipped[0] ^= 0xFF;
        // Either an error or, at worst, a *valid* different synopsis —
        // never a panic.
        let _ = DetWave::decode(&flipped);
    }

    #[test]
    fn push_recorded_matches_plain_push() {
        // `push_bit` and `push_bit_recorded` are deliberately separate
        // bodies (so the uninstrumented path stays byte-identical to the
        // seed); this pins them to identical behavior.
        let mut plain = DetWave::new(256, 0.1).unwrap();
        let mut recorded = DetWave::new(256, 0.1).unwrap();
        let rec = waves_obs::NoopRecorder;
        for (i, b) in lcg_bits(21, 4000, 3, 1).into_iter().enumerate() {
            plain.push_bit(b);
            recorded.push_bit_recorded(b, &rec);
            if i % 17 == 0 {
                assert_eq!(plain.query_max(), recorded.query_max(), "i={i}");
                assert_eq!(plain.entries(), recorded.entries());
                assert_eq!(plain.encode(), recorded.encode(), "i={i}");
            }
        }
    }

    #[test]
    fn recorded_counters_are_consistent() {
        let reg = waves_obs::MetricsRegistry::new();
        let mut w = DetWave::new(64, 0.25).unwrap();
        let bits = lcg_bits(5, 3000, 2, 1);
        let ones = bits.iter().filter(|&&b| b).count() as u64;
        for b in bits {
            w.push_bit_recorded(b, &reg);
        }
        use waves_obs::MetricId as M;
        assert_eq!(reg.counter(M::WavePushesTotal), 3000);
        assert_eq!(reg.counter(M::WaveOnesTotal), ones);
        assert_eq!(reg.counter(M::WaveLevelOracleCalls), ones);
        // Every 1 was stored; everything not live was expired or evicted.
        assert_eq!(reg.counter(M::WaveEntriesStored), ones);
        assert_eq!(
            reg.counter(M::WaveEntriesStored)
                - reg.counter(M::WaveEntriesExpired)
                - reg.counter(M::WaveEntriesEvicted),
            w.entries() as u64,
        );
        assert!(
            reg.counter(M::WaveEntriesEvicted) > 0,
            "dense stream evicts"
        );
    }

    #[test]
    fn recorded_queries_classified() {
        let reg = waves_obs::MetricsRegistry::new();
        let mut w = DetWave::new(32, 0.5).unwrap();
        for i in 0..500u64 {
            w.push_bit_recorded(i % 2 == 0, &reg);
        }
        let n_queries = 40u64;
        for n in 1..=n_queries {
            w.query_recorded(n % 32 + 1, &reg).unwrap();
        }
        w.query_max_recorded(&reg);
        use waves_obs::MetricId as M;
        let exact = reg.counter(M::WaveQueriesExact);
        let approx = reg.counter(M::WaveQueriesApprox);
        assert_eq!(exact + approx, n_queries + 1);
        assert!(approx > 0, "eps=0.5 over a dense stream must approximate");
    }

    #[test]
    fn eviction_events_reach_sink() {
        let sink = waves_obs::BufferSink::new();
        let mut w = DetWave::new(16, 0.5).unwrap();
        for _ in 0..200 {
            w.push_bit_recorded(true, &sink);
        }
        let events = sink.drain();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.name == "wave_evict"));
        assert!(events[0].fields.iter().any(|&(k, _)| k == "level"));
    }

    #[test]
    fn sparse_ones_large_window() {
        let eps = 0.125;
        let n_max = 1u64 << 12;
        let mut w = DetWave::new(n_max, eps).unwrap();
        let mut oracle = ExactCount::new(n_max);
        for b in lcg_bits(13, 50_000, 100, 1) {
            w.push_bit(b);
            oracle.push_bit(b);
        }
        for n in [64u64, 1000, n_max] {
            let actual = oracle.query(n);
            let est = w.query(n).unwrap();
            assert!(
                est.relative_error(actual) <= eps + 1e-9,
                "n={n} actual={actual} est={:?}",
                est
            );
        }
    }
}
