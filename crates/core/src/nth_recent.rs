//! The "Nth most recent 1" extension (Section 5).
//!
//! Instead of storing only the 1-bits, the wave stores *every* position
//! (0's and 1's alike), so items in level `l` are `2^l` positions apart;
//! alongside each stored position we keep the 1-rank of the stream prefix
//! through that position. Querying the position of the `n`-th most
//! recent 1 then reduces to locating the stored positions whose prefix
//! ranks bracket the target rank `rank - n + 1`, giving an estimate of
//! the *age* of that 1 with relative error at most `eps`.
//!
//! `max_age` (the paper's `m`) bounds how far back the wave can resolve:
//! the synopsis uses `O((1/eps) log^2(eps * m))` bits.

use crate::basic_wave::wave_levels;
use crate::chain::{Chain, Fifo};
use crate::error::WaveError;
use crate::estimate::{Estimate, SpaceReport};
use crate::level::rank_level;
use crate::space::{delta_coded_bits, elias_gamma_bits};
use crate::window::ModRing;

#[derive(Debug, Clone, Copy)]
struct Entry {
    pos: u64,
    /// Number of 1's in the stream prefix `[1, pos]`.
    prefix_rank: u64,
    level: u8,
}

/// Deterministic wave estimating the position (equivalently the age) of
/// the `n`-th most recent 1-bit.
#[derive(Debug, Clone)]
pub struct NthRecentWave {
    max_age: u64,
    eps: f64,
    num_levels: u32,
    ring: ModRing,
    pos: u64,
    rank: u64,
    /// Prefix rank of the most recently expired stored position.
    expired_rank: u64,
    /// Position of the most recently expired stored position.
    expired_pos: u64,
    chain: Chain<Entry>,
    queues: Vec<Fifo>,
}

impl NthRecentWave {
    /// Build a wave that can locate 1's up to `max_age` positions back.
    pub fn new(max_age: u64, eps: f64) -> Result<Self, WaveError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        if max_age == 0 || max_age > 1 << 62 {
            return Err(WaveError::InvalidWindow(max_age));
        }
        let k = (1.0 / eps).ceil() as u64;
        let num_levels = wave_levels(max_age, k);
        let lower_cap = ((k + 1).div_ceil(2)) as usize;
        let top_cap = (k + 1) as usize;
        let mut queues = Vec::with_capacity(num_levels as usize);
        let mut total_cap = 0usize;
        for lvl in 0..num_levels {
            let cap = if lvl + 1 == num_levels {
                top_cap
            } else {
                lower_cap
            };
            total_cap += cap;
            queues.push(Fifo::new(cap));
        }
        Ok(NthRecentWave {
            max_age,
            eps,
            num_levels,
            ring: ModRing::for_window(max_age),
            pos: 0,
            rank: 0,
            expired_rank: 0,
            expired_pos: 0,
            chain: Chain::with_capacity(total_cap),
            queues,
        })
    }

    /// How far back (in positions) the wave can resolve.
    pub fn max_age(&self) -> u64 {
        self.max_age
    }

    /// The configured error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Stream length so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Total 1's so far.
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// Process the next stream bit. Every position is stored (level keyed
    /// by the position, not the 1-rank) — O(1) worst case.
    pub fn push_bit(&mut self, b: bool) {
        self.pos += 1;
        if b {
            self.rank += 1;
        }
        // Expire stored positions older than max_age.
        while let Some(h) = self.chain.head() {
            let e = *self.chain.get(h);
            if e.pos + self.max_age <= self.pos {
                self.expired_rank = e.prefix_rank;
                self.expired_pos = e.pos;
                let popped = self.queues[e.level as usize].pop_front();
                debug_assert_eq!(popped, Some(h));
                self.chain.remove(h);
            } else {
                break;
            }
        }
        let j = rank_level(self.pos).min(self.num_levels - 1) as usize;
        if self.queues[j].is_full() {
            let old = self.queues[j].pop_front().expect("full queue has a front");
            self.chain.remove(old);
        }
        let id = self.chain.push_back(Entry {
            pos: self.pos,
            prefix_rank: self.rank,
            level: j as u8,
        });
        self.queues[j].push_back(id);
    }

    /// Estimate the *age* of the `n`-th most recent 1 — the number of
    /// positions back from the current position, with the current
    /// position having age 0.
    ///
    /// Returns:
    /// * `Ok(Some(estimate))` — the bracketing interval `[lo, hi]` of the
    ///   age and the midpoint estimate;
    /// * `Ok(None)` — fewer than `n` 1's have appeared at all;
    /// * `Err(WindowTooLarge)` — the `n`-th most recent 1 is older than
    ///   `max_age`, beyond the synopsis's resolution.
    pub fn query_age(&self, n: u64) -> Result<Option<Estimate>, WaveError> {
        assert!(n >= 1, "n must be at least 1");
        if n > self.rank {
            return Ok(None);
        }
        // The target is the 1 with 1-rank t.
        let t = self.rank - n + 1;
        if t <= self.expired_rank {
            // The target 1 lies at or before the last expired position.
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_age,
            });
        }
        // Walk oldest-to-newest for the bracketing pair: the last stored
        // position with prefix_rank < t (lower bracket, default the
        // expired boundary) and the first with prefix_rank >= t.
        let mut pa = self.expired_pos; // target is strictly after pa
        let mut pb: Option<u64> = None;
        for (_, e) in self.chain.iter() {
            if e.prefix_rank < t {
                pa = e.pos;
            } else {
                pb = Some(e.pos);
                break;
            }
        }
        // Every position is stored on arrival, so the newest stored
        // prefix_rank equals self.rank >= t: pb always exists.
        let pb = pb.expect("newest position is always stored");
        // Target position is in (pa, pb] => age in [pos - pb, pos - pa - 1].
        let lo = self.pos - pb;
        let hi = self.pos - pa - 1;
        Ok(Some(Estimate::midpoint(lo, hi)))
    }

    /// Space accounting (see [`SpaceReport`]).
    pub fn space_report(&self) -> SpaceReport {
        let resident_bytes = std::mem::size_of::<Self>()
            + self.chain.heap_bytes()
            + self.queues.iter().map(Fifo::heap_bytes).sum::<usize>();
        let counter_bits = self.ring.counter_bits() as u64;
        let positions = self.chain.iter().map(|(_, e)| e.pos);
        let ranks = self.chain.iter().map(|(_, e)| e.prefix_rank);
        let synopsis_bits = 4 * counter_bits
            + delta_coded_bits(positions)
            + delta_coded_bits(ranks)
            + self.chain.len() as u64 * elias_gamma_bits(self.num_levels as u64 + 1);
        SpaceReport {
            resident_bytes,
            synopsis_bits,
            entries: self.chain.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    struct Oracle {
        pos: u64,
        ones: VecDeque<u64>, // positions of all 1's (unbounded; test only)
    }

    impl Oracle {
        fn new() -> Self {
            Oracle {
                pos: 0,
                ones: VecDeque::new(),
            }
        }
        fn push(&mut self, b: bool) {
            self.pos += 1;
            if b {
                self.ones.push_back(self.pos);
            }
        }
        /// Age of the n-th most recent 1.
        fn age(&self, n: u64) -> Option<u64> {
            let len = self.ones.len() as u64;
            if n > len {
                return None;
            }
            Some(self.pos - self.ones[(len - n) as usize])
        }
    }

    #[test]
    fn not_enough_ones() {
        let mut w = NthRecentWave::new(100, 0.25).unwrap();
        w.push_bit(true);
        assert!(w.query_age(2).unwrap().is_none());
        assert!(w.query_age(1).unwrap().is_some());
    }

    #[test]
    fn most_recent_one_age() {
        let mut w = NthRecentWave::new(100, 0.25).unwrap();
        w.push_bit(true);
        for _ in 0..5 {
            w.push_bit(false);
        }
        let e = w.query_age(1).unwrap().unwrap();
        assert!(e.brackets(5), "[{},{}]", e.lo, e.hi);
    }

    #[test]
    fn beyond_max_age_errors() {
        let mut w = NthRecentWave::new(16, 0.5).unwrap();
        w.push_bit(true);
        for _ in 0..100 {
            w.push_bit(false);
        }
        assert!(matches!(
            w.query_age(1),
            Err(WaveError::WindowTooLarge { .. })
        ));
    }

    #[test]
    fn error_bound_on_ages() {
        let eps = 0.25;
        let max_age = 1u64 << 12;
        let mut w = NthRecentWave::new(max_age, eps).unwrap();
        let mut oracle = Oracle::new();
        let mut x = 31u64;
        for step in 0..30_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33).is_multiple_of(7);
            w.push_bit(b);
            oracle.push(b);
            if step % 293 == 0 {
                for n in [1u64, 5, 50, 200] {
                    let Some(actual) = oracle.age(n) else {
                        continue;
                    };
                    if actual >= max_age {
                        continue;
                    }
                    match w.query_age(n) {
                        Ok(Some(est)) => {
                            assert!(
                                est.brackets(actual),
                                "step={step} n={n}: [{},{}] vs {actual}",
                                est.lo,
                                est.hi
                            );
                            // Relative error on the age; exact-zero ages
                            // are bracketed by construction.
                            if actual > 0 {
                                assert!(
                                    est.relative_error(actual) <= eps + 1e-9,
                                    "step={step} n={n} actual={actual} est={:?}",
                                    est
                                );
                            }
                        }
                        other => panic!("unexpected result {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn dense_ones_exact_small_ages() {
        let mut w = NthRecentWave::new(256, 0.5).unwrap();
        for _ in 0..64 {
            w.push_bit(true);
        }
        // The most recent few 1's are at small ages; level-0 stores them
        // exactly (spacing 1).
        let e = w.query_age(1).unwrap().unwrap();
        assert!(e.brackets(0));
        let e2 = w.query_age(2).unwrap().unwrap();
        assert!(e2.brackets(1));
    }
}
