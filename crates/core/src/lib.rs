//! `waves-core`: deterministic wave synopses for sliding windows.
//!
//! This crate implements the single-stream synopses from Gibbons &
//! Tirthapura, *Distributed Streams Algorithms for Sliding Windows*
//! (SPAA 2002):
//!
//! * [`BasicWave`] — the pedagogical wave of Section 3.1 (Figure 2);
//! * [`DetWave`] — the optimal deterministic wave of Section 3.2
//!   (Theorem 1): `eps` relative error for Basic Counting over any
//!   window up to `N`, O(1) worst-case per-item time, O(1) query time
//!   for the maximum window, `O((1/eps) log^2(eps N))` bits;
//! * [`SumWave`] — the sum of integers in `[0..R]` (Section 3.3,
//!   Theorem 3), again O(1) worst case per item;
//! * [`TimestampWave`] — sliding windows with duplicated positions
//!   (Corollary 1);
//! * [`NthRecentWave`] — the position of the `n`-th most recent 1
//!   (Section 5);
//! * [`SlidingAverage`] — the sum/count composition (Section 5);
//! * exact oracles ([`exact`]) and shared substrates: level arithmetic
//!   ([`level`]), mod-N' counters ([`window`]), slab-backed intrusive
//!   lists ([`chain`]), and space accounting ([`space`]).
//!
//! # Quick start
//! ```
//! use waves_core::DetWave;
//!
//! let mut wave = DetWave::new(1_000, 0.1).unwrap(); // N = 1000, eps = 0.1
//! for i in 0..10_000u64 {
//!     wave.push_bit(i % 3 == 0);
//! }
//! let est = wave.query_max(); // O(1): count of 1s in the last 1000 bits
//! let actual = 333; // ones among the last 1000 bits of this stream
//! assert!(est.relative_error(actual) <= 0.1);
//! ```

pub mod average;
pub mod basic_wave;
pub mod bits;
pub mod chain;
pub mod codec;
pub mod decay;
pub mod det_wave;
pub mod error;
pub mod estimate;
pub mod exact;
pub mod histogram;
pub mod level;
pub mod nth_recent;
pub mod space;
pub mod sum_wave;
pub mod timestamp;
pub mod timestamp_sum;
pub mod traits;
pub mod window;

pub use average::{ratio_error_target, ratio_estimate, RatioEstimate, SlidingAverage};
pub use basic_wave::BasicWave;
pub use bits::{Bits, BitsRef};
pub use decay::{decayed_sum, Decay, DecayedEstimate};
pub use det_wave::{DetWave, DetWaveBuilder};
pub use error::WaveError;
pub use estimate::{Estimate, SpaceReport};
pub use exact::{ExactCount, ExactDistinct, ExactSum};
pub use histogram::WindowedHistogram;
pub use nth_recent::NthRecentWave;
pub use sum_wave::{SumWave, SumWaveBuilder};
pub use timestamp::TimestampWave;
pub use timestamp_sum::TimestampSumWave;
pub use traits::{BitSynopsis, SumSynopsis, Synopsis, SynopsisCodec};
pub use window::ModRing;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn bit_stream() -> impl Strategy<Value = Vec<bool>> {
        prop::collection::vec(prop::bool::weighted(0.4), 0..2000)
    }

    /// Streams biased toward the packed-word boundary cases: lengths
    /// with `len % 64 ∈ {0, 1, 63}`, empty, all-ones, all-zeros, plus
    /// ordinary random streams at sparse and dense densities.
    fn packed_stream() -> impl Strategy<Value = Vec<bool>> {
        const BOUNDARY: [usize; 10] = [0, 1, 63, 64, 65, 127, 128, 129, 191, 192];
        prop_oneof![
            2 => bit_stream(),
            1 => prop::collection::vec(prop::bool::weighted(0.01), 0..2000),
            1 => prop::collection::vec(prop::bool::weighted(0.95), 0..2000),
            1 => (prop::collection::vec(any::<bool>(), 192..=192), 0usize..=9)
                .prop_map(|(mut v, i): (Vec<bool>, usize)| {
                    v.truncate(BOUNDARY[i]);
                    v
                }),
            1 => (0usize..=9).prop_map(|i: usize| vec![true; BOUNDARY[i]]),
            1 => (0usize..=9).prop_map(|i: usize| vec![false; BOUNDARY[i]]),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The headline invariant of Theorem 1: at every instant, for
        /// every window size, the deterministic wave's interval brackets
        /// the truth and the estimate is within eps of it.
        #[test]
        fn det_wave_eps_guarantee(
            bits in bit_stream(),
            inv_eps in 2u64..=12,
            n_max in 8u64..=256,
        ) {
            let eps = 1.0 / inv_eps as f64;
            let mut w = DetWave::new(n_max, eps).unwrap();
            let mut oracle = ExactCount::new(n_max);
            for (i, &b) in bits.iter().enumerate() {
                w.push_bit(b);
                oracle.push_bit(b);
                if i % 31 == 0 || i + 1 == bits.len() {
                    for n in [1, n_max / 3 + 1, n_max] {
                        let actual = oracle.query(n);
                        let est = w.query(n).unwrap();
                        prop_assert!(est.brackets(actual));
                        prop_assert!(est.relative_error(actual) <= eps + 1e-9);
                    }
                }
            }
        }

        /// Same invariant for the sum wave (Theorem 3).
        #[test]
        fn sum_wave_eps_guarantee(
            vals in prop::collection::vec(0u64..=100, 0..1500),
            inv_eps in 2u64..=10,
            n_max in 8u64..=128,
        ) {
            let eps = 1.0 / inv_eps as f64;
            let mut w = SumWave::new(n_max, 100, eps).unwrap();
            let mut oracle = ExactSum::new(n_max);
            for (i, &v) in vals.iter().enumerate() {
                w.push_value(v).unwrap();
                oracle.push_value(v);
                if i % 23 == 0 || i + 1 == vals.len() {
                    let actual = oracle.query(n_max);
                    let est = w.query_max();
                    prop_assert!(est.brackets(actual));
                    prop_assert!(est.relative_error(actual) <= eps + 1e-9);
                }
            }
        }

        /// Basic wave and optimal wave satisfy the bound on the same
        /// stream (the A1 ablation invariant).
        #[test]
        fn basic_and_optimal_agree_on_guarantee(
            bits in bit_stream(),
        ) {
            let (eps, n_max) = (0.25, 64);
            let mut basic = BasicWave::new(n_max, eps).unwrap();
            let mut opt = DetWave::new(n_max, eps).unwrap();
            let mut oracle = ExactCount::new(n_max);
            for &b in &bits {
                basic.push_bit(b);
                opt.push_bit(b);
                oracle.push_bit(b);
            }
            let actual = oracle.query(n_max);
            prop_assert!(basic.query(n_max).unwrap().relative_error(actual) <= eps + 1e-9);
            prop_assert!(opt.query_max().relative_error(actual) <= eps + 1e-9);
        }

        /// Batched ingestion is byte-identical to single pushes: splitting
        /// an arbitrary stream into arbitrary chunks and feeding them to
        /// `push_bits` leaves exactly the encoded state of pushing every
        /// bit individually (the engine shard workers rely on this).
        #[test]
        fn push_bits_matches_single_pushes(
            bits in bit_stream(),
            chunk in 1usize..=97,
            inv_eps in 2u64..=10,
            n_max in 8u64..=256,
        ) {
            let eps = 1.0 / inv_eps as f64;
            let mut single = DetWave::new(n_max, eps).unwrap();
            let mut batched = DetWave::new(n_max, eps).unwrap();
            for &b in &bits {
                single.push_bit(b);
            }
            for c in bits.chunks(chunk) {
                batched.push_bits(c);
            }
            prop_assert_eq!(single.encode(), batched.encode());
        }

        /// Word-packed ingestion is indistinguishable from per-bit
        /// ingestion for every `BitSynopsis` in this crate: same encoded
        /// bytes (DetWave), same structure (BasicWave), same state and
        /// answers (ExactCount) — including buffers split at arbitrary
        /// chunk boundaries, so `push_words` composes across engine
        /// batches exactly like `push_bit` does.
        #[test]
        fn push_words_matches_single_pushes(
            bits in packed_stream(),
            chunk in 1usize..=200,
            inv_eps in 2u64..=10,
            n_max in 8u64..=256,
        ) {
            let eps = 1.0 / inv_eps as f64;
            let packed = bits::Bits::from_bools(&bits);
            let windows = [1, n_max / 2 + 1, n_max];

            let mut single = DetWave::new(n_max, eps).unwrap();
            let mut worded = DetWave::new(n_max, eps).unwrap();
            let mut chunked = DetWave::new(n_max, eps).unwrap();
            for &b in &bits {
                single.push_bit(b);
            }
            worded.push_words(packed.as_ref());
            for c in bits.chunks(chunk) {
                chunked.push_words(bits::Bits::from_bools(c).as_ref());
            }
            prop_assert_eq!(single.encode(), worded.encode());
            prop_assert_eq!(single.encode(), chunked.encode());

            let mut single = BasicWave::new(n_max, eps).unwrap();
            let mut worded = BasicWave::new(n_max, eps).unwrap();
            for &b in &bits {
                single.push_bit(b);
            }
            worded.push_words(packed.as_ref());
            prop_assert_eq!(single.level_contents(), worded.level_contents());
            prop_assert_eq!(single.pos(), worded.pos());
            for n in windows {
                prop_assert_eq!(single.query(n).unwrap(), worded.query(n).unwrap());
            }

            let mut single = ExactCount::new(n_max);
            let mut worded = ExactCount::new(n_max);
            for &b in &bits {
                single.push_bit(b);
            }
            worded.push_words(packed.as_ref());
            prop_assert_eq!(single.pos(), worded.pos());
            prop_assert_eq!(single.rank(), worded.rank());
            for n in windows {
                prop_assert_eq!(single.query(n), worded.query(n));
            }
        }

        /// Wave state is insensitive to trailing zeros beyond the window:
        /// after N zeros, every wave reports exactly 0.
        #[test]
        fn flushes_to_zero(bits in bit_stream()) {
            let n_max = 32u64;
            let mut w = DetWave::new(n_max, 0.5).unwrap();
            for &b in &bits {
                w.push_bit(b);
            }
            for _ in 0..n_max {
                w.push_bit(false);
            }
            prop_assert_eq!(w.query_max(), Estimate::exact(0));
        }

        /// Encode/decode round-trips on arbitrary streams and preserves
        /// every query answer.
        #[test]
        fn codec_roundtrip_preserves_queries(
            bits in bit_stream(),
            inv_eps in 2u64..=8,
            n_max in 8u64..=128,
        ) {
            let mut w = DetWave::new(n_max, 1.0 / inv_eps as f64).unwrap();
            for &b in &bits {
                w.push_bit(b);
            }
            let decoded = DetWave::decode(&w.encode()).unwrap();
            for n in 1..=n_max {
                prop_assert_eq!(w.query(n).unwrap(), decoded.query(n).unwrap());
            }
        }

        /// Decoding arbitrary bytes never panics — it returns an error
        /// or a structurally valid synopsis.
        #[test]
        fn codec_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
            if let Ok(w) = DetWave::decode(&bytes) {
                for n in [1, w.max_window() / 2 + 1, w.max_window()] {
                    let _ = w.query(n);
                }
                let _ = w.profile();
            }
            if let Ok(w) = SumWave::decode(&bytes) {
                for n in [1, w.max_window() / 2 + 1, w.max_window()] {
                    let _ = w.query(n);
                }
            }
            if let Ok(w) = TimestampWave::decode(&bytes) {
                let _ = w.query(w.max_window());
                let _ = w.query(1);
            }
            if let Ok(w) = TimestampSumWave::decode(&bytes) {
                let _ = w.query(w.max_window());
                let _ = w.query(1);
            }
        }

        /// The timestamped sum wave brackets the truth on random
        /// timestamped streams.
        #[test]
        fn timestamp_sum_brackets(
            steps in prop::collection::vec((0u64..3, 0u64..=50), 1..600),
        ) {
            let (n, u, r) = (32u64, 2_048u64, 50u64);
            let mut w = TimestampSumWave::new(n, u, r, 0.25).unwrap();
            let mut items: Vec<(u64, u64)> = Vec::new();
            let mut ts = 1u64;
            for &(dt, v) in &steps {
                ts += dt;
                w.push(ts, v).unwrap();
                items.push((ts, v));
            }
            let s = ts.saturating_sub(n - 1).max(1);
            let actual: u64 = items
                .iter()
                .filter(|&&(t, _)| t >= s)
                .map(|&(_, v)| v)
                .sum();
            let est = w.query(n).unwrap();
            prop_assert!(est.brackets(actual));
            prop_assert!(est.relative_error(actual) <= 0.25 + 1e-9);
        }
    }
}
