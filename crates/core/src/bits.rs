//! Packed bit buffers: the batch currency of the ingest path.
//!
//! A [`Bits`] is an owned, growable bit buffer stored as `u64` words
//! with an exact bit length; [`BitsRef`] is the borrowed view
//! (`&[u64]` + length) that the synopses consume via
//! [`crate::traits::BitSynopsis::push_words`]. Bits are **LSB-first
//! within each word**: stream bit `i` lives at `words[i / 64]` bit
//! `i % 64`, so `trailing_zeros` walks a word in stream order and
//! `count_ones` counts stream 1s — 64 bits per instruction instead of
//! one `bool` per byte.
//!
//! The unused high bits of the final word are always zero (the *clean
//! tail* invariant). Every constructor enforces it, so word-level
//! comparisons, hashing, and `count_ones` need no masking.
//!
//! # Byte encoding
//!
//! The wire protocol (v4) and the WAL both serialize a bit buffer as
//! its words in order, each as 8 **little-endian** bytes — so the byte
//! stream is simply the bit stream, LSB-first, zero-padded to a word
//! boundary. [`Bits::write_le_bytes`] / [`Bits::from_le_bytes`] are
//! that encoding; both sides of the wire and the recovery scan share
//! them, which is what keeps WAL records byte-identical to wire
//! entries.
//!
//! ```
//! use waves_core::bits::Bits;
//!
//! let b: Bits = [true, false, true, true].into();
//! assert_eq!(b.len(), 4);
//! assert_eq!(b.count_ones(), 3);
//! assert_eq!(b.iter().collect::<Vec<bool>>(), vec![true, false, true, true]);
//! ```

/// Number of `u64` words needed to hold `len` bits.
#[inline]
pub const fn word_count(len: u64) -> usize {
    (len as usize).div_ceil(64)
}

/// Serialized byte length of a `len`-bit buffer (whole words, 8 bytes
/// each).
#[inline]
pub const fn byte_count(len: u64) -> usize {
    word_count(len) * 8
}

/// An owned, growable packed bit buffer. See the module docs for the
/// layout and invariants.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bits {
    words: Vec<u64>,
    len: u64,
}

impl Bits {
    /// An empty buffer.
    pub fn new() -> Self {
        Bits::default()
    }

    /// An empty buffer with room for `bits` bits before reallocating.
    pub fn with_capacity(bits: u64) -> Self {
        Bits {
            words: Vec::with_capacity(word_count(bits)),
            len: 0,
        }
    }

    /// Pack a bool slice (the legacy batch currency).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut words = vec![0u64; word_count(bools.len() as u64)];
        for (i, &b) in bools.iter().enumerate() {
            if b {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        Bits {
            words,
            len: bools.len() as u64,
        }
    }

    /// Adopt pre-packed words holding exactly `len` bits. Surplus words
    /// are dropped, missing words are zero-filled, and the tail of the
    /// last word is masked clean, so the result always satisfies the
    /// invariants regardless of the input's slop.
    pub fn from_words(mut words: Vec<u64>, len: u64) -> Self {
        words.resize(word_count(len), 0);
        mask_tail(&mut words, len);
        Bits { words, len }
    }

    /// Decode [`Bits::write_le_bytes`] output: `byte_count(len)` bytes
    /// of little-endian words. Returns `None` when `bytes` is not
    /// exactly that long. The tail is masked, so untrusted input cannot
    /// smuggle set bits past `len`.
    pub fn from_le_bytes(bytes: &[u8], len: u64) -> Option<Self> {
        if bytes.len() != byte_count(len) {
            return None;
        }
        let mut words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|chunk| u64::from_le_bytes(chunk.try_into().unwrap()))
            .collect();
        mask_tail(&mut words, len);
        Some(Bits { words, len })
    }

    /// Serialize as whole little-endian words (see the module docs).
    pub fn write_le_bytes(&self, out: &mut Vec<u8>) {
        self.as_ref().write_le_bytes(out);
    }

    /// Bit length.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words, tail already clean.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of 1-bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Bit `i` (panics when `i >= len`, like slice indexing).
    pub fn get(&self, i: u64) -> bool {
        assert!(i < self.len, "bit index {i} out of range for {}", self.len);
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Append one bit.
    pub fn push(&mut self, b: bool) {
        let slot = (self.len / 64) as usize;
        if slot == self.words.len() {
            self.words.push(0);
        }
        if b {
            self.words[slot] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Append every bit of a bool slice.
    pub fn extend_from_bools(&mut self, bools: &[bool]) {
        for &b in bools {
            self.push(b);
        }
    }

    /// Borrow as a [`BitsRef`].
    pub fn as_ref(&self) -> BitsRef<'_> {
        BitsRef {
            words: &self.words,
            len: self.len,
        }
    }

    /// Iterate bits oldest-first.
    pub fn iter(&self) -> BitsIter<'_> {
        self.as_ref().iter()
    }

    /// Unpack into the legacy bool-slice currency.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }
}

impl From<&[bool]> for Bits {
    fn from(bools: &[bool]) -> Self {
        Bits::from_bools(bools)
    }
}

impl From<Vec<bool>> for Bits {
    fn from(bools: Vec<bool>) -> Self {
        Bits::from_bools(&bools)
    }
}

impl From<&Vec<bool>> for Bits {
    fn from(bools: &Vec<bool>) -> Self {
        Bits::from_bools(bools)
    }
}

impl<const N: usize> From<[bool; N]> for Bits {
    fn from(bools: [bool; N]) -> Self {
        Bits::from_bools(&bools)
    }
}

impl<const N: usize> From<&[bool; N]> for Bits {
    fn from(bools: &[bool; N]) -> Self {
        Bits::from_bools(bools)
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bits = Bits::new();
        for b in iter {
            bits.push(b);
        }
        bits
    }
}

impl Extend<bool> for Bits {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

/// A borrowed view over packed words with an exact bit length.
///
/// Constructed via [`Bits::as_ref`] or [`BitsRef::new`]. Reads mask the
/// final word defensively, so a view over words with a dirty tail still
/// observes only the first `len` bits.
#[derive(Debug, Clone, Copy)]
pub struct BitsRef<'a> {
    words: &'a [u64],
    len: u64,
}

impl<'a> BitsRef<'a> {
    /// View `len` bits over `words`. Panics unless `words` is exactly
    /// `word_count(len)` long (the serialized shape).
    pub fn new(words: &'a [u64], len: u64) -> Self {
        assert_eq!(words.len(), word_count(len), "word count mismatch");
        BitsRef { words, len }
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (the final word may carry junk past `len`;
    /// use [`BitsRef::chunks`] for masked reads).
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Number of 1-bits among the first `len` bits.
    pub fn count_ones(&self) -> u64 {
        self.chunks().map(|(w, _)| w.count_ones() as u64).sum()
    }

    /// Bit `i` (panics when `i >= len`).
    pub fn get(&self, i: u64) -> bool {
        assert!(i < self.len, "bit index {i} out of range for {}", self.len);
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Iterate `(word, bits_in_word)` pairs oldest-first, the final
    /// word masked to its valid bits — the scan surface every
    /// `push_words` implementation is written against.
    pub fn chunks(&self) -> impl Iterator<Item = (u64, u32)> + 'a {
        let (words, len) = (self.words, self.len);
        words.iter().enumerate().map(move |(i, &w)| {
            let remaining = len - (i as u64) * 64;
            if remaining >= 64 {
                (w, 64u32)
            } else {
                (w & ((1u64 << remaining) - 1), remaining as u32)
            }
        })
    }

    /// Iterate bits oldest-first.
    pub fn iter(&self) -> BitsIter<'a> {
        BitsIter {
            view: *self,
            next: 0,
        }
    }

    /// Decompose the stream into maximal runs: `Run::Zeros(n)` for each
    /// maximal run of `n > 0` zeros (merged across word boundaries) and
    /// `Run::One` per 1-bit, in stream order. One `trailing_zeros` per
    /// 1-bit, O(1) per all-zero word — the shared scan loop behind every
    /// `push_words` fast path.
    pub fn scan_runs(&self, mut f: impl FnMut(Run)) {
        let mut zeros = 0u64;
        for (word, n) in self.chunks() {
            let mut rest = word;
            let mut next = 0u32;
            while rest != 0 {
                let tz = rest.trailing_zeros();
                zeros += (tz - next) as u64;
                if zeros > 0 {
                    f(Run::Zeros(zeros));
                    zeros = 0;
                }
                f(Run::One);
                next = tz + 1;
                rest &= rest - 1;
            }
            zeros += (n - next) as u64;
        }
        if zeros > 0 {
            f(Run::Zeros(zeros));
        }
    }

    /// Copy into an owned [`Bits`] (tail masked clean).
    pub fn to_owned_bits(&self) -> Bits {
        let mut words = self.words.to_vec();
        mask_tail(&mut words, self.len);
        Bits {
            words,
            len: self.len,
        }
    }

    /// Serialize as whole little-endian words (see the module docs).
    /// Words are staged through a 64-byte buffer so the output vector
    /// pays one bounds/capacity check per eight words, not per word.
    pub fn write_le_bytes(&self, out: &mut Vec<u8>) {
        let Some((&last, full)) = self.words.split_last() else {
            return;
        };
        out.reserve(self.words.len() * 8);
        let mut buf = [0u8; 64];
        for chunk in full.chunks(8) {
            for (i, &w) in chunk.iter().enumerate() {
                buf[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&buf[..chunk.len() * 8]);
        }
        // Only the final word can carry junk past `len`; mask it.
        let rem = self.len - (self.words.len() as u64 - 1) * 64;
        let mask = if rem >= 64 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        };
        out.extend_from_slice(&(last & mask).to_le_bytes());
    }
}

impl<'a> From<&'a Bits> for BitsRef<'a> {
    fn from(bits: &'a Bits) -> Self {
        bits.as_ref()
    }
}

impl PartialEq for BitsRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.chunks().eq(other.chunks())
    }
}

impl Eq for BitsRef<'_> {}

/// One maximal run from [`BitsRef::scan_runs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Run {
    /// A maximal run of this many zeros (always > 0).
    Zeros(u64),
    /// A single 1-bit.
    One,
}

/// Iterator over the bits of a [`BitsRef`], oldest first.
#[derive(Debug, Clone)]
pub struct BitsIter<'a> {
    view: BitsRef<'a>,
    next: u64,
}

impl Iterator for BitsIter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.next >= self.view.len {
            return None;
        }
        let b = self.view.get(self.next);
        self.next += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.view.len - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for BitsIter<'_> {}

fn mask_tail(words: &mut [u64], len: u64) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_bools(seed: u64, len: usize, m: u64, lt: u64) -> Vec<bool> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % m < lt
            })
            .collect()
    }

    #[test]
    fn from_bools_roundtrips_every_boundary_length() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 1000] {
            let bools = lcg_bools(len as u64 + 1, len, 3, 1);
            let bits = Bits::from_bools(&bools);
            assert_eq!(bits.len(), len as u64);
            assert_eq!(bits.words().len(), word_count(len as u64));
            assert_eq!(bits.to_bools(), bools, "len={len}");
            assert_eq!(
                bits.count_ones(),
                bools.iter().filter(|&&b| b).count() as u64
            );
        }
    }

    #[test]
    fn push_matches_from_bools() {
        let bools = lcg_bools(7, 321, 2, 1);
        let mut pushed = Bits::new();
        for &b in &bools {
            pushed.push(b);
        }
        assert_eq!(pushed, Bits::from_bools(&bools));
        let collected: Bits = bools.iter().copied().collect();
        assert_eq!(collected, pushed);
    }

    #[test]
    fn from_words_masks_and_resizes() {
        // Dirty tail bits beyond len must be cleared.
        let b = Bits::from_words(vec![u64::MAX], 3);
        assert_eq!(b.words(), &[0b111]);
        assert_eq!(b.count_ones(), 3);
        // Surplus and missing words are normalized.
        assert_eq!(Bits::from_words(vec![1, 2, 3], 64).words(), &[1]);
        assert_eq!(Bits::from_words(vec![], 65).words(), &[0, 0]);
        // Equality is structural, so normalization makes these equal.
        assert_eq!(
            Bits::from_words(vec![u64::MAX], 3),
            Bits::from_bools(&[true, true, true])
        );
    }

    #[test]
    fn le_bytes_roundtrip_and_reject_bad_length() {
        for len in [0u64, 1, 63, 64, 65, 130] {
            let bools = lcg_bools(len + 9, len as usize, 2, 1);
            let bits = Bits::from_bools(&bools);
            let mut bytes = Vec::new();
            bits.write_le_bytes(&mut bytes);
            assert_eq!(bytes.len(), byte_count(len));
            assert_eq!(Bits::from_le_bytes(&bytes, len).unwrap(), bits, "len={len}");
            if len > 0 {
                assert!(Bits::from_le_bytes(&bytes[..bytes.len() - 1], len).is_none());
                assert!(Bits::from_le_bytes(&bytes, len + 64).is_none());
            }
        }
        // A dirty serialized tail is masked on decode.
        let b = Bits::from_le_bytes(&[0xFF; 8], 3).unwrap();
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn byte_stream_is_lsb_first() {
        // Bit i of the stream is bit i%8 of byte i/8.
        let mut bools = vec![false; 16];
        bools[0] = true; // byte 0, bit 0 -> 0x01
        bools[9] = true; // byte 1, bit 1 -> 0x02
        let mut bytes = Vec::new();
        Bits::from_bools(&bools).write_le_bytes(&mut bytes);
        assert_eq!(&bytes[..2], &[0x01, 0x02]);
    }

    #[test]
    fn chunks_mask_the_final_word() {
        let bools = vec![true; 70];
        let bits = Bits::from_bools(&bools);
        let chunks: Vec<(u64, u32)> = bits.as_ref().chunks().collect();
        assert_eq!(chunks, vec![(u64::MAX, 64), (0b11_1111, 6)]);
        // A dirty borrowed tail is invisible through chunks()/iter().
        let dirty = [u64::MAX];
        let view = BitsRef::new(&dirty, 3);
        assert_eq!(view.count_ones(), 3);
        assert_eq!(view.iter().collect::<Vec<bool>>(), vec![true; 3]);
        assert_eq!(view.to_owned_bits().words(), &[0b111]);
    }

    #[test]
    fn scan_runs_reconstructs_the_stream() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 500] {
            for (m, lt) in [(2, 1), (100, 1), (10, 9)] {
                let bools = lcg_bools(len as u64 * 31 + m, len, m, lt);
                let bits = Bits::from_bools(&bools);
                let mut rebuilt = Vec::new();
                bits.as_ref().scan_runs(|run| match run {
                    Run::Zeros(n) => {
                        assert!(n > 0);
                        rebuilt.extend(std::iter::repeat_n(false, n as usize));
                    }
                    Run::One => rebuilt.push(true),
                });
                assert_eq!(rebuilt, bools, "len={len} density={lt}/{m}");
            }
        }
        // An all-zero buffer is a single merged run.
        let mut runs = Vec::new();
        Bits::from_bools(&[false; 130])
            .as_ref()
            .scan_runs(|r| runs.push(r));
        assert_eq!(runs, vec![Run::Zeros(130)]);
    }

    #[test]
    fn conversions_compile_and_agree() {
        let slice: &[bool] = &[true, false];
        let a: Bits = slice.into();
        let b: Bits = vec![true, false].into();
        let c: Bits = [true, false].into();
        let d: Bits = (&[true, false]).into();
        assert!(a == b && b == c && c == d);
        let r: BitsRef<'_> = (&a).into();
        assert_eq!(r, b.as_ref());
    }

    #[test]
    fn empty_views_behave() {
        let b = Bits::new();
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter().count(), 0);
        assert_eq!(b.as_ref().chunks().count(), 0);
        let mut bytes = Vec::new();
        b.write_le_bytes(&mut bytes);
        assert!(bytes.is_empty());
    }
}
