//! Pointer-free intrusive storage for wave entries.
//!
//! A wave stores a bounded number of entries threaded onto (a) one global
//! doubly linked list ordered by position (the paper's list `L`) and (b)
//! one fixed-length FIFO per level (the paper's "level queues",
//! implemented as circular buffers). Because the total number of entries
//! is fixed at construction, all of this lives in preallocated slabs and
//! the links are `u32` offsets, matching the paper's observation that
//! "the linked list pointers are offsets into this block and not
//! full-sized pointers" — and keeping the streaming hot path free of heap
//! allocation.

/// Sentinel index meaning "no node".
pub const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<T> {
    payload: T,
    prev: u32,
    next: u32,
}

/// A doubly linked list over a preallocated slab, ordered by insertion
/// (which for waves equals position order).
#[derive(Debug, Clone)]
pub struct Chain<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T> Chain<T> {
    /// A chain able to hold exactly `cap` entries without reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap < NIL as usize, "capacity too large for u32 links");
        Chain {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of heap memory held by the slab and free list.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// Oldest entry (list head), if any.
    #[inline]
    pub fn head(&self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    /// Newest entry (list tail), if any.
    #[inline]
    pub fn tail(&self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Successor (next-newer) of `id`.
    #[inline]
    pub fn next(&self, id: u32) -> Option<u32> {
        let n = self.slots[id as usize].next;
        (n != NIL).then_some(n)
    }

    /// Predecessor (next-older) of `id`.
    #[inline]
    pub fn prev(&self, id: u32) -> Option<u32> {
        let p = self.slots[id as usize].prev;
        (p != NIL).then_some(p)
    }

    /// Borrow the payload of a live node.
    #[inline]
    pub fn get(&self, id: u32) -> &T {
        &self.slots[id as usize].payload
    }

    /// Mutably borrow the payload of a live node.
    #[inline]
    pub fn get_mut(&mut self, id: u32) -> &mut T {
        &mut self.slots[id as usize].payload
    }

    /// Append a new entry at the tail (newest end). Never allocates once
    /// the slab has reached its capacity plateau.
    pub fn push_back(&mut self, payload: T) -> u32 {
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize].payload = payload;
                id
            }
            None => {
                let id = self.slots.len() as u32;
                self.slots.push(Slot {
                    payload,
                    prev: NIL,
                    next: NIL,
                });
                id
            }
        };
        let s = &mut self.slots[id as usize];
        s.prev = self.tail;
        s.next = NIL;
        if self.tail != NIL {
            self.slots[self.tail as usize].next = id;
        } else {
            self.head = id;
        }
        self.tail = id;
        self.len += 1;
        id
    }

    /// Splice a node out of the list and recycle its slot.
    pub fn remove(&mut self, id: u32) {
        let (prev, next) = {
            let s = &self.slots[id as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.free.push(id);
        self.len -= 1;
    }

    /// Iterate payloads oldest-to-newest.
    pub fn iter(&self) -> ChainIter<'_, T> {
        ChainIter {
            chain: self,
            cur: self.head,
        }
    }
}

/// Oldest-to-newest iterator over a [`Chain`].
pub struct ChainIter<'a, T> {
    chain: &'a Chain<T>,
    cur: u32,
}

impl<'a, T> Iterator for ChainIter<'a, T> {
    type Item = (u32, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let id = self.cur;
        self.cur = self.chain.slots[id as usize].next;
        Some((id, &self.chain.slots[id as usize].payload))
    }
}

/// A fixed-capacity FIFO of node ids (one per wave level), as a circular
/// buffer. The *front* is the oldest id, matching the paper's "tail of
/// the queue" that gets discarded.
#[derive(Debug, Clone)]
pub struct Fifo {
    slots: Box<[u32]>,
    start: usize,
    len: usize,
}

impl Fifo {
    /// A FIFO holding at most `cap >= 1` ids.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        Fifo {
            slots: vec![NIL; cap].into_boxed_slice(),
            start: 0,
            len: 0,
        }
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Bytes of heap memory held by the ring.
    pub fn heap_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
    }

    /// Oldest id, if any.
    #[inline]
    pub fn front(&self) -> Option<u32> {
        (self.len > 0).then(|| self.slots[self.start])
    }

    /// Append the newest id. The queue must not be full (the caller pops
    /// first, mirroring step 3(b) of Figure 4).
    #[inline]
    pub fn push_back(&mut self, id: u32) {
        assert!(!self.is_full(), "level queue overflow");
        let i = (self.start + self.len) % self.slots.len();
        self.slots[i] = id;
        self.len += 1;
    }

    /// Remove and return the oldest id.
    #[inline]
    pub fn pop_front(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let id = self.slots[self.start];
        self.start = (self.start + 1) % self.slots.len();
        self.len -= 1;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_push_and_iterate() {
        let mut c = Chain::with_capacity(4);
        let a = c.push_back(10);
        let b = c.push_back(20);
        let d = c.push_back(30);
        assert_eq!(c.len(), 3);
        let items: Vec<_> = c.iter().map(|(_, &v)| v).collect();
        assert_eq!(items, vec![10, 20, 30]);
        assert_eq!(c.head(), Some(a));
        assert_eq!(c.tail(), Some(d));
        assert_eq!(c.next(a), Some(b));
        assert_eq!(c.prev(d), Some(b));
    }

    #[test]
    fn chain_remove_middle() {
        let mut c = Chain::with_capacity(4);
        let a = c.push_back(1);
        let b = c.push_back(2);
        let d = c.push_back(3);
        c.remove(b);
        assert_eq!(c.iter().map(|(_, &v)| v).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(c.next(a), Some(d));
        assert_eq!(c.prev(d), Some(a));
    }

    #[test]
    fn chain_remove_head_and_tail() {
        let mut c = Chain::with_capacity(4);
        let a = c.push_back(1);
        let b = c.push_back(2);
        c.remove(a);
        assert_eq!(c.head(), Some(b));
        c.remove(b);
        assert!(c.is_empty());
        assert_eq!(c.head(), None);
        assert_eq!(c.tail(), None);
    }

    #[test]
    fn chain_recycles_slots_without_growth() {
        let mut c = Chain::with_capacity(2);
        let a = c.push_back(1);
        let _b = c.push_back(2);
        let cap_before = c.slots.capacity();
        for i in 0..1000 {
            let h = c.head().unwrap();
            c.remove(h);
            c.push_back(i);
        }
        assert_eq!(c.slots.capacity(), cap_before, "slab must not grow");
        let _ = a;
    }

    #[test]
    fn fifo_ordering_and_wraparound() {
        let mut q = Fifo::new(3);
        q.push_back(1);
        q.push_back(2);
        q.push_back(3);
        assert!(q.is_full());
        assert_eq!(q.pop_front(), Some(1));
        q.push_back(4);
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.pop_front(), Some(3));
        assert_eq!(q.pop_front(), Some(4));
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn fifo_front_peeks_oldest() {
        let mut q = Fifo::new(2);
        assert_eq!(q.front(), None);
        q.push_back(7);
        q.push_back(8);
        assert_eq!(q.front(), Some(7));
    }

    #[test]
    #[should_panic(expected = "level queue overflow")]
    fn fifo_overflow_panics() {
        let mut q = Fifo::new(1);
        q.push_back(1);
        q.push_back(2);
    }

    /// Model-based test: random interleavings of push_back / remove-head
    /// / remove-tail / remove-random against a VecDeque of payloads.
    #[test]
    fn chain_matches_vecdeque_model() {
        use std::collections::VecDeque;
        let mut chain: Chain<u64> = Chain::with_capacity(64);
        let mut model: VecDeque<(u32, u64)> = VecDeque::new(); // (id, payload)
        let mut x = 9u64;
        let mut next_val = 0u64;
        for step in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match (x >> 33) % 4 {
                0 | 1 => {
                    next_val += 1;
                    let id = chain.push_back(next_val);
                    model.push_back((id, next_val));
                }
                2 => {
                    if let Some((id, _)) = model.pop_front() {
                        chain.remove(id);
                    }
                }
                _ => {
                    if !model.is_empty() {
                        let idx = ((x >> 20) % model.len() as u64) as usize;
                        let (id, _) = model.remove(idx).expect("in range");
                        chain.remove(id);
                    }
                }
            }
            assert_eq!(chain.len(), model.len(), "step {step}");
            assert_eq!(
                chain.head(),
                model.front().map(|&(id, _)| id),
                "step {step}"
            );
            assert_eq!(chain.tail(), model.back().map(|&(id, _)| id));
            if step % 503 == 0 {
                let got: Vec<u64> = chain.iter().map(|(_, &v)| v).collect();
                let want: Vec<u64> = model.iter().map(|&(_, v)| v).collect();
                assert_eq!(got, want, "step {step}");
            }
        }
    }

    /// Model-based test for the fixed-capacity FIFO.
    #[test]
    fn fifo_matches_vecdeque_model() {
        use std::collections::VecDeque;
        let mut fifo = Fifo::new(7);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut x = 5u64;
        for step in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (x >> 33).is_multiple_of(2) && !fifo.is_full() {
                let v = (x >> 10) as u32;
                fifo.push_back(v);
                model.push_back(v);
            } else {
                assert_eq!(fifo.pop_front(), model.pop_front(), "step {step}");
            }
            assert_eq!(fifo.len(), model.len());
            assert_eq!(fifo.front(), model.front().copied());
            assert_eq!(fifo.is_empty(), model.is_empty());
        }
    }
}
