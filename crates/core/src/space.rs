//! Space accounting helpers.
//!
//! The paper's space bounds count *bits* under a compact encoding:
//! positions stored modulo `N'` and delta-coded between consecutive
//! entries (Section 3.2, last optimization). The runtime structures in
//! this crate use machine words, so each synopsis reports both its
//! resident bytes and the bit count its current contents would occupy
//! under the paper's encoding; this module provides the shared pieces.

/// Bits of an Elias-gamma code for `x >= 1`: `2*floor(log2 x) + 1`.
///
/// Gamma coding is a concrete self-delimiting code achieving the
/// `O(log delta)` bits per delta the paper's argument needs.
#[inline]
pub fn elias_gamma_bits(x: u64) -> u64 {
    debug_assert!(x >= 1);
    2 * (63 - x.leading_zeros() as u64) + 1
}

/// Total bits to delta-code a strictly increasing sequence starting from
/// an implicit 0 (gaps of 0 are coded as 1 via the +1 shift).
pub fn delta_coded_bits<I: IntoIterator<Item = u64>>(sorted: I) -> u64 {
    let mut prev = 0u64;
    let mut bits = 0u64;
    for x in sorted {
        debug_assert!(x >= prev);
        bits += elias_gamma_bits(x - prev + 1);
        prev = x;
    }
    bits
}

/// The paper's deterministic-wave space bound, in bits:
/// `O((1/eps) * log^2(eps * N))`. Returned without the hidden constant
/// (callers compare shapes, not absolutes).
pub fn det_wave_bound_bits(eps: f64, n: u64) -> f64 {
    let l = (eps * n as f64).max(2.0).log2();
    (1.0 / eps) * l * l
}

/// The Datar et al. lower bound (Theorem 2): any algorithm with relative
/// error `< 1/k` needs at least `(k/16) * log^2(N/k)` bits, for integer
/// `k <= 4*sqrt(N)`.
pub fn datar_lower_bound_bits(k: u64, n: u64) -> f64 {
    let l = ((n as f64) / (k as f64)).max(2.0).log2();
    (k as f64 / 16.0) * l * l
}

/// The randomized-wave space bound per party, in bits:
/// `O(log(1/delta) * log^2(N) / eps^2)`.
pub fn rand_wave_bound_bits(eps: f64, delta: f64, n: u64) -> f64 {
    let l = (n as f64).max(2.0).log2();
    (1.0 / delta).ln() * l * l / (eps * eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_bits_known_values() {
        assert_eq!(elias_gamma_bits(1), 1);
        assert_eq!(elias_gamma_bits(2), 3);
        assert_eq!(elias_gamma_bits(3), 3);
        assert_eq!(elias_gamma_bits(4), 5);
        assert_eq!(elias_gamma_bits(255), 15);
        assert_eq!(elias_gamma_bits(256), 17);
    }

    #[test]
    fn delta_coding_dense_vs_sparse() {
        // Dense runs code cheaply; sparse runs cost log of the gap.
        let dense: Vec<u64> = (1..=100).collect();
        let sparse: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert!(delta_coded_bits(dense) < delta_coded_bits(sparse));
    }

    #[test]
    fn delta_coding_handles_duplicates() {
        // Nondecreasing with repeats (timestamp streams).
        assert_eq!(delta_coded_bits([5, 5, 5]), elias_gamma_bits(6) + 2);
    }

    #[test]
    fn bounds_monotone_in_parameters() {
        assert!(det_wave_bound_bits(0.01, 1 << 16) > det_wave_bound_bits(0.1, 1 << 16));
        assert!(det_wave_bound_bits(0.1, 1 << 20) > det_wave_bound_bits(0.1, 1 << 10));
        assert!(datar_lower_bound_bits(64, 1 << 16) > datar_lower_bound_bits(8, 1 << 16));
        assert!(rand_wave_bound_bits(0.1, 0.01, 1 << 16) > rand_wave_bound_bits(0.1, 0.1, 1 << 16));
    }
}
