//! Common interfaces implemented by every sliding-window synopsis, so
//! experiments, benchmarks, and the serving engine can be written once
//! and run over waves, exponential histograms, and exact baselines
//! alike.
//!
//! The hierarchy is two-level: [`Synopsis`] carries everything common
//! to all synopses (identity, window bound, space accounting) and the
//! two item-type traits [`BitSynopsis`] / [`SumSynopsis`] add the
//! push/query surface. All three are object-safe, so heterogeneous
//! collections (`Vec<Box<dyn BitSynopsis>>`) work.

use crate::bits::BitsRef;
use crate::codec::CodecError;
use crate::error::WaveError;
use crate::estimate::{Estimate, SpaceReport};

/// Everything common to a sliding-window synopsis, independent of the
/// item type it ingests.
pub trait Synopsis {
    /// A short stable identifier ("det-wave", "eh", "exact", ...).
    fn name(&self) -> &'static str;

    /// The maximum queryable window `N`.
    fn max_window(&self) -> u64;

    /// Space accounting.
    fn space_report(&self) -> SpaceReport;
}

/// A synopsis for counting 1's in a sliding window of a bit stream.
pub trait BitSynopsis: Synopsis {
    /// Process the next stream bit.
    fn push_bit(&mut self, b: bool);

    /// Process a batch of stream bits, oldest first. Must be
    /// observationally identical to pushing each bit individually;
    /// implementations may override it to amortize per-item work (the
    /// deterministic wave collapses runs of 0s into one expiry pass).
    fn push_bits(&mut self, bits: &[bool]) {
        for &b in bits {
            self.push_bit(b);
        }
    }

    /// Process a packed batch of stream bits, oldest first (see
    /// [`crate::bits`]). Must be observationally identical to pushing
    /// each bit individually. The default unpacks one bit at a time;
    /// the wave and histogram synopses override it to locate 1-bits
    /// with `trailing_zeros` and batch-advance their positions so a
    /// whole word of 0s costs O(1), not O(64).
    fn push_words(&mut self, bits: BitsRef<'_>) {
        for b in bits.iter() {
            self.push_bit(b);
        }
    }

    /// Estimate the number of 1's among the last `n` bits.
    fn query_window(&self, n: u64) -> Result<Estimate, WaveError>;
}

/// A synopsis with a self-describing byte encoding, suitable for wire
/// transfer and durable checkpoints.
///
/// Implementations forward to the concrete `encode()`/`decode()` pairs
/// (which carry their own parameters — `max_window`, `eps`, counters —
/// in the byte stream), so the bytes written by a checkpoint are exactly
/// the bytes the wire protocol already round-trips. The contract is
/// lossless with respect to queries: for every window `n`,
/// `decode(encode(s)).query_window(n) == s.query_window(n)`.
///
/// Unlike [`BitSynopsis`], this trait is *not* object-safe (decoding
/// constructs `Self`); the serving engine requires it of its synopsis
/// type only when persistence is enabled at the type level.
pub trait SynopsisCodec: Sized {
    /// Serialize the complete synopsis state.
    fn encode_synopsis(&self) -> Vec<u8>;

    /// Reconstruct a synopsis from [`SynopsisCodec::encode_synopsis`]
    /// bytes. Arbitrary input must never panic: corrupt or truncated
    /// bytes yield a [`CodecError`].
    fn decode_synopsis(bytes: &[u8]) -> Result<Self, CodecError>;
}

impl SynopsisCodec for crate::det_wave::DetWave {
    fn encode_synopsis(&self) -> Vec<u8> {
        self.encode()
    }
    fn decode_synopsis(bytes: &[u8]) -> Result<Self, CodecError> {
        crate::det_wave::DetWave::decode(bytes)
    }
}

impl SynopsisCodec for crate::sum_wave::SumWave {
    fn encode_synopsis(&self) -> Vec<u8> {
        self.encode()
    }
    fn decode_synopsis(bytes: &[u8]) -> Result<Self, CodecError> {
        crate::sum_wave::SumWave::decode(bytes)
    }
}

/// A synopsis for the sum of bounded integers in a sliding window.
pub trait SumSynopsis: Synopsis {
    /// Process the next item (an integer in `[0..R]`).
    fn push_value(&mut self, v: u64) -> Result<(), WaveError>;

    /// Estimate the sum of the last `n` items.
    fn query_window(&self, n: u64) -> Result<Estimate, WaveError>;
}

impl Synopsis for crate::det_wave::DetWave {
    fn name(&self) -> &'static str {
        "det-wave"
    }
    fn max_window(&self) -> u64 {
        crate::det_wave::DetWave::max_window(self)
    }
    fn space_report(&self) -> SpaceReport {
        crate::det_wave::DetWave::space_report(self)
    }
}

impl BitSynopsis for crate::det_wave::DetWave {
    fn push_bit(&mut self, b: bool) {
        crate::det_wave::DetWave::push_bit(self, b)
    }
    fn push_bits(&mut self, bits: &[bool]) {
        crate::det_wave::DetWave::push_bits(self, bits)
    }
    fn push_words(&mut self, bits: BitsRef<'_>) {
        crate::det_wave::DetWave::push_words(self, bits)
    }
    fn query_window(&self, n: u64) -> Result<Estimate, WaveError> {
        self.query(n)
    }
}

impl Synopsis for crate::basic_wave::BasicWave {
    fn name(&self) -> &'static str {
        "basic-wave"
    }
    fn max_window(&self) -> u64 {
        self.max_window()
    }
    fn space_report(&self) -> SpaceReport {
        crate::basic_wave::BasicWave::space_report(self)
    }
}

impl BitSynopsis for crate::basic_wave::BasicWave {
    fn push_bit(&mut self, b: bool) {
        crate::basic_wave::BasicWave::push_bit(self, b)
    }
    fn push_words(&mut self, bits: BitsRef<'_>) {
        crate::basic_wave::BasicWave::push_words(self, bits)
    }
    fn query_window(&self, n: u64) -> Result<Estimate, WaveError> {
        self.query(n)
    }
}

impl Synopsis for crate::exact::ExactCount {
    fn name(&self) -> &'static str {
        "exact"
    }
    fn max_window(&self) -> u64 {
        crate::exact::ExactCount::max_window(self)
    }
    fn space_report(&self) -> SpaceReport {
        SpaceReport {
            resident_bytes: std::mem::size_of_val(self),
            synopsis_bits: 0,
            entries: 0,
        }
    }
}

impl BitSynopsis for crate::exact::ExactCount {
    fn push_bit(&mut self, b: bool) {
        crate::exact::ExactCount::push_bit(self, b)
    }
    fn push_words(&mut self, bits: BitsRef<'_>) {
        crate::exact::ExactCount::push_words(self, bits)
    }
    fn query_window(&self, n: u64) -> Result<Estimate, WaveError> {
        if n > Synopsis::max_window(self) {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: Synopsis::max_window(self),
            });
        }
        Ok(Estimate::exact(self.query(n)))
    }
}

impl Synopsis for crate::sum_wave::SumWave {
    fn name(&self) -> &'static str {
        "sum-wave"
    }
    fn max_window(&self) -> u64 {
        self.max_window()
    }
    fn space_report(&self) -> SpaceReport {
        self.space_report()
    }
}

impl SumSynopsis for crate::sum_wave::SumWave {
    fn push_value(&mut self, v: u64) -> Result<(), WaveError> {
        crate::sum_wave::SumWave::push_value(self, v)
    }
    fn query_window(&self, n: u64) -> Result<Estimate, WaveError> {
        self.query(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Bits;
    use crate::det_wave::DetWave;

    #[test]
    fn exact_count_window_bound_is_live() {
        let mut s = crate::exact::ExactCount::new(32);
        for i in 0..100 {
            BitSynopsis::push_bit(&mut s, i % 2 == 0);
        }
        assert_eq!(Synopsis::max_window(&s), 32);
        match s.query_window(33) {
            Err(WaveError::WindowTooLarge { requested, max }) => {
                assert_eq!((requested, max), (33, 32));
            }
            other => panic!("expected WindowTooLarge, got {other:?}"),
        }
        assert_eq!(s.query_window(32).unwrap(), Estimate::exact(16));
    }

    /// A deliberately override-free impl, so the trait's default
    /// `push_words` body itself stays under test.
    struct Recorder(Vec<bool>);

    impl Synopsis for Recorder {
        fn name(&self) -> &'static str {
            "recorder"
        }
        fn max_window(&self) -> u64 {
            u64::MAX
        }
        fn space_report(&self) -> SpaceReport {
            SpaceReport {
                resident_bytes: 0,
                synopsis_bits: 0,
                entries: 0,
            }
        }
    }

    impl BitSynopsis for Recorder {
        fn push_bit(&mut self, b: bool) {
            self.0.push(b);
        }
        fn query_window(&self, _n: u64) -> Result<Estimate, WaveError> {
            Ok(Estimate::exact(self.0.iter().filter(|&&b| b).count() as u64))
        }
    }

    #[test]
    fn default_push_words_unpacks_in_stream_order() {
        let bools: Vec<bool> = (0..131).map(|i| i % 3 == 0).collect();
        let packed = Bits::from_bools(&bools);
        let mut r = Recorder(Vec::new());
        r.push_words(packed.as_ref());
        assert_eq!(r.0, bools);
    }

    #[test]
    fn trait_objects_work() {
        let mut synopses: Vec<Box<dyn BitSynopsis>> = vec![
            Box::new(DetWave::new(32, 0.25).unwrap()),
            Box::new(crate::basic_wave::BasicWave::new(32, 0.25).unwrap()),
        ];
        for s in synopses.iter_mut() {
            for i in 0..100 {
                s.push_bit(i % 3 == 0);
            }
            // Ones among bits 68..=99 (i % 3 == 0): 69, 72, ..., 99 -> 11.
            let e = s.query_window(32).unwrap();
            assert!(e.brackets(11));
            // Supertrait methods are reachable through the object.
            assert!(!s.name().is_empty());
            assert_eq!(s.max_window(), 32);
        }
    }

    #[test]
    fn synopsis_codec_roundtrips_queries() {
        let mut w = DetWave::new(64, 0.25).unwrap();
        for i in 0..500u64 {
            w.push_bit(i % 3 == 0);
        }
        let back = DetWave::decode_synopsis(&w.encode_synopsis()).unwrap();
        for n in [1u64, 17, 64] {
            assert_eq!(w.query(n).unwrap(), back.query(n).unwrap(), "n={n}");
        }
    }

    #[test]
    fn default_push_bits_matches_loop() {
        let bits: Vec<bool> = (0..300).map(|i| i % 5 == 0 || i % 7 == 0).collect();
        let mut one_at_a_time = crate::basic_wave::BasicWave::new(64, 0.25).unwrap();
        let mut batched = crate::basic_wave::BasicWave::new(64, 0.25).unwrap();
        for &b in &bits {
            one_at_a_time.push_bit(b);
        }
        BitSynopsis::push_bits(&mut batched, &bits);
        for n in [1u64, 17, 64] {
            assert_eq!(
                one_at_a_time.query(n).unwrap(),
                batched.query(n).unwrap(),
                "n={n}"
            );
        }
    }
}
