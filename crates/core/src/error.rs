//! Error type for synopsis construction and queries.

use std::fmt;

/// Errors from constructing or querying a wave synopsis, or from the
/// serving engine built on top of them.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm so new layers (like the engine) can add variants without a
/// breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WaveError {
    /// `eps` must satisfy `0 < eps < 1`.
    InvalidEpsilon(f64),
    /// `delta` must satisfy `0 < delta < 1`.
    InvalidDelta(f64),
    /// Maximum window size must be at least 1 (and fit the counters).
    InvalidWindow(u64),
    /// Queried window exceeds the prespecified maximum `N`.
    WindowTooLarge { requested: u64, max: u64 },
    /// Item value exceeds the prespecified bound `R`.
    ValueTooLarge { value: u64, max: u64 },
    /// Positions must be nondecreasing (timestamp wave).
    PositionRegressed { last: u64, got: u64 },
    /// More items fell in one window than the prespecified bound `U`.
    TooManyItemsInWindow { bound: u64 },
    /// Quantile queries require `0 < q <= 1`.
    InvalidQuantile(f64),
    /// A serving-engine shard's ingest queue was full; the caller should
    /// retry, shed load, or switch to the blocking ingest path.
    Backpressure { shard: usize },
    /// The serving engine has never ingested anything for this key.
    UnknownKey { key: u64 },
}

impl fmt::Display for WaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be in (0, 1), got {e}")
            }
            WaveError::InvalidDelta(d) => {
                write!(f, "delta must be in (0, 1), got {d}")
            }
            WaveError::InvalidWindow(n) => {
                write!(f, "window size {n} is invalid")
            }
            WaveError::WindowTooLarge { requested, max } => {
                write!(f, "window {requested} exceeds maximum {max}")
            }
            WaveError::ValueTooLarge { value, max } => {
                write!(f, "value {value} exceeds bound R = {max}")
            }
            WaveError::PositionRegressed { last, got } => {
                write!(f, "position {got} is before last position {last}")
            }
            WaveError::TooManyItemsInWindow { bound } => {
                write!(f, "more than U = {bound} items in one window")
            }
            WaveError::InvalidQuantile(q) => {
                write!(f, "quantile must be in (0, 1], got {q}")
            }
            WaveError::Backpressure { shard } => {
                write!(f, "shard {shard} ingest queue is full (backpressure)")
            }
            WaveError::UnknownKey { key } => {
                write!(f, "no synopsis exists for key {key}")
            }
        }
    }
}

impl std::error::Error for WaveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(WaveError::InvalidEpsilon(2.0).to_string().contains("2"));
        assert!(WaveError::WindowTooLarge {
            requested: 10,
            max: 5
        }
        .to_string()
        .contains("10"));
        let e: Box<dyn std::error::Error> = Box::new(WaveError::InvalidWindow(0));
        assert!(e.to_string().contains("invalid"));
        assert!(WaveError::Backpressure { shard: 3 }
            .to_string()
            .contains("3"));
        assert!(WaveError::UnknownKey { key: 99 }.to_string().contains("99"));
    }
}
