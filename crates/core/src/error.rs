//! Error type for synopsis construction and queries.

use std::fmt;
use std::sync::Arc;

/// Errors from constructing or querying a wave synopsis, from the
/// serving engine built on top of them, or from the networked transport
/// that ships synopses between parties and a referee.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm so new layers (like the engine and the wire protocol) can add
/// variants without a breaking release.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum WaveError {
    /// `eps` must satisfy `0 < eps < 1`.
    InvalidEpsilon(f64),
    /// `delta` must satisfy `0 < delta < 1`.
    InvalidDelta(f64),
    /// Maximum window size must be at least 1 (and fit the counters).
    InvalidWindow(u64),
    /// Queried window exceeds the prespecified maximum `N`.
    WindowTooLarge { requested: u64, max: u64 },
    /// Item value exceeds the prespecified bound `R`.
    ValueTooLarge { value: u64, max: u64 },
    /// Positions must be nondecreasing (timestamp wave).
    PositionRegressed { last: u64, got: u64 },
    /// More items fell in one window than the prespecified bound `U`.
    TooManyItemsInWindow { bound: u64 },
    /// Quantile queries require `0 < q <= 1`.
    InvalidQuantile(f64),
    /// A serving-engine shard's ingest queue was full; the caller should
    /// retry, shed load, or switch to the blocking ingest path.
    Backpressure { shard: usize },
    /// The serving engine has never ingested anything for this key.
    UnknownKey { key: u64 },
    /// An I/O failure in the networked transport. The underlying
    /// [`std::io::Error`] is preserved and reachable through
    /// [`std::error::Error::source`]; it is shared behind an `Arc` so
    /// the error stays `Clone` like every other variant.
    Io(Arc<std::io::Error>),
    /// A networked operation exceeded its configured time budget.
    /// `op` names the operation ("connect", "read", "write", ...).
    Timeout { op: &'static str, millis: u64 },
}

impl WaveError {
    /// Wrap an I/O error, classifying timeouts: `TimedOut` /
    /// `WouldBlock` kinds (what a `TcpStream` read/write returns when
    /// its socket timeout fires) become [`WaveError::Timeout`] so
    /// callers can match on the deadline case without inspecting kinds.
    pub fn from_io(op: &'static str, err: std::io::Error, budget_millis: u64) -> Self {
        match err.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => WaveError::Timeout {
                op,
                millis: budget_millis,
            },
            _ => WaveError::Io(Arc::new(err)),
        }
    }

    /// Wrap an I/O error without timeout classification.
    pub fn io(err: std::io::Error) -> Self {
        WaveError::Io(Arc::new(err))
    }
}

/// Structural equality. Hand-written because `std::io::Error` is not
/// `PartialEq`: two `Io` values compare equal when their
/// [`std::io::ErrorKind`]s match, which is what tests and retry logic
/// actually branch on.
impl PartialEq for WaveError {
    fn eq(&self, other: &Self) -> bool {
        use WaveError::*;
        match (self, other) {
            (InvalidEpsilon(a), InvalidEpsilon(b)) => a == b,
            (InvalidDelta(a), InvalidDelta(b)) => a == b,
            (InvalidWindow(a), InvalidWindow(b)) => a == b,
            (
                WindowTooLarge {
                    requested: a1,
                    max: a2,
                },
                WindowTooLarge {
                    requested: b1,
                    max: b2,
                },
            ) => a1 == b1 && a2 == b2,
            (ValueTooLarge { value: a1, max: a2 }, ValueTooLarge { value: b1, max: b2 }) => {
                a1 == b1 && a2 == b2
            }
            (PositionRegressed { last: a1, got: a2 }, PositionRegressed { last: b1, got: b2 }) => {
                a1 == b1 && a2 == b2
            }
            (TooManyItemsInWindow { bound: a }, TooManyItemsInWindow { bound: b }) => a == b,
            (InvalidQuantile(a), InvalidQuantile(b)) => a == b,
            (Backpressure { shard: a }, Backpressure { shard: b }) => a == b,
            (UnknownKey { key: a }, UnknownKey { key: b }) => a == b,
            (Io(a), Io(b)) => a.kind() == b.kind(),
            (Timeout { op: a1, millis: a2 }, Timeout { op: b1, millis: b2 }) => {
                a1 == b1 && a2 == b2
            }
            _ => false,
        }
    }
}

impl fmt::Display for WaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be in (0, 1), got {e}")
            }
            WaveError::InvalidDelta(d) => {
                write!(f, "delta must be in (0, 1), got {d}")
            }
            WaveError::InvalidWindow(n) => {
                write!(f, "window size {n} is invalid")
            }
            WaveError::WindowTooLarge { requested, max } => {
                write!(f, "window {requested} exceeds maximum {max}")
            }
            WaveError::ValueTooLarge { value, max } => {
                write!(f, "value {value} exceeds bound R = {max}")
            }
            WaveError::PositionRegressed { last, got } => {
                write!(f, "position {got} is before last position {last}")
            }
            WaveError::TooManyItemsInWindow { bound } => {
                write!(f, "more than U = {bound} items in one window")
            }
            WaveError::InvalidQuantile(q) => {
                write!(f, "quantile must be in (0, 1], got {q}")
            }
            WaveError::Backpressure { shard } => {
                write!(f, "shard {shard} ingest queue is full (backpressure)")
            }
            WaveError::UnknownKey { key } => {
                write!(f, "no synopsis exists for key {key}")
            }
            WaveError::Io(e) => {
                write!(f, "i/o error: {e}")
            }
            WaveError::Timeout { op, millis } => {
                write!(f, "{op} timed out after {millis} ms")
            }
        }
    }
}

impl std::error::Error for WaveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WaveError::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;
    use std::io;

    #[test]
    fn display_messages() {
        // Every variant renders its distinguishing data.
        assert!(WaveError::InvalidEpsilon(2.0).to_string().contains("2"));
        assert!(WaveError::InvalidDelta(1.5).to_string().contains("1.5"));
        assert!(WaveError::InvalidWindow(0).to_string().contains("invalid"));
        assert!(WaveError::WindowTooLarge {
            requested: 10,
            max: 5
        }
        .to_string()
        .contains("10"));
        assert!(WaveError::ValueTooLarge { value: 9, max: 4 }
            .to_string()
            .contains("R = 4"));
        assert!(WaveError::PositionRegressed { last: 7, got: 3 }
            .to_string()
            .contains("before"));
        assert!(WaveError::TooManyItemsInWindow { bound: 11 }
            .to_string()
            .contains("U = 11"));
        assert!(WaveError::InvalidQuantile(0.0)
            .to_string()
            .contains("(0, 1]"));
        assert!(WaveError::Backpressure { shard: 3 }
            .to_string()
            .contains("3"));
        assert!(WaveError::UnknownKey { key: 99 }.to_string().contains("99"));
        let io_err = WaveError::io(io::Error::new(io::ErrorKind::ConnectionReset, "peer gone"));
        assert!(io_err.to_string().contains("peer gone"));
        assert!(WaveError::Timeout {
            op: "read",
            millis: 250
        }
        .to_string()
        .contains("read timed out after 250 ms"));
        let e: Box<dyn std::error::Error> = Box::new(WaveError::InvalidWindow(0));
        assert!(e.to_string().contains("invalid"));
    }

    #[test]
    fn io_source_is_preserved() {
        let inner = io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed");
        let err = WaveError::io(inner);
        let src = err.source().expect("Io carries a source");
        assert_eq!(src.to_string(), "pipe closed");
        let io_src = src
            .downcast_ref::<io::Error>()
            .expect("source is io::Error");
        assert_eq!(io_src.kind(), io::ErrorKind::BrokenPipe);
        // Non-Io variants carry no source.
        assert!(WaveError::InvalidWindow(0).source().is_none());
        assert!(WaveError::Timeout {
            op: "connect",
            millis: 1
        }
        .source()
        .is_none());
    }

    #[test]
    fn from_io_classifies_timeouts() {
        let t = WaveError::from_io("read", io::Error::from(io::ErrorKind::TimedOut), 100);
        assert_eq!(
            t,
            WaveError::Timeout {
                op: "read",
                millis: 100
            }
        );
        let t = WaveError::from_io("read", io::Error::from(io::ErrorKind::WouldBlock), 100);
        assert!(matches!(t, WaveError::Timeout { .. }));
        let e = WaveError::from_io(
            "write",
            io::Error::from(io::ErrorKind::ConnectionReset),
            100,
        );
        assert!(matches!(e, WaveError::Io(_)));
    }

    #[test]
    fn equality_ignores_io_payload_but_not_kind() {
        let a = WaveError::io(io::Error::new(io::ErrorKind::ConnectionReset, "a"));
        let b = WaveError::io(io::Error::new(io::ErrorKind::ConnectionReset, "b"));
        let c = WaveError::io(io::Error::new(io::ErrorKind::BrokenPipe, "a"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, WaveError::InvalidWindow(0));
        // Cloning shares the same underlying error.
        assert_eq!(a.clone(), a);
    }
}
