//! Sums over time-based windows with duplicated positions — the
//! combination of Corollary 1 (timestamped streams) and Section 3.3
//! (the sum wave). Items are `(timestamp, value)` pairs with
//! nondecreasing timestamps; the query asks for the sum of the values
//! whose timestamps lie in the last `N` time units.
//!
//! The level rule is the sum wave's (`msb of !total & (total + v)`), the
//! window/expiry logic is the timestamp wave's, and the number of levels
//! is driven by the maximum window *sum* `S = U * R` (at most `U` items
//! per window, each at most `R`), mirroring Corollary 1's use of `U`.

use crate::basic_wave::wave_levels;
use crate::chain::{Chain, Fifo};
use crate::error::WaveError;
use crate::estimate::{Estimate, SpaceReport};
use crate::level::sum_level;
use crate::space::{delta_coded_bits, elias_gamma_bits};
use crate::window::ModRing;

#[derive(Debug, Clone, Copy)]
struct Entry {
    ts: u64,
    v: u64,
    z: u64,
    level: u8,
}

/// Deterministic sum wave over a timestamped stream.
#[derive(Debug, Clone)]
pub struct TimestampSumWave {
    max_window: u64,
    max_value: u64,
    max_items: u64,
    eps: f64,
    num_levels: u32,
    ring: ModRing,
    cur: u64,
    total: u64,
    /// Largest partial sum expired (0 if none).
    z1: u64,
    chain: Chain<Entry>,
    queues: Vec<Fifo>,
}

impl TimestampSumWave {
    /// Build a wave for windows of up to `max_window` time units, at most
    /// `max_items` items per window, values in `[0..max_value]`.
    pub fn new(
        max_window: u64,
        max_items: u64,
        max_value: u64,
        eps: f64,
    ) -> Result<Self, WaveError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        Self::with_k(
            max_window,
            max_items,
            max_value,
            (1.0 / eps).ceil() as u64,
            eps,
        )
    }

    /// Build from `k = ceil(1/eps)` directly (used by decode; the f64
    /// `eps -> k` map is not injective).
    fn with_k(
        max_window: u64,
        max_items: u64,
        max_value: u64,
        k: u64,
        eps: f64,
    ) -> Result<Self, WaveError> {
        if k == 0 || k > 1 << 32 {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        if max_window == 0 || max_items == 0 {
            return Err(WaveError::InvalidWindow(max_window.min(max_items)));
        }
        if max_window > 1 << 62 {
            return Err(WaveError::InvalidWindow(max_window));
        }
        if max_value == 0 {
            return Err(WaveError::ValueTooLarge { value: 0, max: 0 });
        }
        let max_sum = max_items
            .checked_mul(max_value)
            .filter(|&s| s <= 1 << 62)
            .ok_or(WaveError::InvalidWindow(max_items))?;
        let num_levels = wave_levels(max_sum, k);
        let cap = (k + 1) as usize;
        let queues: Vec<Fifo> = (0..num_levels).map(|_| Fifo::new(cap)).collect();
        Ok(TimestampSumWave {
            max_window,
            max_value,
            max_items,
            eps,
            num_levels,
            ring: ModRing::for_window(max_window.max(max_sum)),
            cur: 0,
            total: 0,
            z1: 0,
            chain: Chain::with_capacity(cap * num_levels as usize),
            queues,
        })
    }

    /// Maximum window in time units.
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// The value bound `R`.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// The per-window item bound `U`.
    pub fn max_items(&self) -> u64 {
        self.max_items
    }

    /// The configured error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Latest timestamp observed.
    pub fn current_position(&self) -> u64 {
        self.cur
    }

    /// Running total of all values observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Entries currently stored.
    pub fn entries(&self) -> usize {
        self.chain.len()
    }

    /// Observe `(timestamp, value)`; timestamps nondecreasing.
    pub fn push(&mut self, ts: u64, v: u64) -> Result<(), WaveError> {
        if ts < self.cur {
            return Err(WaveError::PositionRegressed {
                last: self.cur,
                got: ts,
            });
        }
        if v > self.max_value {
            return Err(WaveError::ValueTooLarge {
                value: v,
                max: self.max_value,
            });
        }
        self.cur = ts;
        self.expire();
        if v > 0 {
            let j = sum_level(self.total, v).min(self.num_levels - 1) as usize;
            self.total += v;
            if self.queues[j].is_full() {
                let old = self.queues[j].pop_front().expect("full queue has a front");
                self.chain.remove(old);
            }
            let id = self.chain.push_back(Entry {
                ts,
                v,
                z: self.total,
                level: j as u8,
            });
            self.queues[j].push_back(id);
        }
        Ok(())
    }

    /// Advance the clock without an item.
    pub fn advance_to(&mut self, ts: u64) -> Result<(), WaveError> {
        if ts < self.cur {
            return Err(WaveError::PositionRegressed {
                last: self.cur,
                got: ts,
            });
        }
        self.cur = ts;
        self.expire();
        Ok(())
    }

    fn expire(&mut self) {
        while let Some(h) = self.chain.head() {
            let e = *self.chain.get(h);
            if e.ts + self.max_window <= self.cur {
                self.z1 = e.z;
                let popped = self.queues[e.level as usize].pop_front();
                debug_assert_eq!(popped, Some(h));
                self.chain.remove(h);
            } else {
                break;
            }
        }
    }

    /// Estimate the sum of values with timestamps in the last `n <= N`
    /// time units, `[cur - n + 1, cur]`.
    pub fn query(&self, n: u64) -> Result<Estimate, WaveError> {
        if n > self.max_window {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_window,
            });
        }
        if n > self.cur || self.cur == 0 {
            return Ok(Estimate::exact(self.total));
        }
        let s = self.cur - n + 1;
        let mut z1 = self.z1;
        let mut first_in: Option<Entry> = None;
        for (_, e) in self.chain.iter() {
            if e.ts < s {
                z1 = e.z;
            } else {
                first_in = Some(*e);
                break;
            }
        }
        let Some(e) = first_in else {
            return Ok(Estimate::exact(0));
        };
        // Duplicated timestamps: never claim boundary exactness from
        // ts == s alone (cf. TimestampWave); the midpoint interval is
        // always sound and collapses to exact when it is a point.
        Ok(crate::sum_wave::sum_estimate(self.total, z1, e.v, e.z))
    }

    /// Serialize into the compact bit encoding.
    pub fn encode(&self) -> Vec<u8> {
        use crate::codec::{write_deltas, BitWriter};
        let mut w = BitWriter::new();
        w.write_gamma(self.max_window);
        w.write_gamma(self.max_items);
        w.write_gamma(self.max_value);
        w.write_gamma((1.0 / self.eps).ceil() as u64);
        w.write_gamma0(self.cur);
        w.write_gamma0(self.total);
        w.write_gamma0(self.z1);
        w.write_gamma0(self.chain.len() as u64);
        let positions: Vec<u64> = self.chain.iter().map(|(_, e)| e.ts).collect();
        let sums: Vec<u64> = self.chain.iter().map(|(_, e)| e.z).collect();
        write_deltas(&mut w, &positions);
        write_deltas(&mut w, &sums);
        for (_, e) in self.chain.iter() {
            w.write_gamma(e.v);
            w.write_gamma0(e.level as u64);
        }
        w.finish()
    }

    /// Reconstruct a synopsis from [`TimestampSumWave::encode`] output.
    pub fn decode(bytes: &[u8]) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::{read_deltas, BitReader, CodecError};
        let mut r = BitReader::new(bytes);
        let max_window = r.read_gamma()?;
        let max_items = r.read_gamma()?;
        let max_value = r.read_gamma()?;
        let k = r.read_gamma()?;
        if k == 0 || k > 1 << 32 {
            return Err(CodecError::Corrupt("bad k"));
        }
        let mut wave =
            TimestampSumWave::with_k(max_window, max_items, max_value, k, 1.0 / k as f64)?;
        wave.cur = r.read_gamma0()?;
        wave.total = r.read_gamma0()?;
        wave.z1 = r.read_gamma0()?;
        if wave.cur > 1 << 62 || wave.total > 1 << 62 || wave.z1 > wave.total {
            return Err(CodecError::Corrupt("counters inconsistent"));
        }
        let count = r.read_gamma0()? as usize;
        let positions = read_deltas(&mut r, count)?;
        let sums = read_deltas(&mut r, count)?;
        let mut prev_z = 0u64;
        for i in 0..count {
            let v = r.read_gamma()?;
            let level = r.read_gamma0()?;
            if level >= wave.num_levels as u64 {
                return Err(CodecError::Corrupt("level out of range"));
            }
            let (ts, z) = (positions[i], sums[i]);
            if ts > wave.cur || z > wave.total || v > max_value || v > z {
                return Err(CodecError::Corrupt("entry beyond counters"));
            }
            if ts + max_window <= wave.cur || z - v < wave.z1 {
                return Err(CodecError::Corrupt("entry already expired"));
            }
            if i > 0 && z <= prev_z {
                return Err(CodecError::Corrupt("sums not increasing"));
            }
            prev_z = z;
            if wave.queues[level as usize].is_full() {
                return Err(CodecError::Corrupt("level queue overflow"));
            }
            let id = wave.chain.push_back(Entry {
                ts,
                v,
                z,
                level: level as u8,
            });
            wave.queues[level as usize].push_back(id);
        }
        Ok(wave)
    }

    /// Space accounting (see [`SpaceReport`]).
    pub fn space_report(&self) -> SpaceReport {
        let resident_bytes = std::mem::size_of::<Self>()
            + self.chain.heap_bytes()
            + self.queues.iter().map(Fifo::heap_bytes).sum::<usize>();
        let counter_bits = self.ring.counter_bits() as u64;
        let positions = self.chain.iter().map(|(_, e)| e.ts);
        let sums = self.chain.iter().map(|(_, e)| e.z);
        let value_bits: u64 = self
            .chain
            .iter()
            .map(|(_, e)| elias_gamma_bits(e.v + 1))
            .sum();
        SpaceReport {
            resident_bytes,
            synopsis_bits: 3 * counter_bits
                + delta_coded_bits(positions)
                + delta_coded_bits(sums)
                + value_bits,
            entries: self.chain.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    struct Oracle {
        max_window: u64,
        cur: u64,
        items: VecDeque<(u64, u64)>,
    }

    impl Oracle {
        fn new(max_window: u64) -> Self {
            Oracle {
                max_window,
                cur: 0,
                items: VecDeque::new(),
            }
        }
        fn push(&mut self, ts: u64, v: u64) {
            self.cur = ts;
            self.items.push_back((ts, v));
            while self
                .items
                .front()
                .is_some_and(|&(t, _)| t + self.max_window <= self.cur)
            {
                self.items.pop_front();
            }
        }
        fn query(&self, n: u64) -> u64 {
            let s = if n > self.cur { 0 } else { self.cur - n + 1 };
            self.items
                .iter()
                .filter(|&&(t, _)| t >= s)
                .map(|&(_, v)| v)
                .sum()
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut w = TimestampSumWave::new(10, 100, 50, 0.25).unwrap();
        w.push(5, 10).unwrap();
        assert!(matches!(
            w.push(4, 1),
            Err(WaveError::PositionRegressed { .. })
        ));
        assert!(matches!(
            w.push(6, 51),
            Err(WaveError::ValueTooLarge { .. })
        ));
        assert!(TimestampSumWave::new(0, 1, 1, 0.5).is_err());
        assert!(TimestampSumWave::new(1, 1, 1, 1.5).is_err());
    }

    #[test]
    fn duplicate_timestamps_summed() {
        let mut w = TimestampSumWave::new(10, 100, 50, 0.25).unwrap();
        for _ in 0..5 {
            w.push(3, 10).unwrap();
        }
        assert!(w.query(10).unwrap().brackets(50));
    }

    #[test]
    fn roundtrip_survives_non_injective_eps_to_k() {
        let mut w = TimestampSumWave::new(100, 50, 1, 1.0 / 48.5).unwrap();
        for t in 1..=500u64 {
            w.push(t, t % 2).unwrap();
        }
        let w2 = TimestampSumWave::decode(&w.encode()).expect("valid encode must decode");
        assert_eq!(w.query(100).unwrap(), w2.query(100).unwrap());
    }

    #[test]
    fn gaps_expire() {
        let mut w = TimestampSumWave::new(10, 100, 50, 0.25).unwrap();
        w.push(1, 50).unwrap();
        w.push(2, 50).unwrap();
        w.advance_to(1_000).unwrap();
        assert_eq!(w.query(10).unwrap(), Estimate::exact(0));
        assert_eq!(w.entries(), 0);
    }

    #[test]
    fn error_bound_random_timestamped_values() {
        let eps = 0.2;
        let (n, u, r) = (128u64, 2_048u64, 63u64);
        let mut w = TimestampSumWave::new(n, u, r, eps).unwrap();
        let mut oracle = Oracle::new(n);
        let mut x = 12u64;
        let mut ts = 1u64;
        for step in 0..30_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ts += (x >> 60) % 2;
            let v = (x >> 33) % (r + 1);
            w.push(ts, v).unwrap();
            oracle.push(ts, v);
            if step % 59 == 0 {
                for nq in [1u64, 16, 64, 128] {
                    let actual = oracle.query(nq);
                    let est = w.query(nq).unwrap();
                    assert!(
                        est.brackets(actual),
                        "step={step} n={nq}: [{},{}] vs {actual}",
                        est.lo,
                        est.hi
                    );
                    assert!(
                        est.relative_error(actual) <= eps + 1e-9,
                        "step={step} n={nq} actual={actual} est={:?}",
                        est
                    );
                }
            }
        }
    }

    #[test]
    fn unit_timestamps_match_sum_wave() {
        // One item per timestamp: behaves like SumWave on the same data.
        use crate::sum_wave::SumWave;
        let (eps, n, r) = (0.25, 64u64, 31u64);
        let mut tw = TimestampSumWave::new(n, n, r, eps).unwrap();
        let mut sw = SumWave::new(n, r, eps).unwrap();
        let mut oracle = Oracle::new(n);
        let mut x = 9u64;
        for ts in 1..=4_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % (r + 1);
            tw.push(ts, v).unwrap();
            sw.push_value(v).unwrap();
            oracle.push(ts, v);
            let actual = oracle.query(n);
            let a = tw.query(n).unwrap();
            let b = sw.query_max();
            assert!(a.brackets(actual) && b.brackets(actual), "ts={ts}");
            assert!(a.relative_error(actual) <= eps + 1e-9);
            // The timestamped interval may only be looser at boundaries.
            assert!(a.lo <= b.lo && a.hi >= b.hi, "ts={ts}");
        }
    }

    #[test]
    fn entries_bounded_by_capacity() {
        let (eps, n, u, r) = (0.1, 1u64 << 10, 1u64 << 12, 1u64 << 8);
        let w0 = TimestampSumWave::new(n, u, r, eps).unwrap();
        let cap = (w0.num_levels as u64) * ((1.0 / eps).ceil() as u64 + 1);
        let mut w = w0;
        let mut x = 4u64;
        let mut ts = 1u64;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ts += (x >> 62) % 2;
            w.push(ts, (x >> 33) % (r + 1)).unwrap();
        }
        assert!(w.entries() as u64 <= cap);
    }
}
