//! Modular position arithmetic (the paper's mod-N' counters).
//!
//! Section 3.2 stores positions and ranks as numbers modulo
//! `N' = 2^ceil(log2(2N))`, the smallest power of two at least `2N`. As
//! long as every live position is within `N` of the current position,
//! differences taken modulo `N'` are unambiguous, so expiry comparisons
//! and window arithmetic still work. The runtime implementation in this
//! crate keeps full `u64` counters (free on modern machines), but this
//! module implements and tests the modular scheme so the paper's space
//! claim rests on verified arithmetic, and the space accounting uses its
//! bit width.

/// Arithmetic modulo `N'`, the smallest power of two `>= 2N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModRing {
    mask: u64,
    bits: u32,
}

impl ModRing {
    /// Ring for a maximum window of `n` positions (`N' >= 2n`).
    ///
    /// # Panics
    /// Panics if `n == 0` or `2n` overflows `u64`.
    pub fn for_window(n: u64) -> Self {
        assert!(n > 0, "window must be positive");
        let need = n.checked_mul(2).expect("window too large");
        let bits = 64 - (need - 1).leading_zeros();
        ModRing {
            mask: if bits >= 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            },
            bits,
        }
    }

    /// `N'` itself (the modulus). Only meaningful for `bits < 64`.
    pub fn modulus(&self) -> u64 {
        debug_assert!(self.bits < 64);
        self.mask + 1
    }

    /// Bits needed to store one modular counter: `log2(N')`.
    pub fn counter_bits(&self) -> u32 {
        self.bits
    }

    /// Reduce a full counter into the ring.
    #[inline]
    pub fn wrap(&self, x: u64) -> u64 {
        x & self.mask
    }

    /// Modular increment.
    #[inline]
    pub fn inc(&self, x: u64) -> u64 {
        (x + 1) & self.mask
    }

    /// The "age" of stored counter `p` relative to current counter `pos`:
    /// `(pos - p) mod N'`. Unambiguous whenever the true distance is less
    /// than `N'`.
    #[inline]
    pub fn age(&self, pos: u64, p: u64) -> u64 {
        pos.wrapping_sub(p) & self.mask
    }

    /// True if stored position `p` has fallen out of a window of `n`
    /// positions ending at `pos`, i.e. `p <= pos - n` in true arithmetic.
    #[inline]
    pub fn expired(&self, pos: u64, p: u64, n: u64) -> bool {
        self.age(pos, p) >= n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_is_smallest_pow2_at_least_2n() {
        assert_eq!(ModRing::for_window(1).modulus(), 2);
        assert_eq!(ModRing::for_window(3).modulus(), 8);
        assert_eq!(ModRing::for_window(4).modulus(), 8);
        assert_eq!(ModRing::for_window(5).modulus(), 16);
        assert_eq!(ModRing::for_window(48).modulus(), 128);
        assert_eq!(ModRing::for_window(64).modulus(), 128);
    }

    #[test]
    fn counter_bits_matches_modulus() {
        for n in [1u64, 2, 3, 48, 1000, 1 << 20] {
            let r = ModRing::for_window(n);
            assert_eq!(1u64 << r.counter_bits(), r.modulus());
        }
    }

    #[test]
    fn age_agrees_with_true_arithmetic_within_window() {
        let n = 100;
        let r = ModRing::for_window(n);
        // Simulate a long stream; compare modular age with true age for
        // all positions within the window.
        for pos_true in 0..5_000u64 {
            let pos_m = r.wrap(pos_true);
            for back in 0..n.min(pos_true + 1) {
                let p_true = pos_true - back;
                let p_m = r.wrap(p_true);
                assert_eq!(r.age(pos_m, p_m), back);
            }
        }
    }

    #[test]
    fn expiry_matches_true_comparison() {
        let n = 37;
        let r = ModRing::for_window(n);
        for pos_true in 0..2_000u64 {
            for back in 0..(2 * n).min(pos_true + 1) {
                let p_true = pos_true - back;
                // Only positions within N' of pos are representable.
                if pos_true - p_true >= r.modulus() {
                    continue;
                }
                let want = p_true + n <= pos_true;
                assert_eq!(
                    r.expired(r.wrap(pos_true), r.wrap(p_true), n),
                    want,
                    "pos={pos_true} p={p_true}"
                );
            }
        }
    }

    #[test]
    fn wraparound_increment() {
        let r = ModRing::for_window(4); // modulus 8
        let mut x = 6;
        x = r.inc(x);
        assert_eq!(x, 7);
        x = r.inc(x);
        assert_eq!(x, 0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        ModRing::for_window(0);
    }
}
