//! Time-decayed aggregates from window queries.
//!
//! Section 2 cites Cohen & Strauss: "sliding windows algorithms can be
//! used to estimate more general time-decaying aggregates on a single
//! stream". This module implements that reduction on top of the sum
//! wave's any-window queries.
//!
//! For a nonincreasing decay function `g` (with `g(age)` the weight of
//! an item `age` positions old, age 0 = newest) the decayed sum
//! decomposes over window sums:
//!
//! ```text
//! DS = sum_{i} g(age_i) * v_i
//!    = sum_{a >= 0} (g(a) - g(a+1)) * S(a+1)
//! ```
//!
//! where `S(n)` is the sum over the window of the last `n` items. Each
//! `S(n)` estimate carries the wave's `[lo, hi]` bracket, so the decayed
//! sum inherits a certified interval; evaluating on a geometric grid of
//! window sizes instead of all `N` trades a small, *accounted-for*
//! discretization slack (the interval stays valid) for `O(log N / log
//! ratio)` queries.

use crate::error::WaveError;
use crate::sum_wave::SumWave;

/// A nonincreasing decay function over item age.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decay {
    /// `g(a) = exp(-lambda * a)`.
    Exponential { lambda: f64 },
    /// `g(a) = (a + 1)^-alpha` (polynomial / power-law decay).
    Polynomial { alpha: f64 },
    /// `g(a) = 1` for `a < n`, else 0 — recovers the sliding window.
    Window { n: u64 },
}

impl Decay {
    /// Evaluate the weight of an item of the given age.
    pub fn weight(&self, age: u64) -> f64 {
        match *self {
            Decay::Exponential { lambda } => (-lambda * age as f64).exp(),
            Decay::Polynomial { alpha } => (age as f64 + 1.0).powf(-alpha),
            Decay::Window { n } => {
                if age < n {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// A decayed-sum estimate with its certified interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayedEstimate {
    pub value: f64,
    pub lo: f64,
    pub hi: f64,
}

impl DecayedEstimate {
    pub fn relative_error(&self, actual: f64) -> f64 {
        if actual == 0.0 {
            if self.value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.value - actual).abs() / actual.abs()
        }
    }

    pub fn brackets(&self, actual: f64) -> bool {
        self.lo <= actual + 1e-9 && actual <= self.hi + 1e-9
    }
}

/// Estimate a decayed sum from a sum wave's window queries.
///
/// `grid_ratio > 1.0` controls the window-size grid (e.g. `1.25`);
/// smaller ratios tighten the interval at the cost of more queries.
/// Ages at or beyond the wave's maximum window are truncated (their
/// residual weight times the max-window sum's upper bound is folded into
/// `hi` so the interval remains certified for decays that vanish by the
/// horizon; for `Decay::Window` the window must fit the wave).
pub fn decayed_sum(
    wave: &SumWave,
    decay: Decay,
    grid_ratio: f64,
) -> Result<DecayedEstimate, WaveError> {
    assert!(grid_ratio > 1.0, "grid ratio must exceed 1");
    if let Decay::Window { n } = decay {
        let e = wave.query(n)?;
        return Ok(DecayedEstimate {
            value: e.value,
            lo: e.lo as f64,
            hi: e.hi as f64,
        });
    }
    let horizon = wave.max_window().min(wave.pos().max(1));
    // Geometric grid of window sizes 1 = n_0 < n_1 < ... <= horizon.
    let mut grid: Vec<u64> = vec![1];
    loop {
        let last = *grid.last().expect("nonempty");
        if last >= horizon {
            break;
        }
        let next = ((last as f64 * grid_ratio).ceil() as u64)
            .max(last + 1)
            .min(horizon);
        grid.push(next);
    }
    let (mut value, mut lo, mut hi) = (0.0f64, 0.0f64, 0.0f64);
    let mut prev_n = 0u64;
    let mut prev_est = None;
    for &n in &grid {
        let est = wave.query(n)?;
        // Weight mass assigned to ages in [prev_n, n): between g(prev_n)
        // and g(n - 1) per unit.
        let w_hi = decay.weight(prev_n);
        let w_lo = decay.weight(n - 1);
        // The items in that age band contribute S(n) - S(prev_n); use
        // interval arithmetic with the two window estimates.
        let prev = prev_est.unwrap_or(crate::estimate::Estimate::exact(0));
        let band_lo = (est.lo as f64 - prev.hi as f64).max(0.0);
        let band_hi = (est.hi as f64 - prev.lo as f64).max(0.0);
        let band_mid = (est.value - prev.value).max(0.0);
        lo += w_lo * band_lo;
        hi += w_hi * band_hi;
        value += 0.5 * (w_lo + w_hi) * band_mid;
        prev_n = n;
        prev_est = Some(est);
    }
    // Residual tail beyond the horizon: unknown items, weight at most
    // g(horizon); bound their sum by 0 (nothing provable) below and by
    // the decayed geometric tail of the max item rate above. We keep it
    // simple and certified: add g(horizon) * S(horizon).hi as slack only
    // for decays that are still positive there.
    let tail_w = decay.weight(prev_n);
    if tail_w > 0.0 {
        if let Some(est) = prev_est {
            hi += tail_w * est.hi as f64;
        }
    }
    Ok(DecayedEstimate { value, lo, hi })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn exact_decayed(items: &[u64], decay: Decay) -> f64 {
        let n = items.len();
        items
            .iter()
            .enumerate()
            .map(|(i, &v)| decay.weight((n - 1 - i) as u64) * v as f64)
            .sum()
    }

    #[test]
    fn window_decay_recovers_sliding_window() {
        let mut w = SumWave::new(64, 100, 0.2).unwrap();
        for v in [10u64, 20, 30, 40] {
            w.push_value(v).unwrap();
        }
        let e = decayed_sum(&w, Decay::Window { n: 2 }, 1.5).unwrap();
        assert_eq!(e.value, 70.0);
    }

    #[test]
    fn exponential_decay_bracketed() {
        let (n_max, r, eps) = (1u64 << 12, 63u64, 0.05);
        let mut w = SumWave::new(n_max, r, eps).unwrap();
        let mut items: VecDeque<u64> = VecDeque::new();
        let mut x = 7u64;
        for _ in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % (r + 1);
            w.push_value(v).unwrap();
            items.push_back(v);
        }
        // Decay fast enough to vanish well inside the horizon.
        let decay = Decay::Exponential { lambda: 0.01 };
        let recent: Vec<u64> = items
            .iter()
            .copied()
            .skip(items.len().saturating_sub(n_max as usize))
            .collect();
        let actual = exact_decayed(&recent, decay);
        for ratio in [1.05f64, 1.25, 2.0] {
            let est = decayed_sum(&w, decay, ratio).unwrap();
            assert!(
                est.brackets(actual),
                "ratio {ratio}: [{}, {}] vs {actual}",
                est.lo,
                est.hi
            );
            // Finer grids give tighter answers; 1.05 should be close.
            if ratio < 1.1 {
                assert!(
                    est.relative_error(actual) < 0.10,
                    "ratio {ratio}: rel {}",
                    est.relative_error(actual)
                );
            }
        }
    }

    #[test]
    fn polynomial_decay_bracketed() {
        let (n_max, r, eps) = (1u64 << 10, 31u64, 0.05);
        let mut w = SumWave::new(n_max, r, eps).unwrap();
        let mut items = Vec::new();
        let mut x = 3u64;
        for _ in 0..(n_max as usize) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % (r + 1);
            w.push_value(v).unwrap();
            items.push(v);
        }
        let decay = Decay::Polynomial { alpha: 2.0 };
        let actual = exact_decayed(&items, decay);
        let est = decayed_sum(&w, decay, 1.1).unwrap();
        assert!(est.brackets(actual), "[{}, {}] vs {actual}", est.lo, est.hi);
    }

    #[test]
    fn finer_grid_never_loosens() {
        let (n_max, r) = (1u64 << 10, 15u64);
        let mut w = SumWave::new(n_max, r, 0.1).unwrap();
        let mut x = 9u64;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            w.push_value((x >> 33) % (r + 1)).unwrap();
        }
        let decay = Decay::Exponential { lambda: 0.02 };
        let coarse = decayed_sum(&w, decay, 2.0).unwrap();
        let fine = decayed_sum(&w, decay, 1.02).unwrap();
        assert!(fine.hi - fine.lo <= coarse.hi - coarse.lo + 1e-6);
    }

    #[test]
    fn weights_monotone() {
        for d in [
            Decay::Exponential { lambda: 0.1 },
            Decay::Polynomial { alpha: 1.5 },
            Decay::Window { n: 10 },
        ] {
            for a in 0..100u64 {
                assert!(d.weight(a) >= d.weight(a + 1), "{d:?} at {a}");
            }
            assert!(d.weight(0) <= 1.0 + 1e-12);
        }
    }
}
