//! Query results and error accounting shared by every synopsis.

/// The result of a sliding-window query.
///
/// Every wave query derives an interval `[lo, hi]` that is guaranteed to
/// contain the true answer, and returns a point estimate inside it (the
/// paper's midpoint rule, `rank + 1 - (r1 + r2)/2`). When the synopsis can
/// prove the interval is a single point, `exact` is true.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate (may be a half-integer due to the midpoint rule).
    pub value: f64,
    /// Guaranteed lower bound on the true answer.
    pub lo: u64,
    /// Guaranteed upper bound on the true answer.
    pub hi: u64,
    /// True when the synopsis knows the answer exactly (`lo == hi`).
    pub exact: bool,
}

impl Estimate {
    /// An exact answer.
    pub fn exact(v: u64) -> Self {
        Estimate {
            value: v as f64,
            lo: v,
            hi: v,
            exact: true,
        }
    }

    /// The paper's midpoint estimate for a truth interval `[lo, hi]`.
    pub fn midpoint(lo: u64, hi: u64) -> Self {
        debug_assert!(lo <= hi);
        Estimate {
            value: (lo + hi) as f64 / 2.0,
            lo,
            hi,
            exact: lo == hi,
        }
    }

    /// Relative error of this estimate against the true value, using the
    /// paper's convention `|x̂ - x| / x` (0 when both are 0).
    pub fn relative_error(&self, actual: u64) -> f64 {
        if actual == 0 {
            if self.value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.value - actual as f64).abs() / actual as f64
        }
    }

    /// True if the guaranteed interval contains `actual` — the invariant
    /// every deterministic wave must maintain at all times.
    pub fn brackets(&self, actual: u64) -> bool {
        self.lo <= actual && actual <= self.hi
    }
}

/// Space accounting for a synopsis, reported two ways: what this Rust
/// implementation actually holds resident, and the theoretical bit count
/// of the paper's encoding (mod-N' counters, delta-coded positions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceReport {
    /// Bytes of heap + inline memory the implementation holds.
    pub resident_bytes: usize,
    /// Bits the paper's encoding of the same state would need.
    pub synopsis_bits: u64,
    /// Number of (position, rank) / (position, value, sum) entries stored.
    pub entries: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimate() {
        let e = Estimate::exact(42);
        assert!(e.exact);
        assert_eq!(e.value, 42.0);
        assert!(e.brackets(42));
        assert!(!e.brackets(41));
        assert_eq!(e.relative_error(42), 0.0);
    }

    #[test]
    fn midpoint_estimate() {
        let e = Estimate::midpoint(19, 26);
        assert_eq!(e.value, 22.5);
        assert!(!e.exact);
        assert!(e.brackets(20));
        assert!(!e.brackets(27));
    }

    #[test]
    fn midpoint_of_point_interval_is_exact() {
        let e = Estimate::midpoint(7, 7);
        assert!(e.exact);
        assert_eq!(e.value, 7.0);
    }

    #[test]
    fn relative_error_zero_actual() {
        assert_eq!(Estimate::exact(0).relative_error(0), 0.0);
        assert!(Estimate::exact(1).relative_error(0).is_infinite());
    }

    #[test]
    fn relative_error_symmetric_magnitude() {
        let e = Estimate::midpoint(18, 22);
        assert!((e.relative_error(20) - 0.0).abs() < 1e-12);
        let e2 = Estimate::midpoint(18, 26);
        assert!((e2.relative_error(20) - 0.1).abs() < 1e-12);
    }
}
