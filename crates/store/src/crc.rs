//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
//! checksum gzip and PNG use, computed with a const-built 256-entry
//! table. Every durable record and file in `waves-store` carries one so
//! torn or bit-flipped bytes are detected, never replayed.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello, wal");
        let mut bytes = *b"hello, wal";
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "flip at bit {i} undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
