//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
//! checksum gzip and PNG use. Every durable record and file in
//! `waves-store` carries one so torn or bit-flipped bytes are detected,
//! never replayed, and `waves-net` reuses it to trailer wire frames.
//!
//! Computed slicing-by-16: sixteen const-built 256-entry tables let
//! the hot loop fold one 16-byte chunk per iteration instead of one
//! byte, breaking the serial table-lookup dependency that makes the
//! classic one-table loop latency-bound. Word-packed ingest moves whole
//! `u64` words across the wire and into the WAL, so the checksum has to
//! keep pace with memcpy-speed encode/decode, not dominate it.

const fn make_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 16] = make_tables();

/// CRC-32 of `data` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let a = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let b = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        let d = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
        let e = u32::from_le_bytes(chunk[12..16].try_into().unwrap());
        c = TABLES[15][(a & 0xFF) as usize]
            ^ TABLES[14][(a >> 8 & 0xFF) as usize]
            ^ TABLES[13][(a >> 16 & 0xFF) as usize]
            ^ TABLES[12][(a >> 24) as usize]
            ^ TABLES[11][(b & 0xFF) as usize]
            ^ TABLES[10][(b >> 8 & 0xFF) as usize]
            ^ TABLES[9][(b >> 16 & 0xFF) as usize]
            ^ TABLES[8][(b >> 24) as usize]
            ^ TABLES[7][(d & 0xFF) as usize]
            ^ TABLES[6][(d >> 8 & 0xFF) as usize]
            ^ TABLES[5][(d >> 16 & 0xFF) as usize]
            ^ TABLES[4][(d >> 24) as usize]
            ^ TABLES[3][(e & 0xFF) as usize]
            ^ TABLES[2][(e >> 8 & 0xFF) as usize]
            ^ TABLES[1][(e >> 16 & 0xFF) as usize]
            ^ TABLES[0][(e >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The one-table reference loop the sliced version must match.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_alignment() {
        let data: Vec<u8> = (0..521u32).map(|i| (i * 31 + 7) as u8).collect();
        for start in 0..17 {
            for end in (data.len() - 17)..=data.len() {
                let s = &data[start..end];
                assert_eq!(crc32(s), crc32_bytewise(s), "slice {start}..{end}");
            }
        }
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello, wal");
        let mut bytes = *b"hello, wal";
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "flip at bit {i} undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
