//! The write-ahead log: segment files of length-prefixed, CRC-checked
//! batch records.
//!
//! # Segment file layout (`wal-<seq:016x>.log`)
//!
//! | offset | width | field                              |
//! |--------|-------|------------------------------------|
//! | 0      | 4     | magic `b"WLOG"`                    |
//! | 4      | 2     | format version, u16 BE (currently 1) |
//! | 6      | 2     | reserved, zero                     |
//! | 8      | 8     | segment sequence number, u64 BE    |
//! | 16     | ...   | records, back to back              |
//!
//! # Record layout
//!
//! | offset | width | field                                |
//! |--------|-------|--------------------------------------|
//! | 0      | 4     | payload length `L`, u32 BE           |
//! | 4      | 4     | CRC-32 of the payload, u32 BE        |
//! | 8      | `L`   | payload                              |
//!
//! A record is *acknowledged* only once it (and everything before it)
//! has reached disk; a crash mid-append leaves a torn tail that fails
//! the length or CRC check. Recovery scans records in order and stops at
//! the first bad one — everything before it is intact by construction,
//! everything at or after it is discarded (truncated), so the surviving
//! log is always a prefix of what was appended.
//!
//! # Batch payload layout (record type 1)
//!
//! | offset | width | field                             |
//! |--------|-------|-----------------------------------|
//! | 0      | 1     | record type, `0x01` = ingest batch |
//! | 1      | 4     | entry count `C`, u32 BE           |
//! | 5      | ...   | `C` entries                       |
//!
//! Each entry: key u64 BE, bit count `B` u64 BE, then `ceil(B/64)`
//! packed `u64` words of 8 **little-endian** bytes each — the LSB-first
//! bit stream of [`waves_core::bits::Bits`], zero-padded to a word
//! boundary, byte-identical to the wire protocol's v4 `INGEST` entry
//! encoding. (Store format 1 packed MSB-first bytes instead; format 2
//! segments are the word encoding, and a format-1 store fails header
//! validation cleanly rather than mis-decoding.)

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use waves_core::bits::{byte_count, Bits};

use crate::crc::crc32;

/// First four bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"WLOG";
/// On-disk format version shared by segments, checkpoints, and META.
/// Version 2 switched ingest entries from MSB-first packed bytes to
/// LSB-first little-endian `u64` words (wire v4's encoding).
pub const STORE_VERSION: u16 = 2;
/// Bytes before the first record in a segment.
pub const SEGMENT_HEADER_LEN: u64 = 16;
/// Bytes of record framing before the payload (length + CRC).
pub const RECORD_HEADER_LEN: u64 = 8;
/// Record type tag for an ingest batch.
pub const REC_BATCH: u8 = 1;
/// Upper bound on a record payload; larger lengths are treated as
/// corruption (mirrors the wire protocol's frame cap).
pub const MAX_RECORD_PAYLOAD: u32 = 64 << 20;
/// Upper bound on bits per entry (mirrors `waves-net`'s ingest cap).
const MAX_ENTRY_BITS: u64 = 1 << 32;

/// File name for segment `seq`.
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:016x}.log")
}

/// Parse a segment sequence number back out of a file name.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn bad(what: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

/// Encode one ingest batch as a record payload (type byte included).
pub fn encode_batch_payload(batch: &[(u64, Bits)]) -> Vec<u8> {
    let mut p = Vec::with_capacity(5 + batch.len() * 17);
    p.push(REC_BATCH);
    p.extend_from_slice(&(batch.len() as u32).to_be_bytes());
    for (key, bits) in batch {
        p.extend_from_slice(&key.to_be_bytes());
        p.extend_from_slice(&bits.len().to_be_bytes());
        bits.write_le_bytes(&mut p);
    }
    p
}

/// Decode a record payload produced by [`encode_batch_payload`].
/// Arbitrary input never panics; malformed bytes yield `InvalidData`.
pub fn decode_batch_payload(payload: &[u8]) -> io::Result<Vec<(u64, Bits)>> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> io::Result<&[u8]> {
        let end = at.checked_add(n).ok_or_else(|| bad("length overflow"))?;
        if end > payload.len() {
            return Err(bad("record payload truncated"));
        }
        let s = &payload[*at..end];
        *at = end;
        Ok(s)
    };
    let ty = take(&mut at, 1)?[0];
    if ty != REC_BATCH {
        return Err(bad("unknown record type"));
    }
    let count = u32::from_be_bytes(take(&mut at, 4)?.try_into().unwrap());
    let mut batch = Vec::with_capacity((count as usize).min(1 << 16));
    for _ in 0..count {
        let key = u64::from_be_bytes(take(&mut at, 8)?.try_into().unwrap());
        let nbits = u64::from_be_bytes(take(&mut at, 8)?.try_into().unwrap());
        if nbits > MAX_ENTRY_BITS {
            return Err(bad("entry bit count"));
        }
        let packed = take(&mut at, byte_count(nbits))?;
        let bits = Bits::from_le_bytes(packed, nbits).ok_or_else(|| bad("entry bits"))?;
        batch.push((key, bits));
    }
    if at != payload.len() {
        return Err(bad("trailing bytes in record payload"));
    }
    Ok(batch)
}

/// Wrap a payload in record framing: length, CRC-32, payload.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    rec.extend_from_slice(&crc32(payload).to_be_bytes());
    rec.extend_from_slice(payload);
    rec
}

/// Result of scanning one segment file during recovery.
#[derive(Debug)]
pub struct SegmentScan {
    /// Sequence number from the segment header.
    pub seq: u64,
    /// Payloads of every intact record, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// File offset just past each intact record (parallel to
    /// `payloads`), so a caller that rejects record `i` at a higher
    /// layer can truncate to `ends[i-1]`.
    pub ends: Vec<u64>,
    /// Byte offset just past the last intact record — the truncation
    /// point if the tail is torn.
    pub valid_len: u64,
    /// Whether bytes at/after `valid_len` failed validation (a torn or
    /// corrupt tail that recovery must discard).
    pub torn: bool,
}

/// Scan a segment file, validating the header and every record frame.
///
/// A file too short to hold the header (or with a wrong magic/version)
/// scans as `seq: expect_seq, valid_len: 0, torn: true` — the recovery
/// path rewrites it from scratch. A header whose sequence number
/// disagrees with the file name is corruption of the same kind.
pub fn scan_segment(path: &Path, expect_seq: u64) -> io::Result<SegmentScan> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let torn = |payloads: Vec<Vec<u8>>, ends: Vec<u64>, valid_len: u64| SegmentScan {
        seq: expect_seq,
        payloads,
        ends,
        valid_len,
        torn: true,
    };
    if buf.len() < SEGMENT_HEADER_LEN as usize
        || buf[0..4] != SEGMENT_MAGIC
        || u16::from_be_bytes(buf[4..6].try_into().unwrap()) != STORE_VERSION
        || buf[6..8] != [0, 0]
        || u64::from_be_bytes(buf[8..16].try_into().unwrap()) != expect_seq
    {
        return Ok(torn(Vec::new(), Vec::new(), 0));
    }
    let mut payloads = Vec::new();
    let mut ends = Vec::new();
    let mut at = SEGMENT_HEADER_LEN as usize;
    loop {
        if at == buf.len() {
            // Clean end: every byte accounted for.
            return Ok(SegmentScan {
                seq: expect_seq,
                payloads,
                ends,
                valid_len: at as u64,
                torn: false,
            });
        }
        if buf.len() - at < RECORD_HEADER_LEN as usize {
            return Ok(torn(payloads, ends, at as u64));
        }
        let len = u32::from_be_bytes(buf[at..at + 4].try_into().unwrap());
        let want = u32::from_be_bytes(buf[at + 4..at + 8].try_into().unwrap());
        let start = at + RECORD_HEADER_LEN as usize;
        if len > MAX_RECORD_PAYLOAD || buf.len() - start < len as usize {
            return Ok(torn(payloads, ends, at as u64));
        }
        let payload = &buf[start..start + len as usize];
        if crc32(payload) != want {
            return Ok(torn(payloads, ends, at as u64));
        }
        payloads.push(payload.to_vec());
        at = start + len as usize;
        ends.push(at as u64);
    }
}

/// An open segment accepting appends. Writes go through a userspace
/// buffer; [`SegmentWriter::sync`] flushes and `fdatasync`s.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    seq: u64,
    /// Total file length including the header (append position).
    len: u64,
    buffered: Vec<u8>,
}

impl SegmentWriter {
    /// Create segment `seq` in `dir`, writing a fresh header. Truncates
    /// any existing file of the same name (recovery only does this for
    /// files it has already declared unreadable).
    pub fn create(dir: &Path, seq: u64) -> io::Result<SegmentWriter> {
        let path = dir.join(segment_file_name(seq));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        header.extend_from_slice(&SEGMENT_MAGIC);
        header.extend_from_slice(&STORE_VERSION.to_be_bytes());
        header.extend_from_slice(&0u16.to_be_bytes());
        header.extend_from_slice(&seq.to_be_bytes());
        file.write_all(&header)?;
        Ok(SegmentWriter {
            file,
            path,
            seq,
            len: SEGMENT_HEADER_LEN,
            buffered: Vec::new(),
        })
    }

    /// Reopen an existing segment for appending at `valid_len` (the
    /// scan's truncation point), discarding any torn tail beyond it.
    pub fn reopen(dir: &Path, seq: u64, valid_len: u64) -> io::Result<SegmentWriter> {
        let path = dir.join(segment_file_name(seq));
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(SegmentWriter {
            file,
            path,
            seq,
            len: valid_len,
            buffered: Vec::new(),
        })
    }

    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Append position: header plus every record appended so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len <= SEGMENT_HEADER_LEN
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Buffer one framed record; returns the file offset just past it
    /// (the position a crash must reach for this record to survive).
    pub fn append(&mut self, framed: &[u8]) -> io::Result<u64> {
        self.buffered.extend_from_slice(framed);
        self.len += framed.len() as u64;
        Ok(self.len)
    }

    /// Push buffered records to the OS (no durability guarantee yet).
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buffered.is_empty() {
            self.file.write_all(&self.buffered)?;
            self.buffered.clear();
        }
        Ok(())
    }

    /// Flush and `fdatasync`: everything appended so far is durable
    /// (acknowledged) once this returns.
    pub fn sync(&mut self) -> io::Result<()> {
        self.flush()?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = crate::scratch_dir(tag);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_batch(i: u64) -> Vec<(u64, Bits)> {
        vec![
            (i, (0..i % 13).map(|j| j % 2 == 0).collect()),
            (i * 7 + 1, Bits::from_bools(&vec![true; (i % 9) as usize])),
        ]
    }

    /// An entry's packed body is whole little-endian words: 8 bytes per
    /// started group of 64 bits, zero-padded, LSB-first.
    #[test]
    fn entry_encoding_is_le_words() {
        let mut bits = Bits::new();
        bits.push(true); // bit 0 -> byte 0, mask 0x01
        for _ in 0..8 {
            bits.push(false);
        }
        bits.push(true); // bit 9 -> byte 1, mask 0x02
        let payload = encode_batch_payload(&[(0xABCD, bits)]);
        // type + count + key + bit count, then one 8-byte word.
        assert_eq!(payload.len(), 1 + 4 + 8 + 8 + 8);
        assert_eq!(&payload[21..], &[0x01, 0x02, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn batch_payload_roundtrip() {
        for i in 0..50 {
            let batch = sample_batch(i);
            let payload = encode_batch_payload(&batch);
            assert_eq!(decode_batch_payload(&payload).unwrap(), batch, "i={i}");
        }
        assert_eq!(
            decode_batch_payload(&encode_batch_payload(&[])).unwrap(),
            []
        );
    }

    #[test]
    fn payload_rejects_trailing_and_unknown_type() {
        let mut p = encode_batch_payload(&sample_batch(3));
        p.push(0);
        assert!(decode_batch_payload(&p).is_err());
        let mut p = encode_batch_payload(&sample_batch(3));
        p[0] = 9;
        assert!(decode_batch_payload(&p).is_err());
        assert!(decode_batch_payload(&[]).is_err());
    }

    #[test]
    fn segment_names_roundtrip() {
        for seq in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_segment_file_name(&segment_file_name(seq)), Some(seq));
        }
        assert_eq!(parse_segment_file_name("wal-xyz.log"), None);
        assert_eq!(parse_segment_file_name("ckpt-0000000000000000.ckpt"), None);
    }

    #[test]
    fn write_scan_roundtrip_and_torn_tail() {
        let dir = tmp_dir("wal-roundtrip");
        let mut w = SegmentWriter::create(&dir, 5).unwrap();
        let mut ends = Vec::new();
        for i in 0..10 {
            let framed = frame_record(&encode_batch_payload(&sample_batch(i)));
            ends.push(w.append(&framed).unwrap());
        }
        w.sync().unwrap();
        let path = w.path().to_path_buf();
        drop(w);

        let scan = scan_segment(&path, 5).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.payloads.len(), 10);
        assert_eq!(scan.valid_len, *ends.last().unwrap());

        // Truncate into the middle of record 7: records 0..7 survive.
        let cut = ends[6] + 3;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let scan = scan_segment(&path, 5).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.payloads.len(), 7);
        assert_eq!(scan.valid_len, ends[6]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_stops_scan_at_prior_record() {
        let dir = tmp_dir("wal-corrupt");
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        let mut ends = Vec::new();
        for i in 0..6 {
            let framed = frame_record(&encode_batch_payload(&sample_batch(i + 1)));
            ends.push(w.append(&framed).unwrap());
        }
        w.sync().unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        // Flip a byte inside record 3's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = ends[2] as usize + RECORD_HEADER_LEN as usize + 1;
        bytes[victim] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path, 0).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.payloads.len(), 3);
        assert_eq!(scan.valid_len, ends[2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_scans_empty() {
        let dir = tmp_dir("wal-badheader");
        let path = dir.join(segment_file_name(1));
        std::fs::write(&path, b"WLOGxx").unwrap();
        let scan = scan_segment(&path, 1).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.valid_len, 0);
        assert!(scan.payloads.is_empty());
        // Wrong sequence number in an otherwise valid header.
        let w = SegmentWriter::create(&dir, 2).unwrap();
        let p = w.path().to_path_buf();
        drop(w);
        let scan = scan_segment(&p, 3).unwrap();
        assert!(scan.torn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_appends_after_truncation_point() {
        let dir = tmp_dir("wal-reopen");
        let mut w = SegmentWriter::create(&dir, 9).unwrap();
        let framed = frame_record(&encode_batch_payload(&sample_batch(2)));
        let end = w.append(&framed).unwrap();
        w.append(&framed[..5]).unwrap(); // simulate a torn half-record
        w.sync().unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        let scan = scan_segment(&path, 9).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.valid_len, end);
        let mut w = SegmentWriter::reopen(&dir, 9, scan.valid_len).unwrap();
        let framed2 = frame_record(&encode_batch_payload(&sample_batch(4)));
        w.append(&framed2).unwrap();
        w.sync().unwrap();
        drop(w);
        let scan = scan_segment(&path, 9).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.payloads.len(), 2);
        assert_eq!(
            decode_batch_payload(&scan.payloads[1]).unwrap(),
            sample_batch(4)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
