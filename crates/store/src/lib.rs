//! `waves-store`: durable persistence for waves synopses.
//!
//! A restart of the serving engine (or a `waves-net` server) used to
//! discard every per-key synopsis. This crate supplies the missing
//! substrate — the continuous-monitoring follow-ups to Gibbons &
//! Tirthapura assume parties persist and resume their sketches across
//! epochs — as two std-only mechanisms:
//!
//! * a **write-ahead log** ([`wal`]) of ingest batches: length-prefixed,
//!   CRC-32-checked records in rotating segment files. A crash mid-append
//!   leaves a torn tail that recovery detects and truncates; everything
//!   acknowledged (synced) before the crash survives.
//! * **checkpoints** ([`checkpoint`]): each key's synopsis serialized via
//!   its existing `encode()` bytes — the same payloads the wire protocol
//!   round-trips — written atomically (tmp + rename). Recovery loads the
//!   newest valid checkpoint and replays the WAL tail; superseded
//!   segments are reclaimed.
//!
//! Each engine shard owns one [`ShardStore`] (one directory, one open
//! segment), so persistence adds no cross-shard lock. Sync cadence is
//! a [`SyncPolicy`]: `every-batch` for zero acknowledged loss,
//! `every-N` to amortize fsyncs, `on-checkpoint` for throughput when
//! the WAL tail may be sacrificed.
//!
//! Byte-exact layouts for every file live in the repository's
//! `PROTOCOL.md`; operational guidance (directory layout, policy
//! tradeoffs, recovery semantics) in `OPERATIONS.md`.
//!
//! ```
//! use waves_core::Bits;
//! use waves_obs::NoopRecorder;
//! use waves_store::{scratch_dir, ShardStore, SyncPolicy};
//!
//! let dir = scratch_dir("doc-quickstart");
//! let rec = NoopRecorder;
//! // First open: nothing to recover.
//! let recovered = ShardStore::recover(&dir, SyncPolicy::EveryBatch, 8 << 20, &rec).unwrap();
//! assert!(recovered.batches.is_empty());
//! let mut store = recovered.store;
//! store.append_batch(&[(7, Bits::from([true, false, true]))], &rec).unwrap();
//! drop(store);
//! // Reopen: the acknowledged batch replays, word-packed.
//! let recovered = ShardStore::recover(&dir, SyncPolicy::EveryBatch, 8 << 20, &rec).unwrap();
//! assert_eq!(recovered.batches, vec![vec![(7, Bits::from([true, false, true]))]]);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod checkpoint;
pub mod crc;
pub mod shard;
pub mod wal;

pub use checkpoint::Checkpoint;
pub use shard::{RecoveredShard, ShardStore, WalPosition};

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

use crate::crc::crc32;
use crate::wal::STORE_VERSION;

/// When WAL appends are made durable (`fsync`).
///
/// | policy | acknowledged-loss window | fsyncs |
/// |--------|--------------------------|--------|
/// | `EveryBatch` | none — every batch durable before apply | one per batch |
/// | `EveryN(n)` | up to `n - 1` most recent batches | one per `n` batches |
/// | `OnCheckpoint` | everything since the last checkpoint/rotation | one per checkpoint/segment |
///
/// Regardless of policy, recovery always restores a *prefix* of the
/// appended history — batches are never replayed out of order or with
/// gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync after every appended batch.
    EveryBatch,
    /// Fsync after every `n` appended batches.
    EveryN(u32),
    /// Fsync only at segment rotation and checkpoints.
    OnCheckpoint,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::EveryN(64)
    }
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPolicy::EveryBatch => write!(f, "every-batch"),
            SyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            SyncPolicy::OnCheckpoint => write!(f, "on-checkpoint"),
        }
    }
}

impl FromStr for SyncPolicy {
    type Err = String;

    /// Accepts `every-batch`, `on-checkpoint`, or `every-<N>` with
    /// `N >= 1` (e.g. `every-64`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "every-batch" => Ok(SyncPolicy::EveryBatch),
            "on-checkpoint" => Ok(SyncPolicy::OnCheckpoint),
            _ => {
                let n = s
                    .strip_prefix("every-")
                    .and_then(|n| n.parse::<u32>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        format!(
                            "bad sync policy {s:?}: want every-batch, every-<N>, or on-checkpoint"
                        )
                    })?;
                Ok(SyncPolicy::EveryN(n))
            }
        }
    }
}

/// Persistence settings carried in the engine config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Root directory; each shard gets a `shard-<i>/` subdirectory.
    pub dir: PathBuf,
    /// Fsync cadence for WAL appends.
    pub sync: SyncPolicy,
    /// Rotate the WAL once a segment exceeds this many bytes.
    pub segment_bytes: u64,
    /// Checkpoint a shard after this many applied batches
    /// (`0` disables automatic checkpoints; an explicit checkpoint
    /// command and the clean-shutdown checkpoint still run).
    pub checkpoint_every_batches: u64,
}

impl PersistConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            sync: SyncPolicy::default(),
            segment_bytes: 8 << 20,
            checkpoint_every_batches: 4096,
        }
    }

    pub fn sync_policy(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    pub fn checkpoint_every(mut self, batches: u64) -> Self {
        self.checkpoint_every_batches = batches;
        self
    }
}

/// Bytes in the root `META` file.
pub const META_LEN: usize = 16;
/// First four bytes of `META`.
pub const META_MAGIC: [u8; 4] = *b"WVST";

/// The opened persistence root. Holds no file handles — it exists to
/// create/validate the `META` file exactly once, before shard stores
/// fan out.
///
/// `META` layout: magic `b"WVST"` (4), format version u16 BE, reserved
/// u16, shard count u32 BE, CRC-32 of the first 12 bytes u32 BE.
///
/// The store assumes a single process owns the directory (the engine
/// enforces one `ShardStore` per shard worker); concurrent opens are
/// not detected.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    num_shards: u32,
}

impl Store {
    /// Create or validate the persistence root. A directory created
    /// with a different shard count is rejected — shard-to-key routing
    /// would silently change, scattering each key's history.
    pub fn open(root: &Path, num_shards: u32) -> io::Result<Store> {
        fs::create_dir_all(root)?;
        let meta_path = root.join("META");
        match File::open(&meta_path) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                let bad = |what: &str| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("META: {what}"))
                };
                if bytes.len() != META_LEN {
                    return Err(bad("wrong length"));
                }
                if bytes[0..4] != META_MAGIC {
                    return Err(bad("bad magic"));
                }
                if crc32(&bytes[..12]) != u32::from_be_bytes(bytes[12..16].try_into().unwrap()) {
                    return Err(bad("checksum mismatch"));
                }
                if u16::from_be_bytes(bytes[4..6].try_into().unwrap()) != STORE_VERSION {
                    return Err(bad("unsupported version"));
                }
                let stored = u32::from_be_bytes(bytes[8..12].try_into().unwrap());
                if stored != num_shards {
                    return Err(bad(&format!(
                        "directory was created with {stored} shards, engine configured {num_shards}"
                    )));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let mut bytes = Vec::with_capacity(META_LEN);
                bytes.extend_from_slice(&META_MAGIC);
                bytes.extend_from_slice(&STORE_VERSION.to_be_bytes());
                bytes.extend_from_slice(&0u16.to_be_bytes());
                bytes.extend_from_slice(&num_shards.to_be_bytes());
                bytes.extend_from_slice(&crc32(&bytes).to_be_bytes());
                let tmp = root.join("META.tmp");
                {
                    let mut f = OpenOptions::new()
                        .write(true)
                        .create(true)
                        .truncate(true)
                        .open(&tmp)?;
                    f.write_all(&bytes)?;
                    f.sync_data()?;
                }
                fs::rename(&tmp, &meta_path)?;
                if let Ok(d) = File::open(root) {
                    let _ = d.sync_all();
                }
            }
            Err(e) => return Err(e),
        }
        Ok(Store {
            root: root.to_path_buf(),
            num_shards,
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// Directory owned by shard `shard`'s `ShardStore`.
    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard}"))
    }
}

/// A unique, not-yet-created scratch path under the system temp dir —
/// the workspace has no `tempfile` dependency, and tests/benches across
/// crates all need disposable persist dirs. The caller creates and
/// removes it.
pub fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "waves-store-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_policy_parses_and_displays() {
        for (s, p) in [
            ("every-batch", SyncPolicy::EveryBatch),
            ("every-1", SyncPolicy::EveryN(1)),
            ("every-64", SyncPolicy::EveryN(64)),
            ("on-checkpoint", SyncPolicy::OnCheckpoint),
        ] {
            assert_eq!(s.parse::<SyncPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), s);
        }
        for bad in ["", "always", "every-", "every-0", "every-x", "Every-Batch"] {
            assert!(bad.parse::<SyncPolicy>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn meta_roundtrip_and_shard_count_mismatch() {
        let root = scratch_dir("meta");
        Store::open(&root, 4).unwrap();
        let again = Store::open(&root, 4).unwrap();
        assert_eq!(again.num_shards(), 4);
        assert_eq!(again.shard_dir(2), root.join("shard-2"));
        let err = Store::open(&root, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_meta_rejected() {
        let root = scratch_dir("meta-corrupt");
        Store::open(&root, 2).unwrap();
        let meta = root.join("META");
        let mut bytes = fs::read(&meta).unwrap();
        bytes[9] ^= 0xFF;
        fs::write(&meta, &bytes).unwrap();
        assert!(Store::open(&root, 2).is_err());
        fs::remove_dir_all(&root).unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::wal::{
        decode_batch_payload, encode_batch_payload, frame_record, scan_segment, SegmentWriter,
        SEGMENT_HEADER_LEN,
    };
    use proptest::prelude::*;
    use waves_core::bits::Bits;

    fn batches_strategy() -> impl Strategy<Value = Vec<Vec<(u64, Bits)>>> {
        prop::collection::vec(
            prop::collection::vec(
                (any::<u64>(), prop::collection::vec(any::<bool>(), 0..40))
                    .prop_map(|(k, v): (u64, Vec<bool>)| (k, Bits::from(v))),
                0..4,
            ),
            1..12,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// WAL batch payloads round-trip exactly.
        #[test]
        fn wal_record_roundtrip(batches in batches_strategy()) {
            for batch in &batches {
                let payload = encode_batch_payload(batch);
                prop_assert_eq!(&decode_batch_payload(&payload).unwrap(), batch);
            }
        }

        /// Truncating a segment at *any* byte offset recovers exactly
        /// the batches whose records lie entirely before the cut —
        /// never a partial batch, never a reordering.
        #[test]
        fn wal_truncation_recovers_exact_prefix(
            batches in batches_strategy(),
            cut_frac in 0.0f64..=1.0,
        ) {
            let dir = scratch_dir("prop-trunc");
            std::fs::create_dir_all(&dir).unwrap();
            let mut w = SegmentWriter::create(&dir, 0).unwrap();
            let mut ends = vec![SEGMENT_HEADER_LEN];
            for b in &batches {
                let end = w.append(&frame_record(&encode_batch_payload(b))).unwrap();
                ends.push(end);
            }
            w.sync().unwrap();
            let path = w.path().to_path_buf();
            let total = w.len();
            drop(w);
            let cut = (total as f64 * cut_frac) as u64;
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(cut)
                .unwrap();
            let survivors = ends[1..].iter().filter(|&&e| e <= cut).count();
            let scan = scan_segment(&path, 0).unwrap();
            prop_assert_eq!(scan.payloads.len(), survivors);
            for (payload, batch) in scan.payloads.iter().zip(&batches) {
                prop_assert_eq!(&decode_batch_payload(payload).unwrap(), batch);
            }
            // A cut inside the 16-byte segment header loses the whole
            // segment (valid_len 0); otherwise the scan stops exactly at
            // the last surviving record boundary.
            let expect_valid = if cut < SEGMENT_HEADER_LEN { 0 } else { ends[survivors] };
            prop_assert_eq!(scan.valid_len, expect_valid);
            std::fs::remove_dir_all(&dir).unwrap();
        }

        /// Flipping any byte of the record region yields a strict
        /// prefix of the original batches — corruption is detected,
        /// never decoded into wrong data.
        #[test]
        fn wal_corruption_never_decodes_wrong_batches(
            batches in batches_strategy(),
            flip_frac in 0.0f64..1.0,
            flip_bit in 0u8..8,
        ) {
            let dir = scratch_dir("prop-flip");
            std::fs::create_dir_all(&dir).unwrap();
            let mut w = SegmentWriter::create(&dir, 0).unwrap();
            let mut ends = vec![SEGMENT_HEADER_LEN];
            for b in &batches {
                ends.push(w.append(&frame_record(&encode_batch_payload(b))).unwrap());
            }
            w.sync().unwrap();
            let path = w.path().to_path_buf();
            let total = w.len();
            drop(w);
            // At least one record exists (batches is non-empty), so the
            // record region is never empty.
            prop_assert!(total > SEGMENT_HEADER_LEN);
            let span = total - SEGMENT_HEADER_LEN;
            let pos = SEGMENT_HEADER_LEN + ((span as f64 * flip_frac) as u64).min(span - 1);
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[pos as usize] ^= 1 << flip_bit;
            std::fs::write(&path, &bytes).unwrap();
            // The record containing `pos` must die; everything before
            // it must survive verbatim.
            let victim = ends[1..].iter().position(|&e| pos < e).unwrap();
            let scan = scan_segment(&path, 0).unwrap();
            prop_assert!(scan.torn);
            prop_assert_eq!(scan.payloads.len(), victim);
            prop_assert_eq!(scan.valid_len, ends[victim]);
            for (payload, batch) in scan.payloads.iter().zip(&batches) {
                prop_assert_eq!(&decode_batch_payload(payload).unwrap(), batch);
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }

        /// Checkpoint files round-trip, and corrupting any single byte
        /// rejects the file.
        #[test]
        fn checkpoint_roundtrip_and_rejection(
            entries in prop::collection::vec(
                (any::<u64>(), prop::collection::vec(any::<u8>(), 0..50)),
                0..8,
            ),
            wal_seq in any::<u64>(),
            flip_frac in 0.0f64..1.0,
            flip_bit in 0u8..8,
        ) {
            let ckpt = checkpoint::Checkpoint { wal_seq, entries };
            let bytes = checkpoint::encode_checkpoint(&ckpt);
            prop_assert_eq!(&checkpoint::decode_checkpoint(&bytes).unwrap(), &ckpt);
            let mut corrupt = bytes.clone();
            let pos = ((bytes.len() as f64 * flip_frac) as usize).min(bytes.len() - 1);
            corrupt[pos] ^= 1 << flip_bit;
            prop_assert!(checkpoint::decode_checkpoint(&corrupt).is_err());
            // Every truncation is rejected too.
            let cut = pos;
            prop_assert!(checkpoint::decode_checkpoint(&bytes[..cut]).is_err());
        }
    }
}
