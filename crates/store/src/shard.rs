//! One shard's durable state: a directory of WAL segments plus
//! checkpoints, owned exclusively by that shard's worker thread (so no
//! cross-shard lock ever exists on the ingest path).
//!
//! Lifecycle:
//!
//! 1. [`ShardStore::recover`] — load the newest valid checkpoint, replay
//!    every acknowledged WAL batch after it (truncating any torn tail),
//!    and hand back a writer positioned at the clean end of the log.
//! 2. [`ShardStore::append_batch`] — frame, checksum, and append each
//!    ingest batch *before* it is applied to the in-memory synopses,
//!    syncing per [`SyncPolicy`].
//! 3. [`ShardStore::checkpoint`] — rotate to a fresh segment, durably
//!    write every key's synopsis bytes, then reclaim the segments and
//!    checkpoints the new checkpoint supersedes.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use waves_core::bits::Bits;
use waves_obs::trace::{next_span_id, now_ns, Span, Stage, TraceCtx};
use waves_obs::{HistId, MetricId, Recorder};

use crate::checkpoint::{
    checkpoint_file_name, list_checkpoints, load_latest_checkpoint, write_checkpoint, Checkpoint,
};
use crate::wal::{
    decode_batch_payload, encode_batch_payload, frame_record, parse_segment_file_name,
    scan_segment, segment_file_name, SegmentWriter, SEGMENT_HEADER_LEN,
};
use crate::SyncPolicy;

/// Durable position of an appended record: segment sequence number plus
/// the file offset just past the record. A crash that preserves this
/// segment through `offset` preserves the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalPosition {
    pub seq: u64,
    pub offset: u64,
}

/// Everything recovery reconstructs for one shard.
#[derive(Debug)]
pub struct RecoveredShard {
    /// `(key, synopsis bytes)` from the newest valid checkpoint; empty
    /// on first open.
    pub entries: Vec<(u64, Vec<u8>)>,
    /// Acknowledged WAL batches after that checkpoint, in append order,
    /// each entry carrying its word-packed bit stream. The caller
    /// replays these through the synopses it decoded from `entries`.
    pub batches: Vec<Vec<(u64, Bits)>>,
    /// A writer positioned at the clean end of the log, ready for new
    /// appends.
    pub store: ShardStore,
}

/// A shard's open WAL writer plus checkpoint bookkeeping.
#[derive(Debug)]
pub struct ShardStore {
    dir: PathBuf,
    sync: SyncPolicy,
    segment_bytes: u64,
    writer: SegmentWriter,
    /// Appends since the last fsync (drives `SyncPolicy::EveryN`).
    unsynced: u64,
}

fn list_segments(dir: &Path) -> io::Result<BTreeSet<u64>> {
    let mut seqs = BTreeSet::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = parse_segment_file_name(name) {
                seqs.insert(seq);
            }
        }
    }
    Ok(seqs)
}

impl ShardStore {
    /// Open (or create) shard state in `dir` and reconstruct everything
    /// that was acknowledged before the last shutdown or crash.
    ///
    /// Replay semantics: batches are returned in exactly the order they
    /// were appended, stopping at the first gap, torn record, or corrupt
    /// record — so the result is always a *prefix* of the appended
    /// history. Anything at or past the stop point is deleted/truncated,
    /// making recovery idempotent: a second recover sees a clean log.
    pub fn recover<R: Recorder + ?Sized>(
        dir: &Path,
        sync: SyncPolicy,
        segment_bytes: u64,
        rec: &R,
    ) -> io::Result<RecoveredShard> {
        let t0 = rec.enabled().then(Instant::now);
        fs::create_dir_all(dir)?;
        // Leftover checkpoint temp files are torn writes — discard.
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".tmp"))
            {
                let _ = fs::remove_file(entry.path());
            }
        }
        let ckpt = load_latest_checkpoint(dir)?;
        let (start_seq, entries) = match ckpt {
            Some(c) => (c.wal_seq, c.entries),
            None => (0, Vec::new()),
        };
        let segments = list_segments(dir)?;
        // Segments older than the checkpoint are fully superseded; a
        // crash between checkpoint and reclamation leaves them behind.
        for &seq in segments.range(..start_seq) {
            let _ = fs::remove_file(dir.join(segment_file_name(seq)));
        }
        let mut batches: Vec<Vec<(u64, Bits)>> = Vec::new();
        let mut tail: Option<(u64, u64)> = None;
        let mut expected = start_seq;
        let mut stopped = false;
        for &seq in segments.range(start_seq..) {
            if stopped || seq != expected {
                // Unreachable suffix (after a gap or torn segment):
                // nothing in it was acknowledged under prefix semantics.
                let _ = fs::remove_file(dir.join(segment_file_name(seq)));
                continue;
            }
            let scan = scan_segment(&dir.join(segment_file_name(seq)), seq)?;
            let mut valid_len = scan.valid_len;
            let mut torn = scan.torn;
            for (i, payload) in scan.payloads.iter().enumerate() {
                match decode_batch_payload(payload) {
                    Ok(batch) => batches.push(batch),
                    Err(_) => {
                        // CRC-valid but semantically corrupt: stop at
                        // the record boundary before it.
                        valid_len = if i == 0 {
                            SEGMENT_HEADER_LEN
                        } else {
                            scan.ends[i - 1]
                        };
                        torn = true;
                        break;
                    }
                }
            }
            tail = Some((seq, valid_len));
            if torn {
                stopped = true;
            } else {
                expected = seq + 1;
            }
        }
        let writer = match tail {
            Some((seq, valid_len)) if valid_len >= SEGMENT_HEADER_LEN => {
                SegmentWriter::reopen(dir, seq, valid_len)?
            }
            // Header itself was torn (or no segment exists yet): start
            // the segment over.
            Some((seq, _)) => SegmentWriter::create(dir, seq)?,
            None => SegmentWriter::create(dir, start_seq)?,
        };
        rec.incr(MetricId::StoreBatchesRecovered, batches.len() as u64);
        if let Some(t0) = t0 {
            rec.observe(HistId::StoreRecoveryNs, t0.elapsed().as_nanos() as u64);
        }
        Ok(RecoveredShard {
            entries,
            batches,
            store: ShardStore {
                dir: dir.to_path_buf(),
                sync,
                segment_bytes,
                writer,
                unsynced: 0,
            },
        })
    }

    /// The shard directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the segment currently accepting appends.
    pub fn wal_seq(&self) -> u64 {
        self.writer.seq()
    }

    /// Append one ingest batch, rotating and syncing per policy.
    /// Returns the record's end position; the batch is *acknowledged*
    /// (guaranteed to survive recovery) once the policy has synced past
    /// it.
    pub fn append_batch<R: Recorder + ?Sized>(
        &mut self,
        batch: &[(u64, Bits)],
        rec: &R,
    ) -> io::Result<WalPosition> {
        self.append_batch_traced(batch, rec, TraceCtx::NONE)
    }

    /// [`ShardStore::append_batch`] carrying a [`TraceCtx`]: records a
    /// `wal` span over the whole append (parented to `ctx.parent`) with
    /// a child `fsync` span when the sync policy fired. Identical to
    /// `append_batch` when `ctx` is inactive or the recorder keeps no
    /// traces.
    pub fn append_batch_traced<R: Recorder + ?Sized>(
        &mut self,
        batch: &[(u64, Bits)],
        rec: &R,
        ctx: TraceCtx,
    ) -> io::Result<WalPosition> {
        let enabled = rec.enabled();
        let t0 = enabled.then(Instant::now);
        let wal_span = (ctx.active() && rec.trace_enabled()).then(|| (next_span_id(), now_ns()));
        let framed = frame_record(&encode_batch_payload(batch));
        if !self.writer.is_empty() && self.writer.len() + framed.len() as u64 > self.segment_bytes {
            self.rotate(rec)?;
        }
        let offset = self.writer.append(&framed)?;
        self.unsynced += 1;
        let must_sync = match self.sync {
            SyncPolicy::EveryBatch => true,
            SyncPolicy::EveryN(n) => self.unsynced >= n as u64,
            SyncPolicy::OnCheckpoint => false,
        };
        if must_sync {
            let fsync_span = wal_span.map(|(wal_id, _)| (next_span_id(), now_ns(), wal_id));
            self.sync(rec)?;
            if let Some((id, start, wal_id)) = fsync_span {
                rec.span(Span {
                    trace: ctx.trace,
                    id,
                    parent: wal_id,
                    stage: Stage::Fsync,
                    start_ns: start,
                    dur_ns: now_ns().saturating_sub(start),
                });
            }
        }
        rec.incr(MetricId::StoreWalAppends, 1);
        rec.incr(MetricId::StoreWalBytes, framed.len() as u64);
        if let Some(t0) = t0 {
            rec.observe(HistId::StoreWalAppendNs, t0.elapsed().as_nanos() as u64);
        }
        if let Some((id, start)) = wal_span {
            rec.span(Span {
                trace: ctx.trace,
                id,
                parent: ctx.parent,
                stage: Stage::Wal,
                start_ns: start,
                dur_ns: now_ns().saturating_sub(start),
            });
        }
        Ok(WalPosition {
            seq: self.writer.seq(),
            offset,
        })
    }

    /// Flush and fsync the current segment. Idempotent; a no-op when
    /// nothing was appended since the last sync.
    pub fn sync<R: Recorder + ?Sized>(&mut self, rec: &R) -> io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        let t0 = rec.enabled().then(Instant::now);
        self.writer.sync()?;
        self.unsynced = 0;
        rec.incr(MetricId::StoreFsyncs, 1);
        if let Some(t0) = t0 {
            rec.observe(HistId::StoreFsyncNs, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Close the current segment (durably) and open the next. The old
    /// segment is synced *before* the new one takes appends, so the
    /// durable log is always a byte-for-byte prefix of the appended one
    /// — recovery's stop-at-first-gap rule depends on this ordering.
    fn rotate<R: Recorder + ?Sized>(&mut self, rec: &R) -> io::Result<()> {
        // Unconditional sync (not `self.sync`): even with zero appends
        // since the last fsync, buffered bytes may remain under
        // `OnCheckpoint`.
        let t0 = rec.enabled().then(Instant::now);
        self.writer.sync()?;
        rec.incr(MetricId::StoreFsyncs, 1);
        if let Some(t0) = t0 {
            rec.observe(HistId::StoreFsyncNs, t0.elapsed().as_nanos() as u64);
        }
        self.unsynced = 0;
        self.writer = SegmentWriter::create(&self.dir, self.writer.seq() + 1)?;
        Ok(())
    }

    /// Durably checkpoint `entries` (every key's `encode()` bytes) and
    /// reclaim the WAL history the checkpoint supersedes.
    ///
    /// The WAL rotates to a fresh segment first and the checkpoint
    /// records that segment's sequence number, so recovery never needs a
    /// mid-segment resume offset: it replays whole segments `>= wal_seq`
    /// from their beginnings.
    pub fn checkpoint<R: Recorder + ?Sized>(
        &mut self,
        entries: Vec<(u64, Vec<u8>)>,
        rec: &R,
    ) -> io::Result<()> {
        let t0 = rec.enabled().then(Instant::now);
        if !self.writer.is_empty() {
            self.rotate(rec)?;
        } else {
            // Nothing appended to this segment; it is already the clean
            // resume point (but buffered header bytes etc. still need no
            // sync — creation wrote them through).
            self.writer.sync()?;
            self.unsynced = 0;
        }
        let wal_seq = self.writer.seq();
        write_checkpoint(&self.dir, &Checkpoint { wal_seq, entries })?;
        let mut reclaimed = 0u64;
        for seq in list_segments(&self.dir)?.range(..wal_seq) {
            if fs::remove_file(self.dir.join(segment_file_name(*seq))).is_ok() {
                reclaimed += 1;
            }
        }
        for seq in list_checkpoints(&self.dir)? {
            if seq < wal_seq {
                let _ = fs::remove_file(self.dir.join(checkpoint_file_name(seq)));
            }
        }
        rec.incr(MetricId::StoreSegmentsReclaimed, reclaimed);
        rec.incr(MetricId::StoreCheckpoints, 1);
        if let Some(t0) = t0 {
            rec.observe(HistId::StoreCheckpointNs, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waves_obs::NoopRecorder;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = crate::scratch_dir(tag);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(i: u64) -> Vec<(u64, Bits)> {
        vec![(i % 4, (0..=(i % 11)).map(|j| j % 2 == 0).collect())]
    }

    fn recover(dir: &Path, sync: SyncPolicy, seg: u64) -> RecoveredShard {
        ShardStore::recover(dir, sync, seg, &NoopRecorder).unwrap()
    }

    #[test]
    fn traced_append_records_wal_and_fsync_spans() {
        use waves_obs::trace::{SpanRecorder, TraceId};
        let dir = tmp_dir("shard-trace");
        let mut store = recover(&dir, SyncPolicy::EveryBatch, 1 << 20).store;
        let rec = SpanRecorder::new();
        let ctx = TraceCtx {
            trace: TraceId(77),
            parent: 5,
        };
        store.append_batch_traced(&batch(0), &rec, ctx).unwrap();
        let spans = rec.trace(TraceId(77));
        let wal = spans
            .iter()
            .find(|s| s.stage == Stage::Wal)
            .expect("wal span");
        let fsync = spans
            .iter()
            .find(|s| s.stage == Stage::Fsync)
            .expect("fsync span under EveryBatch");
        assert_eq!(wal.parent, 5);
        assert_eq!(fsync.parent, wal.id);
        assert!(fsync.dur_ns <= wal.dur_ns);
        // Untraced calls record nothing.
        store.append_batch(&batch(1), &rec).unwrap();
        assert_eq!(rec.spans().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_dir_recovers_empty_then_replays_appends() {
        let dir = tmp_dir("shard-fresh");
        let r = recover(&dir, SyncPolicy::EveryBatch, 1 << 20);
        assert!(r.entries.is_empty());
        assert!(r.batches.is_empty());
        let mut store = r.store;
        for i in 0..20 {
            store.append_batch(&batch(i), &NoopRecorder).unwrap();
        }
        drop(store);
        let r = recover(&dir, SyncPolicy::EveryBatch, 1 << 20);
        assert_eq!(r.batches.len(), 20);
        for (i, b) in r.batches.iter().enumerate() {
            assert_eq!(*b, batch(i as u64));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let dir = tmp_dir("shard-rotate");
        // Tiny segments force a rotation every couple of batches.
        let mut store = recover(&dir, SyncPolicy::EveryBatch, 128).store;
        for i in 0..30 {
            store.append_batch(&batch(i), &NoopRecorder).unwrap();
        }
        assert!(store.wal_seq() > 0, "expected at least one rotation");
        drop(store);
        assert!(list_segments(&dir).unwrap().len() > 1);
        let r = recover(&dir, SyncPolicy::EveryBatch, 128);
        assert_eq!(r.batches.len(), 30);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_reclaims_wal_and_recovery_prefers_it() {
        let dir = tmp_dir("shard-ckpt");
        let mut store = recover(&dir, SyncPolicy::EveryBatch, 256).store;
        for i in 0..25 {
            store.append_batch(&batch(i), &NoopRecorder).unwrap();
        }
        let entries = vec![(1u64, vec![0xAB; 9]), (2, vec![0xCD])];
        store.checkpoint(entries.clone(), &NoopRecorder).unwrap();
        // Everything before the checkpoint is gone from the log.
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(*segs.iter().next().unwrap(), store.wal_seq());
        // Post-checkpoint appends replay on top of the entries.
        store.append_batch(&batch(100), &NoopRecorder).unwrap();
        drop(store);
        let r = recover(&dir, SyncPolicy::EveryBatch, 256);
        assert_eq!(r.entries, entries);
        assert_eq!(r.batches, vec![batch(100)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_recovery_is_idempotent() {
        let dir = tmp_dir("shard-torn");
        let mut store = recover(&dir, SyncPolicy::EveryBatch, 1 << 20).store;
        let mut end = 0;
        for i in 0..10 {
            end = store.append_batch(&batch(i), &NoopRecorder).unwrap().offset;
        }
        let seg_path = dir.join(segment_file_name(store.wal_seq()));
        drop(store);
        // Tear the last record in half.
        fs::OpenOptions::new()
            .write(true)
            .open(&seg_path)
            .unwrap()
            .set_len(end - 3)
            .unwrap();
        let r = recover(&dir, SyncPolicy::EveryBatch, 1 << 20);
        assert_eq!(r.batches.len(), 9);
        drop(r);
        // The torn bytes were truncated: a second recover sees a clean
        // log with the same nine batches.
        let r = recover(&dir, SyncPolicy::EveryBatch, 1 << 20);
        assert_eq!(r.batches.len(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_after_a_torn_one_are_discarded() {
        let dir = tmp_dir("shard-gap");
        let mut store = recover(&dir, SyncPolicy::EveryBatch, 96).store;
        for i in 0..12 {
            store.append_batch(&batch(i), &NoopRecorder).unwrap();
        }
        assert!(store.wal_seq() >= 2, "need >= 3 segments for this test");
        drop(store);
        // Corrupt segment 0's first record: only its (empty) prefix is
        // acknowledged, so segments 1.. must not resurrect later batches.
        let p = dir.join(segment_file_name(0));
        let mut bytes = fs::read(&p).unwrap();
        let i = SEGMENT_HEADER_LEN as usize + 9;
        bytes[i] ^= 0xFF;
        fs::write(&p, &bytes).unwrap();
        let r = recover(&dir, SyncPolicy::EveryBatch, 96);
        assert!(r.batches.is_empty());
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn on_checkpoint_policy_defers_sync_but_checkpoint_lands_everything() {
        let dir = tmp_dir("shard-oncp");
        let mut store = recover(&dir, SyncPolicy::OnCheckpoint, 1 << 20).store;
        for i in 0..8 {
            store.append_batch(&batch(i), &NoopRecorder).unwrap();
        }
        store
            .checkpoint(vec![(7, vec![1, 2, 3])], &NoopRecorder)
            .unwrap();
        drop(store);
        let r = recover(&dir, SyncPolicy::OnCheckpoint, 1 << 20);
        assert_eq!(r.entries, vec![(7, vec![1, 2, 3])]);
        assert!(r.batches.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
