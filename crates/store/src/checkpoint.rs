//! Checkpoints: a durable snapshot of every key's synopsis bytes, named
//! by the WAL segment from which replay must resume.
//!
//! # File layout (`ckpt-<wal_seq:016x>.ckpt`)
//!
//! | offset  | width | field                                   |
//! |---------|-------|-----------------------------------------|
//! | 0       | 4     | magic `b"WCKP"`                         |
//! | 4       | 2     | format version, u16 BE (currently 1)    |
//! | 6       | 2     | reserved, zero                          |
//! | 8       | 8     | `wal_seq`, u64 BE — replay starts here  |
//! | 16      | 4     | key count `C`, u32 BE                   |
//! | 20      | ...   | `C` entries                             |
//! | end-4   | 4     | CRC-32 of bytes `[0, end-4)`, u32 BE    |
//!
//! Each entry: key u64 BE, synopsis byte length `L` u32 BE, then `L`
//! bytes — exactly the synopsis's `encode()` output, the same payload
//! the wire protocol's `PUSH_SYNOPSIS` frame carries.
//!
//! A checkpoint is written to a `.tmp` file, synced, and renamed into
//! place, so a crash mid-write can never shadow a good checkpoint with a
//! torn one; the CRC guards the remaining (hardware/filesystem) cases.
//! Recovery loads the highest-sequence checkpoint that validates and
//! replays WAL segments `>= wal_seq` on top of it.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::wal::STORE_VERSION;

/// First four bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"WCKP";
/// Fixed bytes before the entry list.
pub const CHECKPOINT_HEADER_LEN: usize = 20;

/// File name for the checkpoint that resumes replay at WAL segment
/// `wal_seq`.
pub fn checkpoint_file_name(wal_seq: u64) -> String {
    format!("ckpt-{wal_seq:016x}.ckpt")
}

/// Parse a WAL sequence number back out of a checkpoint file name.
pub fn parse_checkpoint_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// A decoded checkpoint: where to resume the WAL, and every key's
/// serialized synopsis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Replay WAL segments with sequence number `>= wal_seq`.
    pub wal_seq: u64,
    /// `(key, synopsis encode() bytes)`, sorted by key.
    pub entries: Vec<(u64, Vec<u8>)>,
}

/// Serialize a checkpoint (header, entries, trailing CRC).
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let body: usize = ckpt.entries.iter().map(|(_, b)| 12 + b.len()).sum();
    let mut out = Vec::with_capacity(CHECKPOINT_HEADER_LEN + body + 4);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes());
    out.extend_from_slice(&ckpt.wal_seq.to_be_bytes());
    out.extend_from_slice(&(ckpt.entries.len() as u32).to_be_bytes());
    for (key, bytes) in &ckpt.entries {
        out.extend_from_slice(&key.to_be_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(bytes);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

fn bad(what: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

/// Decode and validate [`encode_checkpoint`] bytes. Arbitrary input
/// never panics; any framing or checksum violation is `InvalidData`.
pub fn decode_checkpoint(bytes: &[u8]) -> io::Result<Checkpoint> {
    if bytes.len() < CHECKPOINT_HEADER_LEN + 4 {
        return Err(bad("checkpoint too short"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    if crc32(body) != u32::from_be_bytes(crc_bytes.try_into().unwrap()) {
        return Err(bad("checkpoint checksum mismatch"));
    }
    if body[0..4] != CHECKPOINT_MAGIC {
        return Err(bad("checkpoint magic"));
    }
    if u16::from_be_bytes(body[4..6].try_into().unwrap()) != STORE_VERSION {
        return Err(bad("checkpoint version"));
    }
    if body[6..8] != [0, 0] {
        return Err(bad("checkpoint reserved bytes"));
    }
    let wal_seq = u64::from_be_bytes(body[8..16].try_into().unwrap());
    let count = u32::from_be_bytes(body[16..20].try_into().unwrap());
    let mut entries = Vec::with_capacity((count as usize).min(1 << 16));
    let mut at = CHECKPOINT_HEADER_LEN;
    for _ in 0..count {
        if body.len() - at < 12 {
            return Err(bad("checkpoint entry truncated"));
        }
        let key = u64::from_be_bytes(body[at..at + 8].try_into().unwrap());
        let len = u32::from_be_bytes(body[at + 8..at + 12].try_into().unwrap()) as usize;
        at += 12;
        if body.len() - at < len {
            return Err(bad("checkpoint entry bytes truncated"));
        }
        entries.push((key, body[at..at + len].to_vec()));
        at += len;
    }
    if at != body.len() {
        return Err(bad("trailing bytes in checkpoint"));
    }
    Ok(Checkpoint { wal_seq, entries })
}

/// Durably write `ckpt` into `dir`: serialize to `<name>.tmp`, fsync,
/// rename over the final name, then best-effort fsync the directory so
/// the rename itself survives power loss.
pub fn write_checkpoint(dir: &Path, ckpt: &Checkpoint) -> io::Result<PathBuf> {
    let bytes = encode_checkpoint(ckpt);
    let final_path = dir.join(checkpoint_file_name(ckpt.wal_seq));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(ckpt.wal_seq)));
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Directory fsync is what makes the rename durable on Linux; other
    // platforms may not support opening a directory, so failure here
    // only weakens (never corrupts) the guarantee.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Load the highest-sequence checkpoint in `dir` that validates.
/// Invalid candidates are skipped (never deleted here — recovery is
/// read-only until the store is reopened for writing).
pub fn load_latest_checkpoint(dir: &Path) -> io::Result<Option<Checkpoint>> {
    let mut seqs: Vec<u64> = list_checkpoints(dir)?;
    seqs.sort_unstable();
    for seq in seqs.into_iter().rev() {
        let path = dir.join(checkpoint_file_name(seq));
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        if let Ok(ckpt) = decode_checkpoint(&bytes) {
            if ckpt.wal_seq == seq {
                return Ok(Some(ckpt));
            }
        }
    }
    Ok(None)
}

/// Sequence numbers of every checkpoint file in `dir` (validity not
/// checked).
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = parse_checkpoint_file_name(name) {
                seqs.push(seq);
            }
        }
    }
    Ok(seqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            wal_seq: 7,
            entries: vec![(1, vec![0xAA, 0xBB]), (42, Vec::new()), (99, vec![1; 33])],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ckpt = sample();
        assert_eq!(decode_checkpoint(&encode_checkpoint(&ckpt)).unwrap(), ckpt);
        let empty = Checkpoint {
            wal_seq: 0,
            entries: Vec::new(),
        };
        assert_eq!(
            decode_checkpoint(&encode_checkpoint(&empty)).unwrap(),
            empty
        );
    }

    #[test]
    fn any_corruption_or_truncation_rejects() {
        let bytes = encode_checkpoint(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_checkpoint(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x01;
            assert!(decode_checkpoint(&b).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn write_then_load_latest_prefers_highest_valid() {
        let dir = crate::scratch_dir("ckpt-latest");
        std::fs::create_dir_all(&dir).unwrap();
        let older = Checkpoint {
            wal_seq: 3,
            entries: vec![(1, vec![1])],
        };
        let newer = Checkpoint {
            wal_seq: 5,
            entries: vec![(1, vec![2])],
        };
        write_checkpoint(&dir, &older).unwrap();
        write_checkpoint(&dir, &newer).unwrap();
        assert_eq!(load_latest_checkpoint(&dir).unwrap().unwrap(), newer);
        // Corrupt the newest: recovery falls back to the older one.
        let p = dir.join(checkpoint_file_name(5));
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(load_latest_checkpoint(&dir).unwrap().unwrap(), older);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_names_roundtrip() {
        for seq in [0u64, 9, u64::MAX] {
            assert_eq!(
                parse_checkpoint_file_name(&checkpoint_file_name(seq)),
                Some(seq)
            );
        }
        assert_eq!(parse_checkpoint_file_name("wal-0000000000000000.log"), None);
    }
}
