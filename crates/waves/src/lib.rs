//! # waves
//!
//! A full implementation of **Gibbons & Tirthapura, "Distributed Streams
//! Algorithms for Sliding Windows" (SPAA 2002 / TOCS 2004)**: the *wave*
//! family of synopsis data structures for estimating aggregates over the
//! `N` most recent items of one or many data streams in polylogarithmic
//! space.
//!
//! This crate is the facade: it re-exports the public API of the
//! workspace crates so downstream users need a single dependency.
//!
//! ## What's inside
//!
//! | Problem | Type | Guarantee |
//! |---|---|---|
//! | 1's in a sliding window (single stream) | [`DetWave`] | `eps` rel. error, O(1) worst-case/item, O(1) query |
//! | Sum of ints in `[0..R]` in a window | [`SumWave`] | `eps` rel. error, O(1) worst-case/item |
//! | Windows over timestamped items | [`TimestampWave`] | Corollary 1 |
//! | Position of the n-th most recent 1 | [`NthRecentWave`] | `eps` on the age |
//! | Sliding average | [`SlidingAverage`] | `eps` via sum/count composition |
//! | 1's in a window of a **union of distributed streams** | [`UnionParty`] + [`Referee`] | `(eps, delta)`, space independent of `t` |
//! | Distinct values in a window of distributed streams | [`DistinctParty`] + [`DistinctReferee`] | `(eps, delta)` |
//! | Exponential-histogram baselines (Datar et al.) | [`EhCount`], [`EhSum`] | `eps`, O(1) *amortized*/item |
//! | Boosted basic counting baseline (Xu et al.) | [`XuCount`] | `eps`, O(1) worst-case/item |
//! | Continuously valid monitoring over distributed streams | [`PushParty`] + [`MonitorReferee`] | ε-split push deltas, bounded staleness |
//! | Many keyed windows served concurrently | [`Engine`] | sharded threads, batched ingest, backpressure |
//!
//! ## Quick start
//!
//! ```
//! use waves::DetWave;
//!
//! // Track how many of the last 10_000 requests were errors, within 5%.
//! let mut errors = DetWave::builder().max_window(10_000).eps(0.05).build().unwrap();
//! for i in 0..100_000u64 {
//!     errors.push_bit(i % 50 == 0); // one error every 50 requests
//! }
//! let est = errors.query_max();
//! assert!(est.relative_error(200) <= 0.05); // 10_000 / 50 = 200
//! ```
//!
//! Serving one window per key (per user, per flow, ...) from a shared
//! engine:
//!
//! ```
//! use waves::{Engine, EngineConfig, IngestRequest};
//!
//! let cfg = EngineConfig::builder().num_shards(2).max_window(1_000).eps(0.1).build();
//! let engine = Engine::new(cfg).unwrap();
//! engine.ingest(IngestRequest::of(7, [true, false, true]).blocking(true)).unwrap();
//! engine.flush();
//! assert_eq!(engine.query(7, 1_000).unwrap().value, 2.0);
//! ```
//!
//! Distributed union counting:
//!
//! ```
//! use rand::SeedableRng;
//! use waves::{estimate_union, RandConfig, Referee, UnionParty};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // Stored coins: sample once, share with every party and the referee.
//! let cfg = RandConfig::for_positions(1_000, 0.2, 0.05, &mut rng).unwrap();
//! let mut site_a = UnionParty::new(&cfg);
//! let mut site_b = UnionParty::new(&cfg);
//! for i in 0..5_000u64 {
//!     site_a.push_bit(i % 4 == 0);
//!     site_b.push_bit(i % 6 == 0);
//! }
//! let referee = Referee::new(cfg);
//! let est = estimate_union(&referee, &[site_a, site_b], 1_000).unwrap();
//! let actual = 333.0; // |{i : 4|i or 6|i}| in any 1000-aligned window
//! assert!((est - actual).abs() / actual < 0.2);
//! ```

pub use waves_core::{
    average, basic_wave, bits, chain, codec, decay, det_wave, error, estimate, exact, histogram,
    level, nth_recent, space, sum_wave, timestamp, timestamp_sum, traits, window,
};
pub use waves_core::{
    decayed_sum, ratio_error_target, ratio_estimate, BasicWave, BitSynopsis, Bits, Decay,
    DecayedEstimate, DetWave, DetWaveBuilder, Estimate, ExactCount, ExactDistinct, ExactSum,
    ModRing, NthRecentWave, RatioEstimate, SlidingAverage, SpaceReport, SumSynopsis, SumWave,
    SumWaveBuilder, Synopsis, TimestampSumWave, TimestampWave, WaveError, WindowedHistogram,
};

pub use waves_eh::{EhCount, EhCountBuilder, EhSum, EhSumBuilder, XuCount};

pub use waves_engine::{
    Engine, EngineConfig, EngineConfigBuilder, EngineSnapshot, IngestRequest, KeyedBits,
    PersistConfig, ShardSnapshot, SyncPolicy,
};

pub use waves_gf2::{Gf2Field, LevelHash};

pub use waves_rand::{
    combine_distinct_instance, combine_instance, estimate_distinct, estimate_union, instances_for,
    median, DistinctMessage, DistinctParty, DistinctReferee, DistinctReport, DistinctWave,
    InstanceReport, PartyMessage, RandConfig, Referee, UnionParty, UnionWave, PAPER_C,
};

pub use waves_distributed::{
    combine_estimates, coord_distinct_estimate, coord_union_estimate, det_combine,
    run_distinct_threaded, run_distinct_threaded_recorded, run_union_threaded,
    run_union_threaded_recorded, simulate_async_union, AsyncQueryOutcome, CommStats,
    CoordDistinctParty, CoordSampleParty, DetCombine, MonitorConfig, MonitorDelta, MonitorReferee,
    PartyComm, PushParty, Scenario1Count, Scenario1Sum, Scenario2Count, Scenario3PositionwiseSum,
    ThreadedRun,
};

/// Networked transport: wire protocol, TCP server/client, networked
/// referee, and fault-injection proxy (re-export of `waves-net`).
pub mod net {
    pub use waves_net::*;
}

/// Observability: counters, latency histograms, event sinks
/// (re-export of the zero-dependency `waves-obs` crate).
pub mod obs {
    pub use waves_obs::*;
}

/// Clustering: consistent-hash routing over several `waves-net`
/// servers, primary/follower synopsis replication, anti-entropy, and
/// failover (re-export of `waves-cluster`).
pub mod cluster {
    pub use waves_cluster::*;
}

/// Durability: per-shard write-ahead log, checkpoints, and crash
/// recovery (re-export of `waves-store`). Most users only need
/// [`EngineConfigBuilder::persist`](crate::EngineConfigBuilder::persist);
/// this module exposes the raw store for tools and tests.
pub mod store {
    pub use waves_store::*;
}

/// Workload generators used by the examples, tests, and experiments.
pub mod streamgen {
    pub use waves_streamgen::*;
}

/// Deterministic simulation testing: seed-replayable fault schedules
/// driving the full engine + net + store stack against exact and EH
/// oracles (re-export of `waves-dst`). Replay a failure with
/// `waves dst --seed <n>`.
pub mod dst {
    pub use waves_dst::*;
}
