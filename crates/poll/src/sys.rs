//! The thin syscall floor under the poller: `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd2`, and `prlimit64`, invoked
//! directly (no libc wrappers) on the architectures this workspace
//! targets.
//!
//! On x86_64 and aarch64 the calls are inline-asm `syscall`/`svc 0`
//! instructions with the per-architecture numbers; errors come back as
//! `-errno` and are mapped to [`std::io::Error`]. aarch64 never had an
//! `epoll_wait` syscall, so both architectures go through
//! `epoll_pwait` with a null signal mask — identical semantics. Other
//! Linux architectures fall back to the libc symbols std already links
//! (same behavior, numbered by someone else); non-Linux targets fail to
//! compile with a clear message rather than pretending.

#![allow(clippy::missing_safety_doc)]

use std::io;

#[cfg(not(target_os = "linux"))]
compile_error!("the vendored `poll` crate is epoll-based and Linux-only");

// ---------------------------------------------------------------------------
// epoll ABI constants (stable kernel ABI, identical on every arch)
// ---------------------------------------------------------------------------

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o0004000;

const RLIMIT_NOFILE: i32 = 7;

/// One kernel `struct epoll_event`. Packed on x86_64 (the one ABI
/// where the kernel declares it so), naturally aligned elsewhere.
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
pub struct Rlimit {
    pub cur: u64,
    pub max: u64,
}

// ---------------------------------------------------------------------------
// Direct syscalls: x86_64
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::io;

    mod nr {
        pub const EPOLL_CTL: i64 = 233;
        pub const EPOLL_PWAIT: i64 = 281;
        pub const EPOLL_CREATE1: i64 = 291;
        pub const EVENTFD2: i64 = 290;
        pub const PRLIMIT64: i64 = 302;
    }

    /// Raw 6-argument syscall. Returns the kernel's value verbatim
    /// (negative = `-errno`).
    unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1(flags: i32) -> io::Result<i32> {
        check(unsafe { syscall6(nr::EPOLL_CREATE1, flags as i64, 0, 0, 0, 0, 0) }).map(|v| v as i32)
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, ev: *mut super::EpollEvent) -> io::Result<()> {
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as i64,
                op as i64,
                fd as i64,
                ev as i64,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    pub fn epoll_wait(
        epfd: i32,
        events: *mut super::EpollEvent,
        max: i32,
        timeout_ms: i32,
    ) -> io::Result<usize> {
        // epoll_pwait with a null sigmask is epoll_wait; going through
        // the pwait entry point keeps x86_64 and aarch64 on the same
        // call shape (aarch64 has no epoll_wait syscall at all).
        check(unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as i64,
                events as i64,
                max as i64,
                timeout_ms as i64,
                0,
                8,
            )
        })
        .map(|v| v as usize)
    }

    pub fn eventfd2(initval: u32, flags: i32) -> io::Result<i32> {
        check(unsafe { syscall6(nr::EVENTFD2, initval as i64, flags as i64, 0, 0, 0, 0) })
            .map(|v| v as i32)
    }

    pub fn prlimit64(
        resource: i32,
        new: *const super::Rlimit,
        old: *mut super::Rlimit,
    ) -> io::Result<()> {
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0, // pid 0: this process
                resource as i64,
                new as i64,
                old as i64,
                0,
                0,
            )
        })
        .map(|_| ())
    }
}

// ---------------------------------------------------------------------------
// Direct syscalls: aarch64
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod imp {
    use std::io;

    mod nr {
        pub const EPOLL_CTL: i64 = 21;
        pub const EPOLL_PWAIT: i64 = 22;
        pub const EPOLL_CREATE1: i64 = 20;
        pub const EVENTFD2: i64 = 19;
        pub const PRLIMIT64: i64 = 261;
    }

    unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1(flags: i32) -> io::Result<i32> {
        check(unsafe { syscall6(nr::EPOLL_CREATE1, flags as i64, 0, 0, 0, 0, 0) }).map(|v| v as i32)
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, ev: *mut super::EpollEvent) -> io::Result<()> {
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as i64,
                op as i64,
                fd as i64,
                ev as i64,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    pub fn epoll_wait(
        epfd: i32,
        events: *mut super::EpollEvent,
        max: i32,
        timeout_ms: i32,
    ) -> io::Result<usize> {
        check(unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as i64,
                events as i64,
                max as i64,
                timeout_ms as i64,
                0,
                8,
            )
        })
        .map(|v| v as usize)
    }

    pub fn eventfd2(initval: u32, flags: i32) -> io::Result<i32> {
        check(unsafe { syscall6(nr::EVENTFD2, initval as i64, flags as i64, 0, 0, 0, 0) })
            .map(|v| v as i32)
    }

    pub fn prlimit64(
        resource: i32,
        new: *const super::Rlimit,
        old: *mut super::Rlimit,
    ) -> io::Result<()> {
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                resource as i64,
                new as i64,
                old as i64,
                0,
                0,
            )
        })
        .map(|_| ())
    }
}

// ---------------------------------------------------------------------------
// Fallback: other Linux architectures, through the libc symbols std
// already links (same kernel interface, numbered by someone else).
// ---------------------------------------------------------------------------

#[cfg(all(
    target_os = "linux",
    not(any(target_arch = "x86_64", target_arch = "aarch64"))
))]
mod imp {
    use std::io;

    mod c {
        use std::os::raw::{c_int, c_uint};

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(
                epfd: c_int,
                op: c_int,
                fd: c_int,
                event: *mut crate::sys::EpollEvent,
            ) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut crate::sys::EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
            pub fn prlimit64(
                pid: c_int,
                resource: c_int,
                new_limit: *const crate::sys::Rlimit,
                old_limit: *mut crate::sys::Rlimit,
            ) -> c_int;
        }
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1(flags: i32) -> io::Result<i32> {
        check(unsafe { c::epoll_create1(flags) })
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, ev: *mut super::EpollEvent) -> io::Result<()> {
        check(unsafe { c::epoll_ctl(epfd, op, fd, ev) }).map(|_| ())
    }

    pub fn epoll_wait(
        epfd: i32,
        events: *mut super::EpollEvent,
        max: i32,
        timeout_ms: i32,
    ) -> io::Result<usize> {
        check(unsafe { c::epoll_wait(epfd, events, max, timeout_ms) }).map(|v| v as usize)
    }

    pub fn eventfd2(initval: u32, flags: i32) -> io::Result<i32> {
        check(unsafe { c::eventfd(initval, flags) })
    }

    pub fn prlimit64(
        resource: i32,
        new: *const super::Rlimit,
        old: *mut super::Rlimit,
    ) -> io::Result<()> {
        check(unsafe { c::prlimit64(0, resource, new, old) }).map(|_| ())
    }
}

// ---------------------------------------------------------------------------
// The surface lib.rs builds on
// ---------------------------------------------------------------------------

pub fn epoll_create() -> io::Result<i32> {
    imp::epoll_create1(EPOLL_CLOEXEC)
}

pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    let ptr = if op == EPOLL_CTL_DEL {
        std::ptr::null_mut()
    } else {
        &mut ev as *mut EpollEvent
    };
    imp::epoll_ctl(epfd, op, fd, ptr)
}

pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    debug_assert!(!events.is_empty());
    imp::epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
}

pub fn eventfd() -> io::Result<i32> {
    imp::eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)
}

/// Read the process's `RLIMIT_NOFILE` as `(soft, hard)`.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut old = Rlimit::default();
    imp::prlimit64(RLIMIT_NOFILE, std::ptr::null(), &mut old)?;
    Ok((old.cur, old.max))
}

/// Raise the soft `RLIMIT_NOFILE` to the hard limit and return the new
/// soft value. Needed before opening tens of thousands of loopback
/// sockets (the `net-concurrency` experiment); a no-op when soft
/// already equals hard.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let (cur, max) = nofile_limit()?;
    if cur >= max {
        return Ok(cur);
    }
    let new = Rlimit { cur: max, max };
    imp::prlimit64(RLIMIT_NOFILE, &new, std::ptr::null_mut())?;
    Ok(max)
}
