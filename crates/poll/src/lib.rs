//! `poll`: a tiny mio-style readiness poller over raw epoll, std-only.
//!
//! The workspace's networking layer (`waves-net`) multiplexes thousands
//! of non-blocking connections on one event-loop thread. The usual
//! crates for that (mio, polling) live on the registry this build
//! environment cannot reach, so — like `rand`, `proptest`, and
//! `criterion` here — the needed subset is vendored: a [`Poller`] you
//! register file descriptors with, an [`Events`] buffer to drain, and a
//! [`Waker`] for cross-thread wakeups, all over direct `epoll`
//! syscalls ([`sys`] has the per-architecture numbers and the inline
//! asm).
//!
//! Semantics are deliberately plain:
//!
//! * **Level-triggered.** An fd that stays readable keeps showing up —
//!   no starvation bookkeeping, and a registration that re-enables
//!   reads after backpressure sees buffered data immediately.
//! * **One token per fd.** [`Token`] is a bare `usize` the caller maps
//!   back to its own connection table; the poller stores it in the
//!   kernel's `epoll_data` and hands it back verbatim.
//! * **Waker = eventfd.** [`Waker::wake`] is async-signal-safe-ish
//!   (one 8-byte write), cheap to call from any thread, and collapses
//!   concurrent wakes into one readiness event. [`Waker::ack`] drains
//!   it (required under level triggering).
//!
//! ```no_run
//! use poll::{Events, Interest, Poller, Token};
//! use std::net::TcpListener;
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! let poller = Poller::new().unwrap();
//! poller.register(&listener, Token(0), Interest::READ).unwrap();
//! let mut events = Events::with_capacity(64);
//! poller.wait(&mut events, None).unwrap();
//! for ev in events.iter() {
//!     assert_eq!(ev.token, Token(0));
//!     assert!(ev.readable);
//! }
//! ```

pub mod sys;

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

pub use sys::{nofile_limit, raise_nofile_limit};

/// Caller-chosen identifier attached to a registration and handed back
/// with every readiness event for that fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn epoll_bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    /// `EPOLLERR`: the fd is in an error state; reads/writes will
    /// surface the specific `io::Error`.
    pub error: bool,
    /// `EPOLLHUP` / `EPOLLRDHUP`: the peer closed (fully or its write
    /// half). Reads drain any buffered bytes and then return 0.
    pub hangup: bool,
}

/// Reusable buffer of kernel events. Sized once; a full buffer simply
/// means the next [`Poller::wait`] returns the remainder (level
/// triggering re-reports unconsumed readiness).
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent::default(); cap.max(1)],
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy out of the (possibly packed) kernel struct before
            // touching the fields.
            let events = raw.events;
            let data = raw.data;
            Event {
                token: Token(data as usize),
                readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: events & sys::EPOLLOUT != 0,
                error: events & sys::EPOLLERR != 0,
                hangup: events & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            }
        })
    }
}

/// The epoll instance. `register`/`reregister`/`deregister` take
/// anything [`AsRawFd`]; the caller keeps ownership of the fd and must
/// deregister (or just close) it before reuse.
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let fd = sys::epoll_create()?;
        // SAFETY: epoll_create1 returned a fresh fd we own.
        Ok(Poller {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd.as_raw_fd(), token, interest)
    }

    /// Replace an existing registration's interest/token.
    pub fn reregister(
        &self,
        fd: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd.as_raw_fd(), token, interest)
    }

    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd.as_raw_fd(),
            sys::EPOLL_CTL_DEL,
            fd.as_raw_fd(),
            0,
            0,
        )
    }

    fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd.as_raw_fd(),
            op,
            fd,
            interest.epoll_bits(),
            token.0 as u64,
        )
    }

    /// Block until at least one registered fd is ready, the timeout
    /// elapses (`Ok` with zero events), or a signal interrupts the wait
    /// (also surfaced as zero events — callers loop anyway). `None`
    /// blocks indefinitely.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => {
                // Round sub-millisecond timeouts up to 1ms instead of
                // busy-spinning at 0.
                let ms = d.as_millis();
                let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        events.len = 0;
        match sys::epoll_wait(self.epfd.as_raw_fd(), &mut events.buf, timeout_ms) {
            Ok(n) => {
                events.len = n;
                Ok(n)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl AsRawFd for Poller {
    fn as_raw_fd(&self) -> RawFd {
        self.epfd.as_raw_fd()
    }
}

/// Cross-thread wakeup for a [`Poller`] parked in [`Poller::wait`]:
/// an eventfd registered like any other fd. Clone the `Arc` into
/// producer threads; [`Waker::wake`] from any of them makes the
/// poller report the waker's token readable until [`Waker::ack`] runs.
pub struct Waker {
    /// The eventfd, behind a `File` so `&Waker` can read/write it
    /// without extra syscall plumbing.
    fd: std::fs::File,
}

impl Waker {
    /// Create an eventfd and register it with `poller` under `token`.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Arc<Waker>> {
        let raw = sys::eventfd()?;
        // SAFETY: eventfd2 returned a fresh fd we own.
        let fd = std::fs::File::from(unsafe { OwnedFd::from_raw_fd(raw) });
        let waker = Arc::new(Waker { fd });
        poller.register(&waker.fd, token, Interest::READ)?;
        Ok(waker)
    }

    /// Make the poller's next (or current) wait return with this
    /// waker's token readable. Cheap; concurrent wakes coalesce.
    pub fn wake(&self) {
        // An eventfd write only fails if the counter would overflow —
        // which still leaves the fd readable, so the wake landed.
        let one = 1u64.to_ne_bytes();
        let _ = io::Write::write(&mut (&self.fd), &one);
    }

    /// Drain the eventfd so it stops reporting readable (call when the
    /// waker's token comes out of [`Poller::wait`]; required under
    /// level triggering).
    pub fn ack(&self) {
        let mut buf = [0u8; 8];
        let _ = io::Read::read(&mut (&self.fd), &mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn timeout_returns_zero_events() {
        let poller = Poller::new().unwrap();
        let mut events = Events::with_capacity(8);
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn readable_after_peer_writes() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(&b, Token(7), Interest::READ).unwrap();
        let mut events = Events::with_capacity(8);
        // Nothing to read yet.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        a.write_all(b"hello").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, Token(7));
        assert!(ev.readable && !ev.writable);
    }

    #[test]
    fn writable_is_level_triggered_and_interest_can_change() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(&a, Token(1), Interest::BOTH).unwrap();
        let mut events = Events::with_capacity(8);
        // A fresh socket with empty send buffer is writable, and stays
        // so on a second wait (level-triggered).
        for _ in 0..2 {
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1);
            assert!(events.iter().next().unwrap().writable);
        }
        // Dropping write interest silences it.
        poller.reregister(&a, Token(1), Interest::READ).unwrap();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn hangup_reports_on_peer_close() {
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(&b, Token(3), Interest::READ).unwrap();
        drop(a);
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.hangup);
        assert!(ev.readable, "hangup counts as readable: read returns 0");
        let mut buf = [0u8; 8];
        assert_eq!((&b).read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn deregistered_fd_goes_silent() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(&b, Token(4), Interest::READ).unwrap();
        a.write_all(&[1]).unwrap();
        let mut events = Events::with_capacity(8);
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap(),
            1
        );
        poller.deregister(&b).unwrap();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn waker_crosses_threads_and_acks() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, Token(usize::MAX)).unwrap();
        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
            remote.wake(); // coalesces with the first
        });
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token, Token(usize::MAX));
        waker.ack();
        // Drained: no further event without a new wake.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );
        handle.join().unwrap();
    }

    #[test]
    fn many_registrations_round_trip_tokens() {
        let poller = Poller::new().unwrap();
        let mut streams = Vec::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        for i in 0..50usize {
            let a = TcpStream::connect(addr).unwrap();
            let (b, _) = listener.accept().unwrap();
            b.set_nonblocking(true).unwrap();
            poller.register(&b, Token(i), Interest::READ).unwrap();
            streams.push((a, b));
        }
        for (a, _) in streams.iter_mut() {
            a.write_all(&[9]).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut events = Events::with_capacity(16); // smaller than ready set
        let t0 = Instant::now();
        while seen.len() < 50 && t0.elapsed() < Duration::from_secs(10) {
            poller
                .wait(&mut events, Some(Duration::from_secs(1)))
                .unwrap();
            for ev in events.iter() {
                // Consume so level triggering stops re-reporting.
                let mut buf = [0u8; 1];
                let _ = (&streams[ev.token.0].1).read(&mut buf);
                seen.insert(ev.token.0);
            }
        }
        assert_eq!(seen.len(), 50, "every token reported");
    }

    #[test]
    fn nofile_limit_is_sane() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        // Raising to the hard cap must succeed and report it.
        let raised = raise_nofile_limit().unwrap();
        assert_eq!(raised, hard);
    }
}
