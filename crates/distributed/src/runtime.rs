//! Multi-threaded distributed driver.
//!
//! Runs one OS thread per party, exactly mirroring the model: each party
//! observes only its own stream and communicates only at query time, by
//! sending a message over a channel to the Referee thread. Checkpoints
//! are positions at which every party emits its message; the Referee
//! combines the `t` messages per checkpoint as they arrive.

use crate::comm::CommStats;
use std::sync::mpsc;
use std::time::Instant;
use waves_obs::{HistId, HistogramSnapshot, LogHistogram, MetricId, NoopRecorder, Recorder};
use waves_rand::{
    DistinctMessage, DistinctParty, DistinctReferee, PartyMessage, RandConfig, Referee, UnionParty,
};

/// Result of a threaded run: one estimate per checkpoint, plus
/// communication totals and referee-side combine timing.
#[derive(Debug, Clone)]
pub struct ThreadedRun {
    /// `(position, estimate)` per checkpoint, in stream order.
    pub estimates: Vec<(u64, f64)>,
    pub comm: CommStats,
    /// Wall time of each referee combine (one sample per checkpoint).
    pub combine_ns: HistogramSnapshot,
}

/// Run Union Counting with one thread per party. Each party processes
/// its whole bit stream, emitting its query message at every checkpoint
/// position; the Referee thread (this thread) combines them.
///
/// All streams must have equal length (the positionwise model).
pub fn run_union_threaded(
    config: &RandConfig,
    streams: &[Vec<bool>],
    checkpoints: &[u64],
    window: u64,
) -> ThreadedRun {
    run_union_threaded_recorded(config, streams, checkpoints, window, &NoopRecorder)
}

/// [`run_union_threaded`] with referee-side instrumentation reported
/// into `rec`: per-party message/byte counters and combine latency.
pub fn run_union_threaded_recorded<R: Recorder + ?Sized>(
    config: &RandConfig,
    streams: &[Vec<bool>],
    checkpoints: &[u64],
    window: u64,
    rec: &R,
) -> ThreadedRun {
    let t = streams.len();
    assert!(t >= 1);
    let len = streams[0].len();
    assert!(streams.iter().all(|s| s.len() == len));
    assert!(checkpoints.windows(2).all(|w| w[0] < w[1]));
    assert!(checkpoints.iter().all(|&c| (1..=len as u64).contains(&c)));
    assert!(
        window <= config.max_window(),
        "window exceeds config maximum"
    );

    let (tx, rx) = mpsc::channel::<(usize, usize, PartyMessage)>();
    let referee = Referee::new(config.clone());
    let mut comm = CommStats::default();
    let combine_hist = LogHistogram::new();

    std::thread::scope(|scope| {
        for (j, stream) in streams.iter().enumerate() {
            let tx = tx.clone();
            let config = config.clone();
            scope.spawn(move || {
                let mut party = UnionParty::new(&config);
                let mut next_cp = 0usize;
                for &b in stream {
                    party.push_bit(b);
                    while next_cp < checkpoints.len() && checkpoints[next_cp] == party.pos() {
                        let msg = party
                            .message(window.min(party.pos()))
                            .expect("window <= max_window");
                        tx.send((j, next_cp, msg)).expect("referee alive");
                        next_cp += 1;
                    }
                }
            });
        }
        drop(tx);

        // Referee: gather t messages per checkpoint, combine when ready.
        let mut pending: Vec<Vec<Option<PartyMessage>>> = vec![vec![None; t]; checkpoints.len()];
        let mut estimates: Vec<Option<(u64, f64)>> = vec![None; checkpoints.len()];
        for (j, cp, msg) in rx.iter() {
            let bytes = msg.wire_bytes(config);
            comm.record_party(j, bytes);
            rec.incr(MetricId::PartyMessagesSent, 1);
            rec.incr(MetricId::PartyBytesSent, bytes as u64);
            pending[cp][j] = Some(msg);
            if pending[cp].iter().all(Option::is_some) {
                let msgs: Vec<PartyMessage> =
                    pending[cp].iter_mut().map(|m| m.take().unwrap()).collect();
                let pos = checkpoints[cp];
                let s = (pos + 1).saturating_sub(window.min(pos));
                let started = Instant::now();
                let est = referee.estimate(&msgs, s);
                let ns = started.elapsed().as_nanos() as u64;
                combine_hist.record(ns);
                rec.incr(MetricId::RefereeCombines, 1);
                rec.observe(HistId::RefereeCombineNs, ns);
                estimates[cp] = Some((pos, est));
            }
        }
        ThreadedRun {
            estimates: estimates
                .into_iter()
                .map(|e| e.expect("all checkpoints served"))
                .collect(),
            comm,
            combine_ns: combine_hist.snapshot(),
        }
    })
}

/// Run distributed distinct counting with one thread per party.
/// `streams[j][i]` is the value party `j` observes at position `i + 1`.
pub fn run_distinct_threaded(
    config: &RandConfig,
    streams: &[Vec<u64>],
    checkpoints: &[u64],
    window: u64,
) -> ThreadedRun {
    run_distinct_threaded_recorded(config, streams, checkpoints, window, &NoopRecorder)
}

/// [`run_distinct_threaded`] with referee-side instrumentation.
pub fn run_distinct_threaded_recorded<R: Recorder + ?Sized>(
    config: &RandConfig,
    streams: &[Vec<u64>],
    checkpoints: &[u64],
    window: u64,
    rec: &R,
) -> ThreadedRun {
    let t = streams.len();
    assert!(t >= 1);
    let len = streams[0].len();
    assert!(streams.iter().all(|s| s.len() == len));
    assert!(checkpoints.windows(2).all(|w| w[0] < w[1]));
    assert!(checkpoints.iter().all(|&c| (1..=len as u64).contains(&c)));
    assert!(
        window <= config.max_window(),
        "window exceeds config maximum"
    );

    let (tx, rx) = mpsc::channel::<(usize, usize, DistinctMessage)>();
    let referee = DistinctReferee::new(config.clone());
    let mut comm = CommStats::default();
    let combine_hist = LogHistogram::new();

    std::thread::scope(|scope| {
        for (j, stream) in streams.iter().enumerate() {
            let tx = tx.clone();
            let config = config.clone();
            scope.spawn(move || {
                let mut party = DistinctParty::new(&config);
                let mut next_cp = 0usize;
                for &v in stream {
                    party.push_value(v);
                    while next_cp < checkpoints.len() && checkpoints[next_cp] == party.pos() {
                        let msg = party
                            .message(window.min(party.pos()))
                            .expect("window <= max_window");
                        tx.send((j, next_cp, msg)).expect("referee alive");
                        next_cp += 1;
                    }
                }
            });
        }
        drop(tx);

        let mut pending: Vec<Vec<Option<DistinctMessage>>> = vec![vec![None; t]; checkpoints.len()];
        let mut estimates: Vec<Option<(u64, f64)>> = vec![None; checkpoints.len()];
        let degree = config.degree();
        for (j, cp, msg) in rx.iter() {
            let bytes: usize = msg
                .reports
                .iter()
                .map(|r| r.wire_bytes(degree, degree))
                .sum();
            comm.record_party(j, bytes);
            rec.incr(MetricId::PartyMessagesSent, 1);
            rec.incr(MetricId::PartyBytesSent, bytes as u64);
            pending[cp][j] = Some(msg);
            if pending[cp].iter().all(Option::is_some) {
                let msgs: Vec<DistinctMessage> =
                    pending[cp].iter_mut().map(|m| m.take().unwrap()).collect();
                let pos = checkpoints[cp];
                let s = (pos + 1).saturating_sub(window.min(pos));
                let started = Instant::now();
                let est = referee.estimate(&msgs, s);
                let ns = started.elapsed().as_nanos() as u64;
                combine_hist.record(ns);
                rec.incr(MetricId::RefereeCombines, 1);
                rec.observe(HistId::RefereeCombineNs, ns);
                estimates[cp] = Some((pos, est));
            }
        }
        ThreadedRun {
            estimates: estimates
                .into_iter()
                .map(|e| e.expect("all checkpoints served"))
                .collect(),
            comm,
            combine_ns: combine_hist.snapshot(),
        }
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waves_streamgen::{correlated_streams, positionwise_union};

    #[test]
    fn threaded_union_matches_sequential() {
        let t = 4;
        let len = 3000usize;
        let window = 256u64;
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RandConfig::for_positions(window, 0.3, 0.3, &mut rng)
            .unwrap()
            .with_instances(5, &mut rng);
        let streams = correlated_streams(t, len, 0.25, 0.25, 42);
        let checkpoints: Vec<u64> = vec![500, 1500, 3000];
        let run = run_union_threaded(&cfg, &streams, &checkpoints, window);

        // Sequential reference with the same config.
        let mut parties: Vec<UnionParty> = (0..t).map(|_| UnionParty::new(&cfg)).collect();
        let referee = Referee::new(cfg);
        let mut want = Vec::new();
        for i in 0..len {
            for (j, p) in parties.iter_mut().enumerate() {
                p.push_bit(streams[j][i]);
            }
            let pos = (i + 1) as u64;
            if checkpoints.contains(&pos) {
                let est = waves_rand::estimate_union(&referee, &parties, window.min(pos)).unwrap();
                want.push((pos, est));
            }
        }
        assert_eq!(run.estimates, want);
        assert_eq!(run.comm.messages, (t * checkpoints.len()) as u64);
    }

    #[test]
    fn threaded_union_accuracy() {
        let t = 3;
        let len = 4000usize;
        let window = 512u64;
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RandConfig::for_positions(window, 0.25, 0.2, &mut rng)
            .unwrap()
            .with_instances(9, &mut rng);
        let streams = correlated_streams(t, len, 0.3, 0.2, 7);
        let run = run_union_threaded(&cfg, &streams, &[4000], window);
        let union = positionwise_union(&streams);
        let actual = union[len - window as usize..]
            .iter()
            .filter(|&&b| b)
            .count() as f64;
        let (_, est) = run.estimates[0];
        assert!(
            (est - actual).abs() / actual <= 0.25,
            "est {est} actual {actual}"
        );
    }

    #[test]
    fn threaded_single_party_and_early_checkpoints() {
        // t = 1 and a checkpoint before the window fills: the driver
        // must clamp the window to the stream length so far.
        let window = 1_000u64;
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = RandConfig::for_positions(window, 0.3, 0.3, &mut rng)
            .unwrap()
            .with_instances(3, &mut rng);
        let stream: Vec<bool> = (0..500).map(|i| i % 4 == 0).collect();
        let run = run_union_threaded(&cfg, std::slice::from_ref(&stream), &[100, 500], window);
        assert_eq!(run.estimates.len(), 2);
        // Sparse enough that level 0 covers everything: exact answers.
        let (pos1, est1) = run.estimates[0];
        assert_eq!(pos1, 100);
        assert_eq!(est1, 25.0);
        let (_, est2) = run.estimates[1];
        assert_eq!(est2, 125.0);
    }

    #[test]
    fn threaded_union_per_party_breakdown() {
        let t = 3;
        let window = 128u64;
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = RandConfig::for_positions(window, 0.3, 0.3, &mut rng)
            .unwrap()
            .with_instances(3, &mut rng);
        let streams = correlated_streams(t, 1000, 0.25, 0.25, 4);
        let checkpoints: Vec<u64> = vec![400, 1000];
        let reg = waves_obs::MetricsRegistry::new();
        let run = run_union_threaded_recorded(&cfg, &streams, &checkpoints, window, &reg);

        // Every party sent one message per checkpoint; the breakdown
        // sums to the totals and bounds the worst party.
        assert_eq!(run.comm.per_party.len(), t);
        for p in &run.comm.per_party {
            assert_eq!(p.messages, checkpoints.len() as u64);
        }
        let sum: u64 = run.comm.per_party.iter().map(|p| p.bytes).sum();
        assert_eq!(sum, run.comm.bytes);
        let (_, worst) = run.comm.worst_party().unwrap();
        assert!(worst.bytes >= run.comm.bytes / t as u64);

        // Recorder saw the same traffic, and one combine per checkpoint.
        use waves_obs::MetricId as M;
        assert_eq!(reg.counter(M::PartyMessagesSent), run.comm.messages);
        assert_eq!(reg.counter(M::PartyBytesSent), run.comm.bytes);
        assert_eq!(reg.counter(M::RefereeCombines), checkpoints.len() as u64);
        assert_eq!(run.combine_ns.count, checkpoints.len() as u64);
        assert_eq!(
            reg.snapshot().hist("referee_combine_ns").unwrap().count,
            checkpoints.len() as u64
        );
    }

    #[test]
    fn threaded_distinct_runs() {
        let t = 2;
        let len = 2000usize;
        let window = 256u64;
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RandConfig::for_values(window, (1 << 12) - 1, 0.3, 0.3, &mut rng)
            .unwrap()
            .with_instances(5, &mut rng);
        let streams = waves_streamgen::overlapping_value_streams(t, len, 1 << 12, 0.2, 9);
        let run = run_distinct_threaded(&cfg, &streams, &[1000, 2000], window);
        assert_eq!(run.estimates.len(), 2);
        // Truth at the final checkpoint.
        let mut last = std::collections::HashMap::new();
        for i in 0..len {
            for s in &streams {
                last.insert(s[i], i);
            }
        }
        let s_start = len - window as usize;
        let actual = last.values().filter(|&&i| i >= s_start).count() as f64;
        let (_, est) = run.estimates[1];
        assert!(
            (est - actual).abs() / actual <= 0.3,
            "est {est} actual {actual}"
        );
    }
}
