//! Coordinated adaptive sampling — the Gibbons–Tirthapura SPAA 2001
//! baseline (reference \[18\] of the paper).
//!
//! The predecessor of randomized waves: each party keeps *one* sample of
//! the 1-positions (or values) whose hash level is at least a current
//! threshold; when the sample overflows, the threshold is raised and the
//! sample subsampled in place. This answers whole-stream union/distinct
//! queries with the same guarantees, but has no per-level history: once
//! the threshold rises, the information needed for a *sparse recent
//! window* is gone. The experiments use this to show why sliding windows
//! need the full wave (all levels retained, each with its own recency
//! range).

use std::collections::HashSet;
use waves_gf2::LevelHash;
use waves_rand::median;

/// One coordinated-sampling instance over 1-positions (Union Counting,
/// whole stream).
#[derive(Debug, Clone)]
pub struct CoordSampleParty {
    hash: LevelHash,
    cap: usize,
    level: u32,
    sample: Vec<u64>,
    pos: u64,
}

impl CoordSampleParty {
    /// `hash` must be shared by all parties; `cap` is the sample-size
    /// bound (the paper's `O(1/eps^2)`).
    pub fn new(hash: LevelHash, cap: usize) -> Self {
        assert!(cap >= 1);
        CoordSampleParty {
            hash,
            cap,
            level: 0,
            sample: Vec::with_capacity(cap + 1),
            pos: 0,
        }
    }

    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Current sampling level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Positions currently held.
    pub fn sample(&self) -> &[u64] {
        &self.sample
    }

    pub fn push_bit(&mut self, b: bool) {
        self.pos += 1;
        if b && self.hash.level(self.pos) >= self.level {
            self.sample.push(self.pos);
            while self.sample.len() > self.cap {
                self.level += 1;
                let (hash, level) = (&self.hash, self.level);
                self.sample.retain(|&p| hash.level(p) >= level);
            }
        }
    }
}

/// Referee combine for coordinated sampling: estimate the number of 1's
/// in the positionwise union restricted to positions `>= s` (`s = 0` for
/// the whole stream — the only regime with a guarantee).
pub fn coord_union_estimate(parties: &[&CoordSampleParty], s: u64) -> f64 {
    assert!(!parties.is_empty());
    let l_star = parties.iter().map(|p| p.level).max().expect("nonempty");
    let hash = &parties[0].hash;
    let union: HashSet<u64> = parties
        .iter()
        .flat_map(|p| p.sample.iter().copied())
        .filter(|&p| p >= s && hash.level(p) >= l_star)
        .collect();
    (1u64 << l_star) as f64 * union.len() as f64
}

/// One coordinated-sampling instance over values (distinct counting,
/// whole stream).
#[derive(Debug, Clone)]
pub struct CoordDistinctParty {
    hash: LevelHash,
    cap: usize,
    level: u32,
    sample: HashSet<u64>,
}

impl CoordDistinctParty {
    pub fn new(hash: LevelHash, cap: usize) -> Self {
        assert!(cap >= 1);
        CoordDistinctParty {
            hash,
            cap,
            level: 0,
            sample: HashSet::with_capacity(cap + 1),
        }
    }

    pub fn level(&self) -> u32 {
        self.level
    }

    pub fn push_value(&mut self, v: u64) {
        if self.hash.level(v) >= self.level {
            self.sample.insert(v);
            while self.sample.len() > self.cap {
                self.level += 1;
                let (hash, level) = (&self.hash, self.level);
                self.sample.retain(|&v| hash.level(v) >= level);
            }
        }
    }
}

/// Referee combine for distinct values over the union of whole streams.
pub fn coord_distinct_estimate(parties: &[&CoordDistinctParty]) -> f64 {
    assert!(!parties.is_empty());
    let l_star = parties.iter().map(|p| p.level).max().expect("nonempty");
    let hash = &parties[0].hash;
    let union: HashSet<u64> = parties
        .iter()
        .flat_map(|p| p.sample.iter().copied())
        .filter(|&v| hash.level(v) >= l_star)
        .collect();
    (1u64 << l_star) as f64 * union.len() as f64
}

/// Median of independent instances (convenience mirroring `waves-rand`).
pub fn coord_union_median(instances: &[Vec<&CoordSampleParty>], s: u64) -> f64 {
    median(
        instances
            .iter()
            .map(|parties| coord_union_estimate(parties, s))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hash(seed: u64, degree: u32) -> LevelHash {
        let mut rng = StdRng::seed_from_u64(seed);
        LevelHash::random(degree, &mut rng)
    }

    #[test]
    fn small_stream_exact() {
        let h = hash(1, 16);
        let mut a = CoordSampleParty::new(h.clone(), 64);
        let mut b = CoordSampleParty::new(h, 64);
        for i in 1..=300u64 {
            a.push_bit(i % 10 == 0);
            b.push_bit(i % 15 == 0);
        }
        // level stays 0 -> exact union count: |{x : 10|x or 15|x}| = 40.
        assert_eq!(a.level(), 0);
        let est = coord_union_estimate(&[&a, &b], 0);
        assert_eq!(est, 40.0);
    }

    #[test]
    fn subsampling_keeps_guarantee_whole_stream() {
        let degree = 20;
        let len = 60_000u64;
        // Median over instances for stability.
        let mut ests = Vec::new();
        for seed in 0..9 {
            let h = hash(seed, degree);
            let mut a = CoordSampleParty::new(h.clone(), 400);
            let mut b = CoordSampleParty::new(h, 400);
            for i in 1..=len {
                a.push_bit(i % 3 == 0);
                b.push_bit(i % 4 == 0);
            }
            assert!(a.level() > 0, "sample must have been subsampled");
            ests.push(coord_union_estimate(&[&a, &b], 0));
        }
        // Union = multiples of 3 or 4: len/2 exactly.
        let actual = (len / 2) as f64;
        let est = median(ests);
        assert!(
            (est - actual).abs() / actual <= 0.2,
            "est {est} actual {actual}"
        );
    }

    #[test]
    fn window_queries_degrade_when_level_high() {
        // The motivating failure: after heavy history, a sparse recent
        // window is estimated from almost no samples. This is the
        // qualitative gap waves close; here we just confirm the sample
        // retained for the window is tiny.
        let h = hash(3, 20);
        let mut p = CoordSampleParty::new(h.clone(), 100);
        for _ in 0..200_000u64 {
            p.push_bit(true);
        }
        let s = p.pos() - 500;
        let in_window = p.sample().iter().filter(|&&q| q >= s).count();
        // The wave would retain ~cap positions for this window at level
        // 0; coordinated sampling keeps only ~500 / 2^level.
        assert!(p.level() >= 9);
        assert!(
            in_window <= 8,
            "window sample unexpectedly rich: {in_window}"
        );
    }

    #[test]
    fn distinct_whole_stream() {
        let h = hash(5, 16);
        let mut a = CoordDistinctParty::new(h.clone(), 512);
        let mut b = CoordDistinctParty::new(h, 512);
        for v in 0..400u64 {
            a.push_value(v);
            b.push_value(v + 200); // overlap 200..400
        }
        let est = coord_distinct_estimate(&[&a, &b]);
        assert_eq!(est, 600.0); // exact: level 0, union = 600 values
    }
}
