//! Communication accounting.
//!
//! The distributed-streams model charges parties for the messages they
//! send the Referee at query time. Every driver in this crate counts
//! messages and their wire size so the experiments can report measured
//! communication against the paper's bounds (`t` scalar words per query
//! for the deterministic scenarios; `O(t log(1/delta) / eps^2)` words
//! for the randomized ones).

/// Running totals of query-time communication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent party -> referee.
    pub messages: u64,
    /// Total payload bytes across those messages.
    pub bytes: u64,
}

impl CommStats {
    pub fn record(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }

    pub fn merge(&mut self, other: CommStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// A deterministic party's per-query message: a point estimate with its
/// truth interval — three words.
#[derive(Debug, Clone, Copy)]
pub struct ScalarReport {
    pub value: f64,
    pub lo: u64,
    pub hi: u64,
}

impl ScalarReport {
    pub const WIRE_BYTES: usize = 24;

    pub fn from_estimate(e: &waves_core::Estimate) -> Self {
        ScalarReport {
            value: e.value,
            lo: e.lo,
            hi: e.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = CommStats::default();
        s.record(10);
        s.record(20);
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 30);
        let mut t = CommStats::default();
        t.record(5);
        t.merge(s);
        assert_eq!(t.messages, 3);
        assert_eq!(t.bytes, 35);
    }

    #[test]
    fn scalar_report_roundtrip() {
        let e = waves_core::Estimate::midpoint(10, 20);
        let r = ScalarReport::from_estimate(&e);
        assert_eq!(r.lo, 10);
        assert_eq!(r.hi, 20);
        assert_eq!(r.value, 15.0);
    }
}
