//! Communication accounting.
//!
//! The distributed-streams model charges parties for the messages they
//! send the Referee at query time. Every driver in this crate counts
//! messages and their wire size so the experiments can report measured
//! communication against the paper's bounds (`t` scalar words per query
//! for the deterministic scenarios; `O(t log(1/delta) / eps^2)` words
//! for the randomized ones).
//!
//! Totals alone can hide a hot party (the bounds are *per party*, not
//! averaged), so [`CommStats`] also keeps a per-party breakdown when the
//! driver knows the sender: [`CommStats::worst_party`] is the right
//! number to compare against the paper's per-query scalar bound.

/// One party's share of the query-time communication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartyComm {
    /// Messages this party sent to the referee.
    pub messages: u64,
    /// Payload bytes across those messages.
    pub bytes: u64,
}

/// Running totals of query-time communication, with an optional
/// per-party breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent party -> referee.
    pub messages: u64,
    /// Total payload bytes across those messages.
    pub bytes: u64,
    /// Per-party breakdown, indexed by party id. Empty when the driver
    /// recorded only totals (see [`CommStats::record`]).
    pub per_party: Vec<PartyComm>,
}

impl CommStats {
    /// Record a message of `bytes` payload bytes (totals only).
    pub fn record(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }

    /// Record a message from a known sender: totals plus the per-party
    /// breakdown (growing it on first sight of a party id).
    pub fn record_party(&mut self, party: usize, bytes: usize) {
        self.record(bytes);
        if self.per_party.len() <= party {
            self.per_party.resize(party + 1, PartyComm::default());
        }
        self.per_party[party].messages += 1;
        self.per_party[party].bytes += bytes as u64;
    }

    /// Fold another accumulator into this one (party ids must refer to
    /// the same parties in both).
    pub fn merge(&mut self, other: &CommStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        if self.per_party.len() < other.per_party.len() {
            self.per_party
                .resize(other.per_party.len(), PartyComm::default());
        }
        for (mine, theirs) in self.per_party.iter_mut().zip(&other.per_party) {
            mine.messages += theirs.messages;
            mine.bytes += theirs.bytes;
        }
    }

    /// The party that sent the most bytes, if a breakdown was recorded.
    /// This — not `bytes / t` — is what the paper's per-party bounds
    /// constrain.
    pub fn worst_party(&self) -> Option<(usize, PartyComm)> {
        self.per_party
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, p)| (p.bytes, p.messages))
    }
}

/// A deterministic party's per-query message: a point estimate with its
/// truth interval — three words.
#[derive(Debug, Clone, Copy)]
pub struct ScalarReport {
    pub value: f64,
    pub lo: u64,
    pub hi: u64,
}

impl ScalarReport {
    pub const WIRE_BYTES: usize = 24;

    pub fn from_estimate(e: &waves_core::Estimate) -> Self {
        ScalarReport {
            value: e.value,
            lo: e.lo,
            hi: e.hi,
        }
    }
}

/// The referee's combine rule for additive scenarios (Scenarios 1-3
/// with "union" meaning the sum): add the per-party point estimates and
/// truth intervals. Each addend's interval brackets its true value, so
/// the summed interval brackets the true total, and each addend being
/// within `eps` of its truth keeps the total within `eps` too. Shared
/// by the in-process scenario drivers and the networked referee in
/// `waves-net`.
pub fn combine_estimates<I>(parts: I) -> waves_core::Estimate
where
    I: IntoIterator<Item = waves_core::Estimate>,
{
    let (mut value, mut lo, mut hi) = (0.0, 0u64, 0u64);
    for e in parts {
        value += e.value;
        lo += e.lo;
        hi += e.hi;
    }
    waves_core::Estimate {
        value,
        lo,
        hi,
        exact: lo == hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = CommStats::default();
        s.record(10);
        s.record(20);
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 30);
        let mut t = CommStats::default();
        t.record(5);
        t.merge(&s);
        assert_eq!(t.messages, 3);
        assert_eq!(t.bytes, 35);
    }

    #[test]
    fn per_party_breakdown_sums_to_totals() {
        let mut s = CommStats::default();
        s.record_party(0, 10);
        s.record_party(2, 30);
        s.record_party(0, 5);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 45);
        assert_eq!(s.per_party.len(), 3);
        assert_eq!(
            s.per_party[0],
            PartyComm {
                messages: 2,
                bytes: 15
            }
        );
        assert_eq!(s.per_party[1], PartyComm::default());
        let total: u64 = s.per_party.iter().map(|p| p.bytes).sum();
        assert_eq!(total, s.bytes);
    }

    #[test]
    fn worst_party_is_by_bytes() {
        let mut s = CommStats::default();
        s.record_party(0, 100);
        s.record_party(1, 10);
        s.record_party(1, 10);
        let (idx, p) = s.worst_party().unwrap();
        assert_eq!(idx, 0);
        assert_eq!(p.bytes, 100);
        assert!(CommStats::default().worst_party().is_none());
    }

    #[test]
    fn merge_aligns_party_vectors() {
        let mut a = CommStats::default();
        a.record_party(0, 1);
        let mut b = CommStats::default();
        b.record_party(1, 2);
        b.record_party(2, 3);
        a.merge(&b);
        assert_eq!(a.per_party.len(), 3);
        assert_eq!(a.per_party[2].bytes, 3);
        assert_eq!(a.bytes, 6);
    }

    #[test]
    fn combine_sums_values_and_intervals() {
        use waves_core::Estimate;
        let combined = combine_estimates([Estimate::midpoint(2, 4), Estimate::exact(10)]);
        assert_eq!(combined.value, 13.0);
        assert_eq!((combined.lo, combined.hi), (12, 14));
        assert!(!combined.exact);
        // All-exact addends stay exact; the empty combine is exact 0.
        assert!(combine_estimates([Estimate::exact(1), Estimate::exact(2)]).exact);
        let empty = combine_estimates(std::iter::empty());
        assert_eq!(empty, Estimate::exact(0));
    }

    #[test]
    fn scalar_report_roundtrip() {
        let e = waves_core::Estimate::midpoint(10, 20);
        let r = ScalarReport::from_estimate(&e);
        assert_eq!(r.lo, 10);
        assert_eq!(r.hi, 20);
        assert_eq!(r.value, 15.0);
    }
}
