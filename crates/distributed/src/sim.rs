//! Asynchrony simulation: what does violating the paper's synchrony
//! assumption cost?
//!
//! The positionwise model (Sections 2 and 4) assumes that when the
//! Referee asks for a window `[pos - n + 1, pos]`, every party answers
//! from a state that has observed exactly `pos` positions. In a real
//! deployment (the network-monitoring front-end of Section 2) the query
//! reaches each party after a network delay, during which the party has
//! ingested more stream. This module simulates that: party `j` snapshots
//! its message `latency_j` positions *after* the query is issued, and
//! the Referee combines as usual. The resulting staleness bias —
//! measured against the truth at issue time — quantifies how far the
//! synchrony assumption can bend before the `(eps, delta)` guarantee
//! degrades, and shows that it is recovered exactly when latencies are
//! equal (the window just shifts).

use waves_rand::{PartyMessage, RandConfig, Referee, UnionParty};

/// One asynchronous query's outcome.
#[derive(Debug, Clone, Copy)]
pub struct AsyncQueryOutcome {
    /// Position at which the Referee issued the query.
    pub issued_at: u64,
    /// The combined estimate.
    pub estimate: f64,
    /// Exact union count over the intended window (ending at issue).
    pub actual_at_issue: u64,
    /// Exact union count over the latest window any party answered for
    /// (ending at issue + max latency) — the "freshest defensible"
    /// reference.
    pub actual_at_latest: u64,
}

/// Simulate asynchronous union counting.
///
/// * `streams[j]` — party `j`'s bit stream (equal lengths);
/// * `query_ticks` — positions at which the Referee issues queries
///   (strictly increasing);
/// * `window` — the window size (`<= config.max_window()`);
/// * `latencies[j]` — positions party `j` keeps ingesting before its
///   snapshot is taken; `query_ticks[i] + latency_j` must not exceed the
///   stream length.
pub fn simulate_async_union(
    config: &RandConfig,
    streams: &[Vec<bool>],
    query_ticks: &[u64],
    window: u64,
    latencies: &[u64],
) -> Vec<AsyncQueryOutcome> {
    let t = streams.len();
    assert!(t >= 1 && latencies.len() == t);
    let len = streams[0].len() as u64;
    assert!(streams.iter().all(|s| s.len() as u64 == len));
    assert!(query_ticks.windows(2).all(|w| w[0] < w[1]));
    let max_lat = latencies.iter().copied().max().unwrap_or(0);
    assert!(
        query_ticks.iter().all(|&q| q + max_lat <= len),
        "queries plus latency must fit the stream"
    );

    // Snapshot schedule: at tick q + latency_j, party j emits its
    // message for query q.
    let mut due: std::collections::HashMap<u64, Vec<(usize, usize)>> =
        std::collections::HashMap::new();
    for (qi, &q) in query_ticks.iter().enumerate() {
        for (j, &d) in latencies.iter().enumerate() {
            due.entry(q + d).or_default().push((qi, j));
        }
    }

    let mut parties: Vec<UnionParty> = (0..t).map(|_| UnionParty::new(config)).collect();
    let mut messages: Vec<Vec<Option<PartyMessage>>> = vec![vec![None; t]; query_ticks.len()];
    for tick in 1..=len {
        for (j, p) in parties.iter_mut().enumerate() {
            p.push_bit(streams[j][(tick - 1) as usize]);
        }
        if let Some(items) = due.get(&tick) {
            for &(qi, j) in items {
                // The party answers for its *local* last `window`
                // positions — the best it can do without a shared clock.
                let msg = parties[j]
                    .message(window.min(parties[j].pos()))
                    .expect("window within bound");
                messages[qi][j] = Some(msg);
            }
        }
    }

    let referee = Referee::new(config.clone());
    let union_prefix: Vec<u64> = {
        // prefix[i] = union-count of positions 1..=i.
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(len as usize + 1);
        out.push(0);
        for i in 0..len as usize {
            if streams.iter().any(|s| s[i]) {
                acc += 1;
            }
            out.push(acc);
        }
        out
    };
    let window_count = |end: u64| -> u64 {
        let s = end.saturating_sub(window);
        union_prefix[end as usize] - union_prefix[s as usize]
    };

    query_ticks
        .iter()
        .enumerate()
        .map(|(qi, &q)| {
            let msgs: Vec<PartyMessage> = messages[qi]
                .iter()
                .map(|m| m.clone().expect("all snapshots taken"))
                .collect();
            let s = (q + 1).saturating_sub(window);
            AsyncQueryOutcome {
                issued_at: q,
                estimate: referee.estimate(&msgs, s.max(1)),
                actual_at_issue: window_count(q),
                actual_at_latest: window_count(q + max_lat),
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waves_rand::estimate_union;
    use waves_streamgen::correlated_streams;

    fn config(window: u64, seed: u64, instances: usize) -> RandConfig {
        let mut rng = StdRng::seed_from_u64(seed);
        RandConfig::for_positions(window, 0.2, 0.2, &mut rng)
            .unwrap()
            .with_instances(instances, &mut rng)
    }

    #[test]
    fn zero_latency_matches_synchronous() {
        let (t, len, window) = (3usize, 4_000usize, 512u64);
        let cfg = config(window, 1, 5);
        let streams = correlated_streams(t, len, 0.3, 0.3, 7);
        let outcomes = simulate_async_union(&cfg, &streams, &[2_000, 4_000], window, &[0, 0, 0]);
        // Synchronous reference.
        for &(tick, idx) in &[(2_000u64, 0usize), (4_000, 1)] {
            let mut parties: Vec<UnionParty> = (0..t).map(|_| UnionParty::new(&cfg)).collect();
            for i in 0..tick as usize {
                for j in 0..t {
                    parties[j].push_bit(streams[j][i]);
                }
            }
            let referee = Referee::new(cfg.clone());
            let want = estimate_union(&referee, &parties, window).unwrap();
            assert_eq!(outcomes[idx].estimate, want, "tick {tick}");
        }
    }

    #[test]
    fn equal_latency_reproduces_sequential_estimate_at_shifted_tick() {
        // With every latency equal to d, each party snapshots the window
        // ending at q + d. Every reported position then lies at or after
        // the *local* window start (q + d + 1 - window), so the referee's
        // looser issue-time filter keeps the identical position set and
        // the combine must equal — bit for bit, not just within eps —
        // what the synchronous referee path computes at tick q + d.
        let (t, len, window) = (3usize, 5_000usize, 512u64);
        let cfg = config(window, 5, 5);
        let streams = correlated_streams(t, len, 0.25, 0.3, 13);
        let d = 150u64;
        let ticks = [2_000u64, 4_000];
        let outcomes = simulate_async_union(&cfg, &streams, &ticks, window, &[d; 3]);
        for (idx, &q) in ticks.iter().enumerate() {
            let mut parties: Vec<UnionParty> = (0..t).map(|_| UnionParty::new(&cfg)).collect();
            for i in 0..(q + d) as usize {
                for j in 0..t {
                    parties[j].push_bit(streams[j][i]);
                }
            }
            let referee = Referee::new(cfg.clone());
            let want = estimate_union(&referee, &parties, window).unwrap();
            assert_eq!(outcomes[idx].estimate, want, "query at {q}, latency {d}");
        }
    }

    #[test]
    fn equal_latency_answers_shifted_window_exactly() {
        // With equal latencies d, every party answers for the window
        // ending at q + d: the estimate tracks actual_at_latest (the
        // shifted truth), not the issue-time truth.
        let (t, len, window) = (2usize, 6_000usize, 256u64);
        let cfg = config(window, 2, 5);
        let streams = correlated_streams(t, len, 0.2, 0.3, 9);
        let outcomes = simulate_async_union(&cfg, &streams, &[3_000], window, &[200, 200]);
        let o = &outcomes[0];
        let rel_latest = (o.estimate - o.actual_at_latest as f64).abs() / o.actual_at_latest as f64;
        assert!(rel_latest <= 0.2, "vs shifted truth: {rel_latest}");
    }

    #[test]
    fn staleness_bias_bounded_by_window_drift() {
        // Unequal latencies: the estimate lands between the issue-time
        // truth minus drift and the latest truth plus drift; with small
        // latency relative to the window the error vs issue stays small.
        let (t, len, window) = (4usize, 8_000usize, 2_048u64);
        let cfg = config(window, 3, 5);
        let streams = correlated_streams(t, len, 0.3, 0.25, 11);
        let lats = [0u64, 20, 40, 60];
        let outcomes = simulate_async_union(&cfg, &streams, &[4_000, 6_000], window, &lats);
        for o in &outcomes {
            let rel = (o.estimate - o.actual_at_issue as f64).abs() / o.actual_at_issue as f64;
            // eps = 0.2 plus drift of <= 60/2048 of the window content.
            assert!(rel <= 0.2 + 0.1, "issued {}: rel {rel}", o.issued_at);
        }
    }

    #[test]
    #[should_panic(expected = "queries plus latency must fit")]
    fn rejects_overhanging_queries() {
        let cfg = config(64, 4, 1);
        let streams = correlated_streams(2, 100, 0.5, 0.2, 1);
        simulate_async_union(&cfg, &streams, &[100], 64, &[5, 0]);
    }
}
