//! `waves-distributed`: the distributed-streams model as a runnable
//! substrate.
//!
//! The paper's model: `t` parties each observe their own stream with
//! limited workspace and communicate only when an estimate is requested,
//! by sending one message to a Referee (Section 2). This crate makes
//! that model concrete:
//!
//! * [`scenario`] — the three sliding-window definitions of Section 3.4
//!   (per-stream windows; a split logical stream; the positionwise
//!   union) with the deterministic waves driving Scenarios 1–2 and the
//!   strawman combine rules that Theorem 4 dooms for Scenario 3;
//! * [`runtime`] — a one-thread-per-party driver (std mpsc channels)
//!   for the randomized Union Counting / distinct-values estimators;
//! * [`comm`] — query-time communication accounting;
//! * [`coordinated`] — the SPAA 2001 coordinated-sampling baseline
//!   (whole-stream union/distinct, no windows), kept for comparison
//!   experiments;
//! * [`monitor`] — the continuous-monitoring push mode
//!   (Chan–Lam–Lee–Ting): parties ship deltas only when local drift
//!   crosses an ε-slack budget and the referee stays continuously
//!   valid within a staleness bound derived from the slack split.

pub mod comm;
pub mod coordinated;
pub mod monitor;
pub mod runtime;
pub mod scenario;
pub mod sim;

pub use comm::{combine_estimates, CommStats, PartyComm, ScalarReport};
pub use coordinated::{
    coord_distinct_estimate, coord_union_estimate, coord_union_median, CoordDistinctParty,
    CoordSampleParty,
};
pub use monitor::{MonitorConfig, MonitorDelta, MonitorReferee, PushParty};
pub use runtime::{
    run_distinct_threaded, run_distinct_threaded_recorded, run_union_threaded,
    run_union_threaded_recorded, ThreadedRun,
};
pub use scenario::{
    det_combine, DetCombine, Scenario1Count, Scenario1Sum, Scenario2Count, Scenario3PositionwiseSum,
};
pub use sim::{simulate_async_union, AsyncQueryOutcome};
