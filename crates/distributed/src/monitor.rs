//! Continuous-monitoring push mode (Chan–Lam–Lee–Ting, arXiv:0912.4569).
//!
//! The pull-style referee in [`crate::scenario`] pays `t` synopsis
//! transfers per query. In push mode the total error budget `eps` is
//! split — `eps_synopsis` goes to each party's local wave and
//! `eps_slack` is spread over the parties as *drift* slack — and a
//! party ships its synopsis only when the answer it last shipped has
//! drifted past its share of the slack. Between pushes the referee's
//! folded answer is continuously valid: it differs from a fresh pull
//! fan-out by at most the sum of the per-party budgets
//! (`eps_slack * max_window`), so the full-window answer carries the
//! contract `|answer - truth| <= eps_synopsis * truth + eps_slack * W`.
//!
//! * [`PushParty`] — a party's live wave plus a frozen shadow of the
//!   last shipped state; drift is the gap between the two full-window
//!   estimates, and crossing the budget emits a [`MonitorDelta`].
//! * [`MonitorReferee`] — folds deltas (deduplicated by per-party
//!   sequence number, so late or replayed deltas are harmless) into a
//!   combined always-valid answer with a staleness bound derived from
//!   the slack split.
//!
//! Monitoring tracks the *full-window* count: drift is measured at
//! `max_window`, so the contract above is stated for `query_max`-style
//! answers. Sub-window queries remain a pull-mode concern.

use std::collections::HashMap;

use waves_core::codec::CodecError;
use waves_core::det_wave::DetWave;
use waves_core::error::WaveError;
use waves_core::Estimate;

use crate::comm::combine_estimates;

/// Error-budget split for continuous monitoring: how much of the total
/// `eps` each party's synopsis consumes, and how much is pooled as
/// drift slack across `parties` parties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Maximum (and monitored) window `N`.
    pub max_window: u64,
    /// Total relative-error budget.
    pub eps: f64,
    /// Fraction of `eps` allocated to the per-party synopses
    /// (`0 < eps_split < 1`); the rest becomes drift slack.
    pub eps_split: f64,
    /// Number of parties sharing the slack pool.
    pub parties: u64,
}

impl MonitorConfig {
    /// Validate the split; every constructor below calls this.
    pub fn validate(&self) -> Result<(), WaveError> {
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(self.eps));
        }
        if !(self.eps_split > 0.0 && self.eps_split < 1.0) {
            return Err(WaveError::InvalidEpsilon(self.eps_split));
        }
        if self.max_window == 0 {
            return Err(WaveError::InvalidWindow(0));
        }
        if self.parties == 0 {
            return Err(WaveError::InvalidWindow(0));
        }
        Ok(())
    }

    /// The synopsis share of the budget: each party's wave is built
    /// with this `eps`.
    pub fn eps_synopsis(&self) -> f64 {
        self.eps * self.eps_split
    }

    /// The slack share of the budget.
    pub fn eps_slack(&self) -> f64 {
        self.eps - self.eps_synopsis()
    }

    /// Total unshipped drift allowed across all parties:
    /// `eps_slack * max_window`.
    pub fn slack_total(&self) -> f64 {
        self.eps_slack() * self.max_window as f64
    }

    /// One party's drift budget: an equal share of
    /// [`MonitorConfig::slack_total`].
    pub fn party_budget(&self) -> f64 {
        self.slack_total() / self.parties as f64
    }
}

/// One shipped state change: the party's full synopsis bytes
/// (`SynopsisCodec` encoding, the same bytes `PUSH_SYNOPSIS` carries)
/// plus the metadata the referee needs to fold it in order.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorDelta {
    /// Originating party id.
    pub party: u64,
    /// Per-party monotone sequence number (first ship is 1). The
    /// referee keeps only the highest seen, so replays and reordered
    /// late deltas are no-ops.
    pub seq: u64,
    /// The party's slack budget, carried so the referee can report a
    /// staleness bound without out-of-band configuration.
    pub slack: f64,
    /// `DetWave::encode` bytes of the shipped state.
    pub bytes: Vec<u8>,
}

/// A monitored party: a live wave, a frozen shadow of the last shipped
/// state, and the drift account between them.
#[derive(Debug, Clone)]
pub struct PushParty {
    party: u64,
    local: DetWave,
    shipped: DetWave,
    budget: f64,
    seq: u64,
}

impl PushParty {
    /// Build party `party` under the split `cfg`. The initial shipped
    /// shadow is the empty wave, so a referee that has not heard from
    /// this party yet implicitly holds its correct t=0 state.
    pub fn new(cfg: &MonitorConfig, party: u64) -> Result<Self, WaveError> {
        cfg.validate()?;
        let local = DetWave::new(cfg.max_window, cfg.eps_synopsis())?;
        let shipped = local.clone();
        Ok(PushParty {
            party,
            local,
            shipped,
            budget: cfg.party_budget(),
            seq: 0,
        })
    }

    /// Party id.
    pub fn party(&self) -> u64 {
        self.party
    }

    /// Sequence number of the last shipped delta (0 = never shipped).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// This party's drift budget.
    pub fn slack_budget(&self) -> f64 {
        self.budget
    }

    /// The live wave.
    pub fn local(&self) -> &DetWave {
        &self.local
    }

    /// The frozen shadow of the last shipped state.
    pub fn shipped(&self) -> &DetWave {
        &self.shipped
    }

    /// How far the live full-window estimate has moved since the last
    /// ship — the gap the referee cannot see yet.
    pub fn unshipped_drift(&self) -> f64 {
        (self.local.query_max().value - self.shipped.query_max().value).abs()
    }

    /// Ingest one bit; ships a delta iff the drift account crosses the
    /// budget.
    pub fn push_bit(&mut self, b: bool) -> Option<MonitorDelta> {
        self.local.push_bit(b);
        self.settle()
    }

    /// Ingest a batch of bits, oldest first; the drift check runs once
    /// after the batch.
    pub fn push_bits(&mut self, bits: &[bool]) -> Option<MonitorDelta> {
        self.local.push_bits(bits);
        self.settle()
    }

    /// Ingest a word-packed batch; the drift check runs once after the
    /// batch.
    pub fn push_words(&mut self, bits: waves_core::bits::BitsRef<'_>) -> Option<MonitorDelta> {
        self.local.push_words(bits);
        self.settle()
    }

    /// Ship unconditionally (end of stream, operator request): restores
    /// exact agreement between shadow and live state.
    pub fn force_flush(&mut self) -> MonitorDelta {
        self.ship()
    }

    /// Settle the drift account after an ingest: ship iff over budget.
    fn settle(&mut self) -> Option<MonitorDelta> {
        // Planted bug for the DST mutation smoke test
        // (tests/dst_mutation.rs): under `--cfg dst_mutation` the slack
        // account is off by one, letting drift sit one unit past the
        // budget without shipping — the harness's slack-invariant
        // oracle must catch it within 200 seeds.
        #[cfg(dst_mutation)]
        let budget = self.budget + 1.0;
        #[cfg(not(dst_mutation))]
        let budget = self.budget;
        if self.unshipped_drift() > budget {
            Some(self.ship())
        } else {
            None
        }
    }

    fn ship(&mut self) -> MonitorDelta {
        self.shipped = self.local.clone();
        self.seq += 1;
        MonitorDelta {
            party: self.party,
            seq: self.seq,
            slack: self.budget,
            bytes: self.local.encode(),
        }
    }
}

#[derive(Debug, Clone)]
struct RefereeEntry {
    seq: u64,
    slack: f64,
    wave: DetWave,
}

/// The referee's side of push mode: folds [`MonitorDelta`]s into a
/// continuously valid full-window answer.
#[derive(Debug, Clone, Default)]
pub struct MonitorReferee {
    entries: HashMap<u64, RefereeEntry>,
}

impl MonitorReferee {
    /// An empty referee; parties appear as their first delta arrives
    /// (a silent party is exactly the empty wave it would have
    /// shipped, so the combined answer is valid from t=0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one delta. Returns `Ok(false)` — a harmless no-op — when
    /// `delta.seq` does not advance the party's highest seen sequence
    /// number, which makes replayed retries and late reordered deltas
    /// safe. Corrupt bytes are rejected without touching state.
    pub fn install(&mut self, delta: &MonitorDelta) -> Result<bool, CodecError> {
        if let Some(entry) = self.entries.get(&delta.party) {
            if entry.seq >= delta.seq {
                return Ok(false);
            }
        }
        let wave = DetWave::decode(&delta.bytes)?;
        self.entries.insert(
            delta.party,
            RefereeEntry {
                seq: delta.seq,
                slack: delta.slack,
                wave,
            },
        );
        Ok(true)
    }

    /// The continuously valid full-window answer: the combined
    /// estimate over every party's last shipped state. Off from a
    /// fresh pull fan-out by at most [`MonitorReferee::staleness_bound`].
    pub fn combined(&self) -> Estimate {
        combine_estimates(self.entries.values().map(|e| e.wave.query_max()))
    }

    /// Sum of the slack budgets the installed parties declared: how
    /// stale [`MonitorReferee::combined`] may be relative to a fresh
    /// pull of the same parties. Parties that have never shipped are
    /// not counted — callers comparing against ground truth should add
    /// the budgets of silent parties.
    pub fn staleness_bound(&self) -> f64 {
        self.entries.values().map(|e| e.slack).sum()
    }

    /// Number of parties heard from.
    pub fn parties(&self) -> usize {
        self.entries.len()
    }

    /// Highest sequence number seen from `party`.
    pub fn seq_of(&self, party: u64) -> Option<u64> {
        self.entries.get(&party).map(|e| e.seq)
    }

    /// Re-encoded bytes of `party`'s installed state (byte-identical
    /// to the shipped `MonitorDelta::bytes` by the codec's re-encode
    /// convention).
    pub fn encoded(&self, party: u64) -> Option<Vec<u8>> {
        self.entries.get(&party).map(|e| e.wave.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(parties: u64) -> MonitorConfig {
        MonitorConfig {
            max_window: 128,
            eps: 0.2,
            eps_split: 0.5,
            parties,
        }
    }

    fn lcg_bits(seed: u64, len: usize, m: u64, lt: u64) -> Vec<bool> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % m < lt
            })
            .collect()
    }

    #[test]
    fn config_split_adds_up() {
        let c = cfg(4);
        assert!((c.eps_synopsis() + c.eps_slack() - c.eps).abs() < 1e-12);
        assert!((c.party_budget() * 4.0 - c.slack_total()).abs() < 1e-9);
        assert!(c.validate().is_ok());
        assert!(MonitorConfig { parties: 0, ..c }.validate().is_err());
        assert!(MonitorConfig {
            eps_split: 1.0,
            ..c
        }
        .validate()
        .is_err());
    }

    #[test]
    fn drift_crossing_ships_and_resets() {
        let mut p = PushParty::new(&cfg(2), 0).unwrap();
        let mut shipped = 0usize;
        for _ in 0..500 {
            if let Some(d) = p.push_bit(true) {
                shipped += 1;
                assert_eq!(d.seq as usize, shipped);
                assert_eq!(p.unshipped_drift(), 0.0, "ship resets the account");
            }
            assert!(
                p.unshipped_drift() <= p.slack_budget() + 1e-9,
                "drift {} over budget {}",
                p.unshipped_drift(),
                p.slack_budget()
            );
        }
        assert!(shipped > 0, "an all-ones stream must cross the budget");
    }

    #[test]
    fn silent_party_is_the_empty_wave() {
        let referee = MonitorReferee::new();
        assert_eq!(referee.combined().value, 0.0);
        assert_eq!(referee.parties(), 0);
    }

    #[test]
    fn referee_folds_and_answers_within_contract() {
        let c = cfg(3);
        let mut parties: Vec<PushParty> = (0..3).map(|i| PushParty::new(&c, i).unwrap()).collect();
        let mut referee = MonitorReferee::new();
        let streams: Vec<Vec<bool>> = (0..3).map(|i| lcg_bits(i + 1, 2000, 3, 1)).collect();
        for step in 0..2000 {
            for (p, s) in parties.iter_mut().zip(&streams) {
                if let Some(d) = p.push_bit(s[step]) {
                    assert!(referee.install(&d).unwrap());
                }
            }
            // Push answer vs a fresh pull of the same parties: within
            // the total slack.
            let push = referee.combined();
            let pull = combine_estimates(parties.iter().map(|p| p.local().query_max()));
            assert!(
                (push.value - pull.value).abs() <= c.slack_total() + 1e-9,
                "step {step}: push {} vs pull {}",
                push.value,
                pull.value
            );
        }
        assert!(referee.staleness_bound() <= c.slack_total() + 1e-9);
    }

    #[test]
    fn stale_and_replayed_deltas_are_noops() {
        let c = cfg(1);
        let mut p = PushParty::new(&c, 7).unwrap();
        let mut referee = MonitorReferee::new();
        let mut deltas = Vec::new();
        for _ in 0..600 {
            if let Some(d) = p.push_bit(true) {
                deltas.push(d);
            }
        }
        assert!(deltas.len() >= 2, "need at least two ships");
        let last = deltas.last().unwrap().clone();
        assert!(referee.install(&last).unwrap());
        let settled = referee.combined();
        // Replay of the newest and late arrival of every older delta:
        // all rejected, answer unchanged.
        assert!(!referee.install(&last).unwrap());
        for d in &deltas[..deltas.len() - 1] {
            assert!(!referee.install(d).unwrap());
        }
        assert_eq!(referee.combined(), settled);
        assert_eq!(referee.seq_of(7), Some(last.seq));
    }

    #[test]
    fn corrupt_delta_bytes_leave_state_untouched() {
        let c = cfg(1);
        let mut p = PushParty::new(&c, 0).unwrap();
        let mut referee = MonitorReferee::new();
        let mut d = None;
        for _ in 0..600 {
            if let Some(delta) = p.push_bit(true) {
                d = Some(delta);
                break;
            }
        }
        let good = d.expect("all-ones stream ships");
        referee.install(&good).unwrap();
        let before = referee.combined();
        let bad = MonitorDelta {
            seq: good.seq + 1,
            bytes: Vec::new(),
            ..good.clone()
        };
        assert!(referee.install(&bad).is_err());
        assert_eq!(referee.combined(), before);
        assert_eq!(referee.seq_of(0), Some(good.seq));
    }

    #[test]
    fn force_flush_restores_byte_identical_agreement() {
        let c = cfg(2);
        let mut p = PushParty::new(&c, 1).unwrap();
        let mut referee = MonitorReferee::new();
        for b in lcg_bits(42, 300, 2, 1) {
            if let Some(d) = p.push_bit(b) {
                referee.install(&d).unwrap();
            }
        }
        let d = p.force_flush();
        assert!(referee.install(&d).unwrap());
        assert_eq!(p.unshipped_drift(), 0.0);
        assert_eq!(p.shipped().encode(), p.local().encode());
        assert_eq!(referee.encoded(1).unwrap(), p.local().encode());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// An interleaving of party activity: which party moves next and
    /// what bits it ingests.
    fn interleaving(parties: u64) -> impl Strategy<Value = Vec<(u64, Vec<bool>)>> {
        prop::collection::vec(
            (
                0..parties,
                prop::collection::vec(prop::bool::weighted(0.6), 1..8),
            ),
            0..120,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The slack-budget invariant: for any interleaving of party
        /// drifts the sum of unshipped local drifts never exceeds
        /// `eps_slack * window <= eps * window`, and a forced flush
        /// restores exact, byte-identical agreement with the shadow
        /// synopsis.
        #[test]
        fn slack_budget_invariant(
            steps in interleaving(3),
            inv_eps in 3u64..=10,
            split_pct in 30u64..=70,
            max_window in 16u64..=128,
        ) {
            let c = MonitorConfig {
                max_window,
                eps: 1.0 / inv_eps as f64,
                eps_split: split_pct as f64 / 100.0,
                parties: 3,
            };
            let mut parties: Vec<PushParty> =
                (0..3).map(|i| PushParty::new(&c, i).unwrap()).collect();
            let mut referee = MonitorReferee::new();
            for (who, bits) in &steps {
                if let Some(d) = parties[*who as usize].push_bits(bits) {
                    prop_assert!(referee.install(&d).unwrap());
                }
                let total: f64 = parties.iter().map(PushParty::unshipped_drift).sum();
                prop_assert!(
                    total <= c.slack_total() + 1e-9,
                    "unshipped drift {} exceeds slack pool {}",
                    total,
                    c.slack_total()
                );
                prop_assert!(c.slack_total() <= c.eps * max_window as f64 + 1e-9);
            }
            for p in &mut parties {
                let d = p.force_flush();
                prop_assert!(referee.install(&d).unwrap());
                prop_assert_eq!(p.unshipped_drift(), 0.0);
                prop_assert_eq!(p.shipped().encode(), p.local().encode());
                prop_assert_eq!(
                    referee.encoded(p.party()).unwrap(),
                    p.local().encode()
                );
            }
        }
    }
}
