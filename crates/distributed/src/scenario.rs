//! The three sliding-window definitions for distributed streams
//! (Section 3.4) and the deterministic-combine strawmen for Scenario 3.
//!
//! * **Scenario 1** — total over the last `N` items *of each stream*
//!   (`t * N` items in total): each party runs the single-stream wave,
//!   the Referee sums the estimates.
//! * **Scenario 2** — one logical stream split arbitrarily among the
//!   parties: each party runs a wave on the shared sequence-number axis
//!   and estimates its items inside `[pos - N + 1, pos]`; the Referee
//!   sums.
//! * **Scenario 3** — the positionwise union: Theorem 4 rules out
//!   deterministic small-space algorithms, so the right tool is the
//!   randomized wave (`waves-rand`); the deterministic combine rules
//!   implemented here are the strawmen the lower-bound experiment
//!   falsifies.

use crate::comm::{CommStats, ScalarReport};
use waves_core::{DetWave, Estimate, SumWave, WaveError};

/// Scenario 1 for Basic Counting: `t` parties, each with its own
/// deterministic wave; the query answer is the sum of per-party counts
/// over their own last-`N` windows.
#[derive(Debug)]
pub struct Scenario1Count {
    parties: Vec<DetWave>,
    comm: CommStats,
}

impl Scenario1Count {
    pub fn new(t: usize, max_window: u64, eps: f64) -> Result<Self, WaveError> {
        assert!(t >= 1);
        let parties = (0..t)
            .map(|_| DetWave::new(max_window, eps))
            .collect::<Result<_, _>>()?;
        Ok(Scenario1Count {
            parties,
            comm: CommStats::default(),
        })
    }

    pub fn t(&self) -> usize {
        self.parties.len()
    }

    /// Feed a bit to party `j`.
    pub fn push_bit(&mut self, j: usize, b: bool) {
        self.parties[j].push_bit(b);
    }

    /// Query: every party sends a scalar report; the Referee sums. The
    /// summed interval is a valid bracket, and each addend is within
    /// `eps`, so the total is too.
    pub fn query(&mut self, n: u64) -> Result<Estimate, WaveError> {
        let mut reports = Vec::with_capacity(self.parties.len());
        for (j, p) in self.parties.iter().enumerate() {
            reports.push(p.query(n)?);
            self.comm.record_party(j, ScalarReport::WIRE_BYTES);
        }
        Ok(crate::comm::combine_estimates(reports))
    }

    pub fn comm(&self) -> &CommStats {
        &self.comm
    }
}

/// Scenario 1 for sums of bounded integers.
#[derive(Debug)]
pub struct Scenario1Sum {
    parties: Vec<SumWave>,
    comm: CommStats,
}

impl Scenario1Sum {
    pub fn new(t: usize, max_window: u64, max_value: u64, eps: f64) -> Result<Self, WaveError> {
        assert!(t >= 1);
        let parties = (0..t)
            .map(|_| SumWave::new(max_window, max_value, eps))
            .collect::<Result<_, _>>()?;
        Ok(Scenario1Sum {
            parties,
            comm: CommStats::default(),
        })
    }

    pub fn push_value(&mut self, j: usize, v: u64) -> Result<(), WaveError> {
        self.parties[j].push_value(v)
    }

    pub fn query(&mut self, n: u64) -> Result<Estimate, WaveError> {
        let mut reports = Vec::with_capacity(self.parties.len());
        for (j, p) in self.parties.iter().enumerate() {
            reports.push(p.query(n)?);
            self.comm.record_party(j, ScalarReport::WIRE_BYTES);
        }
        Ok(crate::comm::combine_estimates(reports))
    }

    pub fn comm(&self) -> &CommStats {
        &self.comm
    }
}

/// Scenario 2: one logical stream split among `t` parties. Items carry
/// their overall sequence number; each party tracks its own items on the
/// shared axis.
#[derive(Debug)]
pub struct Scenario2Count {
    parties: Vec<DetWave>,
    comm: CommStats,
    /// Highest sequence number seen per party.
    seen: Vec<u64>,
}

impl Scenario2Count {
    pub fn new(t: usize, max_window: u64, eps: f64) -> Result<Self, WaveError> {
        assert!(t >= 1);
        let parties = (0..t)
            .map(|_| DetWave::new(max_window, eps))
            .collect::<Result<_, _>>()?;
        Ok(Scenario2Count {
            seen: vec![0; t],
            parties,
            comm: CommStats::default(),
        })
    }

    /// Party `j` observes logical item `(seq, bit)`; its per-party
    /// sequence numbers must be increasing.
    pub fn push_item(&mut self, j: usize, seq: u64, bit: bool) -> Result<(), WaveError> {
        if seq <= self.seen[j] {
            return Err(WaveError::PositionRegressed {
                last: self.seen[j],
                got: seq,
            });
        }
        let gap = seq - self.parties[j].pos() - 1;
        self.parties[j].skip_zeros(gap);
        self.parties[j].push_bit(bit);
        self.seen[j] = seq;
        Ok(())
    }

    /// Query the number of 1's among the last `n` items of the logical
    /// stream; `pos` is the current overall sequence number, which the
    /// Referee broadcasts with the query (as in the paper).
    ///
    /// Non-mutating: each party answers for the intersection of the
    /// broadcast window `[pos - n + 1, pos]` with its own axis (its
    /// items all carry sequence numbers `<= its local pos`), so querying
    /// never desynchronizes later `push_item` calls.
    pub fn query(&mut self, pos: u64, n: u64) -> Result<Estimate, WaveError> {
        let mut reports = Vec::with_capacity(self.parties.len());
        for (j, p) in self.parties.iter().enumerate() {
            if pos < p.pos() {
                return Err(WaveError::PositionRegressed {
                    last: p.pos(),
                    got: pos,
                });
            }
            // Positions in (p.pos(), pos] belong to other parties; the
            // party's share of the window is its last n - gap positions.
            let gap = pos - p.pos();
            reports.push(if gap >= n {
                Estimate::exact(0)
            } else {
                p.query(n - gap)?
            });
            self.comm.record_party(j, ScalarReport::WIRE_BYTES);
        }
        Ok(crate::comm::combine_estimates(reports))
    }

    pub fn comm(&self) -> &CommStats {
        &self.comm
    }
}

/// Scenario 3 with "union" meaning the *positionwise sum*: the paper
/// notes this reduces to Scenario 1, because the window sum of the
/// summed stream equals the sum of the per-party window sums. (With
/// "union" meaning the positionwise *maximum*, the Theorem 4 lower
/// bound applies instead — counting 1's in the OR is the special case.)
#[derive(Debug)]
pub struct Scenario3PositionwiseSum {
    inner: Scenario1Sum,
}

impl Scenario3PositionwiseSum {
    pub fn new(t: usize, max_window: u64, max_value: u64, eps: f64) -> Result<Self, WaveError> {
        Ok(Scenario3PositionwiseSum {
            inner: Scenario1Sum::new(t, max_window, max_value, eps)?,
        })
    }

    /// All parties observe one item each at the same (implicit, shared)
    /// position — the positionwise model.
    pub fn push_position(&mut self, values: &[u64]) -> Result<(), WaveError> {
        for (j, &v) in values.iter().enumerate() {
            self.inner.push_value(j, v)?;
        }
        Ok(())
    }

    /// Estimate the sum of the positionwise-summed stream over the last
    /// `n` positions (each addend within eps, hence the total too).
    pub fn query(&mut self, n: u64) -> Result<Estimate, WaveError> {
        self.inner.query(n)
    }

    pub fn comm(&self) -> &CommStats {
        self.inner.comm()
    }
}

/// Deterministic combine rules for Scenario 3 — the strawmen Theorem 4
/// dooms. Each takes the per-party count estimates over the same window
/// and the window size, and guesses the union count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetCombine {
    /// Upper-bounds the union by the sum (exact only for disjoint 1's).
    Sum,
    /// Lower-bounds the union by the max (exact only for nested 1's).
    Max,
    /// Assumes positionwise independence:
    /// `n * (1 - prod_j (1 - c_j/n))`.
    Independent,
}

/// Apply a deterministic combine rule to per-party window counts.
pub fn det_combine(rule: DetCombine, counts: &[f64], window: u64) -> f64 {
    assert!(!counts.is_empty());
    match rule {
        DetCombine::Sum => counts.iter().sum(),
        DetCombine::Max => counts.iter().copied().fold(f64::MIN, f64::max),
        DetCombine::Independent => {
            let n = window as f64;
            let miss: f64 = counts.iter().map(|&c| 1.0 - (c / n).min(1.0)).product();
            n * (1.0 - miss)
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use waves_core::ExactCount;
    use waves_streamgen::split_logical_stream;

    #[test]
    fn scenario1_sums_party_counts() {
        let (t, n, eps) = (3usize, 64u64, 0.25);
        let mut sc = Scenario1Count::new(t, n, eps).unwrap();
        let mut oracles: Vec<ExactCount> = (0..t).map(|_| ExactCount::new(n)).collect();
        let mut x = 7u64;
        for _ in 0..3000 {
            for j in 0..t {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = (x >> 33).is_multiple_of(3);
                sc.push_bit(j, b);
                oracles[j].push_bit(b);
            }
        }
        let actual: u64 = oracles.iter().map(|o| o.query(n)).sum();
        let est = sc.query(n).unwrap();
        assert!(est.brackets(actual));
        assert!(est.relative_error(actual) <= eps + 1e-9);
        // Communication: t scalar messages for one query.
        assert_eq!(sc.comm().messages, t as u64);
    }

    #[test]
    fn scenario1_sum_of_values() {
        let (t, n, r, eps) = (2usize, 32u64, 100u64, 0.25);
        let mut sc = Scenario1Sum::new(t, n, r, eps).unwrap();
        let mut truth = vec![Vec::new(); t];
        let mut x = 3u64;
        for _ in 0..2000 {
            for j in 0..t {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = (x >> 33) % (r + 1);
                sc.push_value(j, v).unwrap();
                truth[j].push(v);
            }
        }
        let actual: u64 = truth
            .iter()
            .map(|vs| vs[vs.len() - n as usize..].iter().sum::<u64>())
            .sum();
        let est = sc.query(n).unwrap();
        assert!(est.relative_error(actual) <= eps + 1e-9);
    }

    #[test]
    fn scenario2_split_stream() {
        let (t, n, eps) = (4usize, 128u64, 0.2);
        let len = 5000usize;
        let stream: Vec<bool> = (0..len).map(|i| (i * 2654435761) % 7 < 3).collect();
        let parts = split_logical_stream(&stream, t, 99);
        let mut sc = Scenario2Count::new(t, n, eps).unwrap();
        for (j, part) in parts.iter().enumerate() {
            for &(seq, b) in part {
                sc.push_item(j, seq, b).unwrap();
            }
        }
        let actual = stream[len - n as usize..].iter().filter(|&&b| b).count() as u64;
        let est = sc.query(len as u64, n).unwrap();
        assert!(est.brackets(actual), "[{},{}] vs {actual}", est.lo, est.hi);
        assert!(
            est.relative_error(actual) <= eps + 1e-9,
            "est {} actual {actual}",
            est.value
        );
    }

    #[test]
    fn scenario3_positionwise_sum_reduction() {
        // The positionwise-sum union over a window equals the sum of the
        // per-party window sums: the Scenario 1 reduction is exact.
        let (t, n, r, eps) = (3usize, 64u64, 50u64, 0.2);
        let mut sc = Scenario3PositionwiseSum::new(t, n, r, eps).unwrap();
        let mut summed: Vec<u64> = Vec::new();
        let mut x = 5u64;
        for _ in 0..2_000 {
            let mut vals = Vec::with_capacity(t);
            for _ in 0..t {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                vals.push((x >> 33) % (r + 1));
            }
            summed.push(vals.iter().sum());
            sc.push_position(&vals).unwrap();
        }
        let actual: u64 = summed[summed.len() - n as usize..].iter().sum();
        let est = sc.query(n).unwrap();
        assert!(est.brackets(actual));
        assert!(est.relative_error(actual) <= eps + 1e-9);
    }

    #[test]
    fn det_combines_bracket_but_do_not_estimate() {
        // Two identical streams: union = each count; Sum doubles it.
        let counts = [50.0, 50.0];
        assert_eq!(det_combine(DetCombine::Sum, &counts, 100), 100.0);
        assert_eq!(det_combine(DetCombine::Max, &counts, 100), 50.0);
        let ind = det_combine(DetCombine::Independent, &counts, 100);
        assert!(ind > 50.0 && ind < 100.0);
    }
}
