//! `waves-rand`: randomized wave synopses for distributed streams.
//!
//! Implements Section 4 and Section 5 of Gibbons & Tirthapura (SPAA
//! 2002): deterministic algorithms cannot approximate the positionwise
//! union of distributed streams in small space (Theorem 4), so these
//! synopses are randomized, built on the shared pairwise-independent
//! level hash of [`waves_gf2`]:
//!
//! * [`UnionWave`] / [`UnionParty`] / [`Referee`] — Union Counting in a
//!   sliding window over `t` distributed streams (Theorem 5): an
//!   `(eps, delta)`-approximation using `O(log(1/delta) log^2 N /
//!   eps^2)` bits per party, independent of `t`;
//! * [`DistinctWave`] / [`DistinctParty`] / [`DistinctReferee`] —
//!   distinct-values counting in a sliding window over distributed
//!   streams (Theorem 6), with predicate queries at query time;
//! * [`RandConfig`] — the stored-coins configuration shared by parties
//!   and Referee; [`instances_for`] — the median-of-instances count for
//!   a target failure probability `delta`.
//!
//! ```
//! use rand::SeedableRng;
//! use waves_rand::{estimate_union, RandConfig, Referee, UnionParty};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let cfg = RandConfig::for_positions(1_000, 0.2, 0.1, &mut rng).unwrap();
//! let mut a = UnionParty::new(&cfg);
//! let mut b = UnionParty::new(&cfg);
//! for i in 0..2_000u64 {
//!     a.push_bit(i % 5 == 0);
//!     b.push_bit(i % 7 == 0);
//! }
//! let referee = Referee::new(cfg);
//! let est = estimate_union(&referee, &[a, b], 1_000).unwrap();
//! assert!(est > 0.0);
//! ```

pub mod config;
pub mod distinct;
pub mod referee;
pub mod union_wave;

pub use config::{instances_for, median, RandConfig, PAPER_C};
pub use distinct::{
    combine_distinct_instance, estimate_distinct, DistinctMessage, DistinctParty, DistinctReferee,
    DistinctReport, DistinctWave,
};
pub use referee::{combine_instance, estimate_union, PartyMessage, Referee, UnionParty};
pub use union_wave::{InstanceReport, UnionWave};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// With a single party and a sparse stream the estimator is
        /// exact (level 0 covers the window).
        #[test]
        fn sparse_single_party_exact(
            period in 20u64..60,
            len in 100u64..400,
            seed: u64,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = RandConfig::for_positions(64, 0.5, 0.4, &mut rng)
                .unwrap()
                .with_instances(3, &mut rng);
            let mut p = UnionParty::new(&cfg);
            let mut actual = 0u64;
            for i in 1..=len {
                let b = i % period == 0;
                p.push_bit(b);
                if b && i + 64 > len {
                    actual += 1;
                }
            }
            let referee = Referee::new(cfg);
            let est = estimate_union(&referee, &[p], 64).unwrap();
            prop_assert_eq!(est, actual as f64);
        }

        /// Estimates never go negative and duplicated parties don't
        /// change the answer (union idempotence).
        #[test]
        fn union_idempotent_under_duplication(
            bits in prop::collection::vec(prop::bool::weighted(0.3), 50..300),
            seed: u64,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = RandConfig::for_positions(64, 0.4, 0.4, &mut rng)
                .unwrap()
                .with_instances(3, &mut rng);
            let mut a = UnionParty::new(&cfg);
            let mut b = UnionParty::new(&cfg);
            for &bit in &bits {
                a.push_bit(bit);
                b.push_bit(bit);
            }
            let referee = Referee::new(cfg);
            let one = estimate_union(&referee, &[a.clone()], 64).unwrap();
            let two = estimate_union(&referee, &[a, b], 64).unwrap();
            prop_assert!((one - two).abs() < 1e-9);
        }
    }
}
