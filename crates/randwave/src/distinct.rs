//! Distinct-values counting in sliding windows over distributed streams
//! (Section 5, Theorem 6).
//!
//! The randomized wave is re-targeted from positions to *values*: the
//! shared hash is applied to the value, each element is the pair
//! `(value, most recent position)`, and re-occurrences move the element
//! to the recent end of every level it belongs to. A value counts as
//! "in the window" when its most recent occurrence is.
//!
//! Because the sample at the chosen level is a uniform (pairwise
//! independent) sample of the distinct values in the window, it also
//! answers *predicate* queries — "how many distinct values satisfy P?" —
//! for any predicate supplied at query time (the paper's "Handling
//! Predicates" extension).

use crate::config::{median, RandConfig};
use std::collections::HashMap;
use waves_core::chain::Chain;
use waves_core::error::WaveError;
use waves_gf2::LevelHash;

#[derive(Debug, Clone)]
struct LevelSample {
    /// value -> chain node.
    map: HashMap<u64, u32>,
    /// Recency list of (value, last position); head = least recent.
    chain: Chain<(u64, u64)>,
    /// The sample provably contains every selected value whose last
    /// occurrence is in `[range_start, pos]`.
    range_start: u64,
}

impl LevelSample {
    fn new(cap: usize) -> Self {
        LevelSample {
            map: HashMap::with_capacity(cap + 1),
            chain: Chain::with_capacity(cap + 1),
            range_start: 0,
        }
    }
}

/// One distinct-values wave instance for one party's stream.
#[derive(Debug, Clone)]
pub struct DistinctWave {
    max_window: u64,
    hash: LevelHash,
    cap: usize,
    pos: u64,
    levels: Vec<LevelSample>,
    /// Recency list over values present in any level, for O(1) expiry.
    global_chain: Chain<(u64, u64)>,
    global_map: HashMap<u64, u32>,
}

/// A party's report for one instance: the chosen level and its sample.
#[derive(Debug, Clone)]
pub struct DistinctReport {
    pub level: u32,
    /// `(value, last position)` pairs.
    pub elements: Vec<(u64, u64)>,
}

impl DistinctReport {
    /// Wire size with values at `value_bits` and positions at
    /// `position_bits`.
    pub fn wire_bytes(&self, value_bits: u32, position_bits: u32) -> usize {
        4 + (self.elements.len() * (value_bits + position_bits) as usize).div_ceil(8)
    }
}

impl DistinctWave {
    /// Build an instance from shared configuration (see
    /// [`RandConfig::for_values`]).
    pub fn new(config: &RandConfig, instance: usize) -> Self {
        let hash = config.hash(instance).clone();
        let d = config.degree();
        let cap = config.queue_capacity();
        DistinctWave {
            max_window: config.max_window(),
            cap,
            pos: 0,
            levels: (0..=d).map(|_| LevelSample::new(cap)).collect(),
            global_chain: Chain::with_capacity(16),
            global_map: HashMap::new(),
            hash,
        }
    }

    /// Stream length so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Total elements stored across levels.
    pub fn stored(&self) -> usize {
        self.levels.iter().map(|l| l.chain.len()).sum()
    }

    /// Observe the next value. Expected O(1) hash-and-touch work per
    /// item: the value belongs to an expected two levels.
    pub fn push_value(&mut self, v: u64) {
        self.pos += 1;
        self.expire();
        let top = self.hash.level(v);
        for l in 0..=top as usize {
            let mut gone_global: Option<u64> = None;
            {
                let level = &mut self.levels[l];
                if let Some(&id) = level.map.get(&v) {
                    // Re-occurrence: move to the recent end, new pos.
                    level.chain.remove(id);
                    let nid = level.chain.push_back((v, self.pos));
                    level.map.insert(v, nid);
                } else {
                    if level.chain.len() == self.cap {
                        let head = level.chain.head().expect("cap >= 1");
                        let (v_old, p_old) = *level.chain.get(head);
                        level.chain.remove(head);
                        level.map.remove(&v_old);
                        level.range_start = level.range_start.max(p_old + 1);
                        // Values survive longest at their own top level;
                        // once evicted there, they are gone everywhere.
                        if l as u32 == self.hash.level(v_old) {
                            gone_global = Some(v_old);
                        }
                    }
                    let nid = level.chain.push_back((v, self.pos));
                    level.map.insert(v, nid);
                }
            }
            if let Some(v_old) = gone_global {
                self.global_remove(v_old);
            }
        }
        // Touch the global recency list.
        if let Some(&gid) = self.global_map.get(&v) {
            self.global_chain.remove(gid);
        }
        let gid = self.global_chain.push_back((v, self.pos));
        self.global_map.insert(v, gid);
    }

    fn global_remove(&mut self, v: u64) {
        if let Some(gid) = self.global_map.remove(&v) {
            self.global_chain.remove(gid);
        }
    }

    fn expire(&mut self) {
        while let Some(gid) = self.global_chain.head() {
            let (v, p) = *self.global_chain.get(gid);
            if p + self.max_window <= self.pos {
                for l in 0..=self.hash.level(v) as usize {
                    if let Some(id) = self.levels[l].map.remove(&v) {
                        self.levels[l].chain.remove(id);
                        self.levels[l].range_start = self.levels[l].range_start.max(p + 1);
                    }
                }
                self.global_chain.remove(gid);
                self.global_map.remove(&v);
            } else {
                break;
            }
        }
    }

    /// Smallest level whose sample covers `[s, pos]`.
    pub fn local_level(&self, s: u64) -> u32 {
        let mut lo = 0usize;
        let mut hi = self.levels.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.levels[mid].range_start <= s {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo.min(self.levels.len() - 1) as u32
    }

    /// Build the message for a query over `[s, pos]`.
    pub fn report(&self, s: u64) -> DistinctReport {
        let l = self.local_level(s);
        DistinctReport {
            level: l,
            elements: self.levels[l as usize]
                .chain
                .iter()
                .map(|(_, &e)| e)
                .collect(),
        }
    }

    /// Window-start helper (validates `n <= N`).
    pub fn window_start(&self, n: u64) -> Result<u64, WaveError> {
        if n > self.max_window {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_window,
            });
        }
        Ok((self.pos + 1).saturating_sub(n))
    }
}

/// Combine one instance's reports from every party: levelwise union
/// (Section 5) followed by the Figure 6 estimate on values.
pub fn combine_distinct_instance(
    config: &RandConfig,
    instance: usize,
    reports: &[&DistinctReport],
    s: u64,
    predicate: Option<&dyn Fn(u64) -> bool>,
) -> f64 {
    assert!(!reports.is_empty());
    let hash = config.hash(instance);
    let l_star = reports.iter().map(|r| r.level).max().expect("nonempty");
    // A value's window membership is decided by its most recent
    // occurrence across ALL parties: take the max position per value.
    let mut last: HashMap<u64, u64> = HashMap::new();
    for r in reports {
        for &(v, p) in &r.elements {
            if hash.level(v) >= l_star {
                let e = last.entry(v).or_insert(0);
                *e = (*e).max(p);
            }
        }
    }
    let count = last
        .iter()
        .filter(|&(&v, &p)| p >= s && predicate.is_none_or(|f| f(v)))
        .count();
    (1u64 << l_star) as f64 * count as f64
}

/// A party for distinct counting: one [`DistinctWave`] per instance.
#[derive(Debug, Clone)]
pub struct DistinctParty {
    waves: Vec<DistinctWave>,
}

/// A party's full message: one report per instance.
#[derive(Debug, Clone)]
pub struct DistinctMessage {
    pub reports: Vec<DistinctReport>,
}

impl DistinctParty {
    pub fn new(config: &RandConfig) -> Self {
        DistinctParty {
            waves: (0..config.instances())
                .map(|i| DistinctWave::new(config, i))
                .collect(),
        }
    }

    /// Stream length observed so far.
    pub fn pos(&self) -> u64 {
        self.waves[0].pos()
    }

    /// Observe the next value in every instance.
    pub fn push_value(&mut self, v: u64) {
        for w in self.waves.iter_mut() {
            w.push_value(v);
        }
    }

    /// Advance the clock without a value (positionwise alignment with
    /// other parties that did observe an item).
    pub fn push_absent(&mut self) {
        for w in self.waves.iter_mut() {
            w.pos += 1;
            w.expire();
        }
    }

    /// Build the query message for the last `n` positions.
    pub fn message(&self, n: u64) -> Result<DistinctMessage, WaveError> {
        let s = self.waves[0].window_start(n)?;
        Ok(DistinctMessage {
            reports: self.waves.iter().map(|w| w.report(s)).collect(),
        })
    }

    /// Total stored elements (for space accounting).
    pub fn stored(&self) -> usize {
        self.waves.iter().map(DistinctWave::stored).sum()
    }
}

/// Referee for distinct counting.
#[derive(Debug, Clone)]
pub struct DistinctReferee {
    config: RandConfig,
}

impl DistinctReferee {
    pub fn new(config: RandConfig) -> Self {
        DistinctReferee { config }
    }

    pub fn config(&self) -> &RandConfig {
        &self.config
    }

    /// Median-of-instances estimate of the number of distinct values in
    /// the window `[s, pos]` across all parties.
    pub fn estimate(&self, messages: &[DistinctMessage], s: u64) -> f64 {
        self.estimate_predicate(messages, s, None)
    }

    /// As [`DistinctReferee::estimate`], restricted to values satisfying
    /// a predicate supplied at query time.
    pub fn estimate_predicate(
        &self,
        messages: &[DistinctMessage],
        s: u64,
        predicate: Option<&dyn Fn(u64) -> bool>,
    ) -> f64 {
        assert!(!messages.is_empty());
        let m = self.config.instances();
        assert!(messages.iter().all(|msg| msg.reports.len() == m));
        let per_instance: Vec<f64> = (0..m)
            .map(|i| {
                let reports: Vec<&DistinctReport> =
                    messages.iter().map(|msg| &msg.reports[i]).collect();
                combine_distinct_instance(&self.config, i, &reports, s, predicate)
            })
            .collect();
        median(per_instance)
    }
}

/// Convenience driver: estimate distinct values over the last `n`
/// positions.
pub fn estimate_distinct(
    referee: &DistinctReferee,
    parties: &[DistinctParty],
    n: u64,
) -> Result<f64, WaveError> {
    assert!(!parties.is_empty());
    let messages: Vec<DistinctMessage> = parties
        .iter()
        .map(|p| p.message(n))
        .collect::<Result<_, _>>()?;
    let s = (parties[0].pos() + 1).saturating_sub(n);
    Ok(referee.estimate(&messages, s))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waves_core::exact::ExactDistinct;
    use waves_streamgen::values::ValueSource;
    use waves_streamgen::{overlapping_value_streams, ZipfValues};

    fn cfg(n: u64, r: u64, eps: f64, m: usize, seed: u64) -> RandConfig {
        let mut rng = StdRng::seed_from_u64(seed);
        RandConfig::for_values(n, r, eps, 0.2, &mut rng)
            .unwrap()
            .with_instances(m, &mut rng)
    }

    #[test]
    fn exact_when_sample_fits() {
        // Few distinct values: level 0 never evicts, count is exact.
        let c = cfg(128, 1 << 10, 0.5, 1, 1);
        let mut p = DistinctParty::new(&c);
        for i in 0..128u64 {
            p.push_value(i % 10);
        }
        let referee = DistinctReferee::new(c);
        let est = estimate_distinct(&referee, &[p], 128).unwrap();
        assert_eq!(est, 10.0);
    }

    #[test]
    fn window_semantics_most_recent_occurrence() {
        let c = cfg(4, 1 << 8, 0.5, 1, 2);
        let mut p = DistinctParty::new(&c);
        for v in [1u64, 2, 3, 9, 9, 9, 9] {
            p.push_value(v);
        }
        // Window of last 4: only value 9 has a recent-enough occurrence.
        let referee = DistinctReferee::new(c);
        let est = estimate_distinct(&referee, &[p], 4).unwrap();
        assert_eq!(est, 1.0);
    }

    #[test]
    fn single_stream_error_bound_statistical() {
        let (n, r, eps) = (512u64, (1u64 << 12) - 1, 0.3);
        let c = cfg(n, r, eps, 9, 3);
        let mut p = DistinctParty::new(&c);
        let mut oracle = ExactDistinct::new(n);
        let mut gen = ZipfValues::new(r as usize + 1, 1.0, 99);
        for _ in 0..4000 {
            let v = gen.next_value();
            p.push_value(v);
            oracle.push_value(v);
        }
        let referee = DistinctReferee::new(c);
        let est = estimate_distinct(&referee, &[p], n).unwrap();
        let actual = oracle.query(n);
        let rel = (est - actual as f64).abs() / actual as f64;
        assert!(rel <= eps, "est {est} actual {actual}");
    }

    #[test]
    fn distributed_counts_union_of_distinct() {
        let (n, r, eps, t) = (512u64, 1u64 << 12, 0.3, 3usize);
        let c = cfg(n, r - 1, eps, 9, 4);
        let streams = overlapping_value_streams(t, 2000, r, 0.3, 55);
        let mut parties: Vec<DistinctParty> = (0..t).map(|_| DistinctParty::new(&c)).collect();
        for i in 0..2000 {
            for (j, p) in parties.iter_mut().enumerate() {
                p.push_value(streams[j][i]);
            }
        }
        // Truth: a value is in the window if its most recent occurrence
        // (across all parties, on the shared position axis) is.
        let s_start = 2000usize.saturating_sub(n as usize);
        let mut last: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for i in 0..2000 {
            for st in streams.iter() {
                last.insert(st[i], i);
            }
        }
        let actual = last.values().filter(|&&i| i >= s_start).count() as u64;
        let referee = DistinctReferee::new(c);
        let est = estimate_distinct(&referee, &parties, n).unwrap();
        let rel = (est - actual as f64).abs() / actual as f64;
        assert!(rel <= eps, "est {est} actual {actual}");
    }

    #[test]
    fn predicate_queries() {
        let (n, r, eps) = (1024u64, (1u64 << 14) - 1, 0.3);
        let c = cfg(n, r, eps, 9, 5);
        let mut p = DistinctParty::new(&c);
        let mut oracle = ExactDistinct::new(n);
        let mut gen = ZipfValues::new(r as usize + 1, 0.5, 7);
        for _ in 0..3000 {
            let v = gen.next_value();
            p.push_value(v);
            oracle.push_value(v);
        }
        let referee = DistinctReferee::new(c);
        let msg = vec![p.message(n).unwrap()];
        let s = (p.pos() + 1).saturating_sub(n);
        let even = |v: u64| v.is_multiple_of(2);
        let est = referee.estimate_predicate(&msg, s, Some(&even));
        let actual = oracle.query_predicate(n, even);
        let rel = (est - actual as f64).abs() / actual as f64;
        // Selectivity ~1/2: guarantee degrades by ~1/alpha; allow 2*eps.
        assert!(rel <= 2.0 * eps, "est {est} actual {actual}");
    }

    #[test]
    fn expiry_keeps_memory_bounded() {
        let c = cfg(256, (1 << 16) - 1, 0.4, 1, 6);
        let cap = c.queue_capacity();
        let mut w = DistinctWave::new(&c, 0);
        for i in 0..50_000u64 {
            w.push_value(i % 7919);
        }
        assert!(w.stored() <= (c.degree() as usize + 1) * cap);
        // Global list only holds values still sampled somewhere.
        assert!(w.global_chain.len() <= w.stored());
    }

    #[test]
    fn global_list_matches_level_membership() {
        // Invariant behind the O(1) expiry: a value is in the global
        // recency list iff it is present in some level (equivalently,
        // in its own top level — values survive longest there).
        let c = cfg(128, (1 << 10) - 1, 0.4, 1, 21);
        let mut w = DistinctWave::new(&c, 0);
        let mut x = 3u64;
        for step in 0..30_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            w.push_value((x >> 33) % 797);
            if step % 977 == 0 {
                let global: std::collections::HashSet<u64> = w.global_map.keys().copied().collect();
                let mut in_levels: std::collections::HashSet<u64> =
                    std::collections::HashSet::new();
                for l in &w.levels {
                    in_levels.extend(l.map.keys().copied());
                }
                assert_eq!(global, in_levels, "step {step}");
            }
        }
    }

    #[test]
    fn reoccurrence_updates_position_in_all_levels() {
        let c = cfg(64, 255, 0.5, 1, 7);
        let mut w = DistinctWave::new(&c, 0);
        w.push_value(42);
        for _ in 0..60 {
            w.push_value(7);
        }
        w.push_value(42); // refresh before expiry
        for _ in 0..30 {
            w.push_value(7);
        }
        // 42's most recent occurrence is within the window of 64.
        let s = w.window_start(64).unwrap();
        let rep = w.report(s);
        assert!(
            rep.elements.iter().any(|&(v, p)| v == 42 && p >= s),
            "{rep:?}"
        );
    }
}
