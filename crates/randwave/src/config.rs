//! Shared configuration for randomized waves — the "stored coins".
//!
//! In the distributed streams model, all parties may share a random
//! string chosen *before* the streams are observed (Section 2, "stored
//! coins"). For randomized waves that string is the list of hash
//! coefficients `(q_i, r_i)`, one pair per independent instance. A
//! [`RandConfig`] is sampled once, distributed to every party, and both
//! parties and the Referee derive their hash functions from it —
//! guaranteeing the positionwise coordination the algorithms need.

use rand::Rng;
use waves_core::error::WaveError;
use waves_gf2::LevelHash;

/// Paper's queue-size constant (`c = 36`, from Lemma 2's analysis).
pub const PAPER_C: f64 = 36.0;

/// Number of independent instances whose median achieves failure
/// probability `delta`, given per-instance success probability > 2/3
/// (Chernoff: `exp(-m/18) <= delta`). Always odd.
pub fn instances_for(delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0);
    let m = (18.0 * (1.0 / delta).ln()).ceil() as usize;
    let m = m.max(1);
    if m.is_multiple_of(2) {
        m + 1
    } else {
        m
    }
}

/// Shared configuration for a family of randomized-wave instances.
#[derive(Debug, Clone)]
pub struct RandConfig {
    max_window: u64,
    eps: f64,
    delta: f64,
    c: f64,
    /// Field degree: hash domain is `[0, 2^degree)`.
    degree: u32,
    hashes: Vec<LevelHash>,
}

impl RandConfig {
    /// Sample a configuration for Union Counting: the hash domain is the
    /// position ring `[0, N')`, `N'` the smallest power of two at least
    /// `2 * max_window`.
    pub fn for_positions<R: Rng + ?Sized>(
        max_window: u64,
        eps: f64,
        delta: f64,
        rng: &mut R,
    ) -> Result<Self, WaveError> {
        if max_window == 0 {
            return Err(WaveError::InvalidWindow(0));
        }
        let degree = waves_core::ModRing::for_window(max_window).counter_bits();
        Self::build(max_window, eps, delta, PAPER_C, degree, rng)
    }

    /// Sample a configuration for distinct-values counting: the hash
    /// domain covers the value space `[0..=max_value]`.
    pub fn for_values<R: Rng + ?Sized>(
        max_window: u64,
        max_value: u64,
        eps: f64,
        delta: f64,
        rng: &mut R,
    ) -> Result<Self, WaveError> {
        if max_window == 0 {
            return Err(WaveError::InvalidWindow(0));
        }
        if max_value >= 1 << 63 {
            return Err(WaveError::ValueTooLarge {
                value: max_value,
                max: (1 << 63) - 1,
            });
        }
        let degree = (64 - max_value.leading_zeros()).max(1);
        Self::build(max_window, eps, delta, PAPER_C, degree, rng)
    }

    fn build<R: Rng + ?Sized>(
        max_window: u64,
        eps: f64,
        delta: f64,
        c: f64,
        degree: u32,
        rng: &mut R,
    ) -> Result<Self, WaveError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(WaveError::InvalidEpsilon(eps));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(WaveError::InvalidDelta(delta));
        }
        let m = instances_for(delta);
        let hashes = (0..m).map(|_| LevelHash::random(degree, rng)).collect();
        Ok(RandConfig {
            max_window,
            eps,
            delta,
            c,
            degree,
            hashes,
        })
    }

    /// Override the queue constant `c` (default 36, the paper's analysis
    /// constant; the A2 ablation shows smaller values suffice
    /// empirically). Re-derives nothing else.
    pub fn with_c(mut self, c: f64) -> Self {
        assert!(c > 0.0);
        self.c = c;
        self
    }

    /// Override the number of independent instances (must be odd). The
    /// excess hashes are dropped / missing ones resampled from `rng`.
    pub fn with_instances<R: Rng + ?Sized>(mut self, m: usize, rng: &mut R) -> Self {
        assert!(m >= 1 && m % 2 == 1, "instance count must be odd");
        while self.hashes.len() < m {
            self.hashes.push(LevelHash::random(self.degree, rng));
        }
        self.hashes.truncate(m);
        self
    }

    /// Maximum window size `N`.
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// Relative-error target.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Failure-probability target.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Per-level queue capacity `ceil(c / eps^2)`.
    pub fn queue_capacity(&self) -> usize {
        (self.c / (self.eps * self.eps)).ceil() as usize
    }

    /// Number of levels minus one (levels run `0..=degree`).
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Number of independent instances.
    pub fn instances(&self) -> usize {
        self.hashes.len()
    }

    /// The shared hash for instance `i`.
    pub fn hash(&self, i: usize) -> &LevelHash {
        &self.hashes[i]
    }

    /// Bits a party must store for the shared coins themselves
    /// (two field elements per instance) — counted in the space bound,
    /// per the stored-coins model.
    pub fn stored_coin_bits(&self) -> u64 {
        2 * self.degree as u64 * self.hashes.len() as u64
    }

    /// Serialize the configuration (parameters + stored coins) so the
    /// preprocessing step can ship it to every party.
    pub fn encode(&self) -> Vec<u8> {
        use waves_core::codec::BitWriter;
        let mut w = BitWriter::new();
        w.write_gamma(self.max_window);
        // eps/delta as parts-per-million (exact enough to reconstruct
        // every derived integer parameter; the raw coins are explicit).
        // Parameters below the encoding quantum round up to it, so the
        // gamma codes stay positive (the coins, the exact quantities,
        // are written verbatim below).
        w.write_gamma(((self.eps * 1e6).round() as u64).max(1));
        w.write_gamma(((self.delta * 1e6).round() as u64).max(1));
        w.write_gamma(((self.c * 1e3).round() as u64).max(1));
        w.write_gamma(self.degree as u64);
        w.write_gamma(self.hashes.len() as u64);
        for h in &self.hashes {
            let (q, r) = h.parts();
            w.write_bits(q, self.degree);
            w.write_bits(r, self.degree);
        }
        w.finish()
    }

    /// Reconstruct a configuration shipped by [`RandConfig::encode`].
    /// Parties built from the decoded configuration hash identically to
    /// parties built from the original.
    pub fn decode(bytes: &[u8]) -> Result<Self, waves_core::codec::CodecError> {
        use waves_core::codec::{BitReader, CodecError};
        let mut r = BitReader::new(bytes);
        let max_window = r.read_gamma()?;
        let eps = r.read_gamma()? as f64 / 1e6;
        let delta = r.read_gamma()? as f64 / 1e6;
        let c = r.read_gamma()? as f64 / 1e3;
        let degree = r.read_gamma()? as u32;
        if !(1..=63).contains(&degree) {
            return Err(CodecError::Corrupt("degree out of range"));
        }
        if eps <= 0.0 || eps >= 1.0 || delta <= 0.0 || delta >= 1.0 || c <= 0.0 {
            return Err(CodecError::Corrupt("parameters out of range"));
        }
        let m = r.read_gamma()? as usize;
        if m > 1 << 16 {
            return Err(CodecError::Corrupt("too many instances"));
        }
        let mut hashes = Vec::with_capacity(m);
        for _ in 0..m {
            let q = r.read_bits(degree)?;
            let rr = r.read_bits(degree)?;
            hashes.push(LevelHash::from_parts(degree, q, rr));
        }
        Ok(RandConfig {
            max_window,
            eps,
            delta,
            c,
            degree,
            hashes,
        })
    }
}

/// Median of a non-empty list of estimates.
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
    xs[xs.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn instance_counts_odd_and_monotone() {
        let a = instances_for(0.3);
        let b = instances_for(0.05);
        let c = instances_for(0.001);
        assert!(a % 2 == 1 && b % 2 == 1 && c % 2 == 1);
        assert!(a <= b && b <= c);
    }

    #[test]
    fn config_degree_covers_position_ring() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RandConfig::for_positions(1000, 0.2, 0.2, &mut rng).unwrap();
        // N' = 2048 -> degree 11.
        assert_eq!(cfg.degree(), 11);
        assert_eq!(cfg.queue_capacity(), (36.0f64 / 0.04).ceil() as usize);
    }

    #[test]
    fn config_rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(RandConfig::for_positions(0, 0.2, 0.2, &mut rng).is_err());
        assert!(RandConfig::for_positions(10, 0.0, 0.2, &mut rng).is_err());
        assert!(RandConfig::for_positions(10, 0.2, 1.5, &mut rng).is_err());
    }

    #[test]
    fn with_instances_reshapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RandConfig::for_positions(100, 0.3, 0.5, &mut rng)
            .unwrap()
            .with_instances(5, &mut rng);
        assert_eq!(cfg.instances(), 5);
        assert!(cfg.stored_coin_bits() > 0);
    }

    #[test]
    fn median_odd() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![5.0]), 5.0);
    }

    #[test]
    fn config_encode_decode_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = RandConfig::for_positions(10_000, 0.15, 0.01, &mut rng)
            .unwrap()
            .with_c(12.0);
        let bytes = cfg.encode();
        let back = RandConfig::decode(&bytes).unwrap();
        assert_eq!(back.max_window(), cfg.max_window());
        assert_eq!(back.degree(), cfg.degree());
        assert_eq!(back.instances(), cfg.instances());
        assert_eq!(back.queue_capacity(), cfg.queue_capacity());
        // The coins — and therefore every hash value — are identical.
        for i in 0..cfg.instances() {
            for p in (0..50_000u64).step_by(991) {
                assert_eq!(back.hash(i).level(p), cfg.hash(i).level(p));
            }
        }
    }

    #[test]
    fn config_decode_rejects_garbage() {
        assert!(RandConfig::decode(&[]).is_err());
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = RandConfig::for_positions(100, 0.3, 0.3, &mut rng).unwrap();
        let bytes = cfg.encode();
        assert!(RandConfig::decode(&bytes[..2]).is_err());
    }

    #[test]
    fn lemma_2_level_estimates_concentrate() {
        // Lemma 2 (from [18]), simulated directly: x items are sampled
        // into levels via h; for any level j at or below the first level
        // holding <= c/eps^2 items, the estimate x_j * 2^j is within
        // eps*x with probability > 2/3. We check the *success rate* over
        // coin draws at the paper's c = 36.
        use waves_gf2::LevelHash;
        let x = 20_000u64;
        let eps = 0.2f64;
        let cap = (36.0 / (eps * eps)).ceil() as u64;
        let trials = 120u64;
        let mut ok = 0u64;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(40_000 + seed);
            let h = LevelHash::random(20, &mut rng);
            // Count items per level.
            let mut counts = [0u64; 21];
            for i in 1..=x {
                for c in counts.iter_mut().take(h.level(i) as usize + 1) {
                    *c += 1;
                }
            }
            let ell = (0..counts.len())
                .find(|&l| counts[l] <= cap)
                .expect("top level holds <= 1 expected item");
            let est = counts[ell] as f64 * (1u64 << ell) as f64;
            if (est - x as f64).abs() <= eps * x as f64 {
                ok += 1;
            }
        }
        // Lemma bound: > 2/3. Empirically it is much higher; assert a
        // margin above the bound.
        assert!(
            ok * 4 > trials * 3,
            "success rate {ok}/{trials} not above 3/4"
        );
    }

    #[test]
    fn shared_hashes_identical_across_clones() {
        // Two parties constructed from the same config hash identically.
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = RandConfig::for_positions(64, 0.3, 0.3, &mut rng).unwrap();
        let a = cfg.clone();
        let b = cfg;
        for p in 0..200u64 {
            assert_eq!(a.hash(0).level(p), b.hash(0).level(p));
        }
    }
}
