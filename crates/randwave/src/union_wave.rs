//! The randomized wave for Union Counting (Section 4, Figure 6) —
//! per-party state and party-side query logic.
//!
//! One `UnionWave` is a single instance: `d + 1` level queues, each
//! holding the `c/eps^2` most recent 1-positions hashed to that level or
//! above. A position is selected into levels `0..=h(pos)`, so level `l`
//! holds an expected `2^-l` fraction of the 1's. Each queue tracks its
//! *range start* — the position just after the last element it lost —
//! so a query can pick the smallest level whose sample still covers the
//! window.

use crate::config::RandConfig;
use std::collections::VecDeque;
use waves_core::error::WaveError;
use waves_gf2::LevelHash;

#[derive(Debug, Clone)]
struct LevelQueue {
    /// Front = oldest position.
    buf: VecDeque<u64>,
    /// The queue provably contains every selected position in
    /// `[range_start, pos]`.
    range_start: u64,
}

/// One randomized-wave instance for one party's stream.
#[derive(Debug, Clone)]
pub struct UnionWave {
    max_window: u64,
    hash: LevelHash,
    cap: usize,
    pos: u64,
    levels: Vec<LevelQueue>,
}

/// What a party sends the Referee for one instance: its selected level
/// and that level's queue contents.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    pub level: u32,
    pub positions: Vec<u64>,
}

impl InstanceReport {
    /// Bytes this report would occupy on the wire (level tag + one
    /// mod-N' position per element, counted at the paper's width).
    pub fn wire_bytes(&self, position_bits: u32) -> usize {
        4 + (self.positions.len() * position_bits as usize).div_ceil(8)
    }

    /// Serialize with the compact bit codec (level, count, delta-coded
    /// positions) — an actual wire format, typically smaller than the
    /// fixed-width [`InstanceReport::wire_bytes`] estimate.
    pub fn encode_into(&self, w: &mut waves_core::codec::BitWriter) {
        w.write_gamma0(self.level as u64);
        w.write_gamma0(self.positions.len() as u64);
        waves_core::codec::write_deltas(w, &self.positions);
    }

    /// Decode one report from a bit reader.
    pub fn decode_from(
        r: &mut waves_core::codec::BitReader<'_>,
    ) -> Result<Self, waves_core::codec::CodecError> {
        let level = r.read_gamma0()? as u32;
        if level > 63 {
            return Err(waves_core::codec::CodecError::Corrupt("level out of range"));
        }
        let count = r.read_gamma0()? as usize;
        if count > 1 << 24 {
            return Err(waves_core::codec::CodecError::Corrupt("report too large"));
        }
        let positions = waves_core::codec::read_deltas(r, count)?;
        Ok(InstanceReport { level, positions })
    }
}

impl UnionWave {
    /// Build an instance from shared configuration (instance index `i`).
    pub fn new(config: &RandConfig, instance: usize) -> Self {
        let hash = config.hash(instance).clone();
        let d = config.degree();
        UnionWave {
            max_window: config.max_window(),
            cap: config.queue_capacity(),
            pos: 0,
            levels: (0..=d)
                .map(|_| LevelQueue {
                    buf: VecDeque::with_capacity(config.queue_capacity()),
                    range_start: 0,
                })
                .collect(),
            hash,
        }
    }

    /// Stream length so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Maximum window size `N`.
    pub fn max_window(&self) -> u64 {
        self.max_window
    }

    /// Total positions stored across levels.
    pub fn stored(&self) -> usize {
        self.levels.iter().map(|q| q.buf.len()).sum()
    }

    /// Process the next stream bit (Figure 6, top): expected O(1) work —
    /// the arriving position goes into an expected two levels, and the
    /// position leaving the window is checked in its expected two levels.
    pub fn push_bit(&mut self, b: bool) {
        self.pos += 1;
        // Expire: the only position that leaves the window this step is
        // pos - N; it can only sit at the tails of levels 0..=h(pos - N).
        if self.pos > self.max_window {
            let p_exp = self.pos - self.max_window;
            let top = self.hash.level(p_exp);
            for q in self.levels.iter_mut().take(top as usize + 1) {
                if q.buf.front() == Some(&p_exp) {
                    q.buf.pop_front();
                    q.range_start = q.range_start.max(p_exp + 1);
                }
            }
        }
        if b {
            let top = self.hash.level(self.pos);
            for q in self.levels.iter_mut().take(top as usize + 1) {
                if q.buf.len() == self.cap {
                    let old = q.buf.pop_front().expect("cap >= 1");
                    q.range_start = q.range_start.max(old + 1);
                }
                q.buf.push_back(self.pos);
            }
        }
    }

    /// The party-side query step: the smallest level whose sample covers
    /// the window `[s, pos]`, found by binary search over the
    /// monotonically shrinking range starts (the `O(log log N')` step in
    /// Theorem 5's query bound).
    pub fn local_level(&self, s: u64) -> u32 {
        // range_start is nonincreasing in the level index, so partition.
        let mut lo = 0usize;
        let mut hi = self.levels.len(); // first level with range_start <= s
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.levels[mid].range_start <= s {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        debug_assert!(
            lo < self.levels.len(),
            "top level always covers (expired only)"
        );
        lo.min(self.levels.len() - 1) as u32
    }

    /// Build the message for a query over `[s, pos]`.
    pub fn report(&self, s: u64) -> InstanceReport {
        let l = self.local_level(s);
        InstanceReport {
            level: l,
            positions: self.levels[l as usize].buf.iter().copied().collect(),
        }
    }

    /// Validate the window size and derive the window start `s` for a
    /// query over the last `n` positions.
    pub fn window_start(&self, n: u64) -> Result<u64, WaveError> {
        if n > self.max_window {
            return Err(WaveError::WindowTooLarge {
                requested: n,
                max: self.max_window,
            });
        }
        Ok((self.pos + 1).saturating_sub(n))
    }

    #[cfg(test)]
    pub(crate) fn level_contents(&self, l: usize) -> (u64, Vec<u64>) {
        (
            self.levels[l].range_start,
            self.levels[l].buf.iter().copied().collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(n: u64, eps: f64, seed: u64) -> RandConfig {
        let mut rng = StdRng::seed_from_u64(seed);
        RandConfig::for_positions(n, eps, 0.3, &mut rng)
            .unwrap()
            .with_instances(1, &mut rng)
    }

    #[test]
    fn level_zero_holds_most_recent_ones_exactly() {
        let cfg = config(1 << 10, 0.5, 1);
        let mut w = UnionWave::new(&cfg, 0);
        let mut ones = Vec::new();
        for i in 1..=500u64 {
            let b = i % 3 == 0;
            w.push_bit(b);
            if b {
                ones.push(i);
            }
        }
        let (_, lv0) = w.level_contents(0);
        let tail: Vec<u64> = ones[ones.len() - lv0.len()..].to_vec();
        assert_eq!(lv0, tail, "level 0 = most recent selected (all) 1s");
    }

    #[test]
    fn range_start_nonincreasing_in_level() {
        let cfg = config(256, 0.4, 2);
        let mut w = UnionWave::new(&cfg, 0);
        for i in 0..5000u64 {
            w.push_bit(i % 2 == 0);
        }
        let starts: Vec<u64> = (0..=cfg.degree() as usize)
            .map(|l| w.level_contents(l).0)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] >= w[1]), "{starts:?}");
    }

    #[test]
    fn queue_invariant_contains_all_selected_in_range() {
        // Every level must contain *exactly* the selected 1-positions in
        // its claimed range — the invariant Lemma 3 relies on.
        let cfg = config(512, 0.4, 3);
        let mut w = UnionWave::new(&cfg, 0);
        let h = cfg.hash(0);
        let mut ones: Vec<u64> = Vec::new();
        for i in 1..=4000u64 {
            let b = (i * 2654435761) % 5 < 2;
            w.push_bit(b);
            if b {
                ones.push(i);
            }
            if i % 500 == 0 {
                for l in 0..=cfg.degree() {
                    let (start, got) = w.level_contents(l as usize);
                    let expect: Vec<u64> = ones
                        .iter()
                        .copied()
                        .filter(|&p| p >= start && h.level(p) >= l)
                        .collect();
                    assert_eq!(got, expect, "level {l} at pos {i}");
                }
            }
        }
    }

    #[test]
    fn expiry_removes_window_stragglers() {
        let cfg = config(64, 0.5, 4);
        let mut w = UnionWave::new(&cfg, 0);
        for _ in 0..64 {
            w.push_bit(true);
        }
        for _ in 0..64 {
            w.push_bit(false);
        }
        // All ones expired: every queue's remaining entries (if any)
        // would be out of window; tails must have been dropped.
        for l in 0..=cfg.degree() as usize {
            let (_, c) = w.level_contents(l);
            assert!(c.is_empty(), "level {l} still has {c:?}");
        }
    }

    #[test]
    fn local_level_picks_smallest_covering() {
        let cfg = config(1 << 12, 0.3, 5);
        let mut w = UnionWave::new(&cfg, 0);
        for _ in 0..20_000u64 {
            w.push_bit(true);
        }
        let s = w.pos() - 1000;
        let l = w.local_level(s);
        let (start, _) = w.level_contents(l as usize);
        assert!(start <= s);
        if l > 0 {
            let (prev, _) = w.level_contents(l as usize - 1);
            assert!(prev > s, "level {l} not minimal");
        }
    }

    #[test]
    fn window_start_bounds() {
        let cfg = config(128, 0.5, 6);
        let mut w = UnionWave::new(&cfg, 0);
        for _ in 0..50 {
            w.push_bit(true);
        }
        assert_eq!(w.window_start(10).unwrap(), 41);
        assert_eq!(w.window_start(128).unwrap(), 0);
        assert!(w.window_start(129).is_err());
    }
}
