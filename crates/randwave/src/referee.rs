//! Referee-side combine for Union Counting (Figure 6, bottom) and the
//! median-of-instances estimator of Theorem 5.

use crate::config::{median, RandConfig};
use crate::union_wave::{InstanceReport, UnionWave};
use std::collections::HashSet;
use waves_core::error::WaveError;

/// A party's full message for one query: one report per instance.
#[derive(Debug, Clone)]
pub struct PartyMessage {
    pub reports: Vec<InstanceReport>,
}

impl PartyMessage {
    /// Total wire size in bytes (position width from the config ring).
    pub fn wire_bytes(&self, config: &RandConfig) -> usize {
        self.reports
            .iter()
            .map(|r| r.wire_bytes(config.degree()))
            .sum()
    }

    /// Serialize the whole message with the compact bit codec.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = waves_core::codec::BitWriter::new();
        w.write_gamma0(self.reports.len() as u64);
        for r in &self.reports {
            r.encode_into(&mut w);
        }
        w.finish()
    }

    /// Decode a message produced by [`PartyMessage::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, waves_core::codec::CodecError> {
        let mut r = waves_core::codec::BitReader::new(bytes);
        let count = r.read_gamma0()? as usize;
        if count > 1 << 20 {
            return Err(waves_core::codec::CodecError::Corrupt("too many reports"));
        }
        let reports = (0..count)
            .map(|_| InstanceReport::decode_from(&mut r))
            .collect::<Result<_, _>>()?;
        Ok(PartyMessage { reports })
    }
}

/// Combine one instance's reports from all parties: pick
/// `l* = max_j l_j`, keep positions that hash to at least `l*` and lie
/// in the window, count the distinct union, scale by `2^l*`.
pub fn combine_instance(
    config: &RandConfig,
    instance: usize,
    reports: &[&InstanceReport],
    s: u64,
) -> f64 {
    assert!(!reports.is_empty());
    let hash = config.hash(instance);
    let l_star = reports.iter().map(|r| r.level).max().expect("nonempty");
    let union: HashSet<u64> = reports
        .iter()
        .flat_map(|r| r.positions.iter().copied())
        .filter(|&p| p >= s && hash.level(p) >= l_star)
        .collect();
    (1u64 << l_star) as f64 * union.len() as f64
}

/// The Referee: holds the shared configuration (stored coins) and
/// answers queries from party messages.
#[derive(Debug, Clone)]
pub struct Referee {
    config: RandConfig,
}

impl Referee {
    pub fn new(config: RandConfig) -> Self {
        Referee { config }
    }

    pub fn config(&self) -> &RandConfig {
        &self.config
    }

    /// Median-of-instances estimate for the number of 1's in `[s, pos]`
    /// of the positionwise union, given every party's message.
    pub fn estimate(&self, messages: &[PartyMessage], s: u64) -> f64 {
        assert!(!messages.is_empty(), "at least one party required");
        let m = self.config.instances();
        assert!(
            messages.iter().all(|msg| msg.reports.len() == m),
            "every message must carry one report per instance"
        );
        let per_instance: Vec<f64> = (0..m)
            .map(|i| {
                let reports: Vec<&InstanceReport> =
                    messages.iter().map(|msg| &msg.reports[i]).collect();
                combine_instance(&self.config, i, &reports, s)
            })
            .collect();
        median(per_instance)
    }
}

/// A party for Union Counting: one [`UnionWave`] per instance, fed the
/// same stream.
#[derive(Debug, Clone)]
pub struct UnionParty {
    waves: Vec<UnionWave>,
}

impl UnionParty {
    pub fn new(config: &RandConfig) -> Self {
        UnionParty {
            waves: (0..config.instances())
                .map(|i| UnionWave::new(config, i))
                .collect(),
        }
    }

    /// Stream length observed so far.
    pub fn pos(&self) -> u64 {
        self.waves[0].pos()
    }

    /// Process the next stream bit in every instance.
    pub fn push_bit(&mut self, b: bool) {
        for w in self.waves.iter_mut() {
            w.push_bit(b);
        }
    }

    /// Build the query message for a window of the last `n` positions.
    pub fn message(&self, n: u64) -> Result<PartyMessage, WaveError> {
        let s = self.waves[0].window_start(n)?;
        Ok(PartyMessage {
            reports: self.waves.iter().map(|w| w.report(s)).collect(),
        })
    }

    /// Total stored positions across instances and levels (for space
    /// accounting).
    pub fn stored(&self) -> usize {
        self.waves.iter().map(UnionWave::stored).sum()
    }

    /// Theoretical synopsis bits: stored positions at mod-N' width plus
    /// the stored coins.
    pub fn synopsis_bits(&self, config: &RandConfig) -> u64 {
        self.stored() as u64 * config.degree() as u64 + config.stored_coin_bits()
    }

    /// Space accounting in the same shape as the deterministic waves.
    pub fn space_report(&self, config: &RandConfig) -> waves_core::SpaceReport {
        waves_core::SpaceReport {
            resident_bytes: std::mem::size_of::<Self>()
                + self.stored() * std::mem::size_of::<u64>()
                + self.waves.len() * std::mem::size_of::<UnionWave>(),
            synopsis_bits: self.synopsis_bits(config),
            entries: self.stored(),
        }
    }
}

/// Convenience driver: estimate the union count over the last `n`
/// positions given all parties and a referee.
pub fn estimate_union(referee: &Referee, parties: &[UnionParty], n: u64) -> Result<f64, WaveError> {
    assert!(!parties.is_empty());
    // All parties must have observed the same stream length in the
    // positionwise model; a silent mismatch would make the shared
    // window start `s` wrong for the lagging parties.
    if let Some(p) = parties.iter().find(|p| p.pos() != parties[0].pos()) {
        return Err(WaveError::PositionRegressed {
            last: parties[0].pos(),
            got: p.pos(),
        });
    }
    let messages: Vec<PartyMessage> = parties
        .iter()
        .map(|p| p.message(n))
        .collect::<Result<_, _>>()?;
    let s = (parties[0].pos() + 1).saturating_sub(n);
    Ok(referee.estimate(&messages, s))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waves_streamgen::{correlated_streams, positionwise_union};

    fn exact_window_union(streams: &[Vec<bool>], n: u64) -> u64 {
        let u = positionwise_union(streams);
        let len = u.len();
        u[len.saturating_sub(n as usize)..]
            .iter()
            .filter(|&&b| b)
            .count() as u64
    }

    /// Run one full pipeline and return (estimate, actual).
    fn run(t: usize, len: usize, n: u64, eps: f64, instances: usize, seed: u64) -> (f64, u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandConfig::for_positions(n, eps, 0.2, &mut rng)
            .unwrap()
            .with_instances(instances, &mut rng);
        let streams = correlated_streams(t, len, 0.3, 0.2, seed ^ 0xABCD);
        let mut parties: Vec<UnionParty> = (0..t).map(|_| UnionParty::new(&cfg)).collect();
        for i in 0..len {
            for (j, p) in parties.iter_mut().enumerate() {
                p.push_bit(streams[j][i]);
            }
        }
        let referee = Referee::new(cfg);
        let est = estimate_union(&referee, &parties, n).unwrap();
        (est, exact_window_union(&streams, n))
    }

    #[test]
    fn exact_when_level_zero_suffices() {
        // With few 1's, level 0 is never evicted: the sample is the
        // whole window and the estimate is exact.
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RandConfig::for_positions(256, 0.5, 0.3, &mut rng)
            .unwrap()
            .with_instances(1, &mut rng);
        let mut a = UnionParty::new(&cfg);
        let mut b = UnionParty::new(&cfg);
        for i in 1..=256u64 {
            a.push_bit(i % 37 == 0);
            b.push_bit(i % 41 == 0);
        }
        let referee = Referee::new(cfg);
        let est = estimate_union(&referee, &[a, b], 256).unwrap();
        // ones: multiples of 37 (6) + multiples of 41 (6), no overlap.
        assert_eq!(est, 12.0);
    }

    #[test]
    fn single_party_reduces_to_basic_counting() {
        let (est, actual) = run(1, 4000, 512, 0.25, 9, 7);
        let rel = (est - actual as f64).abs() / actual as f64;
        assert!(rel <= 0.25, "est {est} actual {actual}");
    }

    #[test]
    fn multi_party_estimates_union_not_sum() {
        // Highly correlated streams: sum of counts would be ~t times the
        // union; the estimator must track the union.
        let (est, actual) = run(4, 3000, 512, 0.25, 9, 11);
        let rel = (est - actual as f64).abs() / actual as f64;
        assert!(rel <= 0.25, "est {est} actual {actual}");
    }

    #[test]
    fn median_of_instances_tightens_failures() {
        // With eps=0.3 and 9 instances at the paper's c, every seed in a
        // batch should land within eps (failure prob per query << 1%).
        let mut bad = 0;
        for seed in 0..10u64 {
            let (est, actual) = run(3, 2500, 300, 0.3, 9, 100 + seed);
            if actual > 0 {
                let rel = (est - actual as f64).abs() / actual as f64;
                if rel > 0.3 {
                    bad += 1;
                }
            }
        }
        assert_eq!(bad, 0, "{bad}/10 queries exceeded eps");
    }

    #[test]
    fn message_encode_decode_roundtrip() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = RandConfig::for_positions(512, 0.3, 0.3, &mut rng)
            .unwrap()
            .with_instances(5, &mut rng);
        let mut p = UnionParty::new(&cfg);
        for i in 0..2_000u64 {
            p.push_bit(i % 3 != 0);
        }
        let msg = p.message(512).unwrap();
        let bytes = msg.encode();
        let back = PartyMessage::decode(&bytes).unwrap();
        assert_eq!(back.reports.len(), msg.reports.len());
        for (a, b) in msg.reports.iter().zip(&back.reports) {
            assert_eq!(a.level, b.level);
            assert_eq!(a.positions, b.positions);
        }
        // The referee answers identically from the decoded message.
        let referee = Referee::new(cfg);
        let s = p.pos() + 1 - 512;
        assert_eq!(referee.estimate(&[msg], s), referee.estimate(&[back], s));
        // And the codec beats the fixed-width estimate.
        let analytic = p.message(512).unwrap().wire_bytes(referee.config());
        assert!(bytes.len() <= analytic, "{} > {analytic}", bytes.len());
    }

    #[test]
    fn message_decode_rejects_garbage() {
        assert!(PartyMessage::decode(&[]).is_err());
        assert!(PartyMessage::decode(&[0x00]).is_err()); // truncated gamma
    }

    #[test]
    fn message_size_scales_with_instances() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg1 = RandConfig::for_positions(256, 0.3, 0.3, &mut rng)
            .unwrap()
            .with_instances(1, &mut rng);
        let cfg9 = cfg1.clone().with_instances(9, &mut rng);
        let mut p1 = UnionParty::new(&cfg1);
        let mut p9 = UnionParty::new(&cfg9);
        for i in 0..256u64 {
            p1.push_bit(i % 2 == 0);
            p9.push_bit(i % 2 == 0);
        }
        let m1 = p1.message(256).unwrap().wire_bytes(&cfg1);
        let m9 = p9.message(256).unwrap().wire_bytes(&cfg9);
        assert!(m9 > 5 * m1, "m1={m1} m9={m9}");
    }

    #[test]
    fn guarantee_holds_across_party_counts() {
        // Lemma 3: the approximation guarantee is independent of t.
        for &t in &[2usize, 4, 8] {
            let (est, actual) = run(t, 2000, 256, 0.3, 9, 31 + t as u64);
            let rel = (est - actual as f64).abs() / actual.max(1) as f64;
            assert!(rel <= 0.3, "t={t} est {est} actual {actual}");
        }
    }
}
