//! Vendored stand-in for the `criterion` 0.5 API subset this workspace
//! uses.
//!
//! The build environment has no registry access, so the workspace
//! vendors a std-only bench harness covering exactly the surface its
//! benches consume: `criterion_group!`/`criterion_main!` (both forms),
//! [`Criterion`] with `sample_size`/`measurement_time`/`warm_up_time`,
//! benchmark groups with [`Throughput`], [`BenchmarkId`], and
//! [`Bencher::iter`].
//!
//! Measurement model: each `iter` call is timed over batches sized so a
//! batch lasts ≥ ~1ms, for the configured measurement time; the harness
//! reports the per-iteration mean, min and max across batches, plus
//! throughput when configured. Results print to stdout — there are no
//! HTML reports or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2);
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let cfg = self.clone();
        run_benchmark(&cfg, None, &id.render(), None, f);
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named set of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let cfg = self.criterion.clone();
        run_benchmark(&cfg, Some(&self.name), &id.render(), self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let cfg = self.criterion.clone();
        run_benchmark(&cfg, Some(&self.name), &id.render(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; time the routine with [`Bencher::iter`].
pub struct Bencher {
    config: Criterion,
    /// Per-iteration nanoseconds across measurement batches.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: run until the routine has cost at least ~1ms total,
        // doubling the batch size, so per-call timer error amortizes.
        let mut batch = 1u64;
        let batch_floor = Duration::from_millis(1);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            if t0.elapsed() >= batch_floor || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        // Warm up.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            for _ in 0..batch {
                black_box(routine());
            }
        }
        // Measure `sample_size` batches within the measurement budget.
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_benchmark<F>(
    cfg: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        config: cfg.clone(),
        samples: Vec::new(),
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.samples.is_empty() {
        println!("{label:<50} (no samples — closure never called iter)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
    let thrpt = match throughput {
        Some(Throughput::Elements(e)) => {
            format!("  thrpt: {:>10.2} Melem/s", e as f64 / mean * 1e3 / 1e6)
        }
        Some(Throughput::Bytes(by)) => {
            format!(
                "  thrpt: {:>10.2} MiB/s",
                by as f64 / mean * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{label:<50} time: [{min:>12.2} ns {mean:>12.2} ns {max:>12.2} ns]{thrpt}");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let cfg = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut b = Bencher {
            config: cfg,
            samples: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).render(), "0.5");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("add", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
