//! Multi-party distributed-stream instances.
//!
//! Generators for the three sliding-window scenarios of Section 3.4 and
//! for the adversarial family used in the Theorem 4 lower-bound
//! demonstration.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// `t` bit streams of length `len` with controllable positionwise
/// correlation: each position is 1 in the "base" stream with probability
/// `p_base`; each party then sees the base bit flipped independently
/// with probability `noise`. `noise = 0` makes all parties identical,
/// `noise = 0.5` makes them independent.
pub fn correlated_streams(
    t: usize,
    len: usize,
    p_base: f64,
    noise: f64,
    seed: u64,
) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<bool> = (0..len).map(|_| rng.gen_bool(p_base)).collect();
    (0..t)
        .map(|_| {
            base.iter()
                .map(|&b| if rng.gen_bool(noise) { !b } else { b })
                .collect()
        })
        .collect()
}

/// `t` streams whose 1's are disjoint: each position carries a 1 in at
/// most one stream. Exercises the regime where the union count is the
/// sum of the individual counts.
#[allow(clippy::needless_range_loop)] // one draw per position, then an owner index
pub fn disjoint_streams(t: usize, len: usize, p_one: f64, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut streams = vec![vec![false; len]; t];
    for i in 0..len {
        if rng.gen_bool(p_one) {
            let owner = rng.gen_range(0..t);
            streams[owner][i] = true;
        }
    }
    streams
}

/// The positionwise union (logical OR) of bit streams — the quantity
/// Scenario 3 / Union Counting estimates.
pub fn positionwise_union(streams: &[Vec<bool>]) -> Vec<bool> {
    assert!(!streams.is_empty());
    let len = streams[0].len();
    assert!(streams.iter().all(|s| s.len() == len));
    (0..len).map(|i| streams.iter().any(|s| s[i])).collect()
}

/// A pair of `n`-bit streams, each with exactly `n/2` ones, at Hamming
/// distance exactly `dist` (`dist` even, `dist <= n`) — the adversarial
/// family in the proof of Theorem 4: the union count is
/// `n/2 + dist/2`, so any estimator that cannot distinguish nearby pairs
/// must err by about `dist/2`.
pub fn hamming_pair(n: usize, dist: usize, seed: u64) -> (Vec<bool>, Vec<bool>) {
    assert!(n.is_multiple_of(2) && dist.is_multiple_of(2) && dist <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    // X: random n/2 ones.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    let mut x = vec![false; n];
    for &i in idx.iter().take(n / 2) {
        x[i] = true;
    }
    // Y = X with dist/2 ones flipped to 0 and dist/2 zeros flipped to 1
    // (keeps the count at n/2, Hamming distance exactly dist).
    let ones: Vec<usize> = (0..n).filter(|&i| x[i]).collect();
    let zeros: Vec<usize> = (0..n).filter(|&i| !x[i]).collect();
    let mut y = x.clone();
    for &i in ones.choose_multiple(&mut rng, dist / 2) {
        y[i] = false;
    }
    for &i in zeros.choose_multiple(&mut rng, dist / 2) {
        y[i] = true;
    }
    (x, y)
}

/// Split one logical stream among `t` parties (Scenario 2): returns, for
/// each party, the list of `(sequence_number, bit)` items it observes.
/// Sequence numbers are 1-based positions in the logical stream;
/// assignment is uniformly random per item.
pub fn split_logical_stream(stream: &[bool], t: usize, seed: u64) -> Vec<Vec<(u64, bool)>> {
    assert!(t >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parts = vec![Vec::new(); t];
    for (i, &b) in stream.iter().enumerate() {
        let owner = rng.gen_range(0..t);
        parts[owner].push((i as u64 + 1, b));
    }
    parts
}

/// `t` independent value streams drawing from a shared domain with
/// per-party skew — workload for distributed distinct counting. Party
/// `j` draws uniformly from a contiguous chunk of the domain plus a
/// shared "hot" set, so the union's distinct count is neither the sum
/// nor the max of the per-party counts.
pub fn overlapping_value_streams(
    t: usize,
    len: usize,
    domain: u64,
    shared_fraction: f64,
    seed: u64,
) -> Vec<Vec<u64>> {
    assert!(t >= 1 && domain >= t as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let shared = ((domain as f64) * shared_fraction) as u64;
    let chunk = (domain - shared) / t as u64;
    (0..t as u64)
        .map(|j| {
            (0..len)
                .map(|_| {
                    if shared > 0 && rng.gen_bool(0.5) {
                        rng.gen_range(0..shared)
                    } else {
                        shared + j * chunk + rng.gen_range(0..chunk.max(1))
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlated_zero_noise_identical() {
        let s = correlated_streams(3, 500, 0.4, 0.0, 1);
        assert_eq!(s[0], s[1]);
        assert_eq!(s[1], s[2]);
    }

    #[test]
    fn union_is_or() {
        let s = vec![
            vec![true, false, false, true],
            vec![false, false, true, true],
        ];
        assert_eq!(positionwise_union(&s), vec![true, false, true, true]);
    }

    #[test]
    fn disjoint_streams_never_collide() {
        let s = disjoint_streams(4, 2000, 0.5, 2);
        for i in 0..2000 {
            let owners = s.iter().filter(|st| st[i]).count();
            assert!(owners <= 1);
        }
    }

    #[test]
    fn hamming_pair_properties() {
        for dist in [0usize, 2, 10, 64] {
            let (x, y) = hamming_pair(128, dist, 3);
            assert_eq!(x.iter().filter(|&&b| b).count(), 64);
            assert_eq!(y.iter().filter(|&&b| b).count(), 64);
            let h = x.iter().zip(&y).filter(|(a, b)| a != b).count();
            assert_eq!(h, dist);
            // Union count = n/2 + H/2 (equation (2) of the paper).
            let union = positionwise_union(&[x, y]);
            assert_eq!(union.iter().filter(|&&b| b).count(), 64 + dist / 2);
        }
    }

    #[test]
    fn split_covers_stream_once() {
        let stream: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let parts = split_logical_stream(&stream, 4, 5);
        let mut seen = vec![0u32; 100];
        for part in &parts {
            let mut last = 0;
            for &(seq, b) in part {
                assert!(seq > last, "per-party sequence numbers increase");
                last = seq;
                assert_eq!(b, stream[(seq - 1) as usize]);
                seen[(seq - 1) as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn overlapping_values_have_shared_and_private() {
        let s = overlapping_value_streams(2, 5000, 1000, 0.2, 6);
        let a: std::collections::HashSet<u64> = s[0].iter().copied().collect();
        let b: std::collections::HashSet<u64> = s[1].iter().copied().collect();
        assert!(a.intersection(&b).count() > 0, "shared values exist");
        assert!(a.difference(&b).count() > 0, "private values exist");
    }
}
