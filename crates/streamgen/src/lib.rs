//! `waves-streamgen`: synthetic workloads for the waves reproduction.
//!
//! Every experiment and test in this repository draws its inputs from
//! here, so workloads are seeded and reproducible:
//!
//! * [`bits`] — bit streams (Bernoulli, bursty Markov, periodic,
//!   adversarial), plus the exact Figure 1 example stream;
//! * [`values`] — bounded integers (uniform, spikes, log-uniform call
//!   durations) and Zipf value streams for distinct counting;
//! * [`distributed`] — multi-party instances: correlated/disjoint
//!   streams, positionwise unions, Scenario-2 stream splits, and the
//!   Hamming-pair adversarial family behind Theorem 4;
//! * [`keyed`] — keyed event batches for the serving engine (uniform or
//!   hot-set-skewed key populations).

pub mod bits;
pub mod distributed;
pub mod keyed;
pub mod values;

pub use bits::{figure1_stream, AllOnes, AlternatingRuns, Bernoulli, BitSource, Bursty, Periodic};
pub use distributed::{
    correlated_streams, disjoint_streams, hamming_pair, overlapping_value_streams,
    positionwise_union, split_logical_stream,
};
pub use keyed::KeyedWorkload;
pub use values::{CallDurations, SpikeValues, UniformValues, ValueSource, ZipfValues};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn hamming_pair_invariants(
            half_n in 2usize..64,
            half_d in 0usize..32,
            seed: u64,
        ) {
            let n = 2 * half_n;
            let d = (2 * half_d).min(n);
            let (x, y) = hamming_pair(n, d, seed);
            prop_assert_eq!(x.iter().filter(|&&b| b).count(), n / 2);
            prop_assert_eq!(y.iter().filter(|&&b| b).count(), n / 2);
            prop_assert_eq!(x.iter().zip(&y).filter(|(a, b)| a != b).count(), d);
        }

        #[test]
        fn split_is_a_partition(t in 1usize..6, len in 0usize..200, seed: u64) {
            let stream: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
            let parts = split_logical_stream(&stream, t, seed);
            let total: usize = parts.iter().map(Vec::len).sum();
            prop_assert_eq!(total, len);
        }
    }
}
