//! Bounded-integer and value-stream workloads.
//!
//! Models the paper's telecom/retail motivations: call durations and
//! sale amounts are bounded integers (for the sum wave), and item/user
//! identifiers are values from a skewed domain (for distinct counting).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of `u64` stream values.
pub trait ValueSource {
    fn next_value(&mut self) -> u64;

    fn take_values(&mut self, n: usize) -> Vec<u64>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_value()).collect()
    }
}

/// Uniform integers in `[0..=max]`.
#[derive(Debug, Clone)]
pub struct UniformValues {
    rng: StdRng,
    max: u64,
}

impl UniformValues {
    pub fn new(max: u64, seed: u64) -> Self {
        UniformValues {
            rng: StdRng::seed_from_u64(seed),
            max,
        }
    }
}

impl ValueSource for UniformValues {
    fn next_value(&mut self) -> u64 {
        self.rng.gen_range(0..=self.max)
    }
}

/// Mostly-zero stream with rare spikes of value `spike` — models
/// checkpoint traffic / rare large transactions; stresses the sum wave's
/// level placement for large `v`.
#[derive(Debug, Clone)]
pub struct SpikeValues {
    rng: StdRng,
    spike: u64,
    p_spike: f64,
}

impl SpikeValues {
    pub fn new(spike: u64, p_spike: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_spike));
        SpikeValues {
            rng: StdRng::seed_from_u64(seed),
            spike,
            p_spike,
        }
    }
}

impl ValueSource for SpikeValues {
    fn next_value(&mut self) -> u64 {
        if self.rng.gen_bool(self.p_spike) {
            self.spike
        } else {
            0
        }
    }
}

/// Log-uniform call durations in `[1..=max]` (telecom call records:
/// many short calls, few long ones).
#[derive(Debug, Clone)]
pub struct CallDurations {
    rng: StdRng,
    max: u64,
}

impl CallDurations {
    pub fn new(max: u64, seed: u64) -> Self {
        assert!(max >= 1);
        CallDurations {
            rng: StdRng::seed_from_u64(seed),
            max,
        }
    }
}

impl ValueSource for CallDurations {
    fn next_value(&mut self) -> u64 {
        let lo = 0.0f64;
        let hi = (self.max as f64).ln();
        let x = self.rng.gen_range(lo..=hi);
        (x.exp() as u64).clamp(1, self.max)
    }
}

/// Zipf-distributed values over `{0, 1, ..., domain-1}` with exponent
/// `theta` (inverse-CDF table sampler; `theta = 0` is uniform).
#[derive(Debug, Clone)]
pub struct ZipfValues {
    rng: StdRng,
    /// Cumulative probabilities, cdf[i] = P(value <= i).
    cdf: Vec<f64>,
}

impl ZipfValues {
    pub fn new(domain: usize, theta: f64, seed: u64) -> Self {
        assert!(domain >= 1);
        assert!(theta >= 0.0);
        let mut cdf = Vec::with_capacity(domain);
        let mut acc = 0.0;
        for i in 0..domain {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let norm = acc;
        for c in cdf.iter_mut() {
            *c /= norm;
        }
        ZipfValues {
            rng: StdRng::seed_from_u64(seed),
            cdf,
        }
    }
}

impl ValueSource for ZipfValues {
    fn next_value(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_range() {
        let mut g = UniformValues::new(17, 3);
        for v in g.take_values(1000) {
            assert!(v <= 17);
        }
    }

    #[test]
    fn spikes_are_rare_and_exact() {
        let mut g = SpikeValues::new(1000, 0.01, 4);
        let vs = g.take_values(50_000);
        let spikes = vs.iter().filter(|&&v| v == 1000).count();
        assert!(vs.iter().all(|&v| v == 0 || v == 1000));
        assert!((300..700).contains(&spikes), "spikes {spikes}");
    }

    #[test]
    fn call_durations_bounded_and_skewed() {
        let mut g = CallDurations::new(3600, 5);
        let vs = g.take_values(20_000);
        assert!(vs.iter().all(|&v| (1..=3600).contains(&v)));
        let short = vs.iter().filter(|&&v| v <= 60).count();
        let long = vs.iter().filter(|&&v| v > 1800).count();
        assert!(short > long, "short {short} long {long}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let mut g = ZipfValues::new(10, 0.0, 6);
        let vs = g.take_values(100_000);
        let mut counts = [0usize; 10];
        for v in vs {
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((8000..12000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn zipf_skew_orders_frequencies() {
        let mut g = ZipfValues::new(100, 1.2, 7);
        let vs = g.take_values(100_000);
        let mut counts = vec![0usize; 100];
        for v in vs {
            counts[v as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_deterministic_per_seed() {
        let a = ZipfValues::new(50, 1.0, 9).take_values(100);
        let b = ZipfValues::new(50, 1.0, 9).take_values(100);
        assert_eq!(a, b);
    }
}
