//! Bit-stream workloads.
//!
//! The paper's motivating domains are modeled here: steady background
//! traffic (Bernoulli), flash crowds and quiet hours (bursty Markov
//! chains), diurnal patterns (periodic), and adversarial inputs that
//! stress worst cases (all-ones for EH merge cascades, long runs for
//! boundary behaviour). [`figure1_stream`] reconstructs the exact
//! 99-bit example stream of Figure 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use waves_core::Bits;

/// A source of stream bits.
pub trait BitSource {
    /// Produce the next bit.
    fn next_bit(&mut self) -> bool;

    /// Collect the next `n` bits into a vector.
    fn take_bits(&mut self, n: usize) -> Vec<bool>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Collect the next `n` bits word-packed. Draws the same bit
    /// sequence as [`take_bits`](BitSource::take_bits), so a seeded
    /// source produces identical streams in either currency.
    fn take_packed(&mut self, n: usize) -> Bits
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_bit()).collect()
    }
}

/// Independent bits, each 1 with probability `p`.
#[derive(Debug, Clone)]
pub struct Bernoulli {
    rng: StdRng,
    p: f64,
}

impl Bernoulli {
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        Bernoulli {
            rng: StdRng::seed_from_u64(seed),
            p,
        }
    }
}

impl BitSource for Bernoulli {
    fn next_bit(&mut self) -> bool {
        self.rng.gen_bool(self.p)
    }
}

/// A two-state Markov chain (bursty traffic): in the ON state bits are 1
/// with probability `p_on`, in the OFF state with probability `p_off`;
/// the state flips with the given switching probabilities.
#[derive(Debug, Clone)]
pub struct Bursty {
    rng: StdRng,
    on: bool,
    p_on: f64,
    p_off: f64,
    switch_to_off: f64,
    switch_to_on: f64,
}

impl Bursty {
    /// A conventional bursty source: long ON bursts of mostly-1 bits
    /// separated by long OFF stretches of mostly-0 bits, with expected
    /// burst length `burst_len`.
    pub fn new(burst_len: f64, seed: u64) -> Self {
        assert!(burst_len >= 1.0);
        Bursty {
            rng: StdRng::seed_from_u64(seed),
            on: false,
            p_on: 0.9,
            p_off: 0.05,
            switch_to_off: 1.0 / burst_len,
            switch_to_on: 1.0 / (4.0 * burst_len),
        }
    }
}

impl BitSource for Bursty {
    fn next_bit(&mut self) -> bool {
        let flip = if self.on {
            self.rng.gen_bool(self.switch_to_off)
        } else {
            self.rng.gen_bool(self.switch_to_on)
        };
        if flip {
            self.on = !self.on;
        }
        self.rng
            .gen_bool(if self.on { self.p_on } else { self.p_off })
    }
}

/// Deterministic periodic pattern: `ones` 1's followed by `zeros` 0's.
#[derive(Debug, Clone)]
pub struct Periodic {
    ones: u64,
    zeros: u64,
    phase: u64,
}

impl Periodic {
    pub fn new(ones: u64, zeros: u64) -> Self {
        assert!(ones + zeros > 0);
        Periodic {
            ones,
            zeros,
            phase: 0,
        }
    }
}

impl BitSource for Periodic {
    fn next_bit(&mut self) -> bool {
        let b = self.phase < self.ones;
        self.phase = (self.phase + 1) % (self.ones + self.zeros);
        b
    }
}

/// All 1's — the adversarial input for exponential-histogram cascades
/// (every arrival is an insertion; merge cascades fire at maximum rate).
#[derive(Debug, Clone, Default)]
pub struct AllOnes;

impl BitSource for AllOnes {
    fn next_bit(&mut self) -> bool {
        true
    }
}

/// Runs of geometrically distributed length with alternating bit values
/// — stresses window-boundary transitions.
#[derive(Debug, Clone)]
pub struct AlternatingRuns {
    rng: StdRng,
    bit: bool,
    p_end: f64,
}

impl AlternatingRuns {
    pub fn new(mean_run: f64, seed: u64) -> Self {
        assert!(mean_run >= 1.0);
        AlternatingRuns {
            rng: StdRng::seed_from_u64(seed),
            bit: false,
            p_end: 1.0 / mean_run,
        }
    }
}

impl BitSource for AlternatingRuns {
    fn next_bit(&mut self) -> bool {
        if self.rng.gen_bool(self.p_end) {
            self.bit = !self.bit;
        }
        self.bit
    }
}

/// The exact 99-bit data stream of Figure 1.
///
/// Figure 1 prints positions 1–2 and 61–99 explicitly; positions 3–60
/// are hidden but constrained: they carry the 1's of 1-ranks 2..=30,
/// and the Figure 2 query example additionally requires the 1 of rank 24
/// to sit at position 44. We realize the hidden section by placing the
/// 1 of rank `r` at position `r + 20` (so rank 24 -> position 44, rank
/// 30 -> position 50 <= 60, and rank 2 -> position 22 > 2), which
/// satisfies every constraint the paper states.
pub fn figure1_stream() -> Vec<bool> {
    let mut bits = vec![false; 99];
    // Position 2 carries 1-rank 1.
    bits[1] = true;
    // Hidden 1's: rank r at position r + 20, for r = 2..=30.
    for r in 2..=30usize {
        bits[r + 20 - 1] = true;
    }
    // Printed tail, positions 61..=99 (1-ranks 31..=50).
    for p in [
        62, 67, 68, 70, 71, 72, 73, 74, 75, 76, 77, 79, 80, 84, 85, 86, 89, 91, 94, 99,
    ] {
        bits[p - 1] = true;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_50_ones_in_99_bits() {
        let s = figure1_stream();
        assert_eq!(s.len(), 99);
        assert_eq!(s.iter().filter(|&&b| b).count(), 50);
    }

    #[test]
    fn figure1_printed_ranks_match() {
        let s = figure1_stream();
        // 1-rank of position p = number of ones in s[..p].
        let rank_at = |p: usize| s[..p].iter().filter(|&&b| b).count();
        assert_eq!(rank_at(2), 1); // position 2 has rank 1
        assert_eq!(rank_at(62), 31); // per Figure 1
        assert_eq!(rank_at(67), 32);
        assert_eq!(rank_at(71), 35);
        assert_eq!(rank_at(77), 41);
        assert_eq!(rank_at(99), 50);
        // The Figure 2 example: rank 24 at position 44.
        assert!(s[43]);
        assert_eq!(rank_at(44), 24);
    }

    #[test]
    fn figure1_window_39_has_20_ones() {
        let s = figure1_stream();
        let n_ones = s[60..99].iter().filter(|&&b| b).count();
        assert_eq!(n_ones, 20); // "the actual number of 1's in this window is 20"
    }

    #[test]
    fn bernoulli_density_close_to_p() {
        let mut g = Bernoulli::new(0.3, 7);
        let bits = g.take_bits(50_000);
        let d = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!((d - 0.3).abs() < 0.02, "density {d}");
    }

    #[test]
    fn bernoulli_deterministic_given_seed() {
        let a = Bernoulli::new(0.5, 1).take_bits(100);
        let b = Bernoulli::new(0.5, 1).take_bits(100);
        assert_eq!(a, b);
    }

    #[test]
    fn take_packed_matches_take_bits() {
        let bools = Bernoulli::new(0.3, 21).take_bits(1_000);
        let packed = Bernoulli::new(0.3, 21).take_packed(1_000);
        assert_eq!(Bits::from_bools(&bools), packed);
        let p = Periodic::new(3, 2).take_packed(130);
        assert_eq!(p.len(), 130);
        assert_eq!(
            p.count_ones(),
            Periodic::new(3, 2)
                .take_bits(130)
                .iter()
                .filter(|&&b| b)
                .count() as u64
        );
    }

    #[test]
    fn periodic_pattern() {
        let mut g = Periodic::new(2, 3);
        assert_eq!(
            g.take_bits(10),
            vec![true, true, false, false, false, true, true, false, false, false]
        );
    }

    #[test]
    fn bursty_has_long_runs() {
        let mut g = Bursty::new(100.0, 3);
        let bits = g.take_bits(100_000);
        // Count transitions; a bursty stream has far fewer than iid.
        let transitions = bits.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(transitions < 30_000, "transitions {transitions}");
    }

    #[test]
    fn alternating_runs_alternate() {
        let mut g = AlternatingRuns::new(10.0, 5);
        let bits = g.take_bits(10_000);
        assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
    }
}
