//! Keyed (multi-stream) workloads for the serving engine.
//!
//! The serving layer maintains one synopsis per key; what stresses it is
//! not any single stream but the *population*: how many keys are live,
//! how skewed traffic is across them, and how events arrive batched.
//! [`KeyedWorkload`] models that directly — a seeded generator that
//! yields batches of `(key, bits)` events where keys are drawn either
//! uniformly or with a hot-set skew (a fraction of traffic concentrated
//! on a small prefix of the key space, the usual flows-vs-elephants
//! shape), and each event carries a short Bernoulli bit burst.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use waves_core::Bits;

/// A seeded generator of keyed event batches.
///
/// ```
/// use waves_streamgen::KeyedWorkload;
///
/// let mut w = KeyedWorkload::new(1_000, 8, 0.5, 42);
/// let batch = w.next_batch(64);
/// assert_eq!(batch.len(), 64);
/// assert!(batch.iter().all(|(k, bits)| *k < 1_000 && bits.len() == 8));
/// ```
#[derive(Debug, Clone)]
pub struct KeyedWorkload {
    rng: StdRng,
    num_keys: u64,
    bits_per_event: usize,
    density: f64,
    /// Fraction of events routed to the hot set (0 = uniform).
    hot_fraction: f64,
    /// Size of the hot set (key ids `0..hot_keys`).
    hot_keys: u64,
    /// When set, each event's burst length is drawn uniformly from this
    /// inclusive range instead of being fixed at `bits_per_event`.
    burst_range: Option<(usize, usize)>,
}

impl KeyedWorkload {
    /// A uniform workload over `num_keys` keys: every event picks a key
    /// uniformly and carries `bits_per_event` Bernoulli(`density`) bits.
    pub fn new(num_keys: u64, bits_per_event: usize, density: f64, seed: u64) -> Self {
        assert!(num_keys >= 1);
        assert!(bits_per_event >= 1);
        assert!((0.0..=1.0).contains(&density));
        KeyedWorkload {
            rng: StdRng::seed_from_u64(seed),
            num_keys,
            bits_per_event,
            density,
            hot_fraction: 0.0,
            hot_keys: 1,
            burst_range: None,
        }
    }

    /// Skew the workload: route `hot_fraction` of events into the first
    /// `hot_keys` keys (the "elephants"), the rest uniformly over the
    /// whole key space.
    pub fn with_hot_set(mut self, hot_fraction: f64, hot_keys: u64) -> Self {
        assert!((0.0..=1.0).contains(&hot_fraction));
        assert!(hot_keys >= 1);
        self.hot_fraction = hot_fraction;
        self.hot_keys = hot_keys.min(self.num_keys);
        self
    }

    /// Vary each event's burst length uniformly over `lo..=hi` bits
    /// instead of the fixed `bits_per_event`. Irregular bursts exercise
    /// window boundaries that fixed-length events systematically miss
    /// (the DST harness relies on this to land expiries mid-batch).
    pub fn with_burst_range(mut self, lo: usize, hi: usize) -> Self {
        assert!(lo >= 1 && lo <= hi);
        self.burst_range = Some((lo, hi));
        self
    }

    /// Number of distinct keys events can land on.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// Bits carried by each event.
    pub fn bits_per_event(&self) -> usize {
        self.bits_per_event
    }

    /// Draw the next event's key.
    pub fn next_key(&mut self) -> u64 {
        if self.hot_fraction > 0.0 && self.rng.gen_bool(self.hot_fraction) {
            self.rng.gen_range(0..self.hot_keys)
        } else {
            self.rng.gen_range(0..self.num_keys)
        }
    }

    /// Produce the next event: a key plus its bit burst.
    pub fn next_event(&mut self) -> (u64, Vec<bool>) {
        let key = self.next_key();
        let len = match self.burst_range {
            Some((lo, hi)) => self.rng.gen_range(lo..=hi),
            None => self.bits_per_event,
        };
        let bits = (0..len).map(|_| self.rng.gen_bool(self.density)).collect();
        (key, bits)
    }

    /// Produce the next event word-packed: a key plus its bit burst as
    /// a [`Bits`] buffer, ready to feed `IngestRequest` without any
    /// per-bit intermediary. Draws the same key and bit sequence as
    /// [`next_event`](Self::next_event), so a seeded workload yields
    /// identical streams in either currency.
    pub fn next_packed_event(&mut self) -> (u64, Bits) {
        let key = self.next_key();
        let len = match self.burst_range {
            Some((lo, hi)) => self.rng.gen_range(lo..=hi),
            None => self.bits_per_event,
        };
        let bits = (0..len).map(|_| self.rng.gen_bool(self.density)).collect();
        (key, bits)
    }

    /// Produce the next `n` events as one batch of bool slices (the
    /// per-bit currency — oracles and diff tests consume this form).
    pub fn next_batch(&mut self, n: usize) -> Vec<(u64, Vec<bool>)> {
        (0..n).map(|_| self.next_event()).collect()
    }

    /// Produce the next `n` events as one word-packed batch, ready for
    /// `Engine::ingest(IngestRequest::batch(..))`.
    pub fn next_packed_batch(&mut self, n: usize) -> Vec<(u64, Bits)> {
        (0..n).map(|_| self.next_packed_event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_and_reproducible() {
        let a: Vec<_> = KeyedWorkload::new(100, 4, 0.5, 7).next_batch(50);
        let b: Vec<_> = KeyedWorkload::new(100, 4, 0.5, 7).next_batch(50);
        assert_eq!(a, b);
        let c: Vec<_> = KeyedWorkload::new(100, 4, 0.5, 8).next_batch(50);
        assert_ne!(a, c);
    }

    #[test]
    fn keys_and_bits_in_range() {
        let mut w = KeyedWorkload::new(32, 5, 0.3, 1);
        for _ in 0..500 {
            let (k, bits) = w.next_event();
            assert!(k < 32);
            assert_eq!(bits.len(), 5);
        }
    }

    #[test]
    fn burst_range_varies_lengths_within_bounds() {
        let mut w = KeyedWorkload::new(8, 4, 0.5, 11).with_burst_range(1, 9);
        let lens: Vec<usize> = (0..300).map(|_| w.next_event().1.len()).collect();
        assert!(lens.iter().all(|&l| (1..=9).contains(&l)));
        assert!(lens.iter().any(|&l| l != lens[0]), "lengths never varied");
        // Still seed-reproducible.
        let mut v = KeyedWorkload::new(8, 4, 0.5, 11).with_burst_range(1, 9);
        let again: Vec<usize> = (0..300).map(|_| v.next_event().1.len()).collect();
        assert_eq!(lens, again);
    }

    #[test]
    fn packed_batch_matches_bool_batch_bit_for_bit() {
        let bools = KeyedWorkload::new(64, 7, 0.4, 9)
            .with_burst_range(1, 20)
            .next_batch(200);
        let packed = KeyedWorkload::new(64, 7, 0.4, 9)
            .with_burst_range(1, 20)
            .next_packed_batch(200);
        assert_eq!(bools.len(), packed.len());
        for ((bk, bb), (pk, pb)) in bools.iter().zip(&packed) {
            assert_eq!(bk, pk);
            assert_eq!(&Bits::from_bools(bb), pb);
        }
    }

    #[test]
    fn hot_set_concentrates_traffic() {
        let mut w = KeyedWorkload::new(10_000, 1, 0.5, 3).with_hot_set(0.9, 10);
        let hot = (0..5_000).filter(|_| w.next_key() < 10).count();
        // ~90% + ~0.1% uniform spillover; 80% is a safe floor.
        assert!(hot > 4_000, "hot traffic too low: {hot}/5000");
    }

    #[test]
    fn uniform_spreads_traffic() {
        let mut w = KeyedWorkload::new(10, 1, 0.5, 5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[w.next_key() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "skewed: {counts:?}");
    }
}
