//! The finite field `GF(2^d)`, `1 <= d <= 63`.
//!
//! Elements are `u64` values with the low `d` bits significant; addition
//! is XOR and multiplication is carry-less multiplication reduced modulo a
//! fixed irreducible polynomial of degree `d`. The modulus is found
//! deterministically (see [`crate::poly::find_irreducible`]), so two
//! parties that construct `GF(2^d)` independently perform identical
//! arithmetic — the property the distributed hash function relies on.

use crate::poly;

/// The finite field `GF(2^d)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Field {
    degree: u32,
    modulus: u128,
    mask: u64,
}

impl Gf2Field {
    /// Construct `GF(2^d)`.
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > 63`.
    pub fn new(d: u32) -> Self {
        let modulus = poly::find_irreducible(d);
        let mask = if d == 63 {
            (1u64 << 63) - 1
        } else {
            (1u64 << d) - 1
        };
        Self {
            degree: d,
            modulus,
            mask,
        }
    }

    /// The extension degree `d` (elements are `d`-bit vectors).
    #[inline]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The irreducible modulus polynomial, as a bit vector.
    #[inline]
    pub fn modulus(&self) -> u128 {
        self.modulus
    }

    /// Number of elements in the field, `2^d`.
    #[inline]
    pub fn order(&self) -> u64 {
        1u64 << self.degree
    }

    /// Reduce an arbitrary `u64` into the field's element range by
    /// truncating to the low `d` bits.
    #[inline]
    pub fn element(&self, x: u64) -> u64 {
        x & self.mask
    }

    /// True if `x` is a canonical field element.
    #[inline]
    pub fn contains(&self, x: u64) -> bool {
        x & !self.mask == 0
    }

    /// Field addition (characteristic 2: addition is XOR).
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(self.contains(a) && self.contains(b));
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(self.contains(a) && self.contains(b));
        poly::mulmod(a, b, self.modulus)
    }

    /// The affine map `q*x + r`, the pairwise-independent hash family's
    /// underlying permutation-pair.
    #[inline]
    pub fn affine(&self, q: u64, r: u64, x: u64) -> u64 {
        self.add(self.mul(q, x), r)
    }

    /// `a^n` by square-and-multiply (used in tests to verify the field
    /// structure, e.g. `a^(2^d - 1) == 1` for `a != 0`).
    pub fn pow(&self, mut a: u64, mut n: u64) -> u64 {
        let mut acc = 1u64;
        while n != 0 {
            if n & 1 == 1 {
                acc = self.mul(acc, a);
            }
            a = self.mul(a, a);
            n >>= 1;
        }
        acc
    }

    /// Multiplicative inverse of a nonzero element, via `a^(2^d - 2)`.
    ///
    /// # Panics
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u64) -> u64 {
        assert!(a != 0, "zero has no multiplicative inverse");
        // a^(2^d - 2) = a^(order - 2); order = 2^d so order-2 fits u64.
        self.pow(a, self.order().wrapping_sub(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn small_field_multiplication_table() {
        // GF(4) with modulus x^2 + x + 1: elements {0, 1, w, w+1}.
        let f = Gf2Field::new(2);
        assert_eq!(f.modulus(), 0b111);
        let w = 0b10;
        let w1 = 0b11;
        assert_eq!(f.mul(w, w), w1); // w^2 = w + 1
        assert_eq!(f.mul(w, w1), 1); // w * (w+1) = w^2 + w = 1
        assert_eq!(f.mul(w1, w1), w); // (w+1)^2 = w^2 + 1 = w
    }

    #[test]
    fn one_is_multiplicative_identity() {
        let f = Gf2Field::new(16);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let a = f.element(rng.gen());
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.mul(1, a), a);
        }
    }

    #[test]
    fn zero_annihilates() {
        let f = Gf2Field::new(20);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let a = f.element(rng.gen());
            assert_eq!(f.mul(a, 0), 0);
        }
    }

    #[test]
    fn multiplicative_group_order() {
        // a^(2^d - 1) == 1 for every nonzero a (Lagrange).
        let f = Gf2Field::new(10);
        for a in 1..f.order() {
            assert_eq!(f.pow(a, f.order() - 1), 1, "a = {a}");
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let f = Gf2Field::new(12);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let a = f.element(rng.gen());
            if a == 0 {
                continue;
            }
            assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    #[test]
    fn field_axioms_random() {
        let f = Gf2Field::new(32);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..200 {
            let a = f.element(rng.gen());
            let b = f.element(rng.gen());
            let c = f.element(rng.gen());
            // commutativity
            assert_eq!(f.mul(a, b), f.mul(b, a));
            assert_eq!(f.add(a, b), f.add(b, a));
            // associativity
            assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
            // distributivity
            assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
            // characteristic 2
            assert_eq!(f.add(a, a), 0);
        }
    }

    #[test]
    fn degree_63_field_works() {
        let f = Gf2Field::new(63);
        let a = f.element(0xDEAD_BEEF_CAFE_F00D);
        let b = f.element(0x0123_4567_89AB_CDEF);
        assert_eq!(f.mul(a, b), f.mul(b, a));
        assert!(f.contains(f.mul(a, b)));
        let nz = 42;
        assert_eq!(f.mul(nz, f.inv(nz)), 1);
    }

    #[test]
    fn affine_map_is_a_bijection_for_nonzero_q() {
        let f = Gf2Field::new(8);
        let q = 0x53;
        let r = 0xCA & f.element(u64::MAX);
        let mut seen = vec![false; f.order() as usize];
        for x in 0..f.order() {
            let y = f.affine(q, r, x) as usize;
            assert!(!seen[y], "affine map collided");
            seen[y] = true;
        }
    }
}
