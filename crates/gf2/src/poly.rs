//! Polynomial arithmetic over GF(2).
//!
//! A polynomial with coefficients in GF(2) of degree at most 63 is stored
//! as the bits of a `u64`: bit `i` is the coefficient of `x^i`. Products of
//! two such polynomials have degree at most 126 and are held in a `u128`.
//!
//! This module provides exactly the operations the randomized-wave hash
//! function needs: carry-less multiplication, reduction modulo a fixed
//! polynomial, gcd, and Rabin's irreducibility test (used to find the
//! field modulus for `GF(2^d)` deterministically at construction time,
//! instead of hard-coding a table of irreducible polynomials).

/// Degree of a nonzero polynomial, i.e. the index of its highest set bit.
///
/// Returns `None` for the zero polynomial (whose degree is -infinity).
#[inline]
pub fn degree(p: u128) -> Option<u32> {
    if p == 0 {
        None
    } else {
        Some(127 - p.leading_zeros())
    }
}

/// Carry-less multiplication of two GF(2) polynomials.
///
/// This is ordinary binary long multiplication with XOR in place of
/// addition (no carries), which is exactly polynomial multiplication over
/// GF(2).
#[inline]
pub fn clmul(a: u64, b: u64) -> u128 {
    // Iterate over the set bits of the smaller operand so sparse
    // polynomials (the common case for moduli) multiply quickly.
    let (mut lo, hi) = if a.count_ones() <= b.count_ones() {
        (a, b)
    } else {
        (b, a)
    };
    let hi = hi as u128;
    let mut acc: u128 = 0;
    while lo != 0 {
        let shift = lo.trailing_zeros();
        acc ^= hi << shift;
        lo &= lo - 1; // clear lowest set bit
    }
    acc
}

/// Remainder of `a` modulo the nonzero polynomial `m`.
pub fn pmod(mut a: u128, m: u128) -> u128 {
    debug_assert!(m != 0, "division by the zero polynomial");
    let dm = degree(m).expect("modulus must be nonzero");
    while let Some(da) = degree(a) {
        if da < dm {
            break;
        }
        a ^= m << (da - dm);
    }
    a
}

/// Greatest common divisor of two GF(2) polynomials (Euclid's algorithm).
///
/// The gcd of polynomials is defined up to a unit; over GF(2) the only
/// unit is 1, so the result is canonical. `pgcd(0, 0) == 0`.
pub fn pgcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = pmod(a, b);
        a = b;
        b = r;
    }
    a
}

/// Multiplication of two polynomials of degree < 64, reduced mod `m`.
#[inline]
pub fn mulmod(a: u64, b: u64, m: u128) -> u64 {
    pmod(clmul(a, b), m) as u64
}

/// Squaring modulo `m`. Over GF(2), `(sum a_i x^i)^2 = sum a_i x^{2i}`
/// (the Frobenius endomorphism), so squaring just spreads the bits out.
#[inline]
pub fn sqrmod(a: u64, m: u128) -> u64 {
    pmod(spread_bits(a), m) as u64
}

/// Interleave zero bits: bit `i` of `a` moves to bit `2i` of the result.
#[inline]
fn spread_bits(a: u64) -> u128 {
    let mut x = a as u128;
    x = (x | (x << 32)) & 0x0000_0000_FFFF_FFFF_0000_0000_FFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF_0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF_00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F_0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333_3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555_5555_5555_5555_5555;
    x
}

/// Compute `x^(2^k) mod m` by repeated squaring of the polynomial `x`.
fn x_pow_pow2_mod(k: u32, m: u128) -> u64 {
    debug_assert!(degree(m).unwrap_or(0) >= 1);
    let mut acc: u64 = pmod(0b10, m) as u64; // the polynomial `x`
    for _ in 0..k {
        acc = sqrmod(acc, m);
    }
    acc
}

/// Prime factors of `n`, without multiplicity. `n <= 63` in practice.
fn prime_factors(mut n: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        if n.is_multiple_of(p) {
            out.push(p);
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
        p += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Rabin's irreducibility test for a degree-`d` polynomial over GF(2).
///
/// `f` of degree `d` is irreducible iff
/// 1. `x^(2^d) ≡ x (mod f)`, and
/// 2. for every prime divisor `p` of `d`, `gcd(x^(2^(d/p)) - x, f) = 1`.
pub fn is_irreducible(f: u128) -> bool {
    let d = match degree(f) {
        Some(d) if d >= 1 => d,
        _ => return false,
    };
    // A polynomial with zero constant term is divisible by x (unless it
    // *is* x itself, which is irreducible).
    if f & 1 == 0 {
        return f == 0b10;
    }
    // Condition 1: x^(2^d) == x mod f.
    if x_pow_pow2_mod(d, f) != pmod(0b10, f) as u64 {
        return false;
    }
    // Condition 2: no factor of degree dividing d/p.
    for p in prime_factors(d) {
        let h = x_pow_pow2_mod(d / p, f) ^ (pmod(0b10, f) as u64);
        if pgcd(h as u128, f) != 1 {
            return false;
        }
    }
    true
}

/// Find an irreducible polynomial of degree `d` over GF(2),
/// deterministically, preferring low-weight (sparse) polynomials.
///
/// The search enumerates candidates `x^d + g(x) + 1` with `g` ranging over
/// increasing values; because roughly a `1/d` fraction of degree-`d`
/// polynomials are irreducible, this terminates almost immediately. The
/// result for a given `d` is always the same, so two parties constructing
/// `GF(2^d)` independently agree on the field representation (a
/// requirement for the shared hash function of Section 4.1).
///
/// # Panics
/// Panics if `d == 0` or `d > 63`.
pub fn find_irreducible(d: u32) -> u128 {
    assert!((1..=63).contains(&d), "field degree must be in 1..=63");
    if d == 1 {
        return 0b11; // x + 1
    }
    let high: u128 = 1u128 << d;
    // Candidates have the x^d term and a constant term (necessary for
    // irreducibility when d >= 2); enumerate the middle bits in order.
    let mut mid: u128 = 0;
    loop {
        let f = high | (mid << 1) | 1;
        if is_irreducible(f) {
            return f;
        }
        mid += 1;
        assert!(
            mid < (1u128 << (d - 1)),
            "no irreducible polynomial found (impossible)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_basics() {
        assert_eq!(degree(0), None);
        assert_eq!(degree(1), Some(0));
        assert_eq!(degree(0b10), Some(1));
        assert_eq!(degree(0b1011), Some(3));
        assert_eq!(degree(1u128 << 127), Some(127));
    }

    #[test]
    fn clmul_small_cases() {
        // (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert_eq!(clmul(0b11, 0b11), 0b101);
        // (x^2 + x)(x + 1) = x^3 + x
        assert_eq!(clmul(0b110, 0b11), 0b1010);
        assert_eq!(clmul(0, 12345), 0);
        assert_eq!(clmul(1, 12345), 12345);
    }

    #[test]
    fn clmul_commutes() {
        let pairs = [(3u64, 7u64), (0xFFFF, 0x1234), (u64::MAX, u64::MAX)];
        for (a, b) in pairs {
            assert_eq!(clmul(a, b), clmul(b, a));
        }
    }

    #[test]
    fn pmod_reduces_below_modulus_degree() {
        let m = 0b1011u128; // x^3 + x + 1
        for a in 0u128..256 {
            let r = pmod(a, m);
            assert!(degree(r).is_none_or(|dr| dr < 3));
        }
    }

    #[test]
    fn pmod_identity_cases() {
        let m = 0b10011u128; // x^4 + x + 1
        assert_eq!(pmod(0, m), 0);
        assert_eq!(pmod(m, m), 0);
        assert_eq!(pmod(0b101, m), 0b101); // already reduced
    }

    #[test]
    fn gcd_of_coprime_is_one() {
        // x^3+x+1 and x^2+x+1 are both irreducible and distinct.
        assert_eq!(pgcd(0b1011, 0b111), 1);
    }

    #[test]
    fn gcd_finds_common_factor() {
        // (x+1)(x^2+x+1) = x^3+1; gcd with (x+1)(x) = x^2+x should be x+1.
        assert_eq!(pgcd(0b1001, 0b110), 0b11);
    }

    #[test]
    fn known_irreducibles() {
        // Classic low-degree irreducible polynomials over GF(2).
        assert!(is_irreducible(0b10)); // x
        assert!(is_irreducible(0b11)); // x + 1
        assert!(is_irreducible(0b111)); // x^2 + x + 1
        assert!(is_irreducible(0b1011)); // x^3 + x + 1
        assert!(is_irreducible(0b1101)); // x^3 + x^2 + 1
        assert!(is_irreducible(0b10011)); // x^4 + x + 1
        assert!(is_irreducible(0b100101)); // x^5 + x^2 + 1
        assert!(is_irreducible((1u128 << 8) | 0b11011)); // AES: x^8+x^4+x^3+x+1
    }

    #[test]
    fn known_reducibles() {
        assert!(!is_irreducible(0b101)); // x^2 + 1 = (x+1)^2
        assert!(!is_irreducible(0b110)); // x^2 + x = x(x+1)
        assert!(!is_irreducible(0b1001)); // x^3 + 1 = (x+1)(x^2+x+1)
        assert!(!is_irreducible(0b1111)); // x^3+x^2+x+1 = (x+1)^3
        assert!(!is_irreducible(0)); // zero polynomial
        assert!(!is_irreducible(1)); // unit
    }

    #[test]
    fn find_irreducible_every_degree() {
        for d in 1..=63 {
            let f = find_irreducible(d);
            assert_eq!(degree(f), Some(d));
            assert!(is_irreducible(f), "degree {d} candidate not irreducible");
        }
    }

    #[test]
    fn find_irreducible_is_deterministic() {
        for d in [1, 5, 16, 32, 63] {
            assert_eq!(find_irreducible(d), find_irreducible(d));
        }
    }

    #[test]
    fn sqrmod_matches_mulmod() {
        let m = find_irreducible(16);
        for a in [0u64, 1, 2, 0x1234, 0xFFFF, 0xBEEF] {
            assert_eq!(sqrmod(a, m), mulmod(a, a, m));
        }
    }

    #[test]
    fn prime_factor_basics() {
        assert_eq!(prime_factors(1), Vec::<u32>::new());
        assert_eq!(prime_factors(2), vec![2]);
        assert_eq!(prime_factors(12), vec![2, 3]);
        assert_eq!(prime_factors(63), vec![3, 7]);
        assert_eq!(prime_factors(61), vec![61]);
    }

    #[test]
    fn frobenius_spread() {
        assert_eq!(spread_bits(0b1), 0b1);
        assert_eq!(spread_bits(0b10), 0b100);
        assert_eq!(spread_bits(0b11), 0b101);
        assert_eq!(spread_bits(u64::MAX).count_ones(), 64);
    }
}
