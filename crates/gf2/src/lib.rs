//! `waves-gf2`: finite-field substrate for randomized waves.
//!
//! The randomized wave algorithms of Gibbons & Tirthapura (SPAA 2002)
//! require a pairwise-independent hash `h(p)` with an exponential level
//! distribution, computed identically by every party from a shared pair
//! of random field elements. This crate implements the substrate from
//! scratch:
//!
//! * [`poly`] — polynomial arithmetic over GF(2) (carry-less multiply,
//!   remainder, gcd, Rabin irreducibility test, deterministic search for
//!   an irreducible modulus of any degree up to 63);
//! * [`field`] — the field `GF(2^d)` built on that modulus;
//! * [`hash`] — the level hash `h(p) = #leading zeros of (q*p + r)`.
//!
//! # Example
//! ```
//! use waves_gf2::LevelHash;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let h = LevelHash::random(20, &mut rng);   // field GF(2^20)
//! let level = h.level(12345);                // Pr{level = l} = 2^-(l+1)
//! assert!(level <= 20);
//! ```

pub mod field;
pub mod hash;
pub mod poly;

pub use field::Gf2Field;
pub use hash::LevelHash;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn clmul_distributes_over_xor(a: u64, b: u64, c: u64) {
            prop_assert_eq!(
                poly::clmul(a, b ^ c),
                poly::clmul(a, b) ^ poly::clmul(a, c)
            );
        }

        #[test]
        fn pmod_is_idempotent(a: u128, m in 2u128..=u64::MAX as u128) {
            let r = poly::pmod(a, m);
            prop_assert_eq!(poly::pmod(r, m), r);
        }

        #[test]
        fn field_mul_closed_and_commutative(
            d in 1u32..=63,
            a: u64,
            b: u64,
        ) {
            let f = Gf2Field::new(d);
            let (a, b) = (f.element(a), f.element(b));
            let ab = f.mul(a, b);
            prop_assert!(f.contains(ab));
            prop_assert_eq!(ab, f.mul(b, a));
        }

        #[test]
        fn hash_level_bounded(d in 1u32..=40, q: u64, r: u64, p: u64) {
            let h = LevelHash::from_parts(d, q, r);
            prop_assert!(h.level(p) <= d);
        }

        #[test]
        fn gcd_divides_both(a in 1u128..=u32::MAX as u128, b in 1u128..=u32::MAX as u128) {
            let g = poly::pgcd(a, b);
            prop_assert!(g != 0);
            prop_assert_eq!(poly::pmod(a, g), 0);
            prop_assert_eq!(poly::pmod(b, g), 0);
        }
    }
}
